#include "common/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace rtsi {
namespace {

TEST(ZipfTest, StaysInRange) {
  ZipfDistribution dist(100, 1.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = dist(rng);
    EXPECT_LT(v, 100u);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfDistribution dist(1, 1.0);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist(rng), 0u);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  ZipfDistribution dist(1000, 1.0);
  Rng rng(11);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[dist(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, FrequencyRatioMatchesSkewOne) {
  // P(0)/P(9) should be ~10 for s=1.
  ZipfDistribution dist(10000, 1.0);
  Rng rng(23);
  std::vector<int> counts(10000, 0);
  const int n = 2'000'000;
  for (int i = 0; i < n; ++i) ++counts[dist(rng)];
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, 10.0, 1.5);
}

class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, HeadMassGrowsWithSkew) {
  const double s = GetParam();
  ZipfDistribution dist(10000, s);
  Rng rng(31);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (dist(rng) < 10) ++head;
  }
  // With any positive skew the top-10 ranks of 10k must be
  // over-represented vs uniform (10/10000 = 0.1%).
  EXPECT_GT(static_cast<double>(head) / n, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5));

TEST(ZipfTest, DeterministicGivenSeed) {
  ZipfDistribution dist(500, 1.1);
  Rng a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(dist(a), dist(b));
}

}  // namespace
}  // namespace rtsi
