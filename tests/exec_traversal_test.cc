#include "exec/traversal.h"

#include <gtest/gtest.h>

#include <set>

namespace rtsi::exec {

using core::BoundMode;
using core::Scorer;
using core::ScoreWeights;
namespace {

using index::InvertedIndex;
using index::Posting;

Posting P(StreamId s, float pop, Timestamp frsh, TermFreq tf) {
  return Posting{s, pop, frsh, tf};
}

Scorer DefaultScorer() { return Scorer(ScoreWeights{}, 3600.0); }

TEST(ComponentBoundTest, ZeroWhenNoTermPresent) {
  const Scorer scorer = DefaultScorer();
  std::vector<PerTermBound> terms(2);  // present = false.
  EXPECT_DOUBLE_EQ(
      ComponentBound(scorer, terms, 1000, 100, 0, BoundMode::kSnapshot),
      0.0);
}

TEST(ComponentBoundTest, DominatesAnyContainedPosting) {
  const Scorer scorer = DefaultScorer();
  InvertedIndex idx(1);
  idx.Add(1, P(10, 50.0f, 500, 3));
  idx.Add(1, P(11, 80.0f, 900, 7));
  idx.SealAll();

  std::vector<PerTermBound> terms(1);
  terms[0].bounds = idx.Bounds(1);
  terms[0].idf = 2.0;
  const Timestamp now = 1000;
  const std::uint64_t max_pop = 100;
  const double bound =
      ComponentBound(scorer, terms, now, max_pop, 0, BoundMode::kSnapshot);

  // Score each posting as if its snapshot were its true info.
  for (const Posting& p : idx.GetPlain(1)->entries()) {
    const double score = scorer.Combine(
        scorer.PopScore(static_cast<std::uint64_t>(p.pop), max_pop),
        scorer.RelScore(scorer.TermTfIdf(p.tf, 2.0), 1),
        scorer.FrshScore(p.frsh, now));
    EXPECT_LE(score, bound + 1e-12);
  }
}

TEST(ComponentBoundTest, GlobalPopModeIsLooser) {
  const Scorer scorer = DefaultScorer();
  InvertedIndex idx(1);
  idx.Add(1, P(10, 10.0f, 500, 3));
  idx.SealAll();
  std::vector<PerTermBound> terms(1);
  terms[0].bounds = idx.Bounds(1);
  terms[0].idf = 1.0;
  const double snapshot =
      ComponentBound(scorer, terms, 1000, 1000, 0, BoundMode::kSnapshot);
  const double global =
      ComponentBound(scorer, terms, 1000, 1000, 1000, BoundMode::kGlobalPop);
  EXPECT_GE(global, snapshot);
}

TEST(ComponentBoundTest, GlobalModeCeilsLiveFreshness) {
  const Scorer scorer = DefaultScorer();
  InvertedIndex idx(1);
  idx.Add(1, P(10, 10.0f, 500, 3));  // Sealed with stale frsh = 500.
  idx.SealAll();
  std::vector<PerTermBound> terms(1);
  terms[0].bounds = idx.Bounds(1);
  terms[0].idf = 1.0;
  const Timestamp now = 10000;
  const std::uint64_t max_pop = 1000;
  // The stream posted again after sealing: its live freshness is `now`,
  // far ahead of the component's stored maximum. The global-ceiling bound
  // must still dominate the live score; the snapshot bound does not.
  const double live_score = scorer.Combine(
      scorer.PopScore(10, max_pop), scorer.RelScore(scorer.TermTfIdf(3, 1.0), 1),
      scorer.FrshScore(now, now));
  const double global = ComponentBound(scorer, terms, now, max_pop, now,
                                       BoundMode::kGlobalPop);
  EXPECT_GE(global, live_score);
}

TEST(ComponentBoundTest, TfCorrectionRaisesBound) {
  const Scorer scorer = DefaultScorer();
  InvertedIndex idx(1);
  idx.Add(1, P(10, 10.0f, 500, 3));
  idx.SealAll();
  std::vector<PerTermBound> terms(1);
  terms[0].bounds = idx.Bounds(1);
  terms[0].idf = 1.0;
  const double base =
      ComponentBound(scorer, terms, 1000, 100, 0, BoundMode::kSnapshot);
  terms[0].tf_correction = 50;
  const double corrected =
      ComponentBound(scorer, terms, 1000, 100, 0, BoundMode::kSnapshot);
  EXPECT_GT(corrected, base);
}

TEST(TraversalTest, YieldsEveryStreamAtLeastOnce) {
  InvertedIndex idx(1);
  for (int i = 0; i < 20; ++i) {
    idx.Add(1, P(i, static_cast<float>(i * 7 % 20), 100 + i, 1 + i % 5));
  }
  idx.SealAll();

  Traversal traversal(idx, {1});
  std::set<StreamId> seen;
  std::vector<Posting> round;
  while (traversal.NextRound(round)) {
    for (const Posting& p : round) seen.insert(p.stream);
    round.clear();
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(TraversalTest, AbsentTermYieldsNothing) {
  InvertedIndex idx(1);
  idx.Add(1, P(1, 1.0f, 1, 1));
  idx.SealAll();
  Traversal traversal(idx, {99});
  std::vector<Posting> round;
  EXPECT_FALSE(traversal.NextRound(round));
  EXPECT_TRUE(round.empty());
}

TEST(TraversalTest, ThresholdDecreasesMonotonically) {
  const Scorer scorer = DefaultScorer();
  InvertedIndex idx(1);
  for (int i = 0; i < 30; ++i) {
    idx.Add(1, P(i, static_cast<float>(i), 100 + i,
                 1 + static_cast<TermFreq>(i)));
  }
  idx.SealAll();

  Traversal traversal(idx, {1});
  const std::vector<double> idfs = {1.0};
  std::vector<Posting> round;
  double prev = 1e300;
  while (traversal.NextRound(round)) {
    round.clear();
    const double tau =
        traversal.Threshold(scorer, idfs, 200, 100, 0, BoundMode::kSnapshot);
    EXPECT_LE(tau, prev + 1e-12);
    prev = tau;
  }
}

TEST(TraversalTest, ThresholdBoundsUnseenPostings) {
  const Scorer scorer = DefaultScorer();
  InvertedIndex idx(1);
  for (int i = 0; i < 40; ++i) {
    idx.Add(1, P(i, static_cast<float>((i * 13) % 37), 100 + i,
                 1 + static_cast<TermFreq>((i * 7) % 11)));
  }
  idx.SealAll();

  const Timestamp now = 200;
  const std::uint64_t max_pop = 40;
  const std::vector<double> idfs = {1.5};

  Traversal traversal(idx, {1});
  std::set<StreamId> seen;
  std::vector<Posting> round;
  while (traversal.NextRound(round)) {
    for (const Posting& p : round) seen.insert(p.stream);
    round.clear();
    const double tau =
        traversal.Threshold(scorer, idfs, now, max_pop, 0,
                            BoundMode::kSnapshot);
    // Every unseen posting's (snapshot) score must be below tau.
    for (const Posting& p : idx.GetPlain(1)->entries()) {
      if (seen.count(p.stream) > 0) continue;
      const double score = scorer.Combine(
          scorer.PopScore(static_cast<std::uint64_t>(p.pop), max_pop),
          scorer.RelScore(scorer.TermTfIdf(p.tf, idfs[0]), 1),
          scorer.FrshScore(p.frsh, now));
      ASSERT_LE(score, tau + 1e-12);
    }
  }
}

TEST(TraversalTest, FindAggregates) {
  InvertedIndex idx(1);
  idx.Add(1, P(5, 1.0f, 10, 2));
  idx.Add(2, P(5, 1.0f, 10, 9));
  idx.SealAll();
  Traversal traversal(idx, {1, 2});
  Posting out;
  ASSERT_TRUE(traversal.Find(0, 5, out));
  EXPECT_EQ(out.tf, 2u);
  ASSERT_TRUE(traversal.Find(1, 5, out));
  EXPECT_EQ(out.tf, 9u);
  EXPECT_FALSE(traversal.Find(0, 6, out));
}

TEST(TraversalTest, CountsPostingsYielded) {
  InvertedIndex idx(1);
  for (int i = 0; i < 4; ++i) idx.Add(1, P(i, 0, 10 + i, 1));
  idx.SealAll();
  Traversal traversal(idx, {1});
  std::vector<Posting> round;
  while (traversal.NextRound(round)) round.clear();
  // Round-based sorted access yields 3 postings per round until a list is
  // drained; with 4 postings that is at least 4 and at most 12.
  EXPECT_GE(traversal.postings_yielded(), 4u);
  EXPECT_LE(traversal.postings_yielded(), 12u);
}

}  // namespace
}  // namespace rtsi::exec
