// Ranking invariants that must hold for any workload:
//  - results are sorted descending and duplicate-free;
//  - top-k is a prefix of top-(k+m) (score-wise);
//  - boosting a stream's popularity never lowers its rank;
//  - adding matching content never lowers a stream's score;
//  - scores are insensitive to query-term order.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "common/rng.h"
#include "core/rtsi_index.h"

namespace rtsi::core {
namespace {

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 150;
  config.lsm.num_l0_shards = 4;
  // The workloads issue popularity updates after insertion; the global
  // bound mode keeps top-k exact in that regime (see core/config.h).
  config.bound_mode = BoundMode::kGlobalPop;
  return config;
}

class RankingInvariants : public ::testing::TestWithParam<int> {
 protected:
  void BuildRandomIndex(RtsiIndex& index, Rng& rng, int num_streams) {
    Timestamp t = 0;
    for (StreamId s = 0; s < static_cast<StreamId>(num_streams); ++s) {
      const int windows = 1 + static_cast<int>(rng.NextUint64(3));
      for (int w = 0; w < windows; ++w) {
        std::vector<TermCount> terms;
        std::set<TermId> used;
        for (int i = 0; i < 5; ++i) {
          const auto term = static_cast<TermId>(rng.NextUint64(30));
          if (used.insert(term).second) {
            terms.push_back(
                {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
          }
        }
        index.InsertWindow(s, t += kMicrosPerSecond, terms,
                           w + 1 < windows);
      }
      index.FinishStream(s);
      if (rng.NextBool(0.3)) {
        index.UpdatePopularity(s, rng.NextUint64(200));
      }
    }
    final_time_ = t;
  }

  Timestamp final_time_ = 0;
};

TEST_P(RankingInvariants, SortedAndDuplicateFree) {
  Rng rng(GetParam());
  RtsiIndex index(SmallConfig());
  BuildRandomIndex(index, rng, 150);

  for (TermId q = 0; q < 30; q += 3) {
    const auto results = index.Query({q, (q + 11) % 30}, 20, final_time_);
    std::set<StreamId> seen;
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(seen.insert(results[i].stream).second) << q;
      if (i > 0) ASSERT_LE(results[i].score, results[i - 1].score) << q;
    }
  }
}

TEST_P(RankingInvariants, TopKIsPrefixOfTopKPlusM) {
  Rng rng(GetParam() + 100);
  RtsiIndex index(SmallConfig());
  BuildRandomIndex(index, rng, 150);

  for (TermId q = 0; q < 30; q += 5) {
    const auto small = index.Query({q}, 5, final_time_);
    const auto large = index.Query({q}, 15, final_time_);
    ASSERT_LE(small.size(), large.size());
    for (std::size_t i = 0; i < small.size(); ++i) {
      // Scores must coincide rank by rank (streams may swap on ties).
      ASSERT_NEAR(small[i].score, large[i].score, 1e-12) << q << " " << i;
    }
  }
}

TEST_P(RankingInvariants, PopularityBoostNeverLowersRank) {
  Rng rng(GetParam() + 200);
  RtsiIndex index(SmallConfig());
  BuildRandomIndex(index, rng, 100);

  const TermId q = 7;
  const auto before = index.Query({q}, 50, final_time_);
  if (before.size() < 3) return;
  const StreamId target = before[before.size() / 2].stream;
  std::size_t rank_before = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].stream == target) rank_before = i;
  }

  index.UpdatePopularity(target, 1'000'000);  // Massive boost.
  const auto after = index.Query({q}, 50, final_time_);
  std::size_t rank_after = after.size();
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (after[i].stream == target) rank_after = i;
  }
  ASSERT_LT(rank_after, after.size()) << "boosted stream disappeared";
  EXPECT_LE(rank_after, rank_before);
}

TEST_P(RankingInvariants, AddingMatchingContentNeverLowersScore) {
  Rng rng(GetParam() + 300);
  RtsiIndex index(SmallConfig());
  BuildRandomIndex(index, rng, 80);

  const TermId q = 3;
  const auto before = index.Query({q}, 100, final_time_);
  double score_before = 0.0;
  StreamId target = kInvalidStreamId;
  for (const auto& r : before) {
    target = r.stream;
    score_before = r.score;
    break;
  }
  if (target == kInvalidStreamId) return;

  // More of the query term in a fresh window: tf and frsh both rise.
  index.InsertWindow(target, final_time_ + kMicrosPerMinute, {{q, 5}},
                     true);
  const auto after =
      index.Query({q}, 100, final_time_ + kMicrosPerMinute);
  for (const auto& r : after) {
    if (r.stream == target) {
      EXPECT_GE(r.score, score_before - 1e-9);
      return;
    }
  }
  FAIL() << "stream with added content disappeared from results";
}

TEST_P(RankingInvariants, QueryTermOrderIrrelevant) {
  Rng rng(GetParam() + 400);
  RtsiIndex index(SmallConfig());
  BuildRandomIndex(index, rng, 120);

  const auto ab = index.Query({4, 9}, 10, final_time_);
  const auto ba = index.Query({9, 4}, 10, final_time_);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    ASSERT_NEAR(ab[i].score, ba[i].score, 1e-12) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingInvariants, ::testing::Range(1, 6));

// Pruned vs full-walk equivalence while merges run underneath: the
// per-component live-freshness ceilings must keep upper-bound pruning
// lossless in exactly the regime that created them — streams re-inserting
// long after their early postings sealed, queries racing async merge
// cascades and served through pinned views. SetUseBound toggles pruning
// on the one index so both walks see identical content; a pair is retried
// when a merge published a new view between its two queries (the
// transient per-component partials of a multi-component stream
// legitimately differ across the swap, so the comparison is only defined
// at a fixed view epoch — equal epochs bracket an identical component
// set).
TEST(PrunedVsFullWalk, CeilingPruningLosslessAcrossMergeInterleavings) {
  for (int seed = 1; seed <= 3; ++seed) {
    auto config = SmallConfig();
    config.async_merge = true;
    RtsiIndex index(config);
    Rng rng(9000 + seed);
    Timestamp t = 0;
    constexpr int kStreams = 90;
    constexpr TermId kVocab = 30;

    const auto compare_pair = [&](const std::vector<TermId>& q, int k,
                                  const std::string& context) {
      std::vector<ScoredStream> pruned, full;
      for (int attempt = 0;; ++attempt) {
        if (attempt >= 20) {
          // Merges outpaced us; compare quiescent instead of spinning.
          index.WaitForMerges();
        }
        const std::uint64_t epoch = index.tree().epoch();
        index.SetUseBound(true);
        pruned = index.Query(q, k, t);
        index.SetUseBound(false);
        full = index.Query(q, k, t);
        if (index.tree().epoch() == epoch) break;
      }
      ASSERT_EQ(pruned.size(), full.size()) << context;
      for (std::size_t i = 0; i < pruned.size(); ++i) {
        ASSERT_EQ(pruned[i].stream, full[i].stream) << context << " rank "
                                                    << i;
        // Bit-identical: pruning may only skip work, never alter a score.
        ASSERT_EQ(pruned[i].score, full[i].score) << context << " rank "
                                                  << i;
      }
    };

    for (int burst = 0; burst < 12; ++burst) {
      // Insert burst, sized to trip merge cascades (delta = 150).
      for (int i = 0; i < 120; ++i) {
        const auto stream = static_cast<StreamId>(rng.NextUint64(kStreams));
        std::vector<TermCount> terms;
        std::set<TermId> used;
        for (int j = 0; j < 4; ++j) {
          const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
          if (used.insert(term).second) {
            terms.push_back(
                {term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
          }
        }
        index.InsertWindow(stream, t += kMicrosPerSecond, terms,
                           rng.NextBool(0.6));
        if (rng.NextBool(0.1)) index.FinishStream(stream);
        if (rng.NextBool(0.2)) {
          index.UpdatePopularity(stream, 1 + rng.NextUint64(100));
        }
      }
      // Query pairs racing whatever cascade the burst scheduled.
      for (int qi = 0; qi < 6; ++qi) {
        const std::vector<TermId> q = {
            static_cast<TermId>(rng.NextUint64(kVocab)),
            static_cast<TermId>(rng.NextUint64(kVocab))};
        // Large k keeps the k-th score low, where a too-low ceiling
        // actually decides membership.
        const int k = 10 + static_cast<int>(rng.NextUint64(30));
        compare_pair(q, k, "seed " + std::to_string(seed) + " burst " +
                               std::to_string(burst) + " query " +
                               std::to_string(qi));
        if (HasFatalFailure()) return;
      }
    }

    // Quiescent sweep: every term, after all cascades settled.
    index.WaitForMerges();
    for (TermId term = 0; term < kVocab; ++term) {
      compare_pair({term, (term + 7) % kVocab}, 25,
                   "seed " + std::to_string(seed) + " quiescent term " +
                       std::to_string(term));
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace rtsi::core
