// Empirical checks of the paper's appendix complexity analysis:
//   Appendix A — total merge work for building the LSM-tree is
//   O(M * log_rho(M / delta)): every posting is rewritten at most once
//   per level it passes through, and the level count is logarithmic.
//   Appendix B — with the upper bound, query cost stays near-flat as the
//   index grows (the number of components is logarithmic and most are
//   pruned).

#include <gtest/gtest.h>

#include <cmath>

#include "common/latency_stats.h"
#include "core/rtsi_index.h"
#include "lsm/lsm_tree.h"
#include "lsm/merge.h"

namespace rtsi {
namespace {

using index::Posting;

TEST(LsmComplexityTest, LevelCountIsLogarithmic) {
  lsm::LsmTree::Config config;
  config.delta = 100;
  config.rho = 2.0;
  config.num_l0_shards = 4;
  lsm::LsmTree tree(config);

  Timestamp t = 0;
  StreamId s = 0;
  const std::size_t total = 100 * 64;  // 64 * delta postings.
  for (std::size_t i = 0; i < total; ++i) {
    tree.AddPosting(static_cast<TermId>(i % 31), Posting{++s, 0.0f, ++t, 1});
    if (tree.NeedsMerge()) tree.MergeCascade(lsm::MergeHooks{});
  }
  // With rho=2 and M/delta=64, at most ~log2(64)+1 = 7 levels can exist.
  EXPECT_LE(tree.num_levels(), 7u);
  EXPECT_EQ(tree.total_postings(), total);
}

TEST(LsmComplexityTest, TotalMergeWorkIsLogLinear) {
  // Appendix A: summed merge input sizes ~ M * log_rho(M/delta).
  lsm::LsmTree::Config config;
  config.delta = 128;
  config.rho = 2.0;
  config.num_l0_shards = 4;
  lsm::LsmTree tree(config);

  Timestamp t = 0;
  StreamId s = 0;
  const std::size_t total = 128 * 32;
  for (std::size_t i = 0; i < total; ++i) {
    // Distinct streams: no consolidation, so postings_in measures pure
    // rewrite volume.
    tree.AddPosting(static_cast<TermId>(i % 17), Posting{++s, 0.0f, ++t, 1});
    if (tree.NeedsMerge()) tree.MergeCascade(lsm::MergeHooks{});
  }
  const auto stats = tree.GetMergeStats();
  const double levels = std::log2(static_cast<double>(total) / config.delta);
  // Every posting is rewritten at most once per level traversal, plus the
  // freeze; allow a 2x envelope for cascade-boundary effects.
  EXPECT_LE(static_cast<double>(stats.postings_in),
            2.0 * static_cast<double>(total) * (levels + 1.0));
  EXPECT_GE(stats.postings_in, total);  // Everything merged at least once.
}

TEST(LsmComplexityTest, InsertionCostIndependentOfHistoryBetweenMerges) {
  // The paper: insertion is ~O(log m0) — appending to I0 does not get
  // slower as sealed levels accumulate. Compare per-posting time of an
  // early window of inserts with a late one (excluding merges).
  lsm::LsmTree::Config config;
  config.delta = 50'000;  // Large: no merge inside the measured windows.
  config.num_l0_shards = 4;
  lsm::LsmTree tree(config);

  Timestamp t = 0;
  auto insert_block = [&](std::size_t n) {
    Stopwatch watch;
    for (std::size_t i = 0; i < n; ++i) {
      tree.AddPosting(static_cast<TermId>(i % 101),
                      Posting{i, 0.0f, ++t, 1});
    }
    return watch.ElapsedMicros() / static_cast<double>(n);
  };

  const double early = insert_block(10'000);
  insert_block(20'000);  // Grow.
  const double late = insert_block(10'000);
  // Appends must not degrade superlinearly; generous 5x envelope for
  // allocator noise on a busy CI box.
  EXPECT_LT(late, early * 5.0 + 1.0);
}

TEST(LsmComplexityTest, BoundKeepsQueryCostNearFlat) {
  // Appendix B via behaviour: with the bound, the components actually
  // visited per query stay small even as the index grows.
  core::RtsiConfig config;
  config.lsm.delta = 500;
  config.lsm.num_l0_shards = 4;

  std::size_t visited_small = 0, visited_large = 0;
  for (const std::size_t num_streams : {500u, 4000u}) {
    core::RtsiIndex index(config);
    Timestamp t = 0;
    for (StreamId s = 0; s < num_streams; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond,
                         {{static_cast<TermId>(s % 50), 2},
                          {static_cast<TermId>(50 + s % 20), 1}},
                         false);
      index.FinishStream(s);
    }
    std::size_t visited = 0;
    for (TermId q = 0; q < 50; ++q) {
      core::QueryStats stats;
      index.Query({q}, 10, t, &stats);
      visited += stats.components_visited;
    }
    if (num_streams == 500u) {
      visited_small = visited;
    } else {
      visited_large = visited;
    }
  }
  // 8x more data must not mean 8x more visited components.
  EXPECT_LT(visited_large, visited_small * 4 + 50);
}

}  // namespace
}  // namespace rtsi
