// Phone-bigram model and Viterbi decoding.

#include "asr/phone_lm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "asr/acoustic_model.h"
#include "asr/decoder.h"
#include "asr/lexicon.h"
#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/rng.h"

namespace rtsi::asr {
namespace {

TEST(PhoneBigramTest, UniformBeforeTraining) {
  PhoneBigramModel lm;
  const double uniform = -std::log(static_cast<double>(PhonemeCount()));
  EXPECT_NEAR(lm.LogTransition(0, 1), uniform, 1e-9);
  EXPECT_NEAR(lm.LogInitial(5), uniform, 1e-9);
}

TEST(PhoneBigramTest, TrainingShiftsProbabilityMass) {
  PhoneBigramModel lm;
  const PhonemeId a = PhonemeByName("s");
  const PhonemeId b = PhonemeByName("iy");
  const PhonemeId c = PhonemeByName("k");
  for (int i = 0; i < 100; ++i) lm.AddSequence({a, b});
  lm.Finalize();
  EXPECT_GT(lm.LogTransition(a, b), lm.LogTransition(a, c));
  EXPECT_GT(lm.LogInitial(a), lm.LogInitial(c));
}

TEST(PhoneBigramTest, RowsAreDistributions) {
  PhoneBigramModel lm;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<PhonemeId> seq;
    for (int j = 0; j < 10; ++j) {
      seq.push_back(static_cast<PhonemeId>(rng.NextUint64(PhonemeCount())));
    }
    lm.AddSequence(seq);
  }
  lm.Finalize();
  for (int from = 0; from < PhonemeCount(); ++from) {
    double total = 0.0;
    for (int to = 0; to < PhonemeCount(); ++to) {
      total += std::exp(lm.LogTransition(static_cast<PhonemeId>(from),
                                         static_cast<PhonemeId>(to)));
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << from;
  }
}

class ViterbiFixture : public ::testing::Test {
 protected:
  ViterbiFixture()
      : extractor_(audio::MfccConfig{}), model_(extractor_) {
    // Train the LM from the lexicon pronunciations of a small vocabulary.
    Lexicon lexicon;
    for (const char* word :
         {"stream", "audio", "search", "music", "news", "live", "radio"}) {
      lm_.AddSequence(lexicon.Pronounce(word));
    }
    lm_.Finalize();
  }

  audio::MfccExtractor extractor_;
  AcousticModel model_;
  PhoneBigramModel lm_;
};

TEST_F(ViterbiFixture, ViterbiMatchesArgmaxOnCleanAudio) {
  audio::SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.0;
  const audio::Synthesizer synth(synth_config);
  Rng rng(7);

  std::vector<audio::PhoneSpec> specs;
  std::vector<PhonemeId> truth;
  for (const char* name : {"iy", "aa", "uw"}) {
    const PhonemeId phone = PhonemeByName(name);
    audio::PhoneSpec spec = PhonemeSpec(phone);
    spec.duration_seconds = 0.15;
    specs.push_back(spec);
    truth.push_back(phone);
  }
  const audio::PcmBuffer pcm = synth.Render(specs, rng);

  DecoderConfig plain_config;
  const LatticeDecoder plain(&extractor_, &model_, plain_config);
  DecoderConfig viterbi_config;
  viterbi_config.use_viterbi = true;
  viterbi_config.phone_lm = &lm_;
  const LatticeDecoder viterbi(&extractor_, &model_, viterbi_config);

  for (const LatticeDecoder* decoder : {&plain, &viterbi}) {
    const auto path = decoder->Decode(pcm).BestPath();
    std::size_t truth_pos = 0;
    for (const PhonemeId phone : path) {
      if (truth_pos < truth.size() && phone == truth[truth_pos]) {
        ++truth_pos;
      }
    }
    EXPECT_EQ(truth_pos, truth.size());
  }
}

TEST_F(ViterbiFixture, ViterbiProducesFewerSpuriousSegments) {
  // Under noise, framewise argmax flickers between phones, producing
  // spurious short runs; the Viterbi self-loop suppresses them.
  audio::SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.06;
  const audio::Synthesizer synth(synth_config);
  Rng rng(23);

  std::vector<audio::PhoneSpec> specs;
  for (const char* name : {"iy", "ao", "ae"}) {
    audio::PhoneSpec spec = PhonemeSpec(PhonemeByName(name));
    spec.duration_seconds = 0.18;
    specs.push_back(spec);
  }
  const audio::PcmBuffer pcm = synth.Render(specs, rng);

  DecoderConfig plain_config;
  plain_config.min_run_frames = 1;  // Expose raw flicker.
  const LatticeDecoder plain(&extractor_, &model_, plain_config);
  DecoderConfig viterbi_config = plain_config;
  viterbi_config.use_viterbi = true;
  viterbi_config.phone_lm = &lm_;
  const LatticeDecoder viterbi(&extractor_, &model_, viterbi_config);

  const std::size_t plain_segments = plain.Decode(pcm).size();
  const std::size_t viterbi_segments = viterbi.Decode(pcm).size();
  EXPECT_LE(viterbi_segments, plain_segments);
}

}  // namespace
}  // namespace rtsi::asr
