#include "index/term_postings.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace rtsi::index {
namespace {

Posting MakePosting(StreamId stream, float pop, Timestamp frsh, TermFreq tf) {
  return Posting{stream, pop, frsh, tf};
}

TEST(TermPostingsTest, AppendTracksMaxima) {
  TermPostings postings;
  postings.Append(MakePosting(1, 5.0f, 100, 3));
  postings.Append(MakePosting(2, 9.0f, 200, 1));
  postings.Append(MakePosting(3, 2.0f, 300, 7));
  EXPECT_FLOAT_EQ(postings.max_pop(), 9.0f);
  EXPECT_EQ(postings.max_frsh(), 300);
  EXPECT_EQ(postings.max_tf(), 7u);
  EXPECT_EQ(postings.size(), 3u);
}

TEST(TermPostingsTest, FreshnessViewIsReverseArrival) {
  TermPostings postings;
  postings.Append(MakePosting(1, 0, 100, 1));
  postings.Append(MakePosting(2, 0, 200, 1));
  postings.Append(MakePosting(3, 0, 300, 1));
  EXPECT_EQ(postings.At(SortKey::kFreshness, 0).stream, 3u);
  EXPECT_EQ(postings.At(SortKey::kFreshness, 2).stream, 1u);
}

TEST(TermPostingsTest, SealBuildsDescendingViews) {
  TermPostings postings;
  postings.Append(MakePosting(1, 5.0f, 100, 3));
  postings.Append(MakePosting(2, 9.0f, 200, 1));
  postings.Append(MakePosting(3, 2.0f, 300, 7));
  postings.Seal();
  EXPECT_TRUE(postings.sealed());

  EXPECT_EQ(postings.At(SortKey::kPopularity, 0).stream, 2u);
  EXPECT_EQ(postings.At(SortKey::kPopularity, 2).stream, 3u);
  EXPECT_EQ(postings.At(SortKey::kTermFrequency, 0).stream, 3u);
  EXPECT_EQ(postings.At(SortKey::kTermFrequency, 2).stream, 2u);
}

TEST(TermPostingsTest, IsSortedMatchesViews) {
  TermPostings postings;
  postings.Append(MakePosting(1, 5.0f, 100, 3));
  postings.Append(MakePosting(2, 9.0f, 200, 1));
  EXPECT_TRUE(postings.IsSorted(SortKey::kFreshness));
  EXPECT_FALSE(postings.IsSorted(SortKey::kPopularity));  // Unsealed.
  postings.Seal();
  EXPECT_TRUE(postings.IsSorted(SortKey::kPopularity));
  EXPECT_TRUE(postings.IsSorted(SortKey::kTermFrequency));
}

TEST(TermPostingsTest, AggregateForStreamFindsSingle) {
  TermPostings postings;
  postings.Append(MakePosting(5, 1.0f, 10, 2));
  postings.Append(MakePosting(9, 2.0f, 20, 4));
  postings.Seal();
  Posting out;
  ASSERT_TRUE(postings.AggregateForStream(9, out));
  EXPECT_EQ(out.tf, 4u);
  EXPECT_FALSE(postings.AggregateForStream(7, out));
}

TEST(TermPostingsTest, AggregateForStreamFoldsDuplicates) {
  TermPostings postings;
  postings.Append(MakePosting(5, 1.0f, 10, 2));
  postings.Append(MakePosting(5, 3.0f, 20, 4));
  postings.Append(MakePosting(5, 2.0f, 30, 1));
  postings.Append(MakePosting(6, 9.0f, 40, 8));
  postings.Seal();
  Posting out;
  ASSERT_TRUE(postings.AggregateForStream(5, out));
  EXPECT_EQ(out.tf, 7u);        // 2 + 4 + 1.
  EXPECT_EQ(out.frsh, 30);      // Newest.
  EXPECT_FLOAT_EQ(out.pop, 3.0f);  // Largest snapshot.
}

// Seal() builds one contiguous, stream-sorted, duplicate-folded copy
// (AggregateForStream was a double-indirect walk per lookup before).
// Randomized cross-check: every distinct stream aggregates exactly, the
// copy is accounted for in MemoryBytes().
TEST(TermPostingsTest, SealedAggregateMatchesLinearFold) {
  TermPostings postings;
  std::uint32_t state = 12345;
  const auto next = [&state] {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  for (int i = 0; i < 400; ++i) {
    postings.Append(MakePosting(next() % 37,
                                static_cast<float>(next() % 100),
                                static_cast<Timestamp>(next() % 10000),
                                1 + next() % 5));
  }
  const std::size_t unsealed_bytes = postings.MemoryBytes();
  postings.Seal();
  EXPECT_GT(postings.MemoryBytes(), unsealed_bytes);

  for (StreamId stream = 0; stream < 37; ++stream) {
    TermFreq tf = 0;
    Timestamp frsh = 0;
    float pop = 0.0f;
    bool present = false;
    for (const Posting& p : postings.entries()) {
      if (p.stream != stream) continue;
      present = true;
      tf += p.tf;
      frsh = std::max(frsh, p.frsh);
      pop = std::max(pop, p.pop);
    }
    Posting out;
    ASSERT_EQ(postings.AggregateForStream(stream, out), present) << stream;
    if (!present) continue;
    EXPECT_EQ(out.tf, tf) << stream;
    EXPECT_EQ(out.frsh, frsh) << stream;
    EXPECT_FLOAT_EQ(out.pop, pop) << stream;
  }
}

TEST(TermPostingsTest, EmptyListBehaves) {
  TermPostings postings;
  EXPECT_TRUE(postings.empty());
  postings.Seal();
  Posting out;
  EXPECT_FALSE(postings.AggregateForStream(1, out));
  EXPECT_TRUE(postings.IsSorted(SortKey::kPopularity));
}

TEST(TermPostingsTest, SealIsIdempotent) {
  TermPostings postings;
  postings.Append(MakePosting(1, 1.0f, 1, 1));
  postings.Seal();
  postings.Seal();
  EXPECT_EQ(postings.size(), 1u);
}

class TermPostingsProperty : public ::testing::TestWithParam<int> {};

TEST_P(TermPostingsProperty, SortedViewsAreTruePermutations) {
  Rng rng(GetParam());
  TermPostings postings;
  Timestamp t = 0;
  const int n = 200 + static_cast<int>(rng.NextUint64(300));
  for (int i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextUint64(50));
    postings.Append(MakePosting(rng.NextUint64(100),
                                static_cast<float>(rng.NextUint64(1000)), t,
                                1 + static_cast<TermFreq>(rng.NextUint64(20))));
  }
  postings.Seal();

  for (const SortKey key : {SortKey::kPopularity, SortKey::kFreshness,
                            SortKey::kTermFrequency}) {
    EXPECT_TRUE(postings.IsSorted(key));
    // Each view must visit every entry exactly once: sum tf as a cheap
    // multiset fingerprint.
    std::uint64_t direct_sum = 0;
    std::uint64_t view_sum = 0;
    for (std::size_t i = 0; i < postings.size(); ++i) {
      direct_sum += postings.entries()[i].tf;
      view_sum += postings.At(key, i).tf;
    }
    EXPECT_EQ(direct_sum, view_sum);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermPostingsProperty,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace rtsi::index
