// The embedded HTTP server and the search routes, exercised over real
// loopback sockets.

#include "server/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "server/search_handler.h"
#include "service/search_service.h"

namespace rtsi::server {
namespace {

std::string Get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(UrlDecodeTest, DecodesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("hello+world"), "hello world");
  EXPECT_EQ(UrlDecode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(UrlDecode("100%"), "100%");  // Trailing % passes through.
  EXPECT_EQ(UrlDecode(""), "");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
}

TEST(HttpServerTest, ServesRoutesAndQueryParams) {
  HttpServer server;
  server.Route("/echo", [](const HttpRequest& request) {
    auto it = request.query.find("msg");
    return HttpResponse{200, "text/plain",
                        it == request.query.end() ? "none" : it->second};
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string response = Get(server.port(), "/echo?msg=hello+there");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("hello there"), std::string::npos);

  const std::string missing = Get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  SUCCEED();
}

class SearchRoutesTest : public ::testing::Test {
 protected:
  SearchRoutesTest() : service_(MakeConfig(), &clock_) {
    RegisterSearchRoutes(server_, service_, clock_);
    EXPECT_TRUE(server_.Start(0).ok());
    service_.IngestWindow(1, {"quantum", "physics", "lecture"});
    service_.IngestWindow(2, {"football", "goal", "stadium"});
    clock_.Advance(kMicrosPerMinute);
  }

  static service::SearchServiceConfig MakeConfig() {
    service::SearchServiceConfig config;
    config.ingestion.acoustic_path = service::AcousticPath::kDirect;
    config.ingestion.transcriber.word_error_rate = 0.0;
    return config;
  }

  SimulatedClock clock_;
  service::SearchService service_;
  HttpServer server_;
};

TEST_F(SearchRoutesTest, SearchReturnsMatchingStream) {
  const std::string response =
      Get(server_.port(), "/search?q=quantum+physics");
  EXPECT_NE(response.find("\"stream\":1"), std::string::npos);
  EXPECT_EQ(response.find("\"stream\":2"), std::string::npos);
}

TEST_F(SearchRoutesTest, SearchWithoutQueryIs400) {
  const std::string response = Get(server_.port(), "/search");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_F(SearchRoutesTest, IngestThenSearchRoundTrip) {
  Get(server_.port(), "/ingest?stream=7&words=volcano+eruption+alert");
  const std::string response = Get(server_.port(), "/search?q=volcano");
  EXPECT_NE(response.find("\"stream\":7"), std::string::npos);
}

TEST_F(SearchRoutesTest, LiveFilterExcludesFinished) {
  Get(server_.port(), "/finish?stream=1");
  const std::string live = Get(server_.port(), "/live?q=quantum");
  EXPECT_EQ(live.find("\"stream\":1"), std::string::npos);
  const std::string all = Get(server_.port(), "/search?q=quantum");
  EXPECT_NE(all.find("\"stream\":1"), std::string::npos);
}

TEST_F(SearchRoutesTest, PopUpdatesRanking) {
  Get(server_.port(), "/ingest?stream=3&words=football+highlights");
  Get(server_.port(), "/pop?stream=3&delta=100000");
  const std::string response = Get(server_.port(), "/search?q=football&k=1");
  EXPECT_NE(response.find("\"stream\":3"), std::string::npos);
}

TEST_F(SearchRoutesTest, StatsReportsCounts) {
  const std::string response = Get(server_.port(), "/stats");
  EXPECT_NE(response.find("\"text_postings\""), std::string::npos);
  EXPECT_NE(response.find("\"streams\":2"), std::string::npos);
}

TEST_F(SearchRoutesTest, IndexPageIsHtml) {
  const std::string response = Get(server_.port(), "/");
  EXPECT_NE(response.find("text/html"), std::string::npos);
  EXPECT_NE(response.find("RTSI"), std::string::npos);
}

}  // namespace
}  // namespace rtsi::server
