// The embedded HTTP server and the search routes, exercised over real
// loopback sockets.

#include "server/http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "server/search_handler.h"
#include "service/search_service.h"

namespace rtsi::server {
namespace {

std::string Get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(UrlDecodeTest, DecodesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("hello+world"), "hello world");
  EXPECT_EQ(UrlDecode("a%20b%2Fc"), "a b/c");
  EXPECT_EQ(UrlDecode("100%"), "100%");  // Trailing % passes through.
  EXPECT_EQ(UrlDecode(""), "");
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
}

TEST(HttpServerTest, ServesRoutesAndQueryParams) {
  HttpServer server;
  server.Route("/echo", [](const HttpRequest& request) {
    auto it = request.query.find("msg");
    return HttpResponse{200, "text/plain",
                        it == request.query.end() ? "none" : it->second};
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string response = Get(server.port(), "/echo?msg=hello+there");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("hello there"), std::string::npos);

  const std::string missing = Get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_GE(server.requests_served(), 2u);
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotent) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  SUCCEED();
}

// Sends raw bytes, half-closes the write side, reads the full response.
std::string SendRaw(int port, const std::string& data) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  (void)!::write(fd, data.data(), data.size());
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpServerTest, PostBodyReachesHandler) {
  HttpServer server;
  server.Route("/upload", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain", "len:" +
                        std::to_string(request.body.size())};
  });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string body = "7 volcano eruption\n8 tsunami warning\n";
  const std::string response = SendRaw(
      server.port(), "POST /upload HTTP/1.0\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("len:" + std::to_string(body.size())),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, OversizedHeadGets400) {
  ServerConfig config;
  config.max_head_bytes = 128;
  HttpServer server(config);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = SendRaw(
      server.port(), "GET /" + std::string(500, 'x') + " HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("400"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, TruncatedRequestGets400) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  // Head never terminates; the client half-closes mid-request.
  const std::string response = SendRaw(server.port(), "GET /partial HTT");
  EXPECT_NE(response.find("400"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, OversizedBodyGets413) {
  ServerConfig config;
  config.max_body_bytes = 64;
  HttpServer server(config);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = SendRaw(
      server.port(),
      "POST /upload HTTP/1.0\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_NE(response.find("413"), std::string::npos);
  server.Stop();
}

// Runs every route test against BOTH front-ends: the blocking demo
// server (param false) and the epoll async server (param true).
class SearchRoutesTest : public ::testing::TestWithParam<bool> {
 protected:
  SearchRoutesTest() : service_(MakeConfig(), &clock_) {
    ServerConfig server_config;
    server_config.async = GetParam();
    server_ = MakeHttpServer(server_config);
    RegisterSearchRoutes(*server_, service_, clock_);
    EXPECT_TRUE(server_->Start(0).ok());
    service_.IngestWindow(1, {"quantum", "physics", "lecture"});
    service_.IngestWindow(2, {"football", "goal", "stadium"});
    clock_.Advance(kMicrosPerMinute);
  }

  static service::SearchServiceConfig MakeConfig() {
    service::SearchServiceConfig config;
    config.ingestion.acoustic_path = service::AcousticPath::kDirect;
    config.ingestion.transcriber.word_error_rate = 0.0;
    return config;
  }

  int port() const { return server_->port(); }

  SimulatedClock clock_;
  service::SearchService service_;
  std::unique_ptr<HttpServerBase> server_;
};

INSTANTIATE_TEST_SUITE_P(BlockingAndAsync, SearchRoutesTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Async" : "Blocking";
                         });

TEST_P(SearchRoutesTest, SearchReturnsMatchingStream) {
  const std::string response =
      Get(port(), "/search?q=quantum+physics");
  EXPECT_NE(response.find("\"stream\":1"), std::string::npos);
  EXPECT_EQ(response.find("\"stream\":2"), std::string::npos);
}

TEST_P(SearchRoutesTest, SearchWithoutQueryIs400) {
  const std::string response = Get(port(), "/search");
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_P(SearchRoutesTest, IngestThenSearchRoundTrip) {
  Get(port(), "/ingest?stream=7&words=volcano+eruption+alert");
  const std::string response = Get(port(), "/search?q=volcano");
  EXPECT_NE(response.find("\"stream\":7"), std::string::npos);
}

TEST_P(SearchRoutesTest, IngestPostBodyIndexesOneWindowPerLine) {
  const std::string body = "21 solar eclipse timelapse\n22 meteor shower\n";
  const std::string response = SendRaw(
      port(), "POST /ingest HTTP/1.0\r\nContent-Length: " +
                  std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(Get(port(), "/search?q=eclipse").find("\"stream\":21"),
            std::string::npos);
  EXPECT_NE(Get(port(), "/search?q=meteor").find("\"stream\":22"),
            std::string::npos);
}

TEST_P(SearchRoutesTest, IngestBadBodyLineIs400) {
  const std::string body = "31\n";  // A stream id with no words.
  const std::string response = SendRaw(
      port(), "POST /ingest HTTP/1.0\r\nContent-Length: " +
                  std::to_string(body.size()) + "\r\n\r\n" + body);
  EXPECT_NE(response.find("400"), std::string::npos);
}

TEST_P(SearchRoutesTest, LiveFilterExcludesFinished) {
  Get(port(), "/finish?stream=1");
  const std::string live = Get(port(), "/live?q=quantum");
  EXPECT_EQ(live.find("\"stream\":1"), std::string::npos);
  const std::string all = Get(port(), "/search?q=quantum");
  EXPECT_NE(all.find("\"stream\":1"), std::string::npos);
}

TEST_P(SearchRoutesTest, PopUpdatesRanking) {
  Get(port(), "/ingest?stream=3&words=football+highlights");
  Get(port(), "/pop?stream=3&delta=100000");
  const std::string response = Get(port(), "/search?q=football&k=1");
  EXPECT_NE(response.find("\"stream\":3"), std::string::npos);
}

TEST_P(SearchRoutesTest, StatsReportsCounts) {
  const std::string response = Get(port(), "/stats");
  EXPECT_NE(response.find("\"text_postings\""), std::string::npos);
  EXPECT_NE(response.find("\"streams\":2"), std::string::npos);
  // Shard-aware stats: the per-shard array and the server queue block.
  EXPECT_NE(response.find("\"num_shards\":1"), std::string::npos);
  EXPECT_NE(response.find("\"shards\":[{\"shard\":0"), std::string::npos);
  EXPECT_NE(response.find("\"view_epoch\""), std::string::npos);
  EXPECT_NE(response.find("\"arena_bytes\""), std::string::npos);
  EXPECT_NE(response.find("\"queue\":{\"pending\""), std::string::npos);
}

TEST_P(SearchRoutesTest, IndexPageIsHtml) {
  const std::string response = Get(port(), "/");
  EXPECT_NE(response.find("text/html"), std::string::npos);
  EXPECT_NE(response.find("RTSI"), std::string::npos);
}

}  // namespace
}  // namespace rtsi::server
