// Corpus generator, query generator and workload driver tests.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "core/rtsi_index.h"
#include "workload/corpus.h"
#include "workload/driver.h"
#include "workload/query_gen.h"
#include "workload/report.h"

namespace rtsi::workload {
namespace {

CorpusConfig SmallCorpusConfig() {
  CorpusConfig config;
  config.num_streams = 100;
  config.vocab_size = 2000;
  config.avg_windows_per_stream = 6;
  config.min_windows_per_stream = 2;
  config.words_per_window = 50;
  return config;
}

core::RtsiConfig SmallIndexConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 2000;
  config.lsm.num_l0_shards = 4;
  return config;
}

TEST(CorpusTest, WindowsAreDeterministic) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  const auto a = corpus.WindowTerms(5, 2);
  const auto b = corpus.WindowTerms(5, 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].term, b[i].term);
    EXPECT_EQ(a[i].tf, b[i].tf);
  }
}

TEST(CorpusTest, DifferentWindowsDiffer) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  const auto a = corpus.WindowTerms(5, 0);
  const auto b = corpus.WindowTerms(5, 1);
  std::set<TermId> terms_a, terms_b;
  for (const auto& tc : a) terms_a.insert(tc.term);
  for (const auto& tc : b) terms_b.insert(tc.term);
  EXPECT_NE(terms_a, terms_b);
}

TEST(CorpusTest, WindowCountsInConfiguredRange) {
  const auto config = SmallCorpusConfig();
  const SyntheticCorpus corpus(config);
  for (StreamId s = 0; s < 100; ++s) {
    const int w = corpus.NumWindows(s);
    EXPECT_GE(w, config.min_windows_per_stream);
    EXPECT_LE(w, 2 * config.avg_windows_per_stream -
                     config.min_windows_per_stream);
  }
}

TEST(CorpusTest, TermFrequenciesSumToWordsPerWindow) {
  const auto config = SmallCorpusConfig();
  const SyntheticCorpus corpus(config);
  const auto terms = corpus.WindowTerms(1, 0);
  TermFreq total = 0;
  for (const auto& tc : terms) total += tc.tf;
  EXPECT_EQ(total, static_cast<TermFreq>(config.words_per_window));
}

TEST(CorpusTest, VocabularyIsZipfSkewed) {
  const auto config = SmallCorpusConfig();
  const SyntheticCorpus corpus(config);
  std::size_t head_hits = 0, total = 0;
  for (StreamId s = 0; s < 50; ++s) {
    for (const auto& tc : corpus.WindowTerms(s, 0)) {
      total += tc.tf;
      if (tc.term < 20) head_hits += tc.tf;
    }
  }
  // Top-20 of 2000 words must hold far more than 1% of the mass.
  EXPECT_GT(static_cast<double>(head_hits) / total, 0.1);
}

TEST(CorpusTest, WordsMatchTermIds) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  const auto words = corpus.WindowWords(3, 1);
  const auto terms = corpus.WindowTerms(3, 1);
  TermFreq total = 0;
  for (const auto& tc : terms) total += tc.tf;
  EXPECT_EQ(words.size(), static_cast<std::size_t>(total));
  // Every word corresponds to a drawn term id.
  std::set<TermId> ids;
  for (const auto& tc : terms) ids.insert(tc.term);
  for (const auto& word : words) {
    ASSERT_EQ(word[0], 'w');
    EXPECT_TRUE(ids.count(static_cast<TermId>(std::stoul(word.substr(1)))))
        << word;
  }
}

TEST(QueryGenTest, RespectsTermCountRange) {
  QueryGenConfig config;
  config.vocab_size = 1000;
  config.min_terms = 1;
  config.max_terms = 3;
  QueryGenerator gen(config);
  for (int i = 0; i < 500; ++i) {
    const auto q = gen.Next();
    EXPECT_GE(q.size(), 1u);
    EXPECT_LE(q.size(), 3u);
    std::unordered_set<TermId> distinct(q.begin(), q.end());
    EXPECT_EQ(distinct.size(), q.size());
  }
}

TEST(QueryGenTest, BiasedTowardHeadTerms) {
  QueryGenConfig config;
  config.vocab_size = 10000;
  QueryGenerator gen(config);
  std::size_t head = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    for (const TermId term : gen.Next()) {
      ++total;
      if (term < 100) ++head;
    }
  }
  EXPECT_GT(static_cast<double>(head) / total, 0.2);
}

TEST(DriverTest, InitializeIndexInsertsEveryWindow) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  core::RtsiIndex index(SmallIndexConfig());
  SimulatedClock clock;
  const InitResult result = InitializeIndex(index, corpus, 0, 50, clock);

  std::size_t expected_windows = 0;
  for (StreamId s = 0; s < 50; ++s) expected_windows += corpus.NumWindows(s);
  EXPECT_EQ(result.windows_inserted, expected_windows);
  EXPECT_GT(result.index_bytes, 0u);
  EXPECT_GT(result.elapsed_micros, 0.0);
  // All streams finished.
  EXPECT_EQ(index.stream_table().size(), 50u);
}

TEST(DriverTest, MeasureQueriesReturnsLatencies) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  core::RtsiIndex index(SmallIndexConfig());
  SimulatedClock clock;
  InitializeIndex(index, corpus, 0, 50, clock);

  QueryGenConfig qconfig;
  qconfig.vocab_size = 2000;
  QueryGenerator gen(qconfig);
  const LatencyStats stats = MeasureQueries(index, gen, 100, 10, clock);
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_GT(stats.mean_micros(), 0.0);
}

TEST(DriverTest, MeasureUpdatesAndInsertions) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  core::RtsiIndex index(SmallIndexConfig());
  SimulatedClock clock;
  InitializeIndex(index, corpus, 0, 20, clock);

  const LatencyStats inserts =
      MeasureInsertions(index, corpus, 20, 10, clock);
  EXPECT_GT(inserts.count(), 0u);
  const LatencyStats updates = MeasureUpdates(index, 500, 30, clock);
  EXPECT_EQ(updates.count(), 500u);
}

TEST(DriverTest, MixedWorkloadSplitsOps) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  core::RtsiIndex index(SmallIndexConfig());
  SimulatedClock clock;
  InitializeIndex(index, corpus, 0, 30, clock);

  QueryGenConfig qconfig;
  qconfig.vocab_size = 2000;
  QueryGenerator gen(qconfig);
  const MixedResult result =
      RunMixedWorkload(index, corpus, gen, 1000, 30, 10, 30, clock);
  EXPECT_EQ(result.queries.count() + result.insertions.count(), 1000u);
  // 30% +- noise should be queries.
  EXPECT_NEAR(static_cast<double>(result.queries.count()), 300.0, 60.0);
}

TEST(ReportTest, FormatsValues) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2.00KB");
  EXPECT_NE(FormatBytes(5 * 1024 * 1024).find("MB"), std::string::npos);
  EXPECT_NE(FormatMicros(1500.0).find("ms"), std::string::npos);
  EXPECT_NE(FormatMicros(2.5e6).find("s"), std::string::npos);
}

TEST(ReportTest, TablePrintsWithoutCrashing) {
  ReportTable table("Demo", {"col1", "col2"});
  table.AddRow({"a", "b"});
  table.AddRow({"longer-cell", "x"});
  table.Print();
  SUCCEED();
}

}  // namespace
}  // namespace rtsi::workload
