// The epoll front-end over real loopback sockets: keep-alive and
// pipelining, request caps (400/413), admission control (503 +
// Retry-After), insert batching, and the Stop drain contract.
//
// Timing-sensitive behaviors are made deterministic with a "gate" route
// whose handler blocks on a condition variable the test controls: with
// one worker thread, the gate pins the worker while the test arranges
// the exact queue state it wants to observe.

#include "server/async_http_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http_server.h"

namespace rtsi::server {
namespace {

/// A raw loopback client that can hold a keep-alive connection open and
/// read responses one at a time (framed by Content-Length).
struct Client {
  int fd = -1;
  std::string buf;

  explicit Client(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool Get(const std::string& target, bool keep_alive = true) {
    return Send("GET " + target + " HTTP/1.1\r\n" +
                (keep_alive ? "" : "Connection: close\r\n") + "\r\n");
  }

  /// Blocks until one full response is buffered; empty string on EOF or
  /// error before a complete response arrived.
  std::string ReadResponse() {
    while (true) {
      const std::size_t head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        std::size_t body_len = 0;
        const std::size_t cl = buf.find("Content-Length: ");
        if (cl != std::string::npos && cl < head_end) {
          body_len = static_cast<std::size_t>(
              std::strtoull(buf.c_str() + cl + 16, nullptr, 10));
        }
        const std::size_t total = head_end + 4 + body_len;
        if (buf.size() >= total) {
          std::string response = buf.substr(0, total);
          buf.erase(0, total);
          return response;
        }
      }
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) return {};
      buf.append(chunk, static_cast<std::size_t>(n));
    }
  }
};

/// Blocks handler threads until the test opens the gate.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

void AwaitQueue(AsyncHttpServer& server,
                const std::function<bool(const ServerQueueStats&)>& pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred(server.QueueStats())) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  FAIL() << "queue never reached the expected state";
}

TEST(AsyncHttpServerTest, ServesKeepAliveAndPipelinedRequests) {
  ServerConfig config;
  config.async = true;
  AsyncHttpServer server(config);
  server.Route("/echo", [](const HttpRequest& request) {
    auto it = request.query.find("msg");
    return HttpResponse{200, "text/plain",
                        it == request.query.end() ? "none" : it->second};
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  Client client(server.port());
  ASSERT_GE(client.fd, 0);
  // Two sequential requests on one connection (keep-alive)...
  ASSERT_TRUE(client.Get("/echo?msg=first"));
  EXPECT_NE(client.ReadResponse().find("first"), std::string::npos);
  ASSERT_TRUE(client.Get("/echo?msg=second"));
  EXPECT_NE(client.ReadResponse().find("second"), std::string::npos);
  // ...then two pipelined in one write.
  ASSERT_TRUE(client.Send(
      "GET /echo?msg=third HTTP/1.1\r\n\r\n"
      "GET /echo?msg=fourth HTTP/1.1\r\n\r\n"));
  EXPECT_NE(client.ReadResponse().find("third"), std::string::npos);
  EXPECT_NE(client.ReadResponse().find("fourth"), std::string::npos);
  EXPECT_GE(server.requests_served(), 4u);

  const std::string missing_response = [&] {
    Client other(server.port());
    other.Get("/nope");
    return other.ReadResponse();
  }();
  EXPECT_NE(missing_response.find("404"), std::string::npos);
  server.Stop();
}

TEST(AsyncHttpServerTest, PostBodyReachesHandler) {
  ServerConfig config;
  config.async = true;
  AsyncHttpServer server(config);
  server.Route("/upload", [](const HttpRequest& request) {
    return HttpResponse{200, "text/plain",
                        "got:" + request.body + ":" + request.method};
  });
  ASSERT_TRUE(server.Start(0).ok());

  Client client(server.port());
  const std::string body = "1 hello world\n2 another line\n";
  ASSERT_TRUE(client.Send("POST /upload HTTP/1.1\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("got:" + body + ":POST"), std::string::npos);
  server.Stop();
}

TEST(AsyncHttpServerTest, OversizedHeadGets400) {
  ServerConfig config;
  config.async = true;
  config.max_head_bytes = 128;
  AsyncHttpServer server(config);
  server.Route("/", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain", "ok"};
  });
  ASSERT_TRUE(server.Start(0).ok());

  Client client(server.port());
  ASSERT_TRUE(client.Get("/" + std::string(500, 'x')));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("400"), std::string::npos);
  // The connection is cut after the error: the next read sees EOF.
  EXPECT_TRUE(client.ReadResponse().empty());
  server.Stop();
}

TEST(AsyncHttpServerTest, OversizedBodyGets413) {
  ServerConfig config;
  config.async = true;
  config.max_body_bytes = 64;
  AsyncHttpServer server(config);
  ASSERT_TRUE(server.Start(0).ok());

  Client client(server.port());
  // The Content-Length alone triggers the cap — no body bytes needed.
  ASSERT_TRUE(client.Send("POST /upload HTTP/1.1\r\nContent-Length: 100000"
                          "\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("413"), std::string::npos);
  server.Stop();
}

TEST(AsyncHttpServerTest, AdmissionControlShedsWith503AndRecovers) {
  Gate gate;
  ServerConfig config;
  config.async = true;
  config.workers = 1;
  config.max_pending = 2;
  AsyncHttpServer server(config);
  server.Route("/gate", [&gate](const HttpRequest&) {
    gate.Wait();
    return HttpResponse{200, "text/plain", "through"};
  });
  ASSERT_TRUE(server.Start(0).ok());

  // One request pinned in the worker, two filling the queue...
  Client c1(server.port()), c2(server.port()), c3(server.port());
  ASSERT_TRUE(c1.Get("/gate"));
  AwaitQueue(server, [](const ServerQueueStats& s) {
    return s.in_flight == 1;
  });
  ASSERT_TRUE(c2.Get("/gate"));
  ASSERT_TRUE(c3.Get("/gate"));
  AwaitQueue(server, [](const ServerQueueStats& s) {
    return s.pending == 2;
  });
  EXPECT_EQ(server.QueueStats().pending_by_path.at("/gate"), 2u);

  // ...so the next two are shed immediately with an actionable 503, by
  // the network thread, while the worker is still blocked.
  Client c4(server.port()), c5(server.port());
  ASSERT_TRUE(c4.Get("/gate"));
  ASSERT_TRUE(c5.Get("/gate"));
  for (Client* shed_client : {&c4, &c5}) {
    const std::string response = shed_client->ReadResponse();
    EXPECT_NE(response.find("503"), std::string::npos);
    EXPECT_NE(response.find("Retry-After: 1"), std::string::npos);
    EXPECT_NE(response.find("overloaded"), std::string::npos);
  }
  EXPECT_EQ(server.QueueStats().shed, 2u);
  EXPECT_EQ(server.QueueStats().accepted, 3u);

  // A shed connection stays usable, and admitted requests complete once
  // the overload clears.
  gate.Open();
  EXPECT_NE(c1.ReadResponse().find("through"), std::string::npos);
  EXPECT_NE(c2.ReadResponse().find("through"), std::string::npos);
  EXPECT_NE(c3.ReadResponse().find("through"), std::string::npos);
  ASSERT_TRUE(c4.Get("/gate"));
  EXPECT_NE(c4.ReadResponse().find("through"), std::string::npos);
  server.Stop();
}

TEST(AsyncHttpServerTest, BatchRouteCoalescesQueuedRequests) {
  Gate gate;
  std::mutex sizes_mu;
  std::vector<std::size_t> batch_sizes;
  ServerConfig config;
  config.async = true;
  config.workers = 1;
  config.max_batch = 8;
  AsyncHttpServer server(config);
  server.Route("/gate", [&gate](const HttpRequest&) {
    gate.Wait();
    return HttpResponse{200, "text/plain", "through"};
  });
  server.RouteBatch(
      "/batch", [&](const std::vector<HttpRequest>& requests) {
        {
          std::lock_guard<std::mutex> lock(sizes_mu);
          batch_sizes.push_back(requests.size());
        }
        std::vector<HttpResponse> responses;
        for (const HttpRequest& request : requests) {
          responses.emplace_back(200, "text/plain",
                                 "batched:" +
                                     request.query.find("id")->second);
        }
        return responses;
      });
  ASSERT_TRUE(server.Start(0).ok());

  // Pin the worker, then queue four /batch requests behind it.
  Client gatekeeper(server.port());
  ASSERT_TRUE(gatekeeper.Get("/gate"));
  AwaitQueue(server, [](const ServerQueueStats& s) {
    return s.in_flight == 1;
  });
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(server.port()));
    ASSERT_TRUE(clients.back()->Get("/batch?id=" + std::to_string(i)));
  }
  AwaitQueue(server, [](const ServerQueueStats& s) {
    return s.pending == 4;
  });

  // Releasing the worker drains all four as ONE handler call.
  gate.Open();
  EXPECT_NE(gatekeeper.ReadResponse().find("through"), std::string::npos);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(
        clients[i]->ReadResponse().find("batched:" + std::to_string(i)),
        std::string::npos)
        << "client " << i;
  }
  {
    std::lock_guard<std::mutex> lock(sizes_mu);
    ASSERT_EQ(batch_sizes.size(), 1u);
    EXPECT_EQ(batch_sizes[0], 4u);
  }
  const auto stats = server.QueueStats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 4u);
  server.Stop();
}

TEST(AsyncHttpServerTest, StopDrainsInFlightRequestBeforeReturning) {
  Gate gate;
  ServerConfig config;
  config.async = true;
  config.workers = 1;
  AsyncHttpServer server(config);
  server.Route("/gate", [&gate](const HttpRequest&) {
    gate.Wait();
    return HttpResponse{200, "text/plain", "drained-ok"};
  });
  ASSERT_TRUE(server.Start(0).ok());

  Client client(server.port());
  ASSERT_TRUE(client.Get("/gate"));
  AwaitQueue(server, [](const ServerQueueStats& s) {
    return s.in_flight == 1;
  });

  // Stop must block until the in-flight request finished AND its response
  // was flushed to the socket.
  std::thread stopper([&server] { server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.Open();
  stopper.join();

  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("drained-ok"), std::string::npos);
  // Draining closes the connection even though the request asked for
  // keep-alive.
  EXPECT_TRUE(client.ReadResponse().empty());
}

TEST(AsyncHttpServerTest, StopIsIdempotent) {
  ServerConfig config;
  config.async = true;
  AsyncHttpServer server(config);
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
  SUCCEED();
}

TEST(AsyncHttpServerTest, ManyConnectionsManyRequests) {
  ServerConfig config;
  config.async = true;
  config.workers = 2;
  AsyncHttpServer server(config);
  std::atomic<int> handled{0};
  server.Route("/count", [&handled](const HttpRequest&) {
    return HttpResponse{200, "text/plain",
                        std::to_string(handled.fetch_add(1))};
  });
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kClients = 4;
  constexpr int kRequestsEach = 25;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.port());
      for (int i = 0; i < kRequestsEach; ++i) {
        if (!client.Get("/count")) return;
        const std::string response = client.ReadResponse();
        if (response.find("200 OK") != std::string::npos) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), kClients * kRequestsEach);
  EXPECT_EQ(handled.load(), kClients * kRequestsEach);
  server.Stop();
}

TEST(MakeHttpServerTest, PicksFrontEndByConfig) {
  ServerConfig blocking;
  auto a = MakeHttpServer(blocking);
  EXPECT_NE(dynamic_cast<HttpServer*>(a.get()), nullptr);
  ServerConfig async_config;
  async_config.async = true;
  auto b = MakeHttpServer(async_config);
  EXPECT_NE(dynamic_cast<AsyncHttpServer*>(b.get()), nullptr);
}

}  // namespace
}  // namespace rtsi::server
