#include "index/huffman.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "common/zipf.h"

namespace rtsi::index {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(HuffmanTest, EmptyInputRoundTrips) {
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(HuffmanDecode(HuffmanEncode({}), out));
  EXPECT_TRUE(out.empty());
}

TEST(HuffmanTest, SingleByteRoundTrips) {
  const auto input = Bytes("a");
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(HuffmanDecode(HuffmanEncode(input), out));
  EXPECT_EQ(out, input);
}

TEST(HuffmanTest, SingleSymbolRunRoundTrips) {
  const std::vector<std::uint8_t> input(1000, 0x42);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(HuffmanDecode(HuffmanEncode(input), out));
  EXPECT_EQ(out, input);
}

TEST(HuffmanTest, TextRoundTrips) {
  const auto input =
      Bytes("the quick brown fox jumps over the lazy dog 0123456789");
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(HuffmanDecode(HuffmanEncode(input), out));
  EXPECT_EQ(out, input);
}

TEST(HuffmanTest, SkewedInputCompresses) {
  // Zipf-distributed bytes (like varint posting streams) must shrink.
  Rng rng(7);
  ZipfDistribution dist(64, 1.3);
  std::vector<std::uint8_t> input(20000);
  for (auto& b : input) b = static_cast<std::uint8_t>(dist(rng));
  const auto blob = HuffmanEncode(input);
  EXPECT_LT(blob.size(), input.size());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(HuffmanDecode(blob, out));
  EXPECT_EQ(out, input);
}

TEST(HuffmanTest, UniformRandomInputStillRoundTrips) {
  Rng rng(9);
  std::vector<std::uint8_t> input(5000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(HuffmanDecode(HuffmanEncode(input), out));
  EXPECT_EQ(out, input);
}

TEST(HuffmanTest, TruncatedBlobFailsCleanly) {
  auto blob = HuffmanEncode(Bytes("hello huffman world"));
  blob.resize(blob.size() - 1);
  std::vector<std::uint8_t> out;
  // Either the final symbols are missing or the stream is detected as
  // truncated; it must not crash and must report failure.
  EXPECT_FALSE(HuffmanDecode(blob, out));
}

TEST(HuffmanTest, GarbageHeaderFailsCleanly) {
  std::vector<std::uint8_t> blob = {1, 2, 3};
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(HuffmanDecode(blob, out));
}

class HuffmanSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanSeedSweep, RandomDistributionsRoundTrip) {
  Rng rng(GetParam());
  // A random alphabet size and skew per seed.
  const std::size_t alphabet = 2 + rng.NextUint64(254);
  ZipfDistribution dist(alphabet, 0.5 + rng.NextDouble() * 1.5);
  std::vector<std::uint8_t> input(1 + rng.NextUint64(30000));
  for (auto& b : input) b = static_cast<std::uint8_t>(dist(rng));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(HuffmanDecode(HuffmanEncode(input), out));
  ASSERT_EQ(out, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HuffmanSeedSweep, ::testing::Range(1, 17));

}  // namespace
}  // namespace rtsi::index
