// Tests of the simulated speech pipeline: phoneme inventory, lexicon/G2P,
// acoustic model, lattice decoder and the noisy transcriber.

#include <gtest/gtest.h>

#include <set>

#include "asr/acoustic_model.h"
#include "asr/decoder.h"
#include "asr/lattice.h"
#include "asr/lexicon.h"
#include "asr/phoneme.h"
#include "asr/transcriber.h"
#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/rng.h"

namespace rtsi::asr {
namespace {

TEST(PhonemeTest, InventoryHasDistinctNames) {
  std::set<std::string> names;
  for (int p = 0; p < PhonemeCount(); ++p) {
    names.insert(std::string(PhonemeName(static_cast<PhonemeId>(p))));
  }
  EXPECT_EQ(static_cast<int>(names.size()), PhonemeCount());
}

TEST(PhonemeTest, ReverseLookupRoundTrips) {
  for (int p = 0; p < PhonemeCount(); ++p) {
    const auto id = static_cast<PhonemeId>(p);
    EXPECT_EQ(PhonemeByName(PhonemeName(id)), id);
  }
  EXPECT_EQ(PhonemeByName("zz"), PhonemeCount());
}

TEST(PhonemeTest, SpecsHavePositiveDurations) {
  for (int p = 0; p < PhonemeCount(); ++p) {
    const auto& spec = PhonemeSpec(static_cast<PhonemeId>(p));
    EXPECT_GT(spec.duration_seconds, 0.0);
    EXPECT_GT(spec.formant1_hz, 0.0);
    EXPECT_LT(spec.formant2_hz, 8000.0);  // Below Nyquist at 16 kHz.
  }
}

TEST(LexiconTest, PronunciationIsDeterministic) {
  Lexicon lexicon;
  const auto a = lexicon.Pronounce("hello");
  const auto b = lexicon.Pronounce("hello");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(LexiconTest, DifferentWordsUsuallyDiffer) {
  Lexicon lexicon;
  EXPECT_NE(lexicon.Pronounce("cat"), lexicon.Pronounce("dog"));
  EXPECT_NE(lexicon.Pronounce("stream"), lexicon.Pronounce("audio"));
}

TEST(LexiconTest, DigraphsAreSinglePhones) {
  Lexicon lexicon;
  // "sh" maps to one phone, not s + h.
  EXPECT_EQ(lexicon.Pronounce("sh").size(), 1u);
  EXPECT_EQ(lexicon.Pronounce("ng").size(), 1u);
}

TEST(LexiconTest, EmptyOrUnknownWordStillPronounceable) {
  Lexicon lexicon;
  EXPECT_FALSE(lexicon.Pronounce("").empty());
  EXPECT_FALSE(lexicon.Pronounce("!!!").empty());
}

TEST(LexiconTest, ExplicitPronunciationOverridesG2p) {
  Lexicon lexicon;
  std::vector<PhonemeId> custom = {PhonemeByName("iy")};
  lexicon.AddPronunciation("xyz", custom);
  EXPECT_EQ(lexicon.Pronounce("xyz"), custom);
}

TEST(LexiconTest, EntriesSnapshotGrowsWithCache) {
  Lexicon lexicon;
  lexicon.Pronounce("one");
  lexicon.Pronounce("two");
  EXPECT_EQ(lexicon.Entries().size(), 2u);
}

TEST(LatticeTest, BestPathFollowsTopHypotheses) {
  PhoneticLattice lattice;
  for (int i = 0; i < 3; ++i) {
    LatticeSegment segment;
    segment.hypotheses.push_back({static_cast<PhonemeId>(i), 0.8});
    segment.hypotheses.push_back({static_cast<PhonemeId>(i + 5), 0.2});
    lattice.AddSegment(std::move(segment));
  }
  const auto path = lattice.BestPath();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 1);
  EXPECT_EQ(path[2], 2);
}

TEST(LatticeTest, UnitNamesJoinWithUnderscore) {
  const std::vector<PhonemeId> phones = {PhonemeByName("s"),
                                         PhonemeByName("iy")};
  EXPECT_EQ(UnitName(phones), "s_iy");
}

TEST(LatticeTest, ExtractUnitsGeneratesNgramsAndAlternatives) {
  PhoneticLattice lattice;
  for (int i = 0; i < 4; ++i) {
    LatticeSegment segment;
    segment.hypotheses.push_back({static_cast<PhonemeId>(i), 0.6});
    segment.hypotheses.push_back({static_cast<PhonemeId>(i + 10), 0.4});
    lattice.AddSegment(std::move(segment));
  }
  const auto bigrams = lattice.ExtractUnits(2, 0.3);
  // 3 best-path bigrams + 2 alternatives each = 9 units.
  EXPECT_EQ(bigrams.size(), 9u);

  // High alternative threshold removes the substituted variants.
  const auto strict = lattice.ExtractUnits(2, 0.9);
  EXPECT_EQ(strict.size(), 3u);
}

TEST(LatticeTest, TooShortLatticeYieldsNoUnits) {
  PhoneticLattice lattice;
  LatticeSegment segment;
  segment.hypotheses.push_back({0, 1.0});
  lattice.AddSegment(std::move(segment));
  EXPECT_TRUE(lattice.ExtractUnits(3, 0.2).empty());
}

class AcousticFixture : public ::testing::Test {
 protected:
  AcousticFixture()
      : extractor_(audio::MfccConfig{}), model_(extractor_) {}

  audio::MfccExtractor extractor_;
  AcousticModel model_;
};

TEST_F(AcousticFixture, PrototypesExistForEveryPhone) {
  EXPECT_EQ(model_.prototypes().size(),
            static_cast<std::size_t>(PhonemeCount()));
}

TEST_F(AcousticFixture, ClassifiesCleanVowelsCorrectly) {
  audio::SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.0;
  const audio::Synthesizer synth(synth_config);
  Rng rng(11);

  // Pure vowels have deterministic spectra; the model must recover them.
  for (const char* name : {"iy", "aa", "uw", "eh"}) {
    const PhonemeId phone = PhonemeByName(name);
    audio::PhoneSpec spec = PhonemeSpec(phone);
    spec.duration_seconds = 0.2;
    const auto frames = extractor_.Extract(synth.Render({spec}, rng));
    ASSERT_GT(frames.size(), 4u);
    const auto& mid = frames[frames.size() / 2];
    EXPECT_EQ(model_.BestPhone(mid), phone) << name;
  }
}

TEST_F(AcousticFixture, PosteriorsAreNormalized) {
  audio::MfccFrame frame(13, 0.5);
  const auto scored = model_.Classify(frame);
  ASSERT_EQ(scored.size(), static_cast<std::size_t>(PhonemeCount()));
  double total = 0.0;
  for (const auto& s : scored) total += s.posterior;
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t i = 1; i < scored.size(); ++i) {
    EXPECT_LE(scored[i].posterior, scored[i - 1].posterior);
  }
}

TEST_F(AcousticFixture, DecoderRecoversVowelSequence) {
  audio::SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.0;
  const audio::Synthesizer synth(synth_config);
  Rng rng(13);

  const std::vector<const char*> names = {"iy", "aa", "uw"};
  std::vector<audio::PhoneSpec> specs;
  std::vector<PhonemeId> truth;
  for (const char* name : names) {
    const PhonemeId phone = PhonemeByName(name);
    audio::PhoneSpec spec = PhonemeSpec(phone);
    spec.duration_seconds = 0.15;
    specs.push_back(spec);
    truth.push_back(phone);
  }
  const audio::PcmBuffer pcm = synth.Render(specs, rng);

  DecoderConfig decoder_config;
  const LatticeDecoder decoder(&extractor_, &model_, decoder_config);
  const PhoneticLattice lattice = decoder.Decode(pcm);
  const auto path = lattice.BestPath();

  // The decoded path must contain the true phones in order (transition
  // segments may insert extras).
  std::size_t truth_pos = 0;
  for (const PhonemeId phone : path) {
    if (truth_pos < truth.size() && phone == truth[truth_pos]) ++truth_pos;
  }
  EXPECT_EQ(truth_pos, truth.size())
      << "decoded path missed phones of the true sequence";
}

TEST(TranscriberTest, ZeroErrorRateIsIdentity) {
  TranscriberConfig config;
  config.word_error_rate = 0.0;
  Transcriber transcriber(config, [](Rng&) { return std::string("x"); });
  Rng rng(1);
  const std::vector<std::string> truth = {"live", "audio", "search"};
  EXPECT_EQ(transcriber.Transcribe(truth, rng), truth);
}

TEST(TranscriberTest, ErrorRateRoughlyHonored) {
  TranscriberConfig config;
  config.word_error_rate = 0.2;
  config.substitution_share = 1.0;  // Only substitutions: length preserved.
  config.deletion_share = 0.0;
  Transcriber transcriber(config,
                          [](Rng&) { return std::string("<sub>"); });
  Rng rng(2);
  std::vector<std::string> truth(10000, "word");
  const auto out = transcriber.Transcribe(truth, rng);
  ASSERT_EQ(out.size(), truth.size());
  int errors = 0;
  for (const auto& w : out) {
    if (w == "<sub>") ++errors;
  }
  EXPECT_NEAR(errors / 10000.0, 0.2, 0.02);
}

TEST(TranscriberTest, DeletionsShortenOutput) {
  TranscriberConfig config;
  config.word_error_rate = 0.5;
  config.substitution_share = 0.0;
  config.deletion_share = 1.0;
  Transcriber transcriber(config, [](Rng&) { return std::string("x"); });
  Rng rng(3);
  std::vector<std::string> truth(1000, "w");
  const auto out = transcriber.Transcribe(truth, rng);
  EXPECT_LT(out.size(), truth.size());
  EXPECT_NEAR(out.size(), 500.0, 60.0);
}

TEST(TranscriberTest, InsertionsLengthenOutput) {
  TranscriberConfig config;
  config.word_error_rate = 0.5;
  config.substitution_share = 0.0;
  config.deletion_share = 0.0;  // All errors are insertions.
  Transcriber transcriber(config, [](Rng&) { return std::string("x"); });
  Rng rng(4);
  std::vector<std::string> truth(1000, "w");
  const auto out = transcriber.Transcribe(truth, rng);
  EXPECT_GT(out.size(), truth.size());
}

}  // namespace
}  // namespace rtsi::asr
