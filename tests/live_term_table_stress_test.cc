// Concurrency stress for the LiveTermTable locking protocol.
//
// The table keeps two disjoint lock families (term shards, stream shards)
// and an invariant — every counter creation is followed by a stream-side
// registration — that RemoveStream's loop-until-stable sweep relies on.
// These tests hammer Add/AddWindow/RemoveStream/ForEachStreamOfTerm from
// many threads; they are in the `concurrency` ctest label, so
// tools/run_sanitizers.sh runs them under TSan, which is what actually
// certifies the protocol (the original nested term->stream acquisition in
// Add() and the single-pass RemoveStream both predate this suite).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "index/live_term_table.h"

namespace rtsi::index {
namespace {

constexpr StreamId kStreams = 5;
constexpr TermId kTerms = 11;

TEST(LiveTermTableStressTest, MixedOperationsHammer) {
  LiveTermTable table;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  // Single-entry adders.
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&table, t] {
      for (int i = 0; i < 4000; ++i) {
        table.Add(static_cast<StreamId>((i + t) % kStreams),
                  static_cast<TermId>(i % kTerms), 1);
      }
    });
  }
  // Window adders, with tf == 0 entries mixed in.
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&table, t] {
      std::vector<TermCount> window;
      for (int i = 0; i < 2000; ++i) {
        window.clear();
        window.push_back({static_cast<TermId>(i % kTerms), 1});
        window.push_back({static_cast<TermId>((i + 3) % kTerms), 0});
        window.push_back({static_cast<TermId>((i + 5) % kTerms), 2});
        table.AddWindow(static_cast<StreamId>((i + t) % kStreams), window);
      }
    });
  }
  // Removers racing the inserts (the consolidation path).
  std::thread remover([&table, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (StreamId s = 0; s < kStreams; ++s) table.RemoveStream(s);
    }
  });
  // Readers: the query pre-scan and the membership check.
  std::thread reader([&table, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      TermFreq sum = 0;
      for (TermId t = 0; t < kTerms; ++t) {
        table.ForEachStreamOfTerm(
            t, [&sum](StreamId, TermFreq total) { sum += total; });
      }
      for (StreamId s = 0; s < kStreams; ++s) {
        (void)table.ContainsStream(s);
      }
      (void)table.GetMaxTotal(0);
      (void)sum;
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  remover.join();
  reader.join();

  // Quiesced: one RemoveStream per stream must fully reclaim — no orphan
  // counters, no stale registrations left behind by the races above.
  for (StreamId s = 0; s < kStreams; ++s) table.RemoveStream(s);
  EXPECT_EQ(table.num_entries(), 0u);
  EXPECT_EQ(table.num_streams(), 0u);
}

TEST(LiveTermTableStressTest, RemoveInsertInterleavingLeavesNoOrphans) {
  // Regression for the single-pass RemoveStream: an insert landing after
  // the stream's term list was swapped out used to leave an orphan
  // (term -> stream) counter that no later removal would visit. The loop
  // version re-sweeps until the stream entry stays gone, so after the
  // race quiesces ONE RemoveStream leaves zero entries.
  LiveTermTable table;
  constexpr StreamId kVictim = 7;
  for (int round = 0; round < 100; ++round) {
    std::thread inserter([&table, round] {
      std::vector<TermCount> window;
      for (int i = 0; i < 60; ++i) {
        if (i % 2 == 0) {
          table.Add(kVictim, static_cast<TermId>(i % 7), 1);
        } else {
          window.assign(1, {static_cast<TermId>((i + round) % 7), 2});
          table.AddWindow(kVictim, window);
        }
      }
    });
    std::thread remover([&table] {
      for (int i = 0; i < 60; ++i) table.RemoveStream(kVictim);
    });
    inserter.join();
    remover.join();
    table.RemoveStream(kVictim);
    ASSERT_EQ(table.num_entries(), 0u) << "round " << round;
    ASSERT_EQ(table.num_streams(), 0u) << "round " << round;
    ASSERT_FALSE(table.ContainsStream(kVictim)) << "round " << round;
  }
  // The monotone bound survived all removals.
  EXPECT_GE(table.GetMaxTotal(0), 1u);
}

TEST(LiveTermTableStressTest, ConcurrentWindowsKeepTotalsExact) {
  // Totals must be exact under concurrency (no lost updates): every
  // thread adds the same term mass, the final totals add up.
  LiveTermTable table;
  constexpr int kThreads = 8;
  constexpr int kWindows = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table] {
      std::vector<TermCount> window{{3, 1}, {4, 2}};
      for (int i = 0; i < kWindows; ++i) {
        table.AddWindow(static_cast<StreamId>(i % 3), window);
      }
    });
  }
  for (auto& th : threads) th.join();
  TermFreq total3 = 0;
  TermFreq total4 = 0;
  for (StreamId s = 0; s < 3; ++s) {
    total3 += table.GetTotal(s, 3);
    total4 += table.GetTotal(s, 4);
  }
  EXPECT_EQ(total3, static_cast<TermFreq>(kThreads * kWindows));
  EXPECT_EQ(total4, static_cast<TermFreq>(kThreads * kWindows * 2));
  // GetMaxTotal is an upper bound on any per-stream total ever observed.
  EXPECT_GE(table.GetMaxTotal(3), total3 / 3);
  EXPECT_GE(table.GetMaxTotal(4), total4 / 3);
}

}  // namespace
}  // namespace rtsi::index
