// Scatter-gather soundness: an IndexShardSet must return BIT-IDENTICAL
// results to a single unsharded index over the same streams — same
// streams, same order, same double scores — because every stream lives in
// exactly one shard, scores are computed from the corpus-global
// SharedScoringState, and the merge applies the same (score desc, stream
// asc) total order as every other query path (DESIGN.md §6i).
//
// The concurrent variant runs ingest, window seals and merge cascades on
// all shards while queries scatter-gather across them, then quiesces and
// checks the final state against a sequentially built single-shard
// oracle. Run under TSan via the sanitizer ctest label.

#include "shard/shard_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rtsi_index.h"

namespace rtsi::shard {
namespace {

constexpr TermId kVocab = 10;
constexpr StreamId kNumStreams = 40;
constexpr Timestamp kQueryTime = 1'000'000'000'000LL;

core::RtsiConfig SmallConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 200;  // Frequent seals → multi-component queries.
  return config;
}

struct Op {
  enum class Kind { kInsert, kFinish, kDelete, kPop } kind = Kind::kInsert;
  StreamId stream = 0;
  Timestamp now = 0;
  std::vector<core::TermCount> terms;
  std::uint64_t delta = 0;
  bool live = true;
};

// A deterministic mutation workload: inserts with overlapping vocab,
// popularity updates, finishes and one delete. Stream ids are never
// reused after their finish/delete (the live-streaming model: one id per
// broadcast) — that is the precondition for cross-shard-count
// bit-identity, because the df first-occurrence dedup forgets reclaimed
// streams on a merge-timing-dependent schedule (DESIGN.md §6i).
std::vector<Op> MakeWorkload(int n) {
  std::vector<Op> ops;
  Timestamp now = 0;
  for (int i = 0; i < n; ++i) {
    now += kMicrosPerSecond;
    Op op;
    if (i % 13 == 9) {
      op.kind = Op::Kind::kPop;
      op.stream = static_cast<StreamId>(i % 32);
      op.delta = 5 + i % 17;
    } else if (i == 60 || i == 75 || i == 105) {
      op.kind = Op::Kind::kFinish;
      op.stream = static_cast<StreamId>(32 + (i - 60) / 15);
    } else if (i == 90) {
      op.kind = Op::Kind::kDelete;
      op.stream = 36;
    } else {
      op.kind = Op::Kind::kInsert;
      // Streams 32..36 broadcast only during the first 55 ops, then get
      // finished/deleted above; streams 0..31 broadcast throughout.
      op.stream = (i < 55 && i % 5 == 3)
                      ? static_cast<StreamId>(32 + (i / 5) % 5)
                      : static_cast<StreamId>(i % 32);
      op.now = now;
      op.terms = {{static_cast<TermId>(i % kVocab),
                   static_cast<TermFreq>(1 + i % 4)},
                  {static_cast<TermId>((i + 3) % kVocab), 2},
                  {static_cast<TermId>((i + 7) % kVocab), 1}};
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void Apply(core::SearchIndex& index, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kInsert:
      index.InsertWindow(op.stream, op.now, op.terms, op.live);
      break;
    case Op::Kind::kFinish:
      index.FinishStream(op.stream);
      break;
    case Op::Kind::kDelete:
      index.DeleteStream(op.stream);
      break;
    case Op::Kind::kPop:
      index.UpdatePopularity(op.stream, op.delta);
      break;
  }
}

/// Bitwise comparison: stream order AND exact double scores must match.
void ExpectIdentical(const std::vector<core::ScoredStream>& got,
                     const std::vector<core::ScoredStream>& want,
                     const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream, want[i].stream) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

/// Every single term, plus adjacent pairs and triples, at several k.
void CompareAllProbes(IndexShardSet& sharded, IndexShardSet& oracle) {
  for (TermId t = 0; t < kVocab; ++t) {
    for (const int k : {1, 3, static_cast<int>(kNumStreams) + 5}) {
      ExpectIdentical(
          sharded.Query({t}, k, kQueryTime),
          oracle.Query({t}, k, kQueryTime),
          "term " + std::to_string(t) + " k=" + std::to_string(k));
    }
    ExpectIdentical(
        sharded.Query({t, static_cast<TermId>((t + 1) % kVocab)}, 10,
                      kQueryTime),
        oracle.Query({t, static_cast<TermId>((t + 1) % kVocab)}, 10,
                     kQueryTime),
        "pair " + std::to_string(t));
    core::QueryFilter live_only;
    live_only.live_only = true;
    ExpectIdentical(
        sharded.QueryFiltered({t}, 10, kQueryTime, live_only),
        oracle.QueryFiltered({t}, 10, kQueryTime, live_only),
        "live-only term " + std::to_string(t));
  }
  ExpectIdentical(sharded.Query({0, 3, 6}, 15, kQueryTime),
                  oracle.Query({0, 3, 6}, 15, kQueryTime), "triple 0,3,6");
}

TEST(ShardForStreamTest, SpreadsSequentialIdsAcrossShards) {
  const int kShards = 4;
  std::vector<int> counts(kShards, 0);
  for (StreamId s = 0; s < 10000; ++s) {
    const int shard = ShardForStream(s, kShards);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, kShards);
    ++counts[shard];
  }
  // Sequential ids must not pile onto one shard: each within 2x of fair.
  for (const int count : counts) {
    EXPECT_GT(count, 10000 / kShards / 2);
    EXPECT_LT(count, 10000 / kShards * 2);
  }
  // Stable: the same id always routes to the same shard.
  EXPECT_EQ(ShardForStream(12345, kShards), ShardForStream(12345, kShards));
  // One shard degenerates to the identity routing.
  EXPECT_EQ(ShardForStream(12345, 1), 0);
}

TEST(ShardDeterminismTest, ScatterGatherBitIdenticalToSingleShard) {
  const std::vector<Op> ops = MakeWorkload(240);

  ShardSetConfig single;
  single.index = SmallConfig();
  single.num_shards = 1;
  IndexShardSet oracle(single);
  for (const Op& op : ops) Apply(oracle, op);

  for (const int num_shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(num_shards));
    ShardSetConfig config;
    config.index = SmallConfig();
    config.num_shards = num_shards;
    IndexShardSet sharded(config);
    for (const Op& op : ops) Apply(sharded, op);
    CompareAllProbes(sharded, oracle);
  }
}

TEST(ShardDeterminismTest, SharedScoringAggregatesMatchOracle) {
  const std::vector<Op> ops = MakeWorkload(180);

  ShardSetConfig single;
  single.index = SmallConfig();
  single.num_shards = 1;
  IndexShardSet oracle(single);
  for (const Op& op : ops) Apply(oracle, op);

  ShardSetConfig config;
  config.index = SmallConfig();
  config.num_shards = 3;
  IndexShardSet sharded(config);
  for (const Op& op : ops) Apply(sharded, op);

  const core::SharedScoringState& shared = sharded.shared_scoring();
  const core::RtsiIndex& reference = oracle.shard_index(0);
  EXPECT_EQ(shared.df.num_documents(),
            reference.doc_freq().num_documents());
  for (TermId t = 0; t < kVocab; ++t) {
    EXPECT_EQ(shared.df.Idf(t), reference.doc_freq().Idf(t))
        << "idf diverged for term " << t;
  }
  EXPECT_EQ(shared.max_pop.load(),
            reference.stream_table().max_pop_count());
}

TEST(ShardDeterminismTest, AdoptedShardsRebuildSharedScoring) {
  // The adopt constructor (snapshot-restore path) must rebuild the
  // aggregate from the adopted tables, not start from zero.
  const std::vector<Op> ops = MakeWorkload(120);
  auto index = std::make_unique<core::RtsiIndex>(SmallConfig());
  for (const Op& op : ops) Apply(*index, op);
  const std::uint64_t documents = index->doc_freq().num_documents();
  const std::uint64_t max_pop = index->stream_table().max_pop_count();
  ASSERT_GT(documents, 0u);
  ASSERT_GT(max_pop, 0u);

  ShardSetConfig config;
  config.index = SmallConfig();
  std::vector<std::unique_ptr<core::RtsiIndex>> shards;
  shards.push_back(std::move(index));
  IndexShardSet adopted(config, std::move(shards));
  EXPECT_EQ(adopted.num_shards(), 1);
  EXPECT_EQ(adopted.shared_scoring().df.num_documents(), documents);
  EXPECT_EQ(adopted.shared_scoring().max_pop.load(), max_pop);
}

// The TSan target: concurrent per-thread ingest (disjoint stream sets, so
// cross-thread op interleavings commute), seals and async merge cascades
// on every shard, scatter-gather queries racing all of it. After
// quiescing, the sharded state must be bit-identical to a single-shard
// oracle built sequentially.
TEST(ShardDeterminismTest, ConcurrentIngestSealsCascadesStayIdentical) {
  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 160;

  core::RtsiConfig concurrent_config = SmallConfig();
  concurrent_config.lsm.delta = 120;  // Seal + cascade under the race.
  concurrent_config.async_merge = true;

  // Per-writer deterministic op streams over disjoint stream ids
  // (stream ≡ w mod kWriters, so no two writers ever share a stream and
  // cross-writer interleavings commute). Streams that get finished stop
  // receiving inserts beforehand — see MakeWorkload on why.
  const auto writer_ops = [&](int w) {
    std::vector<Op> ops;
    Timestamp now = 0;
    for (int i = 0; i < kOpsPerWriter; ++i) {
      now += kMicrosPerSecond;
      Op op;
      if (i % 11 == 7) {
        op.kind = Op::Kind::kPop;
        op.stream = static_cast<StreamId>(kWriters * (i % 8) + w);
        op.delta = 2 + i % 9;
      } else if (i == 100 || i == 120 || i == 140) {
        // Retire streams 8..10 of this writer's partition; their inserts
        // all happened before op 90.
        op.kind = Op::Kind::kFinish;
        op.stream =
            static_cast<StreamId>(kWriters * (8 + (i - 100) / 20) + w);
      } else {
        op.kind = Op::Kind::kInsert;
        op.stream = (i < 90 && i % 7 == 3)
                        ? static_cast<StreamId>(kWriters * (8 + i % 3) + w)
                        : static_cast<StreamId>(kWriters * (i % 8) + w);
        op.now = now;
        op.terms = {{static_cast<TermId>((w + i) % kVocab),
                     static_cast<TermFreq>(1 + i % 3)},
                    {static_cast<TermId>((w + i + 5) % kVocab), 1}};
      }
      ops.push_back(std::move(op));
    }
    return ops;
  };

  ShardSetConfig config;
  config.index = concurrent_config;
  config.num_shards = 4;
  config.scatter_threads = 2;
  IndexShardSet sharded(config);

  std::atomic<bool> stop{false};
  std::thread querier([&] {
    TermId t = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto results =
          sharded.Query({t, static_cast<TermId>((t + 2) % kVocab)}, 8,
                        kQueryTime);
      ASSERT_LE(results.size(), 8u);
      for (std::size_t i = 1; i < results.size(); ++i) {
        ASSERT_LE(results[i].score, results[i - 1].score);
      }
      t = static_cast<TermId>((t + 1) % kVocab);
    }
  });
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int s = 0; s < sharded.num_shards(); ++s) {
        const auto stats = sharded.GetShardStats(s);
        ASSERT_GE(stats.memory_bytes, 0u);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (const Op& op : writer_ops(w)) Apply(sharded, op);
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  querier.join();
  observer.join();
  sharded.WaitForMerges();

  // Sequential oracle: same ops, writer-major order. Per-stream op order
  // is preserved (each stream belongs to one writer) and cross-stream
  // operations commute, so any interleaving reaches this exact state.
  ShardSetConfig single;
  single.index = SmallConfig();
  single.num_shards = 1;
  IndexShardSet oracle(single);
  for (int w = 0; w < kWriters; ++w) {
    for (const Op& op : writer_ops(w)) Apply(oracle, op);
  }
  CompareAllProbes(sharded, oracle);
}

TEST(ShardDeterminismTest, DurableShardsSurviveCheckpointAndReopen) {
  const char* kDir = "/tmp/rtsi_shard_determinism_test";
  std::remove((std::string(kDir) + "/shard-0/index.snap").c_str());
  std::remove((std::string(kDir) + "/shard-0/index.journal").c_str());
  std::remove((std::string(kDir) + "/shard-1/index.snap").c_str());
  std::remove((std::string(kDir) + "/shard-1/index.journal").c_str());

  const std::vector<Op> ops = MakeWorkload(150);
  ShardSetConfig config;
  config.index = SmallConfig();
  config.num_shards = 2;
  config.durable_dir = kDir;
  {
    auto opened = IndexShardSet::Open(config);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    IndexShardSet& set = *opened.value();
    EXPECT_TRUE(set.durable());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      Apply(set, ops[i]);
      if (i == 70) {
        ASSERT_TRUE(set.Checkpoint().ok());
      }
    }
  }

  ShardSetConfig single;
  single.index = SmallConfig();
  single.num_shards = 1;
  IndexShardSet oracle(single);
  for (const Op& op : ops) Apply(oracle, op);

  std::vector<storage::RecoveryStats> recovery;
  auto reopened = IndexShardSet::Open(config, &recovery);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ASSERT_EQ(recovery.size(), 2u);
  CompareAllProbes(*reopened.value(), oracle);
  for (int s = 0; s < 2; ++s) {
    const auto stats = reopened.value()->GetShardStats(s);
    EXPECT_FALSE(stats.degraded);
    EXPECT_GT(stats.streams, 0u);
  }
}

}  // namespace
}  // namespace rtsi::shard
