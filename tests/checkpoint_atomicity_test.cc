// Checkpoint atomicity: a crash at ANY fault point inside Checkpoint()
// — mid-snapshot-write, after the temporary is written but before the
// rename, after the rename but before the covered journals are unlinked,
// and at every rotation step — must leave either the old snapshot plus a
// replayable journal or the new snapshot. Reopening must recover every
// acknowledged operation, under both power-loss models (directory ops
// kept or rolled back) and with torn unsynced tails.

#include "storage/journal.h"

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/rtsi_index.h"
#include "storage/fault_injection.h"
#include "storage/fs.h"
#include "workload/trace.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using workload::TraceOp;

const char* kDir = "/tmp/rtsi_checkpoint_atomicity_test";

std::string SnapPath() { return std::string(kDir) + "/index.snap"; }
std::string JournalPath() { return std::string(kDir) + "/index.journal"; }

void CleanDir() {
  ::mkdir(kDir, 0755);
  DIR* dir = ::opendir(kDir);
  if (dir == nullptr) return;
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  for (const std::string& name : names) {
    std::remove((std::string(kDir) + "/" + name).c_str());
  }
}

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.num_l0_shards = 2;
  return config;
}

constexpr TermId kVocab = 6;
constexpr StreamId kNumStreams = 6;
constexpr int kPreOps = 18;

std::vector<TraceOp> MakeWorkload(int n) {
  std::vector<TraceOp> ops;
  Timestamp now = 0;
  for (int i = 0; i < n; ++i) {
    now += kMicrosPerSecond;
    TraceOp op;
    if (i % 7 == 6) {
      op.kind = TraceOp::Kind::kUpdate;
      op.stream = static_cast<StreamId>(i % kNumStreams);
      op.delta = 2 + i % 4;
    } else {
      op.kind = TraceOp::Kind::kInsert;
      op.stream = static_cast<StreamId>(i % kNumStreams);
      op.now = now;
      op.live = true;
      op.terms = {{static_cast<TermId>(i % kVocab),
                   static_cast<TermFreq>(1 + i % 2)},
                  {static_cast<TermId>((i + 2) % kVocab), 1}};
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void ApplyOp(core::SearchIndex& index, const TraceOp& op) {
  switch (op.kind) {
    case TraceOp::Kind::kInsert:
      index.InsertWindow(op.stream, op.now, op.terms, op.live);
      break;
    case TraceOp::Kind::kUpdate:
      index.UpdatePopularity(op.stream, op.delta);
      break;
    default:
      break;
  }
}

using Probe = std::vector<std::vector<std::pair<StreamId, double>>>;

Probe ProbeIndex(core::SearchIndex& index) {
  Probe probe(kVocab);
  for (TermId t = 0; t < kVocab; ++t) {
    for (const auto& r :
         index.Query({t}, 2 * static_cast<int>(kNumStreams),
                     1'000'000'000'000LL)) {
      probe[t].emplace_back(r.stream, r.score);
    }
    std::sort(probe[t].begin(), probe[t].end());
  }
  return probe;
}

bool SameProbe(const Probe& a, const Probe& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].size() != b[t].size()) return false;
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      if (a[t][i].first != b[t][i].first) return false;
      if (std::fabs(a[t][i].second - b[t][i].second) > 1e-9) return false;
    }
  }
  return true;
}

// Counts the fault points consumed by one Checkpoint() call (the op
// counter is reset right before it via ClearSchedule).
std::uint64_t CountCheckpointFaultPoints(const std::vector<TraceOp>& ops) {
  auto& fi = FaultInjection::Instance();
  CleanDir();
  fi.Enable();
  std::uint64_t points = 0;
  {
    auto opened = DurableIndex::Open(SmallConfig(), SnapPath(),
                                     JournalPath(), true);
    EXPECT_TRUE(opened.ok());
    for (const TraceOp& op : ops) ApplyOp(*opened.value(), op);
    fi.ClearSchedule();
    EXPECT_TRUE(opened.value()->Checkpoint().ok());
    points = fi.ops_seen();
  }
  fi.Disable();
  return points;
}

TEST(CheckpointAtomicityTest, CrashAtEveryPointInsideCheckpoint) {
  const std::vector<TraceOp> ops = MakeWorkload(kPreOps);

  Probe expected;
  {
    core::RtsiIndex reference(SmallConfig());
    for (const TraceOp& op : ops) ApplyOp(reference, op);
    expected = ProbeIndex(reference);
  }

  const std::uint64_t checkpoint_points = CountCheckpointFaultPoints(ops);
  // Rotation alone is sync + rename + header write + header sync +
  // dir fsync; the snapshot adds many writes plus its commit sequence.
  ASSERT_GT(checkpoint_points, 8u);

  auto& fi = FaultInjection::Instance();
  for (int undo = 0; undo <= 1; ++undo) {
    for (std::uint64_t point = 0; point < checkpoint_points; ++point) {
      SCOPED_TRACE("crash at checkpoint fault point " +
                   std::to_string(point) + "/" +
                   std::to_string(checkpoint_points) +
                   (undo ? " with dir ops rolled back" : ""));
      CleanDir();
      fi.Enable();
      {
        auto opened = DurableIndex::Open(SmallConfig(), SnapPath(),
                                         JournalPath(), true);
        ASSERT_TRUE(opened.ok());
        auto& index = *opened.value();
        for (const TraceOp& op : ops) ApplyOp(index, op);
        ASSERT_FALSE(index.degraded());

        fi.ClearSchedule();
        fi.ArmFaultAt(point, /*crash=*/true);
        (void)index.Checkpoint();
        // Whatever the checkpoint outcome, a mutation issued after the
        // crash must never be acknowledged (appends can't reach disk).
        index.UpdatePopularity(0, 1);
        EXPECT_TRUE(index.degraded());
      }
      FaultInjection::CrashOptions crash;
      crash.undo_unsynced_dir_ops = undo == 1;
      crash.keep_unsynced_tail_bytes = (point % 2 == 0) ? 5 : 0;
      fi.SimulateCrash(crash);
      fi.Disable();

      RecoveryStats stats;
      auto reopened = DurableIndex::Open(SmallConfig(), SnapPath(),
                                         JournalPath(), true, &stats);
      ASSERT_TRUE(reopened.ok())
          << "no valid snapshot or replayable journal after crash: "
          << reopened.status().ToString();
      EXPECT_TRUE(SameProbe(ProbeIndex(*reopened.value()), expected))
          << "acknowledged pre-checkpoint operations were lost";
    }
  }
  CleanDir();
}

// A crashed checkpoint must not poison FUTURE checkpoints: recovery plus
// a successful checkpoint afterwards retires every stale file.
TEST(CheckpointAtomicityTest, RecoveredIndexCheckpointsCleanly) {
  const std::vector<TraceOp> ops = MakeWorkload(kPreOps);
  const std::uint64_t checkpoint_points = CountCheckpointFaultPoints(ops);
  auto& fi = FaultInjection::Instance();

  // A spread of early / middle / late crash points.
  const std::uint64_t picks[] = {0, 1, checkpoint_points / 2,
                                 checkpoint_points - 2,
                                 checkpoint_points - 1};
  for (const std::uint64_t point : picks) {
    SCOPED_TRACE("crash at checkpoint fault point " + std::to_string(point));
    CleanDir();
    fi.Enable();
    {
      auto opened = DurableIndex::Open(SmallConfig(), SnapPath(),
                                       JournalPath(), true);
      ASSERT_TRUE(opened.ok());
      for (const TraceOp& op : ops) ApplyOp(*opened.value(), op);
      fi.ClearSchedule();
      fi.ArmFaultAt(point, /*crash=*/true);
      (void)opened.value()->Checkpoint();
    }
    fi.SimulateCrash(FaultInjection::CrashOptions{});
    fi.Disable();

    auto reopened = DurableIndex::Open(SmallConfig(), SnapPath(),
                                       JournalPath(), true);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ASSERT_TRUE(reopened.value()->Checkpoint().ok());
    reopened.value()->InsertWindow(100, 99 * kMicrosPerSecond,
                                   {{0, 1}}, true);
    ASSERT_FALSE(reopened.value()->degraded());
    const Probe before = ProbeIndex(*reopened.value());
    reopened.value().reset();  // Close the journal before reopening.

    // After a clean checkpoint no rotated journals may linger, and one
    // more reopen sees the same state.
    auto again = DurableIndex::Open(SmallConfig(), SnapPath(),
                                    JournalPath(), true);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(SameProbe(ProbeIndex(*again.value()), before));
  }
  CleanDir();
}

}  // namespace
}  // namespace rtsi::storage
