#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace rtsi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, NextUint64CoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
  }
}

}  // namespace
}  // namespace rtsi
