// Query explanation: decompositions sum to the score, sources are
// attributed correctly, and prune decisions are visible.

#include <gtest/gtest.h>

#include "core/rtsi_index.h"

namespace rtsi::core {
namespace {

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 100;
  config.lsm.num_l0_shards = 4;
  return config;
}

TEST(ExplainTest, BreakdownSumsToScore) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, {{10, 3}, {11, 1}}, true);
  index.InsertWindow(2, 2000, {{10, 1}}, true);
  index.UpdatePopularity(1, 100);

  const auto explanation = index.ExplainQuery({10, 11}, 5, 3000);
  ASSERT_EQ(explanation.results.size(), 2u);
  const auto& weights = index.config().weights;
  for (const auto& r : explanation.results) {
    const double reconstructed = weights.pop * r.pop_score +
                                 weights.rel * r.rel_score +
                                 weights.frsh * r.frsh_score;
    EXPECT_NEAR(reconstructed, r.total, 1e-12);
  }
  // Results must match the plain query.
  const auto results = index.Query({10, 11}, 5, 3000);
  ASSERT_EQ(results.size(), explanation.results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stream, explanation.results[i].stream);
    EXPECT_NEAR(results[i].score, explanation.results[i].total, 1e-12);
  }
}

TEST(ExplainTest, RecordsTermFrequencies) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, {{10, 3}}, true);
  index.InsertWindow(1, 2000, {{10, 4}, {11, 2}}, true);

  const auto explanation = index.ExplainQuery({10, 11}, 5, 3000);
  ASSERT_EQ(explanation.results.size(), 1u);
  ASSERT_EQ(explanation.results[0].term_tfs.size(), 2u);
  EXPECT_EQ(explanation.results[0].term_tfs[0], 7u);  // 3 + 4.
  EXPECT_EQ(explanation.results[0].term_tfs[1], 2u);
}

TEST(ExplainTest, AttributesSourcesCorrectly) {
  RtsiIndex index(SmallConfig());
  // Live stream: found via the live table.
  index.InsertWindow(1, 1000, {{10, 2}}, true);
  const auto live_explanation = index.ExplainQuery({10}, 5, 2000);
  ASSERT_EQ(live_explanation.results.size(), 1u);
  EXPECT_EQ(live_explanation.results[0].source,
            ScoreBreakdown::Source::kLiveTable);
  EXPECT_GE(live_explanation.live_table_candidates, 1u);

  // Finished, unmerged stream: still covered by the live-term table (the
  // consolidation invariant keeps it there until a merge seals it), so it
  // is found in phase 1 as well.
  RtsiIndex index2(SmallConfig());
  index2.InsertWindow(2, 1000, {{10, 2}}, false);
  index2.FinishStream(2);
  const auto l0_explanation = index2.ExplainQuery({10}, 5, 2000);
  ASSERT_EQ(l0_explanation.results.size(), 1u);
  EXPECT_EQ(l0_explanation.results[0].source,
            ScoreBreakdown::Source::kLiveTable);
}

TEST(ExplainTest, SealedComponentsAndPruningVisible) {
  auto config = SmallConfig();
  config.lsm.delta = 60;
  RtsiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 300; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond,
                       {{static_cast<TermId>(s % 10), 2}}, false);
    index.FinishStream(s);
  }
  // Large k: the heap cannot fill early, so every component is visited
  // and sealed candidates appear in the results.
  const auto full_explanation = index.ExplainQuery({3}, 100, t);
  EXPECT_FALSE(full_explanation.components.empty());
  bool any_visited = false;
  for (const auto& component : full_explanation.components) {
    EXPECT_GT(component.upper_bound, 0.0);
    EXPECT_GT(component.num_postings, 0u);
    any_visited = any_visited || component.visited;
  }
  EXPECT_TRUE(any_visited);
  bool any_sealed = false;
  for (const auto& r : full_explanation.results) {
    any_sealed = any_sealed ||
                 r.source == ScoreBreakdown::Source::kSealedComponent;
  }
  EXPECT_TRUE(any_sealed);

  // Small k: the freshest (L0 / live-table) candidates dominate and the
  // bound prunes sealed components — visible as visited=false entries.
  const auto pruned_explanation = index.ExplainQuery({3}, 2, t);
  bool any_pruned = false;
  for (const auto& component : pruned_explanation.components) {
    any_pruned = any_pruned || !component.visited;
  }
  EXPECT_TRUE(any_pruned);
}

TEST(ExplainTest, ToStringMentionsKeyFacts) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, {{10, 2}}, true);
  const auto explanation = index.ExplainQuery({10}, 3, 2000);
  const std::string text = explanation.ToString();
  EXPECT_NE(text.find("query terms"), std::string::npos);
  EXPECT_NE(text.find("stream 1"), std::string::npos);
  EXPECT_NE(text.find("live-table"), std::string::npos);
}

TEST(ExplainTest, EmptyQueryExplains) {
  RtsiIndex index(SmallConfig());
  const auto explanation = index.ExplainQuery({}, 5, 100);
  EXPECT_TRUE(explanation.results.empty());
  EXPECT_FALSE(explanation.ToString().empty());
}

}  // namespace
}  // namespace rtsi::core
