#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>

namespace rtsi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kOutOfRange, StatusCode::kInternal,
        StatusCode::kUnimplemented}) {
    EXPECT_NE(StatusCodeName(code), nullptr);
    EXPECT_GT(std::string(StatusCodeName(code)).size(), 0u);
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> result(std::string("abc"));
  result.value() += "def";
  EXPECT_EQ(result.value(), "abcdef");
}

}  // namespace
}  // namespace rtsi
