// Extended-LSII baseline behaviour, plus result equivalence with RTSI:
// both indices implement the same scoring model, so on workloads where
// LSII's bound is exact (single-window streams: postings never span
// components) their top-k output must coincide.

#include "baseline/lsii_index.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/rtsi_index.h"

namespace rtsi::baseline {
namespace {

using core::RtsiConfig;
using core::TermCount;

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 150;
  config.lsm.rho = 2.0;
  config.lsm.num_l0_shards = 4;
  return config;
}

std::vector<TermCount> Terms(
    std::initializer_list<std::pair<TermId, TermFreq>> list) {
  std::vector<TermCount> out;
  for (const auto& [term, tf] : list) out.push_back({term, tf});
  return out;
}

TEST(BigTableTest, TracksTotalsAndMeta) {
  BigTable table;
  std::vector<TermId> first_seen;
  table.OnInsertWindow(1, 1000, true, Terms({{10, 3}, {11, 1}}), first_seen);
  EXPECT_EQ(first_seen.size(), 2u);
  first_seen.clear();
  table.OnInsertWindow(1, 2000, true, Terms({{10, 2}, {12, 1}}), first_seen);
  ASSERT_EQ(first_seen.size(), 1u);
  EXPECT_EQ(first_seen[0], 12u);

  EXPECT_EQ(table.GetTf(1, 10), 5u);
  EXPECT_EQ(table.GetTf(1, 11), 1u);
  std::uint64_t pop = 99;
  Timestamp frsh = 0;
  ASSERT_TRUE(table.GetMeta(1, pop, frsh));
  EXPECT_EQ(frsh, 2000);
  EXPECT_EQ(table.GetMaxTotal(10), 5u);
}

TEST(BigTableTest, DeleteHidesAndPurgeReclaims) {
  BigTable table;
  std::vector<TermId> first_seen;
  table.OnInsertWindow(1, 1000, true, Terms({{10, 3}}), first_seen);
  table.MarkDeleted(1);
  std::uint64_t pop;
  Timestamp frsh;
  EXPECT_FALSE(table.GetMeta(1, pop, frsh));
  EXPECT_TRUE(table.IsDeleted(1));
  table.PurgeTerms(1);
  EXPECT_EQ(table.GetTf(1, 10), 0u);
}

TEST(BigTableTest, PopularityAndMax) {
  BigTable table;
  table.AddPopularity(1, 10);
  table.AddPopularity(2, 50);
  EXPECT_EQ(table.max_pop_count(), 50u);
}

TEST(LsiiIndexTest, BasicInsertAndQuery) {
  LsiiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 3}}), true);
  index.InsertWindow(2, 1000, Terms({{11, 3}}), true);
  const auto results = index.Query({10}, 5, 2000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].stream, 1u);
}

TEST(LsiiIndexTest, MultiWindowTotalsViaBigTable) {
  LsiiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 3}}), true);
  index.InsertWindow(1, 2000, Terms({{10, 4}}), true);
  index.InsertWindow(2, 2000, Terms({{10, 5}}), true);
  const auto results = index.Query({10}, 2, 3000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 1u);  // Total tf 7 beats 5.
}

TEST(LsiiIndexTest, DeleteAndUpdateWork) {
  LsiiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 2}}), false);
  index.InsertWindow(2, 1000, Terms({{10, 2}}), false);
  index.UpdatePopularity(1, 1000);
  auto results = index.Query({10}, 2, 2000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 1u);
  index.DeleteStream(1);
  results = index.Query({10}, 2, 2000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].stream, 2u);
}

TEST(LsiiIndexTest, SurvivesMerges) {
  auto config = SmallConfig();
  config.lsm.delta = 40;
  LsiiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 100; ++s) {
    index.InsertWindow(s, t += 1000, Terms({{10, 1}, {11, 1}}), false);
    index.FinishStream(s);
  }
  EXPECT_GT(index.GetMergeStats().merges, 0u);
  const auto results = index.Query({10}, 200, t);
  EXPECT_EQ(results.size(), 100u);
}

TEST(LsiiIndexTest, UsesMoreMemoryThanRtsi) {
  // The headline memory claim: the big table dwarfs RTSI's small tables
  // once streams are long (many terms each).
  auto config = SmallConfig();
  config.lsm.delta = 5000;
  core::RtsiIndex rtsi(config);
  LsiiIndex lsii(config);
  Rng rng(3);
  Timestamp t = 0;
  for (StreamId s = 0; s < 200; ++s) {
    for (int w = 0; w < 4; ++w) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 60; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(5000));
        if (used.insert(term).second) terms.push_back({term, 1});
      }
      t += kMicrosPerSecond;
      rtsi.InsertWindow(s, t, terms, w < 3);
      lsii.InsertWindow(s, t, terms, w < 3);
    }
    rtsi.FinishStream(s);
    lsii.FinishStream(s);
  }
  EXPECT_GT(lsii.MemoryBytes(), rtsi.MemoryBytes());
}

TEST(LsiiIndexTest, AgreesWithRtsiOnSingleWindowStreams) {
  auto config = SmallConfig();
  config.lsm.delta = 120;
  core::RtsiIndex rtsi(config);
  LsiiIndex lsii(config);
  Rng rng(11);

  Timestamp t = 0;
  for (StreamId s = 0; s < 300; ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    const int n = 2 + static_cast<int>(rng.NextUint64(8));
    for (int i = 0; i < n; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(50));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
      }
    }
    t += kMicrosPerSecond;
    // Single window per stream: no cross-component accumulation anywhere.
    rtsi.InsertWindow(s, t, terms, false);
    lsii.InsertWindow(s, t, terms, false);
    rtsi.FinishStream(s);
    lsii.FinishStream(s);
  }

  for (int trial = 0; trial < 40; ++trial) {
    std::vector<TermId> q = {static_cast<TermId>(rng.NextUint64(50))};
    if (rng.NextBool(0.6)) {
      q.push_back(static_cast<TermId>(rng.NextUint64(50)));
    }
    const auto r_rtsi = rtsi.Query(q, 10, t);
    const auto r_lsii = lsii.Query(q, 10, t);
    ASSERT_EQ(r_rtsi.size(), r_lsii.size()) << trial;
    for (std::size_t i = 0; i < r_rtsi.size(); ++i) {
      ASSERT_NEAR(r_rtsi[i].score, r_lsii[i].score, 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(LsiiIndexTest, EmptyQueriesBehave) {
  LsiiIndex index(SmallConfig());
  EXPECT_TRUE(index.Query({}, 5, 100).empty());
  EXPECT_TRUE(index.Query({42}, 5, 100).empty());
}

}  // namespace
}  // namespace rtsi::baseline
