#include "audio/wav.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "audio/synthesizer.h"
#include "common/rng.h"

namespace rtsi::audio {
namespace {

TEST(WavTest, RoundTripsSynthesizedAudio) {
  SynthesizerConfig config;
  Synthesizer synth(config);
  Rng rng(1);
  const PcmBuffer original =
      synth.Render({{500.0, 1500.0, 0.3, 0.25, 0.6}}, rng);

  const std::string path = "/tmp/rtsi_wav_test_roundtrip.wav";
  ASSERT_TRUE(WriteWav(original, path).ok());

  const auto loaded = ReadWav(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PcmBuffer& pcm = loaded.value();
  EXPECT_EQ(pcm.sample_rate_hz, original.sample_rate_hz);
  ASSERT_EQ(pcm.samples.size(), original.samples.size());
  // 16-bit quantization: within 1/32767 of the original.
  for (std::size_t i = 0; i < pcm.samples.size(); i += 37) {
    EXPECT_NEAR(pcm.samples[i], original.samples[i], 1.0f / 32000.0f) << i;
  }
  std::remove(path.c_str());
}

TEST(WavTest, EmptyBufferRoundTrips) {
  PcmBuffer empty;
  empty.sample_rate_hz = 8000;
  const std::string path = "/tmp/rtsi_wav_test_empty.wav";
  ASSERT_TRUE(WriteWav(empty, path).ok());
  const auto loaded = ReadWav(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().samples.empty());
  EXPECT_EQ(loaded.value().sample_rate_hz, 8000);
  std::remove(path.c_str());
}

TEST(WavTest, ClampsOutOfRangeSamples) {
  PcmBuffer pcm;
  pcm.samples = {2.0f, -2.0f, 0.0f};
  const std::string path = "/tmp/rtsi_wav_test_clamp.wav";
  ASSERT_TRUE(WriteWav(pcm, path).ok());
  const auto loaded = ReadWav(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_NEAR(loaded.value().samples[0], 1.0f, 1e-3f);
  EXPECT_NEAR(loaded.value().samples[1], -1.0f, 1e-3f);
  std::remove(path.c_str());
}

TEST(WavTest, RejectsMissingFile) {
  EXPECT_FALSE(ReadWav("/tmp/no_such_rtsi_file.wav").ok());
}

TEST(WavTest, RejectsGarbage) {
  const std::string path = "/tmp/rtsi_wav_test_garbage.wav";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[64] = "this is definitely not audio data at all.......";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ReadWav(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtsi::audio
