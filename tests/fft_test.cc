#include "audio/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace rtsi::audio {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(400), 512u);
  EXPECT_EQ(NextPowerOfTwo(512), 512u);
}

TEST(FftTest, DcSignalConcentratesInBinZero) {
  std::vector<std::complex<double>> data(64, {1.0, 0.0});
  Fft(data);
  EXPECT_NEAR(data[0].real(), 64.0, 1e-9);
  for (std::size_t k = 1; k < data.size(); ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-9) << k;
  }
}

TEST(FftTest, PureToneConcentratesInItsBin) {
  const std::size_t n = 256;
  const int bin = 10;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = {std::cos(2.0 * kPi * bin * i / n), 0.0};
  }
  Fft(data);
  // Real cosine: energy splits between bin and n-bin.
  EXPECT_NEAR(std::abs(data[bin]), n / 2.0, 1e-6);
  EXPECT_NEAR(std::abs(data[n - bin]), n / 2.0, 1e-6);
  EXPECT_NEAR(std::abs(data[bin + 3]), 0.0, 1e-6);
}

TEST(FftTest, InverseRecoversSignal) {
  Rng rng(5);
  std::vector<std::complex<double>> data(128);
  std::vector<std::complex<double>> original(128);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.NextDouble() - 0.5, rng.NextDouble() - 0.5};
    original[i] = data[i];
  }
  Fft(data);
  InverseFft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(9);
  const std::size_t n = 64;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.NextDouble() - 0.5, 0.0};
    time_energy += std::norm(x);
  }
  Fft(data);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-6);
}

TEST(PowerSpectrumTest, SizeIsHalfPlusOne) {
  std::vector<double> frame(100, 0.5);
  const auto power = PowerSpectrum(frame, 128);
  EXPECT_EQ(power.size(), 65u);
}

TEST(PowerSpectrumTest, ToneShowsPeakAtExpectedBin) {
  const std::size_t n = 512;
  std::vector<double> frame(n);
  for (std::size_t i = 0; i < n; ++i) {
    frame[i] = std::sin(2.0 * kPi * 32.0 * i / n);
  }
  const auto power = PowerSpectrum(frame, n);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 32u);
}

TEST(FftTest, SingleElementIsIdentity) {
  std::vector<std::complex<double>> data = {{3.0, -1.0}};
  Fft(data);
  EXPECT_NEAR(data[0].real(), 3.0, 1e-12);
  EXPECT_NEAR(data[0].imag(), -1.0, 1e-12);
}

}  // namespace
}  // namespace rtsi::audio
