// Full-compaction merge policy: single sealed component, identical query
// results to the geometric policy.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/rtsi_index.h"

namespace rtsi::core {
namespace {

RtsiConfig PolicyConfig(lsm::MergePolicy policy) {
  RtsiConfig config;
  config.lsm.delta = 150;
  config.lsm.num_l0_shards = 4;
  config.lsm.policy = policy;
  return config;
}

TEST(MergePolicyTest, FullCompactionKeepsOneComponent) {
  RtsiIndex index(PolicyConfig(lsm::MergePolicy::kFullCompaction));
  Timestamp t = 0;
  for (StreamId s = 0; s < 400; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond, {{s % 30, 2}}, false);
    index.FinishStream(s);
  }
  EXPECT_LE(index.tree().num_levels(), 1u);
  EXPECT_EQ(index.tree().total_postings(), 400u);
  EXPECT_GT(index.GetMergeStats().merges, 0u);
}

TEST(MergePolicyTest, PoliciesReturnIdenticalResults) {
  RtsiIndex geometric(PolicyConfig(lsm::MergePolicy::kGeometric));
  RtsiIndex full(PolicyConfig(lsm::MergePolicy::kFullCompaction));

  Rng rng(3);
  Timestamp t = 0;
  for (StreamId s = 0; s < 500; ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    for (int i = 0; i < 4; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(40));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
    }
    t += kMicrosPerSecond;
    geometric.InsertWindow(s, t, terms, false);
    full.InsertWindow(s, t, terms, false);
    geometric.FinishStream(s);
    full.FinishStream(s);
  }
  for (TermId q = 0; q < 40; ++q) {
    const auto r1 = geometric.Query({q, (q + 13) % 40}, 10, t);
    const auto r2 = full.Query({q, (q + 13) % 40}, 10, t);
    ASSERT_EQ(r1.size(), r2.size()) << q;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << q << " rank " << i;
    }
  }
}

TEST(MergePolicyTest, FullCompactionDoesMoreMergeWork) {
  lsm::MergeStats stats_geometric, stats_full;
  for (const auto policy : {lsm::MergePolicy::kGeometric,
                            lsm::MergePolicy::kFullCompaction}) {
    RtsiIndex index(PolicyConfig(policy));
    Timestamp t = 0;
    for (StreamId s = 0; s < 1500; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond, {{s % 10, 1}}, false);
      index.FinishStream(s);
    }
    if (policy == lsm::MergePolicy::kGeometric) {
      stats_geometric = index.GetMergeStats();
    } else {
      stats_full = index.GetMergeStats();
    }
  }
  EXPECT_GT(stats_full.postings_in, stats_geometric.postings_in);
}

TEST(MergePolicyTest, LazyDeletionStillWorks) {
  RtsiIndex index(PolicyConfig(lsm::MergePolicy::kFullCompaction));
  Timestamp t = 0;
  for (StreamId s = 0; s < 200; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond, {{5, 1}}, false);
    index.FinishStream(s);
  }
  for (StreamId s = 0; s < 100; ++s) index.DeleteStream(s);
  for (StreamId s = 500; s < 700; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond, {{6, 1}}, false);
    index.FinishStream(s);
  }
  EXPECT_GT(index.GetMergeStats().purged_postings, 0u);
  EXPECT_EQ(index.Query({5}, 500, t).size(), 100u);
}

}  // namespace
}  // namespace rtsi::core
