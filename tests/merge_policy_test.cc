// Compaction policies: geometric (Algorithm 1), size-tiered, and full
// compaction must return identical query results while trading write
// amplification against read-path run counts. Also covers the v4
// snapshot fixture restored into a tiered-policy tree.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/rtsi_index.h"
#include "storage/snapshot.h"

#ifndef RTSI_TEST_DATA_DIR
#error "RTSI_TEST_DATA_DIR must point at tests/data"
#endif

namespace rtsi::core {
namespace {

RtsiConfig PolicyConfig(lsm::MergePolicy policy) {
  RtsiConfig config;
  config.lsm.delta = 150;
  config.lsm.num_l0_shards = 4;
  config.lsm.policy = policy;
  return config;
}

constexpr lsm::MergePolicy kAllPolicies[] = {
    lsm::MergePolicy::kGeometric,
    lsm::MergePolicy::kTiered,
    lsm::MergePolicy::kFullCompaction,
};

/// Inserts the shared deterministic workload (seeded) into `index`.
void InsertWorkload(RtsiIndex& index, std::uint64_t seed, int num_streams) {
  Rng rng(seed);
  Timestamp t = 0;
  for (StreamId s = 0; s < static_cast<StreamId>(num_streams); ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    for (int i = 0; i < 4; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(40));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
    }
    t += kMicrosPerSecond;
    index.InsertWindow(s, t, terms, false);
    index.FinishStream(s);
  }
  index.WaitForMerges();
}

TEST(MergePolicyTest, FullCompactionKeepsOneComponent) {
  RtsiIndex index(PolicyConfig(lsm::MergePolicy::kFullCompaction));
  Timestamp t = 0;
  for (StreamId s = 0; s < 400; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond,
                       {{static_cast<TermId>(s % 30), 2}}, false);
    index.FinishStream(s);
  }
  EXPECT_LE(index.tree().num_levels(), 1u);
  EXPECT_LE(index.tree().num_runs(), 1u);
  EXPECT_EQ(index.tree().total_postings(), 400u);
  EXPECT_GT(index.GetMergeStats().merges, 0u);
}

TEST(MergePolicyTest, PoliciesReturnIdenticalResults) {
  RtsiIndex geometric(PolicyConfig(lsm::MergePolicy::kGeometric));
  RtsiIndex tiered(PolicyConfig(lsm::MergePolicy::kTiered));
  RtsiIndex full(PolicyConfig(lsm::MergePolicy::kFullCompaction));

  Rng rng(3);
  Timestamp t = 0;
  for (StreamId s = 0; s < 500; ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    for (int i = 0; i < 4; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(40));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
    }
    t += kMicrosPerSecond;
    geometric.InsertWindow(s, t, terms, false);
    tiered.InsertWindow(s, t, terms, false);
    full.InsertWindow(s, t, terms, false);
    geometric.FinishStream(s);
    tiered.FinishStream(s);
    full.FinishStream(s);
  }
  for (TermId q = 0; q < 40; ++q) {
    const auto r1 = geometric.Query({q, (q + 13) % 40}, 10, t);
    const auto r2 = full.Query({q, (q + 13) % 40}, 10, t);
    const auto r3 = tiered.Query({q, (q + 13) % 40}, 10, t);
    ASSERT_EQ(r1.size(), r2.size()) << q;
    ASSERT_EQ(r1.size(), r3.size()) << q;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_EQ(r1[i].stream, r2[i].stream) << q << " rank " << i;
      ASSERT_EQ(r1[i].stream, r3[i].stream) << q << " rank " << i;
      ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << q << " rank " << i;
      ASSERT_NEAR(r1[i].score, r3[i].score, 1e-9) << q << " rank " << i;
    }
  }
}

// The property the ablation bench measures, asserted as an invariant:
// whatever merge interleaving a policy and delta produce, top-k results
// match a never-merged sequential full walk (no pruning, no skip
// headers) over the same inserts.
TEST(MergePolicyTest, EveryPolicyMatchesFullWalkAcrossInterleavings) {
  // Oracle: delta so large nothing ever leaves L0, walked exhaustively.
  RtsiConfig oracle_config;
  oracle_config.lsm.delta = 1u << 20;
  oracle_config.lsm.num_l0_shards = 4;
  auto oracle = std::make_unique<RtsiIndex>(oracle_config);
  oracle->SetUseBound(false);
  oracle->SetUseSkipHeader(false);
  InsertWorkload(*oracle, /*seed=*/17, /*num_streams=*/600);

  for (const auto policy : kAllPolicies) {
    // Different deltas force different freeze points and cascade depths
    // — different merge interleavings of the same posting stream.
    for (const std::size_t delta : {80u, 150u, 400u}) {
      RtsiConfig config = PolicyConfig(policy);
      config.lsm.delta = delta;
      RtsiIndex index(config);
      InsertWorkload(index, /*seed=*/17, /*num_streams=*/600);
      for (TermId q = 0; q < 40; q += 3) {
        const Timestamp now = 600 * kMicrosPerSecond;
        const auto expect = oracle->Query({q, (q + 7) % 40}, 10, now);
        const auto got = index.Query({q, (q + 7) % 40}, 10, now);
        ASSERT_EQ(got.size(), expect.size())
            << lsm::MergePolicyName(policy) << " delta " << delta
            << " term " << q;
        for (std::size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i].stream, expect[i].stream)
              << lsm::MergePolicyName(policy) << " delta " << delta
              << " term " << q << " rank " << i;
          ASSERT_NEAR(got[i].score, expect[i].score, 1e-9)
              << lsm::MergePolicyName(policy) << " delta " << delta
              << " term " << q << " rank " << i;
        }
      }
    }
  }
}

TEST(MergePolicyTest, FullCompactionDoesMoreMergeWork) {
  lsm::MergeStats stats_geometric, stats_full;
  for (const auto policy : {lsm::MergePolicy::kGeometric,
                            lsm::MergePolicy::kFullCompaction}) {
    RtsiIndex index(PolicyConfig(policy));
    Timestamp t = 0;
    for (StreamId s = 0; s < 1500; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond,
                         {{static_cast<TermId>(s % 10), 1}}, false);
      index.FinishStream(s);
    }
    if (policy == lsm::MergePolicy::kGeometric) {
      stats_geometric = index.GetMergeStats();
    } else {
      stats_full = index.GetMergeStats();
    }
  }
  EXPECT_GT(stats_full.postings_in, stats_geometric.postings_in);
}

TEST(MergePolicyTest, TieredDoesLessMergeWorkThanGeometric) {
  // Write amplification proxy: postings read into merges. Tiering only
  // merges once tier_runs runs pile up, so most freezes do no merge work
  // at all; the geometric cascade rewrites level 1 on every freeze.
  lsm::MergeStats stats_geometric, stats_tiered;
  std::size_t tiered_runs = 0;
  for (const auto policy :
       {lsm::MergePolicy::kGeometric, lsm::MergePolicy::kTiered}) {
    RtsiIndex index(PolicyConfig(policy));
    Timestamp t = 0;
    for (StreamId s = 0; s < 3000; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond,
                         {{static_cast<TermId>(s % 10), 1}}, false);
      index.FinishStream(s);
    }
    if (policy == lsm::MergePolicy::kGeometric) {
      stats_geometric = index.GetMergeStats();
    } else {
      stats_tiered = index.GetMergeStats();
      tiered_runs = index.tree().num_runs();
    }
  }
  EXPECT_LT(stats_tiered.postings_in, stats_geometric.postings_in);
  // The flip side of the bargain: more runs on the read path.
  EXPECT_GE(tiered_runs, 2u);
}

TEST(MergePolicyTest, LazyDeletionStillWorks) {
  for (const auto policy : kAllPolicies) {
    RtsiIndex index(PolicyConfig(policy));
    Timestamp t = 0;
    for (StreamId s = 0; s < 200; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond, {{5, 1}}, false);
      index.FinishStream(s);
    }
    for (StreamId s = 0; s < 100; ++s) index.DeleteStream(s);
    // Enough post-delete volume that even the tiered policy (which defers
    // merging until tier_runs runs accumulate) folds the deleted runs.
    for (StreamId s = 500; s < 1300; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond, {{6, 1}}, false);
      index.FinishStream(s);
    }
    EXPECT_GT(index.GetMergeStats().purged_postings, 0u)
        << lsm::MergePolicyName(policy);
    EXPECT_EQ(index.Query({5}, 500, t).size(), 100u)
        << lsm::MergePolicyName(policy);
  }
}

// ---------------------------------------------------------------------
// Mixed-version snapshots: the checked-in v4 fixture (written by the
// pre-multi-run-levels code) restored into a tree that then compacts
// with the tiered policy.

/// Rebuilds, insert-for-insert, the index the v4 fixture was generated
/// from (tools kept in sync with the fixture generator's recipe).
std::unique_ptr<RtsiIndex> BuildV4FixtureOracle() {
  RtsiConfig config;
  config.lsm.delta = 256;
  config.lsm.rho = 2.0;
  config.lsm.num_l0_shards = 2;
  auto index = std::make_unique<RtsiIndex>(config);
  Rng rng(47);
  Timestamp t = 0;
  for (StreamId s = 0; s < 120; ++s) {
    for (int w = 0; w < 3; ++w) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 8; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(120));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      t += kMicrosPerSecond;
      index->InsertWindow(s, t, terms, w < 2);
    }
    if (s % 3 == 0) index->FinishStream(s);
    index->UpdatePopularity(s, rng.NextUint64(300));
  }
  index->WaitForMerges();
  return index;
}

void ExpectSameTopK(RtsiIndex& got, RtsiIndex& expect, Timestamp now,
                    const char* label) {
  for (TermId q = 0; q < 120; q += 7) {
    const auto r_got = got.Query({q, (q + 11) % 120}, 10, now);
    const auto r_expect = expect.Query({q, (q + 11) % 120}, 10, now);
    ASSERT_EQ(r_got.size(), r_expect.size()) << label << " term " << q;
    for (std::size_t i = 0; i < r_got.size(); ++i) {
      ASSERT_EQ(r_got[i].stream, r_expect[i].stream)
          << label << " term " << q << " rank " << i;
      ASSERT_NEAR(r_got[i].score, r_expect[i].score, 1e-9)
          << label << " term " << q << " rank " << i;
    }
  }
}

TEST(MergePolicyTest, V4FixtureRestoresIntoTieredTree) {
  const std::string fixture =
      std::string(RTSI_TEST_DATA_DIR) + "/index_v4.snap";
  std::uint64_t journal_epoch = 0;
  auto loaded = storage::LoadIndexSnapshot(fixture, &journal_epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto index = std::move(loaded).value();
  EXPECT_EQ(journal_epoch, 11u);
  // The fixture workload updates popularity after insertion, so kSnapshot
  // pruning is drift-inexact and component-layout dependent; compare the
  // trees by exhaustive walk instead.
  index->SetUseBound(false);
  // v4 predates the policy field: the restored tree runs the default
  // geometric cascade its writer ran.
  EXPECT_EQ(index->tree().policy(), lsm::MergePolicy::kGeometric);

  auto oracle = BuildV4FixtureOracle();
  oracle->SetUseBound(false);
  EXPECT_EQ(index->tree().total_postings(),
            oracle->tree().total_postings());
  Timestamp now = 360 * kMicrosPerSecond;
  ExpectSameTopK(*index, *oracle, now, "restored-v4");

  // Switch the restored tree to tiered compaction and keep ingesting the
  // same stream of windows into both: the old one-run-per-level shape is
  // valid tiered input, runs accumulate on top of it, and results stay
  // identical to the geometric oracle throughout.
  index->SetMergePolicy(lsm::MergePolicy::kTiered);
  Rng rng(91);
  Timestamp t = now;
  for (StreamId s = 200; s < 320; ++s) {
    for (int w = 0; w < 3; ++w) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 8; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(120));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      t += kMicrosPerSecond;
      index->InsertWindow(s, t, terms, false);
      oracle->InsertWindow(s, t, terms, false);
    }
    index->FinishStream(s);
    oracle->FinishStream(s);
  }
  index->WaitForMerges();
  oracle->WaitForMerges();
  EXPECT_GT(index->GetMergeStats().merges + index->tree().num_runs(), 0u);
  ExpectSameTopK(*index, *oracle, t, "tiered-after-restore");
}

}  // namespace
}  // namespace rtsi::core
