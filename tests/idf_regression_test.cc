// Regression: a popularity update arriving before a stream's first
// content window (exactly what the bench driver does when seeding play
// counters) must not prevent the stream from being counted as a
// document. An early version returned "not new" from the metadata
// upsert, leaving num_documents at 0 and zeroing every IDF.

#include <gtest/gtest.h>

#include "baseline/lsii_index.h"
#include "core/rtsi_index.h"

namespace rtsi {
namespace {

core::RtsiConfig SmallConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 100;
  return config;
}

TEST(IdfRegressionTest, PopularityBeforeContentStillCountsDocuments) {
  core::RtsiIndex index(SmallConfig());
  for (StreamId s = 0; s < 10; ++s) {
    index.UpdatePopularity(s, 100 + s);  // Seed counters first.
  }
  for (StreamId s = 0; s < 10; ++s) {
    index.InsertWindow(s, 1000 + static_cast<Timestamp>(s), {{5, 2}}, false);
  }
  EXPECT_EQ(index.doc_freq().num_documents(), 10u);
  EXPECT_EQ(index.doc_freq().DocumentFrequency(5), 10u);
  EXPECT_GT(index.doc_freq().Idf(999), 0.0);  // Rare terms score.
}

TEST(IdfRegressionTest, RelevanceActuallyContributesAfterSeeding) {
  core::RtsiIndex index(SmallConfig());
  index.UpdatePopularity(1, 50);
  index.UpdatePopularity(2, 50);
  // Stream 1 matches both query terms, stream 2 only one; same pop/frsh.
  index.InsertWindow(1, 1000, {{10, 2}, {11, 2}}, false);
  index.InsertWindow(2, 1000, {{10, 2}, {12, 2}}, false);
  const auto results = index.Query({10, 11}, 2, 2000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 1u);
  EXPECT_GT(results[0].score, results[1].score);  // Rel must break the tie.
}

TEST(IdfRegressionTest, LsiiCountsDocumentsIdentically) {
  baseline::LsiiIndex index(SmallConfig());
  index.UpdatePopularity(1, 10);
  index.InsertWindow(1, 1000, {{5, 1}}, false);
  index.InsertWindow(1, 2000, {{5, 1}}, false);  // Second window: not new.
  index.UpdatePopularity(2, 10);
  index.InsertWindow(2, 3000, {{5, 1}}, false);
  // Exposed only indirectly: two matching documents must both rank, with
  // relevance distinguishing totals (tf 2 vs 1).
  const auto results = index.Query({5}, 5, 4000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 1u);
}

}  // namespace
}  // namespace rtsi
