// Parity suite for the unified query-execution pipeline (exec::).
//
// Every query path in the repo — sequential, parallel executor, explain,
// the LSII baseline, and the sharded scatter-gather — drives the same
// exec::QueryPlan + operator chain, so this suite pins the one invariant
// the refactor must preserve: bit-identical top-k (streams AND scores)
// and identical QueryStats across the whole configuration matrix
// (executor × filter × bound mode × skip header × merge policy), each
// row checked against a full-walk oracle that disables every pruning and
// skipping mechanism.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baseline/lsii_index.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/rtsi_index.h"
#include "exec/query_plan.h"
#include "exec/sink.h"
#include "service/search_service.h"
#include "shard/shard_set.h"

namespace rtsi::core {
namespace {

RtsiConfig PipelineConfig(int query_threads, bool use_bound,
                          bool use_skip_header,
                          lsm::MergePolicy policy = lsm::MergePolicy::kGeometric) {
  RtsiConfig config;
  config.lsm.delta = 300;  // Small: the workloads below seal many components.
  config.lsm.rho = 1.5;
  config.lsm.num_l0_shards = 4;
  config.lsm.policy = policy;
  config.use_bound = use_bound;
  config.use_skip_header = use_skip_header;
  config.query_threads = query_threads;
  return config;
}

// Drives one randomized insert/finish/delete/update workload into every
// index, so they end up with identical content.
void BuildWorkload(const std::vector<SearchIndex*>& indices, int seed,
                   Timestamp* end_time) {
  Rng rng(seed);
  constexpr int kNumStreams = 120;
  constexpr int kVocab = 50;
  Timestamp t = 1000;
  for (int step = 0; step < 900; ++step) {
    t += kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(rng.NextUint64(kNumStreams));
    const double action = rng.NextDouble();
    if (action < 0.85) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      const int num_terms = 1 + static_cast<int>(rng.NextUint64(6));
      for (int i = 0; i < num_terms; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
        if (!used.insert(term).second) continue;
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
      }
      const bool live = rng.NextBool(0.5);
      for (SearchIndex* index : indices) {
        index->InsertWindow(stream, t, terms, live);
        if (!live) index->FinishStream(stream);
      }
    } else if (action < 0.93) {
      const std::uint64_t delta = 1 + rng.NextUint64(50);
      for (SearchIndex* index : indices) {
        index->UpdatePopularity(stream, delta);
      }
    } else {
      for (SearchIndex* index : indices) index->DeleteStream(stream);
    }
  }
  *end_time = t;
}

// A write-once workload: every stream id is inserted exactly once and
// never updated, finished into a later insert, or deleted — so each
// stream's live popularity and freshness equal what its sealed postings
// snapshotted. This is the regime where kSnapshot bounds are exact (see
// core/config.h); it is also a legal sharded workload (no id reuse).
void BuildWriteOnceWorkload(const std::vector<SearchIndex*>& indices,
                            int seed, Timestamp* end_time) {
  Rng rng(seed);
  constexpr int kVocab = 50;
  Timestamp t = 1000;
  for (int step = 0; step < 900; ++step) {
    t += kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(step);
    std::vector<TermCount> terms;
    std::set<TermId> used;
    const int num_terms = 1 + static_cast<int>(rng.NextUint64(6));
    for (int i = 0; i < num_terms; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
      if (!used.insert(term).second) continue;
      terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
    }
    const bool live = rng.NextBool(0.5);
    for (SearchIndex* index : indices) {
      index->InsertWindow(stream, t, terms, live);
      if (!live) index->FinishStream(stream);
    }
  }
  *end_time = t;
}

// Like BuildWorkload, but a stream id retired by FinishStream or
// DeleteStream is never touched again — the legal sharded workload shape
// (the id-reuse guard would otherwise drop windows a single index keeps).
void BuildNoReuseWorkload(const std::vector<SearchIndex*>& indices, int seed,
                          Timestamp* end_time) {
  Rng rng(seed);
  constexpr int kNumStreams = 120;
  constexpr int kVocab = 50;
  std::set<StreamId> retired;
  Timestamp t = 1000;
  for (int step = 0; step < 900; ++step) {
    t += kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(rng.NextUint64(kNumStreams));
    const double action = rng.NextDouble();
    if (retired.count(stream) > 0) continue;
    if (action < 0.85) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      const int num_terms = 1 + static_cast<int>(rng.NextUint64(6));
      for (int i = 0; i < num_terms; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
        if (!used.insert(term).second) continue;
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
      }
      const bool live = rng.NextBool(0.9);
      for (SearchIndex* index : indices) {
        index->InsertWindow(stream, t, terms, live);
        if (!live) index->FinishStream(stream);
      }
      if (!live) retired.insert(stream);
    } else if (action < 0.93) {
      const std::uint64_t delta = 1 + rng.NextUint64(50);
      for (SearchIndex* index : indices) {
        index->UpdatePopularity(stream, delta);
      }
    } else {
      for (SearchIndex* index : indices) index->DeleteStream(stream);
      retired.insert(stream);
    }
  }
  *end_time = t;
}

std::vector<TermId> RandomQuery(Rng& rng, int max_terms = 3) {
  std::vector<TermId> q;
  const int nterms = 1 + static_cast<int>(rng.NextUint64(max_terms));
  for (int i = 0; i < nterms; ++i) {
    q.push_back(static_cast<TermId>(rng.NextUint64(50)));
  }
  if (rng.NextBool(0.2)) q.push_back(q.front());  // Duplicate term.
  return q;
}

void ExpectBitIdentical(const std::vector<ScoredStream>& got,
                        const std::vector<ScoredStream>& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream, want[i].stream) << context << " rank " << i;
    // Bit-identical, not approximately equal: every path runs the same
    // exec:: score computation, only the traversal schedule differs.
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

void ExpectSameStats(const QueryStats& got, const QueryStats& want,
                     const std::string& context) {
  EXPECT_EQ(got.components_visited, want.components_visited) << context;
  EXPECT_EQ(got.components_pruned, want.components_pruned) << context;
  EXPECT_EQ(got.components_skipped, want.components_skipped) << context;
  EXPECT_EQ(got.bloom_false_positives, want.bloom_false_positives) << context;
  EXPECT_EQ(got.postings_scanned, want.postings_scanned) << context;
  EXPECT_EQ(got.candidates_scored, want.candidates_scored) << context;
  EXPECT_EQ(got.candidates_screened, want.candidates_screened) << context;
  EXPECT_EQ(got.terminated_early, want.terminated_early) << context;
}

// One row of the parity matrix: an index configuration whose answers
// must match the full-walk oracle bit for bit.
struct MatrixRow {
  const char* name;
  int query_threads;
  bool use_bound;
  bool use_skip_header;
  BoundMode bound_mode;
  lsm::MergePolicy policy;
};

class PipelineMatrixTest : public ::testing::TestWithParam<MatrixRow> {};

TEST_P(PipelineMatrixTest, MatchesFullWalkOracleBitwise) {
  const MatrixRow row = GetParam();
  auto config = PipelineConfig(row.query_threads, row.use_bound,
                               row.use_skip_header, row.policy);
  config.bound_mode = row.bound_mode;
  // The oracle scores every posting of every component: no bound walk,
  // no skip headers, sequential. It shares the row's merge policy — a
  // stream's relevance accumulates within the component that discovers
  // it, so component structure is part of the score; what the oracle
  // removes is every skipping and pruning mechanism.
  auto oracle_config = PipelineConfig(0, /*use_bound=*/false,
                                      /*use_skip_header=*/false, row.policy);
  auto index = std::make_unique<RtsiIndex>(config);
  auto oracle = std::make_unique<RtsiIndex>(oracle_config);

  Timestamp t = 0;
  if (row.bound_mode == BoundMode::kSnapshot) {
    // kSnapshot bounds are exact only without post-seal popularity or
    // freshness drift; write-once is the workload shape they are for.
    BuildWriteOnceWorkload({index.get(), oracle.get()}, /*seed=*/77, &t);
  } else {
    BuildWorkload({index.get(), oracle.get()}, /*seed=*/77, &t);
  }
  // Full compaction folds everything into one component by design;
  // every other policy must leave a real multi-component cascade.
  const std::size_t min_components =
      row.policy == lsm::MergePolicy::kFullCompaction ? 1u : 2u;
  ASSERT_GE(index->tree().SealedSnapshot().size(), min_components)
      << "workload too small to exercise multi-component traversal";

  Rng rng(777);
  for (int qi = 0; qi < 60; ++qi) {
    const auto q = RandomQuery(rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(15));
    const std::string context =
        std::string(row.name) + " query " + std::to_string(qi);
    ExpectBitIdentical(index->Query(q, k, t), oracle->Query(q, k, t),
                       context);

    QueryFilter filter;
    filter.live_only = rng.NextBool(0.5);
    if (rng.NextBool(0.5)) filter.min_frsh = t / 2;
    ExpectBitIdentical(index->QueryFiltered(q, k, t, filter),
                       oracle->QueryFiltered(q, k, t, filter),
                       context + " filtered");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineMatrixTest,
    ::testing::Values(
        MatrixRow{"seq_bound_skip", 0, true, true, BoundMode::kGlobalPop,
                  lsm::MergePolicy::kGeometric},
        MatrixRow{"seq_bound_noskip", 0, true, false, BoundMode::kGlobalPop,
                  lsm::MergePolicy::kGeometric},
        MatrixRow{"seq_nobound_skip", 0, false, true, BoundMode::kGlobalPop,
                  lsm::MergePolicy::kGeometric},
        MatrixRow{"seq_snapshot", 0, true, true, BoundMode::kSnapshot,
                  lsm::MergePolicy::kGeometric},
        MatrixRow{"par_bound_skip", 2, true, true, BoundMode::kGlobalPop,
                  lsm::MergePolicy::kGeometric},
        MatrixRow{"par_bound_noskip", 2, true, false, BoundMode::kGlobalPop,
                  lsm::MergePolicy::kGeometric},
        MatrixRow{"seq_bound_skip_tiered", 0, true, true,
                  BoundMode::kGlobalPop, lsm::MergePolicy::kTiered},
        MatrixRow{"par_bound_skip_full", 2, true, true, BoundMode::kGlobalPop,
                  lsm::MergePolicy::kFullCompaction}),
    [](const ::testing::TestParamInfo<MatrixRow>& info) {
      return std::string(info.param.name);
    });

// QueryStats must be a pure function of (index contents, query): the
// same query repeated — and the same query against an identically-built
// twin — reports identical counters. A stats divergence is how a
// traversal-order regression shows up before results drift.
TEST(PipelineStatsTest, StatsDeterministicAcrossRunsAndTwins) {
  auto config = PipelineConfig(0, /*use_bound=*/true, /*use_skip_header=*/true);
  config.bound_mode = BoundMode::kGlobalPop;
  auto index = std::make_unique<RtsiIndex>(config);
  auto twin = std::make_unique<RtsiIndex>(config);
  Timestamp t = 0;
  BuildWorkload({index.get(), twin.get()}, 21, &t);

  Rng rng(2121);
  for (int qi = 0; qi < 40; ++qi) {
    const auto q = RandomQuery(rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(10));
    const std::string context = "stats query " + std::to_string(qi);
    QueryStats first, again, twin_stats;
    const auto results = index->Query(q, k, t, &first);
    ExpectBitIdentical(index->Query(q, k, t, &again), results, context);
    ExpectBitIdentical(twin->Query(q, k, t, &twin_stats), results, context);
    ExpectSameStats(again, first, context + " repeat");
    ExpectSameStats(twin_stats, first, context + " twin");
  }
}

// ExplainQuery is the sequential pipeline with a recording policy bolted
// on: its ranked results must be bit-identical to Query's, and each
// breakdown must decompose the reported score exactly.
TEST(PipelineExplainTest, ExplainResultsMatchQueryBitwise) {
  auto config = PipelineConfig(0, /*use_bound=*/true, /*use_skip_header=*/true);
  config.bound_mode = BoundMode::kGlobalPop;
  auto index = std::make_unique<RtsiIndex>(config);
  Timestamp t = 0;
  BuildWorkload({index.get()}, 33, &t);

  Rng rng(3333);
  for (int qi = 0; qi < 40; ++qi) {
    const auto q = RandomQuery(rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(10));
    const std::string context = "explain query " + std::to_string(qi);
    const auto want = index->Query(q, k, t);
    const auto explained = index->ExplainQuery(q, k, t);
    ASSERT_EQ(explained.results.size(), want.size()) << context;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(explained.results[i].stream, want[i].stream)
          << context << " rank " << i;
      EXPECT_EQ(explained.results[i].total, want[i].score)
          << context << " rank " << i;
    }
  }
}

// The standing-query seam: BuildPlan + ExecutePlan through a TopKSink is
// exactly Query, and a sink carried across executions accumulates (the
// contract future standing queries / fuzzy expansion lean on).
TEST(PipelinePlanTest, ExecutePlanMatchesQueryAndSinkAccumulates) {
  auto config = PipelineConfig(0, /*use_bound=*/true, /*use_skip_header=*/true);
  config.bound_mode = BoundMode::kGlobalPop;
  auto index = std::make_unique<RtsiIndex>(config);
  Timestamp t = 0;
  BuildWorkload({index.get()}, 47, &t);

  Rng rng(4747);
  for (int qi = 0; qi < 20; ++qi) {
    const auto q = RandomQuery(rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(10));
    const std::string context = "plan query " + std::to_string(qi);
    QueryStats want_stats, plan_stats;
    const auto want = index->Query(q, k, t, &want_stats);
    const auto plan = index->BuildPlan(q, k, t);
    exec::TopKSink sink(k);
    ExpectBitIdentical(index->ExecutePlan(plan, sink, &plan_stats), want,
                       context);
    ExpectSameStats(plan_stats, want_stats, context);

    // Re-execution keeps the sink's contents: re-running the same plan
    // into the same sink must not change what it holds.
    const auto again = index->ExecutePlan(plan, sink);
    ExpectBitIdentical(again, want, context + " re-executed");
  }
}

// The LSII baseline rides the same pipeline drivers; its bound-pruned
// walk must match its own full walk bit for bit (LSII semantics differ
// from RTSI — >= pruning, BigTable scores — so it gets its own oracle).
TEST(PipelineLsiiTest, LsiiBoundMatchesLsiiFullWalkBitwise) {
  auto bound_config =
      PipelineConfig(0, /*use_bound=*/true, /*use_skip_header=*/false);
  bound_config.bound_mode = BoundMode::kGlobalPop;
  auto walk_config =
      PipelineConfig(0, /*use_bound=*/false, /*use_skip_header=*/false);
  auto bounded = std::make_unique<baseline::LsiiIndex>(bound_config);
  auto walker = std::make_unique<baseline::LsiiIndex>(walk_config);
  Timestamp t = 0;
  BuildWorkload({bounded.get(), walker.get()}, 61, &t);

  Rng rng(6161);
  for (int qi = 0; qi < 60; ++qi) {
    const auto q = RandomQuery(rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(15));
    ExpectBitIdentical(bounded->Query(q, k, t), walker->Query(q, k, t),
                       "lsii query " + std::to_string(qi));
  }
}

// Sharded scatter-gather folds per-shard stats and gathers through the
// pipeline's sink; a 3-shard set must answer exactly like one unsharded
// index over the same streams.
TEST(PipelineShardTest, ShardedGatherMatchesUnshardedBitwise) {
  shard::ShardSetConfig shard_config;
  shard_config.index =
      PipelineConfig(0, /*use_bound=*/true, /*use_skip_header=*/true);
  shard_config.index.bound_mode = BoundMode::kGlobalPop;
  shard_config.num_shards = 3;
  auto sharded = std::make_unique<shard::IndexShardSet>(shard_config);
  auto single = std::make_unique<RtsiIndex>(shard_config.index);
  Timestamp t = 0;
  // Legal sharded workload: retired ids are never reused (the guard
  // would drop the reuse on the sharded set only, forking the content).
  BuildNoReuseWorkload({sharded.get(), single.get()}, 83, &t);

  Rng rng(8383);
  for (int qi = 0; qi < 60; ++qi) {
    const auto q = RandomQuery(rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(15));
    ExpectBitIdentical(sharded->Query(q, k, t), single->Query(q, k, t),
                       "shard query " + std::to_string(qi));
  }
}

// Satellite: per-shard compaction-policy overrides flow from the
// ShardSetConfig down to each shard's LSM tree; unlisted shards keep the
// base policy.
TEST(ShardPolicyTest, PerShardPolicyOverridesApply) {
  shard::ShardSetConfig config;
  config.index = PipelineConfig(0, true, true);
  config.num_shards = 3;
  config.shard_policies = {lsm::MergePolicy::kTiered,
                           lsm::MergePolicy::kFullCompaction};
  shard::IndexShardSet shards(config);
  EXPECT_EQ(shards.shard_index(0).tree().policy(),
            lsm::MergePolicy::kTiered);
  EXPECT_EQ(shards.shard_index(1).tree().policy(),
            lsm::MergePolicy::kFullCompaction);
  // Beyond the override vector: the base config's policy.
  EXPECT_EQ(shards.shard_index(2).tree().policy(),
            config.index.lsm.policy);
}

// Satellite: the service-level override plumbs through both modalities.
TEST(ShardPolicyTest, ServiceConfigOverridesReachShards) {
  service::SearchServiceConfig config;
  config.index.lsm.delta = 500;
  config.ingestion.transcriber.word_error_rate = 0.0;
  config.shards = 2;
  config.shard_merge_policies = {lsm::MergePolicy::kGeometric,
                                 lsm::MergePolicy::kTiered};
  SimulatedClock clock;
  service::SearchService service(config, &clock);
  for (auto* shards : {&service.text_shards(), &service.sound_shards()}) {
    EXPECT_EQ(shards->shard_index(0).tree().policy(),
              lsm::MergePolicy::kGeometric);
    EXPECT_EQ(shards->shard_index(1).tree().policy(),
              lsm::MergePolicy::kTiered);
  }
}

// Satellite: the sharded id-reuse guard. Reusing a stream id after
// FinishStream/DeleteStream on a sharded set is a documented
// precondition violation — it must surface as FailedPrecondition (not
// undefined behavior), and the rejected window must index nothing.
TEST(ShardIdReuseTest, ShardedSetRejectsRetiredIds) {
  shard::ShardSetConfig config;
  config.index = PipelineConfig(0, true, true);
  config.num_shards = 2;
  shard::IndexShardSet shards(config);
  const std::vector<TermCount> terms = {{7, 2}};

  ASSERT_TRUE(shards.InsertWindowChecked(1, 1000, terms, true).ok());
  shards.FinishStream(1);
  const Status reuse = shards.InsertWindowChecked(1, 2000, terms, true);
  EXPECT_EQ(reuse.code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(shards.InsertWindowChecked(2, 1000, terms, true).ok());
  shards.DeleteStream(2);
  EXPECT_EQ(shards.InsertWindowChecked(2, 2000, terms, true).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(shards.CheckInsert(2).ok());

  // The void SearchIndex interface drops the window instead of touching
  // the wrong shard epoch: stream 2 stays deleted.
  shards.InsertWindow(2, 3000, terms, true);
  for (const auto& r : shards.Query({7}, 10, 4000)) {
    EXPECT_NE(r.stream, 2u) << "dropped window resurrected a deleted stream";
  }

  // A fresh id is unaffected by the guard.
  EXPECT_TRUE(shards.InsertWindowChecked(3, 3000, terms, true).ok());
}

// A single-shard set keeps the classic single-index semantics:
// re-insertion after FinishStream is the documented "stream resumes"
// path and must stay accepted.
TEST(ShardIdReuseTest, SingleShardStillAcceptsReuse) {
  shard::ShardSetConfig config;
  config.index = PipelineConfig(0, true, true);
  config.num_shards = 1;
  shard::IndexShardSet shards(config);
  const std::vector<TermCount> terms = {{7, 2}};
  ASSERT_TRUE(shards.InsertWindowChecked(1, 1000, terms, true).ok());
  shards.FinishStream(1);
  EXPECT_TRUE(shards.CheckInsert(1).ok());
  EXPECT_TRUE(shards.InsertWindowChecked(1, 2000, terms, true).ok());
}

// Service level: a sharded service rejects the whole window (both
// modalities untouched, seeded RNG not advanced) while the single-shard
// default keeps accepting resumes.
TEST(ShardIdReuseTest, ShardedServiceRejectsReuseAtomically) {
  service::SearchServiceConfig config;
  config.index.lsm.delta = 500;
  config.ingestion.transcriber.word_error_rate = 0.0;
  config.shards = 2;
  SimulatedClock clock;
  service::SearchService service(config, &clock);

  ASSERT_TRUE(service.IngestWindow(1, {"hello", "world"}).ok());
  service.FinishStream(1);
  const Status reuse = service.IngestWindow(1, {"hello", "again"});
  EXPECT_EQ(reuse.code(), StatusCode::kFailedPrecondition);

  // Batch all-or-nothing: one bad op poisons the batch, nothing lands.
  const auto pinned = service.PinIndices();
  const std::size_t before = pinned->text->shard_index(0).tree().total_postings() +
                             pinned->text->shard_index(1).tree().total_postings();
  std::vector<service::IngestOp> ops(2);
  ops[0].stream = 5;
  ops[0].words = {"fresh", "stream"};
  ops[1].stream = 1;  // Retired.
  ops[1].words = {"poison"};
  EXPECT_EQ(service.IngestBatch(ops).code(),
            StatusCode::kFailedPrecondition);
  const std::size_t after = pinned->text->shard_index(0).tree().total_postings() +
                            pinned->text->shard_index(1).tree().total_postings();
  EXPECT_EQ(after, before);

  // Single-shard service: resumes stay legal.
  service::SearchServiceConfig single = config;
  single.shards = 1;
  service::SearchService classic(single, &clock);
  ASSERT_TRUE(classic.IngestWindow(1, {"hello"}).ok());
  classic.FinishStream(1);
  EXPECT_TRUE(classic.IngestWindow(1, {"resumed"}).ok());
}

}  // namespace
}  // namespace rtsi::core
