// Arena lifecycle through the full index: bit-identical results with the
// arena on vs off, quarantine of retired arenas under pinned views, and
// the kLiveArena gauge balancing to zero when everything is released.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/memory_tracker.h"
#include "core/rtsi_index.h"
#include "lsm/index_view.h"
#include "lsm/lsm_tree.h"
#include "lsm/merge.h"

namespace rtsi::core {
namespace {

RtsiConfig SmallConfig(bool use_arena) {
  RtsiConfig config;
  config.lsm.delta = 512;  // Small I0: a few hundred windows per freeze.
  config.use_arena = use_arena;
  return config;
}

// Deterministic synthetic ingest: streams with skewed term vocabularies,
// popularity updates, finishes and deletes, enough volume to force
// several freeze+merge cascades at delta = 512.
void Feed(RtsiIndex& index, int num_streams, int windows_per_stream) {
  Timestamp now = 1000;
  for (int w = 0; w < windows_per_stream; ++w) {
    for (StreamId s = 0; s < static_cast<StreamId>(num_streams); ++s) {
      std::vector<TermCount> terms;
      for (int t = 0; t < 6; ++t) {
        const auto term = static_cast<TermId>((s * 7 + w * 3 + t * t) % 53);
        const auto tf = static_cast<TermFreq>(1 + (s + w + t) % 4);
        terms.push_back({term, tf});
      }
      terms.push_back({static_cast<TermId>(s % 53), 0});  // tf == 0 noise.
      index.InsertWindow(s, now, terms, /*live=*/true);
      now += 7;
      if ((s + w) % 11 == 0) index.UpdatePopularity(s, 3 + s % 5);
    }
  }
  for (StreamId s = 0; s < static_cast<StreamId>(num_streams); s += 9) {
    index.FinishStream(s);
  }
  for (StreamId s = 3; s < static_cast<StreamId>(num_streams); s += 17) {
    index.DeleteStream(s);
  }
  index.WaitForMerges();
}

TEST(LiveArenaTest, QueryResultsBitIdenticalArenaOnOff) {
  RtsiIndex with_arena(SmallConfig(true));
  RtsiIndex without_arena(SmallConfig(false));
  Feed(with_arena, 40, 12);
  Feed(without_arena, 40, 12);
  ASSERT_GT(with_arena.tree().num_levels(), 0u);  // Merges happened.
  ASSERT_GT(with_arena.LiveArenaStats().requests, 0u);
  ASSERT_EQ(without_arena.LiveArenaStats().requests, 0u);

  const Timestamp now = 100000;
  const std::vector<std::vector<TermId>> queries = {
      {1}, {5, 9}, {0, 13, 26}, {52}, {7, 7}, {999}, {2, 4, 8, 16, 32}};
  for (const auto& q : queries) {
    const auto a = with_arena.Query(q, 10, now, nullptr);
    const auto b = without_arena.Query(q, 10, now, nullptr);
    ASSERT_EQ(a.size(), b.size()) << "query size mismatch";
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].stream, b[i].stream) << "rank " << i;
      // Bit-identical, not approximately equal: the arena relocates
      // bytes, it must never change an intermediate fold.
      EXPECT_EQ(std::memcmp(&a[i].score, &b[i].score, sizeof(double)), 0)
          << "rank " << i << ": " << a[i].score << " vs " << b[i].score;
    }
  }
}

TEST(LiveArenaTest, RetiredArenasQuarantinedUntilPinnedViewDrops) {
  // Deterministic quarantine check at the LsmTree level: pin the view
  // from inside the merge (via the memoized is_deleted hook, which runs
  // after the frozen component was published and before the merge output
  // replaces it), so the pin provably holds the frozen component — and
  // with it the retired ingest arenas quarantined at FreezeL0.
  lsm::LsmTree::Config config;
  config.delta = 256;
  config.num_l0_shards = 4;
  config.use_arena = true;
  lsm::LsmTree tree(config);
  const std::shared_ptr<MemoryTracker> tracker = tree.memory_tracker();

  for (std::size_t i = 0; i < config.delta + 64; ++i) {
    tree.AddPosting(static_cast<TermId>(i % 37),
                    {static_cast<StreamId>(i % 19), 1.0f,
                     static_cast<Timestamp>(1000 + i), 1});
  }
  const std::size_t ingest_bytes = tracker->bytes(MemCategory::kLiveArena);
  ASSERT_GT(ingest_bytes, 0u);
  ASSERT_EQ(tree.ArenaStats().owned_bytes, ingest_bytes);

  lsm::IndexViewPtr pin;
  lsm::MergeHooks hooks;
  hooks.is_deleted = [&](StreamId) {
    if (pin == nullptr) pin = tree.PinView();
    return false;
  };
  tree.MergeCascade(hooks);
  ASSERT_NE(pin, nullptr);

  // The frozen component left the published view (merged into L1) but is
  // alive through the pin; its quarantined arenas keep every slab byte
  // charged. The fresh post-rotation arenas own nothing yet.
  EXPECT_GT(tree.retired_components(), 0u);
  EXPECT_EQ(tree.ArenaStats().owned_bytes, 0u);
  EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), ingest_bytes);

  // Last pin drops -> the component dies -> wholesale arena free.
  pin.reset();
  EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), 0u);
}

TEST(LiveArenaTest, GaugeBalancesToZeroWhenIndexDies) {
  auto index = std::make_unique<RtsiIndex>(SmallConfig(true));
  const std::shared_ptr<MemoryTracker> tracker =
      index->tree().memory_tracker();
  Feed(*index, 30, 10);
  ASSERT_GT(tracker->bytes(MemCategory::kLiveArena), 0u);
  // Destroying the index releases every arena byte: current L0 arenas,
  // live-table arenas, and any still-quarantined retirees.
  index.reset();
  EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), 0u);
}

TEST(LiveArenaTest, FreelistAbsorbsSteadyStateChurn) {
  // After enough windows, the live path should mostly recycle: upstream
  // (operator new) allocations must be a small fraction of requests.
  RtsiIndex index(SmallConfig(true));
  Feed(index, 40, 15);
  const WindowArena::Stats stats = index.LiveArenaStats();
  ASSERT_GT(stats.requests, 1000u);
  EXPECT_LT(stats.upstream_allocations, stats.requests / 10);
}

}  // namespace
}  // namespace rtsi::core
