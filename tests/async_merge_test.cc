// Background-merge mode: correctness must be unchanged, merges must
// actually happen off the inserting thread, and shutdown must drain.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/rtsi_index.h"

namespace rtsi::core {
namespace {

RtsiConfig AsyncConfig() {
  RtsiConfig config;
  config.lsm.delta = 150;
  config.lsm.num_l0_shards = 4;
  config.async_merge = true;
  return config;
}

TEST(AsyncMergeTest, MergesHappenInBackground) {
  RtsiIndex index(AsyncConfig());
  Timestamp t = 0;
  for (StreamId s = 0; s < 200; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond, {{10, 1}, {11, 1}}, false);
    index.FinishStream(s);
  }
  index.WaitForMerges();
  EXPECT_GT(index.GetMergeStats().merges, 0u);
  EXPECT_EQ(index.tree().total_postings(), 400u);
}

TEST(AsyncMergeTest, ResultsMatchSynchronousMode) {
  RtsiConfig sync_config = AsyncConfig();
  sync_config.async_merge = false;
  RtsiIndex sync_index(sync_config);
  RtsiIndex async_index(AsyncConfig());

  Rng rng(5);
  Timestamp t = 0;
  for (StreamId s = 0; s < 300; ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    for (int i = 0; i < 5; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(30));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
    }
    t += kMicrosPerSecond;
    sync_index.InsertWindow(s, t, terms, false);
    async_index.InsertWindow(s, t, terms, false);
    sync_index.FinishStream(s);
    async_index.FinishStream(s);
  }
  async_index.WaitForMerges();

  for (TermId a = 0; a < 30; ++a) {
    const auto r1 = sync_index.Query({a}, 10, t);
    const auto r2 = async_index.Query({a}, 10, t);
    ASSERT_EQ(r1.size(), r2.size()) << a;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << a << " rank " << i;
    }
  }
}

TEST(AsyncMergeTest, QueriesDuringBackgroundMergesSeeEverything) {
  RtsiIndex index(AsyncConfig());
  Timestamp t = 0;
  constexpr TermId kSentinel = 999;
  for (StreamId s = 0; s < 10; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond, {{kSentinel, 2}}, false);
    index.FinishStream(s);
  }
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    index.InsertWindow(100 + rng.NextUint64(200), t += kMicrosPerSecond,
                       {{static_cast<TermId>(rng.NextUint64(50)), 1}},
                       false);
    if (i % 50 == 0) {
      const auto results = index.Query({kSentinel}, 20, t);
      ASSERT_EQ(results.size(), 10u) << "iteration " << i;
    }
  }
  index.WaitForMerges();
  EXPECT_EQ(index.Query({kSentinel}, 20, t).size(), 10u);
}

TEST(AsyncMergeTest, MidStreamResultsMatchSyncModeContinuously) {
  // Top-k must be exact in both modes at *any* moment — regardless of
  // whether the background cascade has caught up (the pinned view
  // guarantees completeness, the live-term table exact totals).
  RtsiConfig sync_config = AsyncConfig();
  sync_config.async_merge = false;
  RtsiIndex sync_index(sync_config);
  RtsiIndex async_index(AsyncConfig());

  Rng rng(31);
  Timestamp t = 0;
  for (int step = 0; step < 1200; ++step) {
    t += kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(rng.NextUint64(100));
    std::vector<TermCount> terms = {
        {static_cast<TermId>(rng.NextUint64(25)),
         1 + static_cast<TermFreq>(rng.NextUint64(3))}};
    sync_index.InsertWindow(stream, t, terms, true);
    async_index.InsertWindow(stream, t, terms, true);
    if (step % 40 == 0) {
      const auto q = static_cast<TermId>(rng.NextUint64(25));
      const auto r1 = sync_index.Query({q}, 10, t);
      const auto r2 = async_index.Query({q}, 10, t);
      ASSERT_EQ(r1.size(), r2.size()) << step;
      for (std::size_t i = 0; i < r1.size(); ++i) {
        ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9)
            << "step " << step << " rank " << i;
      }
    }
  }
  async_index.WaitForMerges();
}

TEST(AsyncMergeTest, DestructorDrainsPendingMerges) {
  {
    RtsiIndex index(AsyncConfig());
    Timestamp t = 0;
    for (StreamId s = 0; s < 400; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond, {{1, 1}}, false);
    }
    // Destroyed with merges possibly queued; must not crash or leak.
  }
  SUCCEED();
}

}  // namespace
}  // namespace rtsi::core
