#include "index/compressed_postings.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rtsi::index {
namespace {

TermPostings MakeRandomPostings(int n, Rng& rng) {
  TermPostings postings;
  Timestamp t = 1000;
  for (int i = 0; i < n; ++i) {
    t += static_cast<Timestamp>(rng.NextUint64(60'000'000));
    postings.Append(Posting{rng.NextUint64(100000),
                            static_cast<float>(rng.NextUint64(5000)), t,
                            1 + static_cast<TermFreq>(rng.NextUint64(30))});
  }
  return postings;
}

TEST(CompressedPostingsTest, EmptyListRoundTrips) {
  TermPostings empty;
  const auto compressed = CompressedTermPostings::FromPostings(empty);
  EXPECT_TRUE(compressed.empty());
  const TermPostings decoded = compressed.Decode();
  EXPECT_TRUE(decoded.empty());
}

TEST(CompressedPostingsTest, PreservesEntriesExactly) {
  Rng rng(21);
  const TermPostings original = MakeRandomPostings(500, rng);
  const auto compressed = CompressedTermPostings::FromPostings(original);
  const TermPostings decoded = compressed.Decode();

  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded.entries()[i], original.entries()[i]) << i;
  }
}

TEST(CompressedPostingsTest, DecodedListIsSealed) {
  Rng rng(22);
  const auto compressed =
      CompressedTermPostings::FromPostings(MakeRandomPostings(100, rng));
  const TermPostings decoded = compressed.Decode();
  EXPECT_TRUE(decoded.sealed());
  EXPECT_TRUE(decoded.IsSorted(SortKey::kPopularity));
  EXPECT_TRUE(decoded.IsSorted(SortKey::kTermFrequency));
}

TEST(CompressedPostingsTest, BoundsAvailableWithoutDecode) {
  Rng rng(23);
  const TermPostings original = MakeRandomPostings(200, rng);
  const auto compressed = CompressedTermPostings::FromPostings(original);
  EXPECT_FLOAT_EQ(compressed.max_pop(), original.max_pop());
  EXPECT_EQ(compressed.max_frsh(), original.max_frsh());
  EXPECT_EQ(compressed.max_tf(), original.max_tf());
  EXPECT_EQ(compressed.size(), original.size());
}

TEST(CompressedPostingsTest, CompressesTypicalLists) {
  // Realistic posting data (small tf values, clustered timestamps) must
  // come out smaller than the raw struct array.
  Rng rng(24);
  TermPostings postings;
  Timestamp t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += 60'000'000;  // One window per minute.
    postings.Append(Posting{static_cast<StreamId>(40000 + i % 1000),
                            static_cast<float>(i % 50), t,
                            1 + static_cast<TermFreq>(i % 5)});
  }
  const std::size_t raw_bytes = postings.size() * sizeof(Posting);
  const auto compressed = CompressedTermPostings::FromPostings(postings);
  EXPECT_LT(compressed.MemoryBytes(), raw_bytes);
}

class CompressedRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CompressedRoundTrip, RandomListsRoundTrip) {
  Rng rng(GetParam() * 31);
  const int n = 1 + static_cast<int>(rng.NextUint64(800));
  const TermPostings original = MakeRandomPostings(n, rng);
  const TermPostings decoded =
      CompressedTermPostings::FromPostings(original).Decode();
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(decoded.entries()[i], original.entries()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressedRoundTrip, ::testing::Range(1, 11));

}  // namespace
}  // namespace rtsi::index
