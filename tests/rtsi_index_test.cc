// RTSI end-to-end behaviour: Algorithms 1-3, updates, lazy deletion, the
// consolidation invariant, and exact top-k agreement with a brute-force
// oracle under randomized live workloads.

#include "core/rtsi_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"

namespace rtsi::core {
namespace {

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 200;
  config.lsm.rho = 2.0;
  config.lsm.num_l0_shards = 4;
  return config;
}

std::vector<TermCount> Terms(
    std::initializer_list<std::pair<TermId, TermFreq>> list) {
  std::vector<TermCount> out;
  for (const auto& [term, tf] : list) out.push_back({term, tf});
  return out;
}

// Ground-truth mirror of the index content, scored with the same formula.
class Oracle {
 public:
  void Insert(StreamId stream, Timestamp now,
              const std::vector<TermCount>& terms) {
    auto& s = streams_[stream];
    s.frsh = std::max(s.frsh, now);
    for (const auto& tc : terms) s.tf[tc.term] += tc.tf;
  }
  void UpdatePop(StreamId stream, std::uint64_t delta) {
    streams_[stream].pop += delta;
  }
  void Delete(StreamId stream) { streams_[stream].deleted = true; }

  std::vector<ScoredStream> TopK(const RtsiIndex& index,
                                 const std::vector<TermId>& q, int k,
                                 Timestamp now) const {
    const Scorer scorer(index.config().weights,
                        index.config().freshness_tau_seconds);
    const std::uint64_t max_pop = index.stream_table().max_pop_count();
    std::vector<ScoredStream> all;
    for (const auto& [id, s] : streams_) {
      if (s.deleted) continue;
      double tfidf = 0.0;
      bool relevant = false;
      for (const TermId term : q) {
        auto it = s.tf.find(term);
        if (it != s.tf.end()) {
          relevant = true;
          tfidf += scorer.TermTfIdf(it->second, index.doc_freq().Idf(term));
        }
      }
      if (!relevant) continue;
      all.push_back(
          {id, scorer.Combine(scorer.PopScore(s.pop, max_pop),
                              scorer.RelScore(tfidf,
                                              static_cast<int>(q.size())),
                              scorer.FrshScore(s.frsh, now))});
    }
    std::sort(all.begin(), all.end(),
              [](const ScoredStream& a, const ScoredStream& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.stream < b.stream;
              });
    if (all.size() > static_cast<std::size_t>(k)) all.resize(k);
    return all;
  }

 private:
  struct StreamState {
    std::uint64_t pop = 0;
    Timestamp frsh = 0;
    std::map<TermId, TermFreq> tf;
    bool deleted = false;
  };
  std::map<StreamId, StreamState> streams_;
};

void ExpectSameTopK(const std::vector<ScoredStream>& got,
                    const std::vector<ScoredStream>& expected,
                    const std::string& context) {
  ASSERT_EQ(got.size(), expected.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // Scores must match position by position (stream ids may swap on ties).
    ASSERT_NEAR(got[i].score, expected[i].score, 1e-9)
        << context << " position " << i;
  }
  // And the multiset of (score-rounded) streams must coincide except ties:
  // verify each returned stream's score equals the oracle score at the
  // same rank.
}

TEST(RtsiIndexTest, InsertedStreamIsImmediatelySearchable) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 3}, {11, 1}}), true);
  const auto results = index.Query({10}, 5, 2000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].stream, 1u);
  EXPECT_GT(results[0].score, 0.0);
}

TEST(RtsiIndexTest, EmptyAndUnknownQueries) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 3}}), true);
  EXPECT_TRUE(index.Query({}, 5, 2000).empty());
  EXPECT_TRUE(index.Query({999}, 5, 2000).empty());
  EXPECT_TRUE(index.Query({10}, 0, 2000).empty());
}

TEST(RtsiIndexTest, DuplicateQueryTermsCollapse) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 3}}), true);
  const auto once = index.Query({10}, 5, 2000);
  const auto twice = index.Query({10, 10}, 5, 2000);
  ASSERT_EQ(once.size(), twice.size());
  EXPECT_NEAR(once[0].score, twice[0].score, 1e-12);
}

TEST(RtsiIndexTest, MultiWindowTermFrequenciesAccumulate) {
  RtsiIndex index(SmallConfig());
  // Stream 1: term 10 five times across two windows. Stream 2: twice.
  index.InsertWindow(1, 1000, Terms({{10, 3}}), true);
  index.InsertWindow(1, 2000, Terms({{10, 2}}), true);
  index.InsertWindow(2, 2000, Terms({{10, 2}}), true);
  const auto results = index.Query({10}, 5, 3000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 1u);  // Higher total tf wins (same frsh/pop).
}

TEST(RtsiIndexTest, RelevanceUsesIdf) {
  RtsiIndex index(SmallConfig());
  // Term 20 appears in every stream (low idf); term 30 only in stream 5.
  for (StreamId s = 1; s <= 10; ++s) {
    index.InsertWindow(s, 1000, Terms({{20, 2}}), false);
  }
  index.InsertWindow(5, 1000, Terms({{30, 2}}), false);
  const auto results = index.Query({20, 30}, 3, 2000);
  ASSERT_GE(results.size(), 3u);
  EXPECT_EQ(results[0].stream, 5u);  // Matches the rare term too.
}

TEST(RtsiIndexTest, FreshnessBreaksTies) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 2}}), false);
  index.InsertWindow(2, 1000 + 2 * kMicrosPerHour, Terms({{10, 2}}), false);
  const auto results = index.Query({10}, 2, 1000 + 3 * kMicrosPerHour);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 2u);
}

TEST(RtsiIndexTest, PopularityUpdateChangesRanking) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 2}}), false);
  index.InsertWindow(2, 1000, Terms({{10, 2}}), false);
  index.UpdatePopularity(2, 5000);
  const auto results = index.Query({10}, 2, 2000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 2u);
}

TEST(RtsiIndexTest, DeletedStreamDisappearsImmediately) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 1000, Terms({{10, 2}}), true);
  index.InsertWindow(2, 1000, Terms({{10, 2}}), true);
  index.DeleteStream(1);
  const auto results = index.Query({10}, 5, 2000);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].stream, 2u);
}

TEST(RtsiIndexTest, LazyDeletionPurgesAtMerge) {
  auto config = SmallConfig();
  config.lsm.delta = 50;
  RtsiIndex index(config);
  Timestamp t = 0;
  // Insert enough to force merges, delete half the streams.
  for (StreamId s = 0; s < 40; ++s) {
    for (int w = 0; w < 3; ++w) {
      index.InsertWindow(s, t += 1000, Terms({{10, 1}, {11, 1}}), false);
    }
  }
  for (StreamId s = 0; s < 20; ++s) index.DeleteStream(s);
  // Trigger more merges; purged postings must be reported.
  for (StreamId s = 100; s < 140; ++s) {
    index.InsertWindow(s, t += 1000, Terms({{10, 1}, {11, 1}}), false);
  }
  const auto stats = index.GetMergeStats();
  EXPECT_GT(stats.purged_postings, 0u);
  // Deleted streams never come back.
  for (const auto& r : index.Query({10}, 100, t)) {
    EXPECT_GE(r.stream, 20u);
  }
}

TEST(RtsiIndexTest, LiveTableShrinksAfterFinishAndMerge) {
  auto config = SmallConfig();
  config.lsm.delta = 60;
  RtsiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 30; ++s) {
    for (int w = 0; w < 4; ++w) {
      index.InsertWindow(s, t += 1000, Terms({{10, 1}, {11, 1}, {12, 1}}),
                         true);
    }
    index.FinishStream(s);
  }
  // Force consolidation with more (finished) traffic.
  for (StreamId s = 100; s < 160; ++s) {
    index.InsertWindow(s, t += 1000, Terms({{10, 1}}), false);
    index.FinishStream(s);
  }
  // After merges, finished consolidated streams leave the live table.
  EXPECT_LT(index.live_table().num_streams(), 30u + 60u);
}

TEST(RtsiIndexTest, QueryStatsArePopulated) {
  auto config = SmallConfig();
  config.lsm.delta = 50;
  RtsiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 100; ++s) {
    index.InsertWindow(s, t += 1000, Terms({{10, 1}, {11, 2}}), false);
    index.FinishStream(s);
  }
  QueryStats stats;
  const auto results = index.Query({10, 11}, 5, t, &stats);
  EXPECT_EQ(results.size(), 5u);
  EXPECT_GT(stats.candidates_scored, 0u);
  EXPECT_GT(stats.postings_scanned, 0u);
}

TEST(RtsiIndexTest, MemoryBytesGrowsWithContent) {
  RtsiIndex index(SmallConfig());
  const std::size_t empty_bytes = index.MemoryBytes();
  Timestamp t = 0;
  for (StreamId s = 0; s < 50; ++s) {
    index.InsertWindow(s, t += 1000, Terms({{10, 1}, {11, 1}, {12, 1}}),
                       false);
  }
  EXPECT_GT(index.MemoryBytes(), empty_bytes);
}

// ---------------------------------------------------------------------------
// Randomized oracle comparison. Exercises merges, finishes, deletions and
// multi-window accumulation; configurations where exact top-k is
// guaranteed (see core/config.h): no popularity updates with kSnapshot,
// or kGlobalPop with updates, or bound disabled.

struct OracleCase {
  int seed;
  bool with_updates;
  bool use_bound;
  BoundMode mode;
};

class RtsiOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(RtsiOracleTest, TopKMatchesBruteForce) {
  const OracleCase param = GetParam();
  auto config = SmallConfig();
  config.lsm.delta = 150;
  config.use_bound = param.use_bound;
  config.bound_mode = param.mode;
  RtsiIndex index(config);
  Oracle oracle;
  Rng rng(param.seed);

  constexpr int kNumStreams = 60;
  constexpr int kVocab = 40;
  std::vector<int> windows_left(kNumStreams);
  for (auto& w : windows_left) w = 1 + static_cast<int>(rng.NextUint64(6));

  Timestamp t = 1000;
  for (int step = 0; step < 400; ++step) {
    t += 30 * kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(rng.NextUint64(kNumStreams));
    const double action = rng.NextDouble();
    if (action < 0.70) {
      if (windows_left[stream] <= 0) continue;
      --windows_left[stream];
      std::vector<TermCount> terms;
      const int num_terms = 1 + static_cast<int>(rng.NextUint64(6));
      std::set<TermId> used;
      for (int i = 0; i < num_terms; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
        if (!used.insert(term).second) continue;
        terms.push_back(
            {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
      }
      const bool live = windows_left[stream] > 0;
      index.InsertWindow(stream, t, terms, live);
      if (!live) index.FinishStream(stream);
      oracle.Insert(stream, t, terms);
    } else if (action < 0.80 && param.with_updates) {
      const std::uint64_t delta = 1 + rng.NextUint64(100);
      index.UpdatePopularity(stream, delta);
      oracle.UpdatePop(stream, delta);
    } else if (action < 0.83) {
      index.DeleteStream(stream);
      oracle.Delete(stream);
      windows_left[stream] = 0;
    } else {
      // Query.
      std::vector<TermId> q;
      q.push_back(static_cast<TermId>(rng.NextUint64(kVocab)));
      if (rng.NextBool(0.7)) {
        q.push_back(static_cast<TermId>(rng.NextUint64(kVocab)));
      }
      const int k = 1 + static_cast<int>(rng.NextUint64(10));
      const auto got = index.Query(q, k, t);
      const auto expected = oracle.TopK(index, q, k, t);
      ExpectSameTopK(got, expected,
                     "step " + std::to_string(step) + " seed " +
                         std::to_string(param.seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RtsiOracleTest,
    ::testing::Values(
        OracleCase{1, false, true, BoundMode::kSnapshot},
        OracleCase{2, false, true, BoundMode::kSnapshot},
        OracleCase{3, false, true, BoundMode::kSnapshot},
        OracleCase{4, true, true, BoundMode::kGlobalPop},
        OracleCase{5, true, true, BoundMode::kGlobalPop},
        OracleCase{6, true, false, BoundMode::kSnapshot},
        OracleCase{7, true, false, BoundMode::kSnapshot},
        OracleCase{8, false, false, BoundMode::kSnapshot}));

TEST(RtsiIndexTest, BoundOnAndOffAgree) {
  auto config_on = SmallConfig();
  config_on.lsm.delta = 100;
  config_on.use_bound = true;
  auto config_off = config_on;
  config_off.use_bound = false;

  RtsiIndex with_bound(config_on);
  RtsiIndex without_bound(config_off);
  Rng rng(77);
  Timestamp t = 0;
  for (StreamId s = 0; s < 200; ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    for (int i = 0; i < 5; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(30));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
    }
    t += kMicrosPerSecond;
    with_bound.InsertWindow(s, t, terms, false);
    without_bound.InsertWindow(s, t, terms, false);
    with_bound.FinishStream(s);
    without_bound.FinishStream(s);
  }
  for (TermId a = 0; a < 30; ++a) {
    const auto r1 = with_bound.Query({a, (a + 7) % 30}, 10, t);
    const auto r2 = without_bound.Query({a, (a + 7) % 30}, 10, t);
    ASSERT_EQ(r1.size(), r2.size()) << a;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << a << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace rtsi::core
