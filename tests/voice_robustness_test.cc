// Robustness of the voice path: decoding noisy audio, degenerate query
// audio, and the interplay of snapshots with background merges.

#include <gtest/gtest.h>

#include <cstdio>

#include "asr/acoustic_model.h"
#include "asr/decoder.h"
#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/clock.h"
#include "common/rng.h"
#include "service/search_service.h"
#include "storage/snapshot.h"

namespace rtsi {
namespace {

class VoiceRobustness : public ::testing::Test {
 protected:
  VoiceRobustness()
      : extractor_(audio::MfccConfig{}),
        model_(extractor_),
        decoder_(&extractor_, &model_, asr::DecoderConfig{}) {}

  audio::MfccExtractor extractor_;
  asr::AcousticModel model_;
  asr::LatticeDecoder decoder_;
};

TEST_F(VoiceRobustness, DecodesPureNoiseWithoutCrashing) {
  Rng rng(3);
  audio::PcmBuffer pcm;
  pcm.sample_rate_hz = 16000;
  pcm.samples.resize(16000);
  for (auto& s : pcm.samples) {
    s = static_cast<float>(rng.NextDouble() - 0.5);
  }
  const asr::PhoneticLattice lattice = decoder_.Decode(pcm);
  // Noise decodes to *something*; every segment must be well-formed.
  for (const auto& segment : lattice.segments()) {
    ASSERT_FALSE(segment.hypotheses.empty());
    double total = 0.0;
    for (const auto& h : segment.hypotheses) {
      ASSERT_GE(h.posterior, 0.0);
      total += h.posterior;
    }
    ASSERT_LE(total, 1.0 + 1e-6);
  }
}

TEST_F(VoiceRobustness, DecodesSilence) {
  audio::PcmBuffer silence;
  silence.sample_rate_hz = 16000;
  silence.samples.assign(8000, 0.0f);
  const asr::PhoneticLattice lattice = decoder_.Decode(silence);
  (void)lattice;  // Must simply not crash; content is unspecified.
  SUCCEED();
}

TEST_F(VoiceRobustness, EmptyAudioYieldsEmptyLattice) {
  audio::PcmBuffer empty;
  EXPECT_TRUE(decoder_.Decode(empty).empty());
}

TEST_F(VoiceRobustness, NoisyVowelsStillDecodable) {
  // Vowels with heavy background noise: the best path should still
  // contain the true phones more often than chance.
  audio::SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.04;  // ~24 dB SNR against the formants.
  const audio::Synthesizer synth(synth_config);
  Rng rng(17);

  int hits = 0, trials = 0;
  for (const char* name : {"iy", "aa", "uw", "ao", "eh"}) {
    const asr::PhonemeId phone = asr::PhonemeByName(name);
    audio::PhoneSpec spec = asr::PhonemeSpec(phone);
    spec.duration_seconds = 0.2;
    const auto lattice = decoder_.Decode(synth.Render({spec}, rng));
    ++trials;
    for (const asr::PhonemeId p : lattice.BestPath()) {
      if (p == phone) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits, trials - 1);  // At most one vowel lost to noise.
}

TEST(VoiceServiceRobustness, VoiceSearchOnShortAudio) {
  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  service::SearchService search_service(config, &clock);
  search_service.IngestWindow(1, {"news", "update"});

  audio::PcmBuffer tiny;
  tiny.sample_rate_hz = 16000;
  tiny.samples.assign(100, 0.1f);  // Shorter than one MFCC frame.
  const auto results = search_service.SearchVoice(tiny, 5);
  EXPECT_TRUE(results.empty());  // Nothing decodable; no crash.
}

TEST(SnapshotWithAsyncMerge, SaveAfterWaitIsConsistent) {
  core::RtsiConfig config;
  config.lsm.delta = 150;
  config.async_merge = true;
  core::RtsiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 300; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond, {{static_cast<TermId>(s % 20), 2}}, false);
    index.FinishStream(s);
  }
  index.WaitForMerges();

  const std::string path = "/tmp/rtsi_async_snap_test.snap";
  ASSERT_TRUE(storage::SaveIndexSnapshot(index, path).ok());
  auto loaded = storage::LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->tree().total_postings(),
            index.tree().total_postings());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtsi
