#include "index/inverted_index.h"

#include <gtest/gtest.h>

namespace rtsi::index {
namespace {

Posting P(StreamId s, float pop, Timestamp frsh, TermFreq tf) {
  return Posting{s, pop, frsh, tf};
}

TEST(InvertedIndexTest, AddAndGet) {
  InvertedIndex idx(0);
  idx.Add(1, P(10, 1.0f, 100, 2));
  idx.Add(1, P(11, 2.0f, 200, 3));
  idx.Add(2, P(10, 1.0f, 100, 1));
  EXPECT_EQ(idx.num_terms(), 2u);
  EXPECT_EQ(idx.num_postings(), 3u);
  ASSERT_NE(idx.GetPlain(1), nullptr);
  EXPECT_EQ(idx.GetPlain(1)->size(), 2u);
  EXPECT_EQ(idx.GetPlain(3), nullptr);
}

TEST(InvertedIndexTest, ViewOnPlainBorrows) {
  InvertedIndex idx(0);
  idx.Add(7, P(1, 1.0f, 1, 1));
  const TermPostingsView view = idx.View(7);
  ASSERT_TRUE(static_cast<bool>(view));
  EXPECT_EQ(view->size(), 1u);
  EXPECT_FALSE(static_cast<bool>(idx.View(8)));
}

TEST(InvertedIndexTest, BoundsReflectMaxima) {
  InvertedIndex idx(0);
  idx.Add(1, P(10, 5.0f, 100, 2));
  idx.Add(1, P(11, 9.0f, 300, 8));
  const TermBounds bounds = idx.Bounds(1);
  EXPECT_TRUE(bounds.present);
  EXPECT_FLOAT_EQ(bounds.max_pop, 9.0f);
  EXPECT_EQ(bounds.max_frsh, 300);
  EXPECT_EQ(bounds.max_tf, 8u);
  EXPECT_FALSE(idx.Bounds(42).present);
}

TEST(InvertedIndexTest, CompressAllPreservesContent) {
  InvertedIndex idx(1);
  for (int t = 0; t < 5; ++t) {
    for (int i = 0; i < 20; ++i) {
      idx.Add(t, P(i, static_cast<float>(i), 100 + i, 1 + i % 3));
    }
  }
  idx.SealAll();
  const std::size_t plain_bytes = idx.MemoryBytes();
  idx.CompressAll();
  EXPECT_TRUE(idx.compressed());
  EXPECT_LT(idx.MemoryBytes(), plain_bytes);
  EXPECT_EQ(idx.num_postings(), 100u);
  EXPECT_EQ(idx.num_terms(), 5u);

  // Views decode on demand.
  const TermPostingsView view = idx.View(3);
  ASSERT_TRUE(static_cast<bool>(view));
  EXPECT_EQ(view->size(), 20u);
  EXPECT_TRUE(view->sealed());

  // Bounds survive compression.
  const TermBounds bounds = idx.Bounds(3);
  EXPECT_TRUE(bounds.present);
  EXPECT_FLOAT_EQ(bounds.max_pop, 19.0f);

  // Plain access is gone.
  EXPECT_EQ(idx.GetPlain(3), nullptr);
}

TEST(InvertedIndexTest, TakeTermsEmptiesIndex) {
  InvertedIndex idx(0);
  idx.Add(1, P(1, 1.0f, 1, 1));
  idx.Add(2, P(2, 2.0f, 2, 2));
  auto terms = idx.TakeTerms();
  EXPECT_EQ(terms.size(), 2u);
  EXPECT_EQ(idx.num_postings(), 0u);
  EXPECT_EQ(idx.num_terms(), 0u);
}

TEST(InvertedIndexTest, PutReplacesExisting) {
  InvertedIndex idx(1);
  TermPostings a;
  a.Append(P(1, 1.0f, 1, 1));
  idx.Put(5, std::move(a));
  EXPECT_EQ(idx.num_postings(), 1u);

  TermPostings b;
  b.Append(P(2, 2.0f, 2, 2));
  b.Append(P(3, 3.0f, 3, 3));
  idx.Put(5, std::move(b));
  EXPECT_EQ(idx.num_postings(), 2u);
  EXPECT_EQ(idx.GetPlain(5)->size(), 2u);
}

TEST(InvertedIndexTest, ForEachTermVisitsAll) {
  InvertedIndex idx(0);
  idx.Add(1, P(1, 1.0f, 1, 1));
  idx.Add(2, P(2, 2.0f, 2, 2));
  idx.Add(3, P(3, 3.0f, 3, 3));
  int visited = 0;
  std::size_t postings = 0;
  idx.ForEachTerm([&](TermId term, const TermPostings& p) {
    (void)term;
    ++visited;
    postings += p.size();
  });
  EXPECT_EQ(visited, 3);
  EXPECT_EQ(postings, 3u);
}

TEST(InvertedIndexTest, ForEachTermWorksCompressed) {
  InvertedIndex idx(1);
  idx.Add(1, P(1, 1.0f, 1, 1));
  idx.Add(1, P(2, 2.0f, 2, 2));
  idx.SealAll();
  idx.CompressAll();
  std::size_t postings = 0;
  idx.ForEachTerm([&](TermId, const TermPostings& p) { postings += p.size(); });
  EXPECT_EQ(postings, 2u);
}

}  // namespace
}  // namespace rtsi::index
