#include "baseline/metadata_index.h"

#include <gtest/gtest.h>

namespace rtsi::baseline {
namespace {

core::RtsiConfig SmallConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 100;
  return config;
}

TEST(MetadataIndexTest, IndexesOnlyLeadingTermsOfFirstWindow) {
  MetadataIndex index(SmallConfig(), /*metadata_terms=*/2);
  index.InsertWindow(1, 1000, {{10, 1}, {11, 1}, {12, 1}}, true);
  index.InsertWindow(1, 2000, {{13, 5}}, true);  // Later window: ignored.

  EXPECT_EQ(index.Query({10}, 5, 3000).size(), 1u);
  EXPECT_EQ(index.Query({11}, 5, 3000).size(), 1u);
  EXPECT_TRUE(index.Query({12}, 5, 3000).empty());  // Beyond the cap.
  EXPECT_TRUE(index.Query({13}, 5, 3000).empty());  // Said later.
}

TEST(MetadataIndexTest, ScoringModelMatchesCore) {
  MetadataIndex index(SmallConfig());
  index.InsertWindow(1, 1000, {{10, 2}}, false);
  index.InsertWindow(2, 1000, {{10, 2}}, false);
  index.UpdatePopularity(2, 10000);
  const auto results = index.Query({10}, 2, 2000);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 2u);  // Popularity breaks the tie.
}

TEST(MetadataIndexTest, DeleteHidesStream) {
  MetadataIndex index(SmallConfig());
  index.InsertWindow(1, 1000, {{10, 1}}, true);
  index.DeleteStream(1);
  EXPECT_TRUE(index.Query({10}, 5, 2000).empty());
}

TEST(MetadataIndexTest, UsesFarLessMemoryThanItWouldFullText) {
  MetadataIndex index(SmallConfig(), 4);
  std::vector<core::TermCount> big_window;
  for (TermId t = 0; t < 200; ++t) big_window.push_back({t, 1});
  for (StreamId s = 0; s < 50; ++s) {
    index.InsertWindow(s, 1000 + s, big_window, false);
  }
  // 50 streams x 4 metadata terms, not 50 x 200.
  EXPECT_TRUE(index.Query({100}, 5, 5000).empty());
  EXPECT_EQ(index.Query({2}, 100, 5000).size(), 50u);
}

}  // namespace
}  // namespace rtsi::baseline
