// Crash-recovery torture test: run a journaled workload with a fault
// injected at EVERY filesystem syscall boundary (write, fsync, rename,
// unlink, directory fsync), simulate power loss, reopen, and verify that
// no acknowledged operation is lost and the recovered index matches an
// uninterrupted oracle bit-for-bit.
//
// The invariant checked for each crash point: the recovered state equals
// the oracle state after some prefix of the workload whose length is at
// least the number of acknowledged (non-degraded) operations. With
// flush_each_record every acknowledged op is fdatasync'd, so the prefix
// is exactly the acked count; the looser form also covers group commit.

#include "storage/journal.h"

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/rtsi_index.h"
#include "storage/fault_injection.h"
#include "workload/trace.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using workload::TraceOp;

const char* kDir = "/tmp/rtsi_crash_recovery_test";

std::string SnapPath() { return std::string(kDir) + "/index.snap"; }
std::string JournalPath() { return std::string(kDir) + "/index.journal"; }

// Removes every file in the test directory (snapshots, journals, rotated
// journals, leftover temporaries), creating the directory if needed.
void CleanDir() {
  ::mkdir(kDir, 0755);
  DIR* dir = ::opendir(kDir);
  if (dir == nullptr) return;
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dir);
  for (const std::string& name : names) {
    std::remove((std::string(kDir) + "/" + name).c_str());
  }
}

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.num_l0_shards = 2;
  return config;
}

constexpr TermId kVocab = 8;
constexpr StreamId kNumStreams = 8;

// A deterministic mutation-only workload mixing inserts, popularity
// updates, a finish and a delete.
std::vector<TraceOp> MakeWorkload(int n) {
  std::vector<TraceOp> ops;
  Timestamp now = 0;
  for (int i = 0; i < n; ++i) {
    now += kMicrosPerSecond;
    TraceOp op;
    if (i == 11) {
      op.kind = TraceOp::Kind::kFinish;
      op.stream = 1;
    } else if (i == 17) {
      op.kind = TraceOp::Kind::kDelete;
      op.stream = 3;
    } else if (i % 6 == 5) {
      op.kind = TraceOp::Kind::kUpdate;
      op.stream = static_cast<StreamId>(i % kNumStreams);
      op.delta = 3 + i % 5;
    } else {
      op.kind = TraceOp::Kind::kInsert;
      op.stream = static_cast<StreamId>(i % kNumStreams);
      op.now = now;
      op.live = true;
      op.terms = {{static_cast<TermId>(i % kVocab),
                   static_cast<TermFreq>(1 + i % 3)},
                  {static_cast<TermId>((i + 3) % kVocab), 1}};
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void ApplyOp(core::SearchIndex& index, const TraceOp& op) {
  switch (op.kind) {
    case TraceOp::Kind::kInsert:
      index.InsertWindow(op.stream, op.now, op.terms, op.live);
      break;
    case TraceOp::Kind::kFinish:
      index.FinishStream(op.stream);
      break;
    case TraceOp::Kind::kDelete:
      index.DeleteStream(op.stream);
      break;
    case TraceOp::Kind::kUpdate:
      index.UpdatePopularity(op.stream, op.delta);
      break;
    case TraceOp::Kind::kQuery:
      break;
  }
}

// One top-k result list per vocabulary term, sorted by stream id so the
// comparison is insensitive to tie order.
using Probe = std::vector<std::vector<std::pair<StreamId, double>>>;

Probe ProbeIndex(core::SearchIndex& index) {
  Probe probe(kVocab);
  for (TermId t = 0; t < kVocab; ++t) {
    for (const auto& r :
         index.Query({t}, 2 * static_cast<int>(kNumStreams),
                     1'000'000'000'000LL)) {
      probe[t].emplace_back(r.stream, r.score);
    }
    std::sort(probe[t].begin(), probe[t].end());
  }
  return probe;
}

bool SameProbe(const Probe& a, const Probe& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].size() != b[t].size()) return false;
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      if (a[t][i].first != b[t][i].first) return false;
      if (std::fabs(a[t][i].second - b[t][i].second) > 1e-9) return false;
    }
  }
  return true;
}

// Applies the workload through a DurableIndex with a checkpoint before
// each op index in `checkpoints`. Returns the number of acknowledged
// operations: ops applied while the index was healthy. Ops issued in
// degraded mode are rejected (never applied, never acknowledged).
std::size_t RunWorkload(const std::vector<TraceOp>& ops,
                        const std::vector<int>& checkpoints) {
  auto opened = DurableIndex::Open(SmallConfig(), SnapPath(), JournalPath(),
                                   /*flush_each_record=*/true);
  if (!opened.ok()) return 0;  // Crashed during open: nothing acked.
  auto& index = *opened.value();
  std::size_t acked = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (std::find(checkpoints.begin(), checkpoints.end(),
                  static_cast<int>(i)) != checkpoints.end()) {
      (void)index.Checkpoint();
    }
    ApplyOp(index, ops[i]);
    if (!index.degraded()) ++acked;
  }
  return acked;
}

TEST(CrashRecoveryTortureTest, EveryCrashPointLosesNoAckedOps) {
  const int kOps = 26;
  // Two checkpoints: the second one rotates the journal and renames the
  // new snapshot over an EXISTING old one, exercising the
  // rename-over-existing-target and rotated-journal-unlink crash windows
  // (including undo rollback restoring the old snapshot / old journal).
  const std::vector<int> kCheckpoints = {8, 17};
  const std::vector<TraceOp> ops = MakeWorkload(kOps);

  // Oracle: the query results after every prefix of the workload,
  // computed on a plain (non-durable) index.
  std::vector<Probe> oracle(kOps + 1);
  {
    core::RtsiIndex reference(SmallConfig());
    oracle[0] = ProbeIndex(reference);
    for (int i = 0; i < kOps; ++i) {
      ApplyOp(reference, ops[i]);
      oracle[i + 1] = ProbeIndex(reference);
    }
  }

  auto& fi = FaultInjection::Instance();

  // Enumerate the fault points with one instrumented, un-armed run.
  CleanDir();
  fi.Enable();
  const std::size_t clean_acked = RunWorkload(ops, kCheckpoints);
  const std::uint64_t total_points = fi.ops_seen();
  fi.Disable();
  ASSERT_EQ(clean_acked, static_cast<std::size_t>(kOps));
  // Sanity: the workload must exercise appends, syncs and a checkpoint.
  ASSERT_GT(total_points, 60u);

  for (std::uint64_t point = 0; point < total_points; ++point) {
    SCOPED_TRACE("crash at fault point " + std::to_string(point) + "/" +
                 std::to_string(total_points));
    CleanDir();
    fi.Enable();
    fi.ArmFaultAt(point, /*crash=*/true);
    const std::size_t acked = RunWorkload(ops, kCheckpoints);
    EXPECT_TRUE(fi.crash_triggered());

    // Vary the power-loss model across points: sometimes a torn tail of
    // unsynced bytes survives, sometimes directory ops are rolled back.
    FaultInjection::CrashOptions crash;
    crash.keep_unsynced_tail_bytes = (point % 3 == 0) ? 7 : 0;
    crash.undo_unsynced_dir_ops = (point % 2 == 0);
    fi.SimulateCrash(crash);
    fi.Disable();

    RecoveryStats stats;
    auto reopened = DurableIndex::Open(SmallConfig(), SnapPath(),
                                       JournalPath(), true, &stats);
    ASSERT_TRUE(reopened.ok())
        << "recovery failed: " << reopened.status().ToString();
    const Probe recovered = ProbeIndex(*reopened.value());

    bool matched = false;
    for (std::size_t len = acked; len <= ops.size() && !matched; ++len) {
      matched = SameProbe(recovered, oracle[len]);
    }
    EXPECT_TRUE(matched)
        << "acked=" << acked
        << " but recovered state matches no workload prefix >= acked "
        << "(acknowledged operations were lost or corrupted)";
  }
  CleanDir();
}

// Crash points must also be survivable on a RE-opened index: the second
// process life starts from recovered files rather than a fresh
// directory, so its fault-point sequence (snapshot load, replay
// truncation, rotation) differs from the first life's.
TEST(CrashRecoveryTortureTest, CrashPointsAfterRecoveryAlsoSurvive) {
  const int kOps = 14;
  const std::vector<TraceOp> ops = MakeWorkload(kOps);
  const int kSplit = 9;  // First life applies [0, kSplit), second the rest.

  std::vector<Probe> oracle(kOps + 1);
  {
    core::RtsiIndex reference(SmallConfig());
    oracle[0] = ProbeIndex(reference);
    for (int i = 0; i < kOps; ++i) {
      ApplyOp(reference, ops[i]);
      oracle[i + 1] = ProbeIndex(reference);
    }
  }

  auto& fi = FaultInjection::Instance();
  const std::vector<TraceOp> first(ops.begin(), ops.begin() + kSplit);
  const std::vector<TraceOp> rest(ops.begin() + kSplit, ops.end());

  // Enumerate the second life's fault points.
  CleanDir();
  ASSERT_EQ(RunWorkload(first, {}), first.size());
  fi.Enable();
  ASSERT_EQ(RunWorkload(rest, {2}), rest.size());
  const std::uint64_t total_points = fi.ops_seen();
  fi.Disable();
  ASSERT_GT(total_points, 20u);

  for (std::uint64_t point = 0; point < total_points; ++point) {
    SCOPED_TRACE("crash at second-life fault point " +
                 std::to_string(point));
    CleanDir();
    ASSERT_EQ(RunWorkload(first, {}), first.size());
    fi.Enable();
    fi.ArmFaultAt(point, /*crash=*/true);
    const std::size_t acked = RunWorkload(rest, {2});
    FaultInjection::CrashOptions crash;
    crash.keep_unsynced_tail_bytes = (point % 2 == 0) ? 3 : 0;
    crash.undo_unsynced_dir_ops = (point % 2 == 1);
    fi.SimulateCrash(crash);
    fi.Disable();

    auto reopened =
        DurableIndex::Open(SmallConfig(), SnapPath(), JournalPath(), true);
    ASSERT_TRUE(reopened.ok())
        << "recovery failed: " << reopened.status().ToString();
    const Probe recovered = ProbeIndex(*reopened.value());
    bool matched = false;
    for (std::size_t len = first.size() + acked;
         len <= ops.size() && !matched; ++len) {
      matched = SameProbe(recovered, oracle[len]);
    }
    EXPECT_TRUE(matched) << "acked=" << first.size() + acked
                         << " ops lost across two crashes";
  }
  CleanDir();
}

TEST(CrashRecoveryTest, GroupCommitBoundsLossToUnsyncedTail) {
  CleanDir();
  auto& fi = FaultInjection::Instance();
  fi.Enable();  // Track durability; no fault armed.
  const std::vector<TraceOp> ops = MakeWorkload(10);
  JournalOptions options;
  options.group_commit_records = 4;
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), SnapPath(), JournalPath(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    for (const TraceOp& op : ops) ApplyOp(*opened.value(), op);
    ASSERT_FALSE(opened.value()->degraded());
  }
  // Power loss: records 9 and 10 were appended but never group-committed.
  fi.SimulateCrash(FaultInjection::CrashOptions{});
  fi.Disable();

  RecoveryStats stats;
  auto reopened = DurableIndex::Open(SmallConfig(), SnapPath(), JournalPath(),
                                     true, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 8u);  // Two full group commits survive.

  core::RtsiIndex reference(SmallConfig());
  for (int i = 0; i < 8; ++i) ApplyOp(reference, ops[i]);
  EXPECT_TRUE(SameProbe(ProbeIndex(*reopened.value()),
                        ProbeIndex(reference)));
  CleanDir();
}

TEST(CrashRecoveryTest, FlushMakesGroupCommitTailDurable) {
  CleanDir();
  auto& fi = FaultInjection::Instance();
  fi.Enable();
  const std::vector<TraceOp> ops = MakeWorkload(10);
  JournalOptions options;
  options.group_commit_records = 4;
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), SnapPath(), JournalPath(), options);
    ASSERT_TRUE(opened.ok());
    for (const TraceOp& op : ops) ApplyOp(*opened.value(), op);
    ASSERT_TRUE(opened.value()->Flush().ok());
  }
  fi.SimulateCrash(FaultInjection::CrashOptions{});
  fi.Disable();

  RecoveryStats stats;
  auto reopened = DurableIndex::Open(SmallConfig(), SnapPath(), JournalPath(),
                                     true, &stats);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(stats.ops_replayed, 10u);  // Flush() made the tail durable.
  CleanDir();
}

}  // namespace
}  // namespace rtsi::storage
