#include "core/scorer.h"

#include <gtest/gtest.h>

#include "core/doc_freq.h"
#include "core/top_k.h"

namespace rtsi::core {
namespace {

Scorer DefaultScorer() { return Scorer(ScoreWeights{}, 6.0 * 3600.0); }

TEST(ScorerTest, PopScoreNormalized) {
  const Scorer scorer = DefaultScorer();
  EXPECT_DOUBLE_EQ(scorer.PopScore(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(scorer.PopScore(100, 100), 1.0);
  const double mid = scorer.PopScore(10, 100);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(ScorerTest, PopScoreZeroMaxIsZero) {
  const Scorer scorer = DefaultScorer();
  EXPECT_DOUBLE_EQ(scorer.PopScore(0, 0), 0.0);
}

TEST(ScorerTest, PopScoreMonotoneInCount) {
  const Scorer scorer = DefaultScorer();
  double prev = -1.0;
  for (std::uint64_t count : {0ULL, 1ULL, 10ULL, 100ULL, 1000ULL}) {
    const double s = scorer.PopScore(count, 1000);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(ScorerTest, FreshnessDecaysWithAge) {
  const Scorer scorer = DefaultScorer();
  const Timestamp now = 100 * kMicrosPerHour;
  const double fresh = scorer.FrshScore(now, now);
  const double hour_old = scorer.FrshScore(now - kMicrosPerHour, now);
  const double day_old = scorer.FrshScore(now - 24 * kMicrosPerHour, now);
  EXPECT_DOUBLE_EQ(fresh, 1.0);
  EXPECT_GT(fresh, hour_old);
  EXPECT_GT(hour_old, day_old);
  EXPECT_GT(day_old, 0.0);
}

TEST(ScorerTest, FutureTimestampClampsToOne) {
  const Scorer scorer = DefaultScorer();
  EXPECT_DOUBLE_EQ(scorer.FrshScore(200, 100), 1.0);
}

TEST(ScorerTest, TfIdfZeroForAbsentTerm) {
  const Scorer scorer = DefaultScorer();
  EXPECT_DOUBLE_EQ(scorer.TermTfIdf(0, 3.0), 0.0);
  EXPECT_GT(scorer.TermTfIdf(1, 3.0), 0.0);
}

TEST(ScorerTest, TfIdfSublinearInTf) {
  const Scorer scorer = DefaultScorer();
  const double tf1 = scorer.TermTfIdf(1, 1.0);
  const double tf10 = scorer.TermTfIdf(10, 1.0);
  const double tf100 = scorer.TermTfIdf(100, 1.0);
  EXPECT_LT(tf10 - tf1, 10.0 * tf1);
  EXPECT_LT(tf100 - tf10, tf10 - tf1 + 1e-9 + (tf10 - tf1));
}

TEST(ScorerTest, RelScoreBoundedAndMonotone) {
  const Scorer scorer = DefaultScorer();
  double prev = -1.0;
  for (double sum : {0.0, 0.5, 1.0, 5.0, 100.0}) {
    const double rel = scorer.RelScore(sum, 2);
    EXPECT_GE(rel, 0.0);
    EXPECT_LT(rel, 1.0);
    EXPECT_GT(rel, prev - 1e-12);
    prev = rel;
  }
}

TEST(ScorerTest, CombineAppliesWeights) {
  ScoreWeights weights;
  weights.pop = 1.0;
  weights.rel = 0.0;
  weights.frsh = 0.0;
  const Scorer scorer(weights, 3600.0);
  EXPECT_DOUBLE_EQ(scorer.Combine(0.7, 0.9, 0.1), 0.7);
}

TEST(DocFreqTest, IdfOrdersRareAboveCommon) {
  DocumentFrequencyTable df;
  for (int i = 0; i < 1000; ++i) {
    df.AddDocument();
    df.AddOccurrence(1);  // Term 1 in every doc.
  }
  df.AddOccurrence(2);  // Term 2 in one doc.
  EXPECT_GT(df.Idf(2), df.Idf(1));
  EXPECT_GT(df.Idf(1), 0.0);
  EXPECT_EQ(df.DocumentFrequency(1), 1000u);
  EXPECT_EQ(df.num_documents(), 1000u);
}

TEST(DocFreqTest, UnknownTermHasHighestIdf) {
  DocumentFrequencyTable df;
  for (int i = 0; i < 100; ++i) df.AddDocument();
  df.AddOccurrence(1);
  EXPECT_GE(df.Idf(999), df.Idf(1));
}

TEST(TopKHeapTest, KeepsBestK) {
  TopKHeap heap(3);
  for (int i = 0; i < 10; ++i) {
    heap.Offer(i, static_cast<double>(i));
  }
  const auto results = heap.SortedResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].stream, 9u);
  EXPECT_EQ(results[1].stream, 8u);
  EXPECT_EQ(results[2].stream, 7u);
  EXPECT_DOUBLE_EQ(heap.KthScore(), 7.0);
}

TEST(TopKHeapTest, NotFullKthIsMinusInfinity) {
  TopKHeap heap(5);
  heap.Offer(1, 10.0);
  EXPECT_FALSE(heap.full());
  EXPECT_LT(heap.KthScore(), -1e300);
}

TEST(TopKHeapTest, RejectsLowScoresWhenFull) {
  TopKHeap heap(2);
  heap.Offer(1, 10.0);
  heap.Offer(2, 20.0);
  heap.Offer(3, 5.0);  // Rejected.
  const auto results = heap.SortedResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 2u);
  EXPECT_EQ(results[1].stream, 1u);
}

TEST(TopKHeapTest, KOfZeroClampedToOne) {
  TopKHeap heap(0);
  heap.Offer(1, 1.0);
  heap.Offer(2, 2.0);
  EXPECT_EQ(heap.SortedResults().size(), 1u);
}

}  // namespace
}  // namespace rtsi::core
