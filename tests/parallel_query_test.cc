// The parallel query executor must be indistinguishable from the
// sequential path: bit-identical results (scores AND stream ids) on
// randomized workloads, with and without filters, for any query_threads
// setting — plus a concurrent stress test (inserts + async merges +
// popularity updates racing parallel queries) meant to run under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/rtsi_index.h"

namespace rtsi::core {
namespace {

RtsiConfig ParallelConfig(int query_threads, bool use_bound = true) {
  RtsiConfig config;
  config.lsm.delta = 300;  // Small: the workloads below seal many components.
  config.lsm.rho = 1.5;
  config.lsm.num_l0_shards = 4;
  config.use_bound = use_bound;
  config.query_threads = query_threads;
  return config;
}

// Drives the same randomized insert/finish/delete/update workload into
// every index of `indices`, so they end up with identical content.
void BuildWorkload(std::vector<RtsiIndex*> indices, int seed,
                   Timestamp* end_time) {
  Rng rng(seed);
  constexpr int kNumStreams = 120;
  constexpr int kVocab = 50;
  Timestamp t = 1000;
  for (int step = 0; step < 900; ++step) {
    t += kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(rng.NextUint64(kNumStreams));
    const double action = rng.NextDouble();
    if (action < 0.85) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      const int num_terms = 1 + static_cast<int>(rng.NextUint64(6));
      for (int i = 0; i < num_terms; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
        if (!used.insert(term).second) continue;
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
      }
      const bool live = rng.NextBool(0.5);
      for (RtsiIndex* index : indices) {
        index->InsertWindow(stream, t, terms, live);
        if (!live) index->FinishStream(stream);
      }
    } else if (action < 0.93) {
      const std::uint64_t delta = 1 + rng.NextUint64(50);
      for (RtsiIndex* index : indices) {
        index->UpdatePopularity(stream, delta);
      }
    } else {
      for (RtsiIndex* index : indices) index->DeleteStream(stream);
    }
  }
  *end_time = t;
}

void ExpectBitIdentical(const std::vector<ScoredStream>& got,
                        const std::vector<ScoredStream>& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].stream, want[i].stream) << context << " rank " << i;
    // Bit-identical, not approximately equal: the executor runs the very
    // same score computation, only the traversal schedule differs.
    EXPECT_EQ(got[i].score, want[i].score) << context << " rank " << i;
  }
}

struct EquivalenceCase {
  int seed;
  bool use_bound;
  BoundMode mode;
};

class ParallelEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ParallelEquivalenceTest, ResultsMatchSequentialBitwise) {
  const EquivalenceCase param = GetParam();
  auto make = [&](int threads) {
    auto config = ParallelConfig(threads, param.use_bound);
    config.bound_mode = param.mode;
    return std::make_unique<RtsiIndex>(config);
  };
  auto sequential = make(0);
  auto solo = make(1);      // Executor algorithm, no extra threads.
  auto parallel = make(4);  // Executor with a 3-thread pool.

  Timestamp t = 0;
  BuildWorkload({sequential.get(), solo.get(), parallel.get()}, param.seed,
                &t);
  ASSERT_GE(sequential->tree().SealedSnapshot().size(), 2u)
      << "workload too small to exercise multi-component traversal";

  Rng rng(param.seed + 1000);
  for (int qi = 0; qi < 120; ++qi) {
    std::vector<TermId> q;
    const int nterms = 1 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < nterms; ++i) {
      q.push_back(static_cast<TermId>(rng.NextUint64(50)));
    }
    if (rng.NextBool(0.2)) q.push_back(q.front());  // Duplicate term.
    const int k = 1 + static_cast<int>(rng.NextUint64(15));
    const std::string context = "seed " + std::to_string(param.seed) +
                                " query " + std::to_string(qi);

    const auto seq = sequential->Query(q, k, t);
    ExpectBitIdentical(solo->Query(q, k, t), seq, context + " solo");
    ExpectBitIdentical(parallel->Query(q, k, t), seq, context + " pool");

    // Filtered variants follow the same path with candidate rejection.
    QueryFilter filter;
    filter.live_only = rng.NextBool(0.5);
    if (rng.NextBool(0.5)) filter.min_frsh = t / 2;
    const auto seq_f = sequential->QueryFiltered(q, k, t, filter);
    ExpectBitIdentical(parallel->QueryFiltered(q, k, t, filter), seq_f,
                       context + " filtered");
  }
}

// Exact equivalence is claimed (and tested) for the configurations where
// pruning is sound: kGlobalPop ceilings or bounds disabled. kSnapshot
// pruning goes stale under post-seal popularity updates (see
// core/config.h), so with that baseline the executor — which always
// prunes with sound ceilings — is pinned against a kGlobalPop sequential
// reference in SnapshotExecutorUsesSoundPruning below.
INSTANTIATE_TEST_SUITE_P(
    Workloads, ParallelEquivalenceTest,
    ::testing::Values(EquivalenceCase{11, true, BoundMode::kGlobalPop},
                      EquivalenceCase{12, true, BoundMode::kGlobalPop},
                      EquivalenceCase{13, true, BoundMode::kGlobalPop},
                      EquivalenceCase{14, false, BoundMode::kSnapshot},
                      EquivalenceCase{15, true, BoundMode::kGlobalPop}));

// Pruning soundness, not just path equivalence: with the kGlobalPop
// ceilings, early termination must never change the answer, so the
// bounded index (sequential and parallel) has to match an unbounded full
// walk bit-for-bit. The workload re-inserts streams long after their
// early postings sealed, so live freshness runs ahead of everything the
// old components store — the exact regime where a component-local
// freshness bound silently under-estimates and drops top-k streams
// (found as a rare sequential/parallel divergence in
// bench_parallel_query).
TEST(ParallelQueryTest, GlobalCeilingPruningMatchesFullWalk) {
  auto bounded_config = ParallelConfig(0);
  bounded_config.bound_mode = BoundMode::kGlobalPop;
  auto parallel_config = ParallelConfig(4);
  auto full_walk_config = ParallelConfig(0, /*use_bound=*/false);

  auto bounded = std::make_unique<RtsiIndex>(bounded_config);
  auto parallel = std::make_unique<RtsiIndex>(parallel_config);
  auto full_walk = std::make_unique<RtsiIndex>(full_walk_config);
  Timestamp t = 0;
  BuildWorkload({bounded.get(), parallel.get(), full_walk.get()}, 57, &t);

  Rng rng(5757);
  for (int qi = 0; qi < 120; ++qi) {
    std::vector<TermId> q;
    const int nterms = 1 + static_cast<int>(rng.NextUint64(4));
    for (int i = 0; i < nterms; ++i) {
      q.push_back(static_cast<TermId>(rng.NextUint64(50)));
    }
    // Large k keeps the k-th score low, where stale-bound undershoot
    // actually decides membership.
    const int k = 10 + static_cast<int>(rng.NextUint64(40));
    const auto want = full_walk->Query(q, k, t);
    const std::string context = "full-walk query " + std::to_string(qi);
    ExpectBitIdentical(bounded->Query(q, k, t), want, context + " bounded");
    ExpectBitIdentical(parallel->Query(q, k, t), want, context + " parallel");
  }
}

// A kSnapshot-configured index with query_threads >= 1 must behave as if
// bound_mode were kGlobalPop: identical results from the executor and
// from a sound sequential reference, regardless of traversal timing.
TEST(ParallelQueryTest, SnapshotExecutorUsesSoundPruning) {
  auto snapshot_parallel_config = ParallelConfig(4);
  snapshot_parallel_config.bound_mode = BoundMode::kSnapshot;
  auto sound_sequential_config = ParallelConfig(0);
  sound_sequential_config.bound_mode = BoundMode::kGlobalPop;

  auto parallel = std::make_unique<RtsiIndex>(snapshot_parallel_config);
  auto reference = std::make_unique<RtsiIndex>(sound_sequential_config);
  Timestamp t = 0;
  BuildWorkload({parallel.get(), reference.get()}, 31, &t);

  Rng rng(4242);
  for (int qi = 0; qi < 80; ++qi) {
    std::vector<TermId> q;
    const int nterms = 1 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < nterms; ++i) {
      q.push_back(static_cast<TermId>(rng.NextUint64(50)));
    }
    const int k = 1 + static_cast<int>(rng.NextUint64(15));
    ExpectBitIdentical(parallel->Query(q, k, t),
                       reference->Query(q, k, t),
                       "snapshot-override query " + std::to_string(qi));
  }
}

TEST(ParallelQueryTest, ExplainFallsBackToSequentialAndMatches) {
  auto sequential_config = ParallelConfig(0);
  sequential_config.bound_mode = BoundMode::kGlobalPop;  // Sound reference.
  auto sequential = std::make_unique<RtsiIndex>(sequential_config);
  auto parallel = std::make_unique<RtsiIndex>(ParallelConfig(4));
  Timestamp t = 0;
  BuildWorkload({sequential.get(), parallel.get()}, 21, &t);

  for (TermId a = 0; a < 20; ++a) {
    const std::vector<TermId> q = {a, (a + 9) % 50};
    const auto seq_explain = sequential->ExplainQuery(q, 10, t);
    const auto par_explain = parallel->ExplainQuery(q, 10, t);
    ASSERT_EQ(par_explain.results.size(), seq_explain.results.size()) << a;
    for (std::size_t i = 0; i < par_explain.results.size(); ++i) {
      EXPECT_EQ(par_explain.results[i].stream,
                seq_explain.results[i].stream);
      EXPECT_EQ(par_explain.results[i].total, seq_explain.results[i].total);
    }
    // The explanation agrees with the index's own (parallel) answer.
    const auto answers = parallel->Query(q, 10, t);
    ASSERT_EQ(answers.size(), par_explain.results.size()) << a;
    for (std::size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i].stream, par_explain.results[i].stream);
      EXPECT_EQ(answers[i].score, par_explain.results[i].total);
    }
  }
}

// SetQueryThreads must shrink as well as grow: sweeping 8 -> 2 -> 1 -> 0
// on one built index keeps answers bit-identical while the worker pool
// actually shrinks (drained and joined, not abandoned). Runs under TSan
// via the concurrency label, which is what certifies the join against
// workers that just released their scratch leases.
TEST(ParallelQueryTest, ShrinkingQueryThreadsKeepsAnswers) {
  auto config = ParallelConfig(8);
  config.bound_mode = BoundMode::kGlobalPop;
  auto index = std::make_unique<RtsiIndex>(config);
  Timestamp t = 0;
  BuildWorkload({index.get()}, 77, &t);

  Rng rng(7777);
  std::vector<std::vector<TermId>> queries;
  std::vector<int> ks;
  for (int qi = 0; qi < 40; ++qi) {
    std::vector<TermId> q;
    const int nterms = 1 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < nterms; ++i) {
      q.push_back(static_cast<TermId>(rng.NextUint64(50)));
    }
    queries.push_back(std::move(q));
    ks.push_back(1 + static_cast<int>(rng.NextUint64(15)));
  }

  std::vector<std::vector<ScoredStream>> want;
  want.reserve(queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    want.push_back(index->Query(queries[qi], ks[qi], t));
  }

  // Mid-stream shrinks: each setting re-answers the same query stream.
  for (const int threads : {2, 1, 0}) {
    index->SetQueryThreads(threads);
    EXPECT_EQ(index->config().query_threads, threads);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      ExpectBitIdentical(index->Query(queries[qi], ks[qi], t), want[qi],
                         "threads " + std::to_string(threads) + " query " +
                             std::to_string(qi));
    }
  }
  // And back up: growth after a shrink must also work.
  index->SetQueryThreads(4);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    ExpectBitIdentical(index->Query(queries[qi], ks[qi], t), want[qi],
                       "regrown query " + std::to_string(qi));
  }
}

TEST(ParallelQueryTest, EdgeCasesUnderExecutor) {
  RtsiIndex index(ParallelConfig(4));
  index.InsertWindow(1, 1000, {{10, 3}}, true);
  EXPECT_TRUE(index.Query({}, 5, 2000).empty());
  EXPECT_TRUE(index.Query({10}, 0, 2000).empty());
  EXPECT_TRUE(index.Query({999}, 5, 2000).empty());
  const auto once = index.Query({10}, 5, 2000);
  const auto twice = index.Query({10, 10, 10}, 5, 2000);
  ASSERT_EQ(once.size(), 1u);
  ASSERT_EQ(twice.size(), 1u);
  EXPECT_EQ(once[0].score, twice[0].score);
}

TEST(ParallelQueryTest, QueryStatsStillPopulated) {
  RtsiIndex index(ParallelConfig(4));
  Timestamp t = 0;
  for (StreamId s = 0; s < 300; ++s) {
    t += kMicrosPerSecond;
    index.InsertWindow(s, t, {{10, 1}, {11, 2}}, false);
    index.FinishStream(s);
  }
  QueryStats stats;
  const auto results = index.Query({10, 11}, 5, t, &stats);
  EXPECT_EQ(results.size(), 5u);
  EXPECT_GT(stats.candidates_scored, 0u);
  EXPECT_GT(stats.postings_scanned, 0u);
}

// Inserts, async merge cascades, popularity updates and deletions racing
// parallel queries. Asserts structural sanity of every answer; the real
// assertion is a clean TSan run (tools/run_sanitizers.sh tsan).
TEST(ParallelQueryTest, ConcurrentStress) {
  auto config = ParallelConfig(4);
  config.lsm.delta = 500;
  config.async_merge = true;
  RtsiIndex index(config);

  std::atomic<bool> stop{false};
  std::atomic<Timestamp> now{1000};

  std::thread inserter([&] {
    Rng rng(101);
    for (int step = 0; step < 4000 && !stop.load(); ++step) {
      const Timestamp t = now.fetch_add(kMicrosPerSecond);
      const auto stream = static_cast<StreamId>(rng.NextUint64(200));
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 4; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(40));
        if (!used.insert(term).second) continue;
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
      index.InsertWindow(stream, t, terms, rng.NextBool(0.6));
      if (rng.NextBool(0.05)) index.FinishStream(stream);
      if (rng.NextBool(0.02)) index.DeleteStream(stream);
    }
    stop.store(true);
  });

  std::thread updater([&] {
    Rng rng(202);
    while (!stop.load()) {
      index.UpdatePopularity(static_cast<StreamId>(rng.NextUint64(200)),
                             1 + rng.NextUint64(20));
    }
  });

  std::vector<std::thread> queriers;
  for (int qt = 0; qt < 3; ++qt) {
    queriers.emplace_back([&, qt] {
      Rng rng(303 + qt);
      while (!stop.load()) {
        std::vector<TermId> q = {
            static_cast<TermId>(rng.NextUint64(40)),
            static_cast<TermId>(rng.NextUint64(40))};
        const int k = 1 + static_cast<int>(rng.NextUint64(10));
        const auto results = index.Query(q, k, now.load());
        ASSERT_LE(results.size(), static_cast<std::size_t>(k));
        for (std::size_t i = 0; i < results.size(); ++i) {
          ASSERT_TRUE(std::isfinite(results[i].score));
          if (i > 0) {
            // Descending total order (score, then stream id).
            ASSERT_TRUE(results[i - 1].score > results[i].score ||
                        (results[i - 1].score == results[i].score &&
                         results[i - 1].stream < results[i].stream));
          }
        }
      }
    });
  }

  inserter.join();
  updater.join();
  for (auto& th : queriers) th.join();
  index.WaitForMerges();

  // The index still answers exactly once quiescent.
  const auto results = index.Query({1, 2}, 10, now.load());
  for (const auto& r : results) EXPECT_TRUE(std::isfinite(r.score));
}

}  // namespace
}  // namespace rtsi::core
