// Tokenizer, stop words and term dictionary tests.

#include <gtest/gtest.h>

#include <thread>

#include "text/stopwords.h"
#include "text/term_dictionary.h"
#include "text/tokenizer.h"

namespace rtsi::text {
namespace {

TEST(TokenizerTest, SplitsAndLowercases) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("Live Audio, STREAMING search!");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "live");
  EXPECT_EQ(tokens[1], "audio");
  EXPECT_EQ(tokens[2], "streaming");
  EXPECT_EQ(tokens[3], "search");
}

TEST(TokenizerTest, DropsTooShortTokens) {
  Tokenizer tokenizer;  // min length 2.
  const auto tokens = tokenizer.Tokenize("a to b it x yz");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "to");
  EXPECT_EQ(tokens[1], "it");
  EXPECT_EQ(tokens[2], "yz");
}

TEST(TokenizerTest, KeepsDigitsInsideTokens) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("episode42 2024");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "episode42");
  EXPECT_EQ(tokens[1], "2024");
}

TEST(TokenizerTest, PassesUtf8BytesThrough) {
  Tokenizer tokenizer;
  const auto tokens = tokenizer.Tokenize("音频 streaming");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "音频");
}

TEST(TokenizerTest, EmptyInputYieldsNothing) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  ,.;  ").empty());
}

TEST(TokenizerTest, EnforcesMaxLength) {
  TokenizerConfig config;
  config.max_token_length = 5;
  Tokenizer tokenizer(config);
  const auto tokens = tokenizer.Tokenize("short verylongtoken");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "short");
}

TEST(StopwordTest, DefaultListCatchesCommonWords) {
  StopwordFilter filter;
  EXPECT_TRUE(filter.IsStopword("the"));
  EXPECT_TRUE(filter.IsStopword("and"));
  EXPECT_FALSE(filter.IsStopword("audio"));
}

TEST(StopwordTest, FilterRemovesInPlace) {
  StopwordFilter filter;
  const auto out =
      filter.Filter({"the", "live", "audio", "and", "search"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], "live");
}

TEST(StopwordTest, CustomListOverridesDefault) {
  StopwordFilter filter({"foo"});
  EXPECT_TRUE(filter.IsStopword("foo"));
  EXPECT_FALSE(filter.IsStopword("the"));
}

TEST(TermDictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.Intern("audio");
  const TermId b = dict.Intern("audio");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TermDictionaryTest, IdsAreDense) {
  TermDictionary dict;
  EXPECT_EQ(dict.Intern("a0"), 0u);
  EXPECT_EQ(dict.Intern("a1"), 1u);
  EXPECT_EQ(dict.Intern("a2"), 2u);
}

TEST(TermDictionaryTest, LookupOfUnknownIsInvalid) {
  TermDictionary dict;
  EXPECT_EQ(dict.Lookup("nope"), kInvalidTermId);
}

TEST(TermDictionaryTest, TermStringRoundTrips) {
  TermDictionary dict;
  const TermId id = dict.Intern("streaming");
  EXPECT_EQ(dict.TermString(id), "streaming");
  EXPECT_EQ(dict.TermString(999), "");
}

TEST(TermDictionaryTest, DocumentFrequencyAndIdf) {
  TermDictionary dict;
  const TermId common = dict.Intern("common");
  const TermId rare = dict.Intern("rare");
  for (int i = 0; i < 100; ++i) {
    dict.AddDocument();
    dict.AddDocumentOccurrence(common);
  }
  dict.AddDocumentOccurrence(rare);
  EXPECT_EQ(dict.DocumentFrequency(common), 100u);
  EXPECT_EQ(dict.DocumentFrequency(rare), 1u);
  EXPECT_GT(dict.InverseDocumentFrequency(rare),
            dict.InverseDocumentFrequency(common));
}

TEST(TermDictionaryTest, ConcurrentInternIsConsistent) {
  TermDictionary dict;
  constexpr int kThreads = 8;
  constexpr int kTermsPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict] {
      for (int i = 0; i < kTermsPerThread; ++i) {
        dict.Intern("term" + std::to_string(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(dict.size(), static_cast<std::size_t>(kTermsPerThread));
  // Every term resolves and round-trips.
  for (int i = 0; i < kTermsPerThread; ++i) {
    const std::string term = "term" + std::to_string(i);
    const TermId id = dict.Lookup(term);
    ASSERT_NE(id, kInvalidTermId);
    EXPECT_EQ(dict.TermString(id), term);
  }
}

}  // namespace
}  // namespace rtsi::text
