#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace rtsi {
namespace {

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  std::vector<std::uint8_t> buf;
  PutVarint64(buf, 0);
  PutVarint64(buf, 1);
  PutVarint64(buf, 127);
  EXPECT_EQ(buf.size(), 3u);
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,    1,    127,  128,   255,   256,
      16383, 16384, (1ULL << 32) - 1, 1ULL << 32,
      std::numeric_limits<std::uint64_t>::max()};
  std::vector<std::uint8_t> buf;
  for (const auto v : values) PutVarint64(buf, v);

  std::size_t pos = 0;
  for (const auto expected : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), pos, got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, LengthMatchesEncoding) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t v : {0ULL, 127ULL, 128ULL, 99999ULL, ~0ULL}) {
    buf.clear();
    PutVarint64(buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v)) << v;
  }
}

TEST(VarintTest, DetectsTruncatedInput) {
  std::vector<std::uint8_t> buf;
  PutVarint64(buf, 1ULL << 40);
  buf.pop_back();
  std::size_t pos = 0;
  std::uint64_t value = 0;
  EXPECT_FALSE(GetVarint64(buf.data(), buf.size(), pos, value));
}

TEST(VarintTest, EmptyInputFails) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  EXPECT_FALSE(GetVarint64(nullptr, 0, pos, value));
}

TEST(ZigZagTest, MapsSignedToCompactUnsigned) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  EXPECT_EQ(ZigZagEncode(2), 4u);
}

TEST(ZigZagTest, RoundTripsExtremes) {
  const std::int64_t values[] = {0, 1, -1, 1000, -1000,
                                 std::numeric_limits<std::int64_t>::max(),
                                 std::numeric_limits<std::int64_t>::min()};
  for (const auto v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

class VarintRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(VarintRandomRoundTrip, RoundTripsRandomSequences) {
  Rng rng(GetParam());
  std::vector<std::uint64_t> values(1000);
  for (auto& v : values) {
    // Mix magnitudes: shift a full-width draw by a random bit count.
    v = rng() >> rng.NextUint64(64);
  }
  std::vector<std::uint8_t> buf;
  for (const auto v : values) PutVarint64(buf, v);

  std::size_t pos = 0;
  for (const auto expected : values) {
    std::uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), pos, got));
    ASSERT_EQ(got, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace rtsi
