// Corruption-robustness sweep: random single-byte flips and truncations
// anywhere in a snapshot file must never crash the loader — every attempt
// either fails cleanly or (for bytes the CRC does not cover, i.e. none in
// the payload) loads correctly.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/rtsi_index.h"
#include "storage/snapshot.h"

namespace rtsi::storage {
namespace {

std::vector<std::uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  EXPECT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  return data;
}

void WriteFile(const std::string& path,
               const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
}

class SnapshotFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotFuzz, RandomCorruptionNeverCrashes) {
  const std::string base = "/tmp/rtsi_fuzz_base.snap";
  const std::string mutated = "/tmp/rtsi_fuzz_mut.snap";

  core::RtsiConfig config;
  config.lsm.delta = 120;
  core::RtsiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 80; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond,
                       {{static_cast<TermId>(s % 9), 2}}, false);
    index.FinishStream(s);
  }
  ASSERT_TRUE(SaveIndexSnapshot(index, base).ok());
  const std::vector<std::uint8_t> pristine = ReadFile(base);

  Rng rng(GetParam() * 7919);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> data = pristine;
    if (rng.NextBool(0.5)) {
      // Flip 1-4 random bytes.
      const int flips = 1 + static_cast<int>(rng.NextUint64(4));
      for (int i = 0; i < flips; ++i) {
        const std::size_t pos = rng.NextUint64(data.size());
        data[pos] ^= static_cast<std::uint8_t>(1 + rng.NextUint64(255));
      }
    } else {
      // Truncate to a random prefix.
      data.resize(rng.NextUint64(data.size()));
    }
    WriteFile(mutated, data);
    const auto result = LoadIndexSnapshot(mutated);  // Must not crash.
    if (result.ok()) {
      // Only possible if the mutation was a no-op semantically; verify
      // the loaded index is sane.
      EXPECT_LE(result.value()->tree().total_postings(), 80u);
    }
  }
  std::remove(base.c_str());
  std::remove(mutated.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace rtsi::storage
