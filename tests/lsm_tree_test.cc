#include "lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "lsm/index_view.h"

namespace rtsi::lsm {

// Test back door: forces internal states that are hard to reach through
// the public API (e.g. a drifted L0 posting counter).
struct LsmTreeTestPeer {
  static void SetL0Counter(LsmTree& tree, std::size_t value) {
    tree.l0_postings_.store(value, std::memory_order_relaxed);
  }
};

namespace {

using index::InvertedIndex;
using index::Posting;

Posting P(StreamId s, Timestamp frsh, TermFreq tf) {
  return Posting{s, 0.0f, frsh, tf};
}

LsmTree::Config SmallConfig(std::size_t delta = 100, double rho = 2.0) {
  LsmTree::Config config;
  config.delta = delta;
  config.rho = rho;
  config.num_l0_shards = 4;
  return config;
}

TEST(IndexViewTest, EmptyViewPublishedAtBirth) {
  LsmTree tree(SmallConfig());
  const IndexViewPtr view = tree.PinView();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->epoch, 0u);
  EXPECT_TRUE(view->components.empty());
  EXPECT_EQ(tree.live_views(), 1);
}

TEST(IndexViewTest, PinnedViewSurvivesMergeAndRetiredIsFreed) {
  LsmTree tree(SmallConfig(100, 2.0));
  Timestamp t = 0;
  for (int i = 0; i < 150; ++i) tree.AddPosting(i % 10, P(i, ++t, 1));
  tree.MergeCascade(MergeHooks{});

  // Pin the current view, then force another cascade that replaces its
  // components. The pin must keep serving the old set unchanged. (Only
  // raw pointers are noted here: a shared_ptr copy would itself keep the
  // retired components alive and break the reclamation checks below.)
  IndexViewPtr pinned = tree.PinView();
  const std::size_t pinned_count = pinned->components.size();
  ASSERT_GT(pinned_count, 0u);
  const InvertedIndex* pinned_first = pinned->components.front().get();
  const std::uint64_t pinned_epoch = pinned->epoch;
  for (int i = 0; i < 150; ++i) tree.AddPosting(i % 10, P(i, ++t, 1));
  tree.MergeCascade(MergeHooks{});

  EXPECT_EQ(pinned->epoch, pinned_epoch);                    // Immutable.
  EXPECT_EQ(pinned->components.size(), pinned_count);        // Same set.
  EXPECT_EQ(pinned->components.front().get(), pinned_first);
  EXPECT_GT(tree.PinView()->epoch, pinned_epoch);    // New view published.
  // The old merge inputs are retired but alive: the pin references them.
  EXPECT_GT(tree.retired_components(), 0u);
  EXPECT_GT(tree.RetiredBytes(), 0u);

  // Dropping the last pin frees them (no mirror-style leak).
  pinned.reset();
  EXPECT_EQ(tree.retired_components(), 0u);
  EXPECT_EQ(tree.RetiredBytes(), 0u);
  EXPECT_EQ(tree.live_views(), 1);  // Only the published view remains.
}

TEST(LsmTreeTest, PostingsAccumulateInL0) {
  LsmTree tree(SmallConfig());
  Timestamp t = 0;
  for (int i = 0; i < 50; ++i) {
    tree.AddPosting(i % 5, P(i, ++t, 1));
  }
  EXPECT_EQ(tree.l0_postings(), 50u);
  EXPECT_FALSE(tree.NeedsMerge());
  EXPECT_EQ(tree.num_levels(), 0u);

  bool found = false;
  tree.WithL0Term(0, [&](const index::TermPostings* postings) {
    found = postings != nullptr && postings->size() == 10;
  });
  EXPECT_TRUE(found);
}

TEST(LsmTreeTest, MergeCascadeFreezesL0) {
  LsmTree tree(SmallConfig(100, 2.0));
  Timestamp t = 0;
  for (int i = 0; i < 150; ++i) {
    tree.AddPosting(i % 10, P(i, ++t, 1));
  }
  ASSERT_TRUE(tree.NeedsMerge());
  tree.MergeCascade(MergeHooks{});
  EXPECT_EQ(tree.l0_postings(), 0u);
  EXPECT_EQ(tree.num_levels(), 1u);
  EXPECT_EQ(tree.total_postings(), 150u);
  // Post-merge, nothing but the level residents is kept alive.
  EXPECT_EQ(tree.retired_components(), 0u);
  EXPECT_EQ(tree.PinView()->components.size(), 1u);

  const auto stats = tree.GetMergeStats();
  EXPECT_GE(stats.merges, 1u);
}

TEST(LsmTreeTest, StreamSeenResetsOnFreeze) {
  LsmTree tree(SmallConfig(10, 2.0));
  EXPECT_TRUE(tree.MarkStreamInL0(7));
  EXPECT_FALSE(tree.MarkStreamInL0(7));
  EXPECT_TRUE(tree.StreamInL0(7));

  Timestamp t = 0;
  for (int i = 0; i < 20; ++i) tree.AddPosting(1, P(7, ++t, 1));
  tree.MergeCascade(MergeHooks{});
  EXPECT_FALSE(tree.StreamInL0(7));
  EXPECT_TRUE(tree.MarkStreamInL0(7));  // New epoch: first again.
}

TEST(LsmTreeTest, CascadePushesDownAtCapacity) {
  // delta=50, rho=2: level slot i holds at most 50 * 2^(i+1) postings.
  // Seven waves of 60 postings leave a binomial-counter profile of
  // 60 / 120 / 240 across three levels (wave 8 would collapse them all
  // into one deep component — also legal, so we stop at 7).
  LsmTree tree(SmallConfig(50, 2.0));
  Timestamp t = 0;
  StreamId s = 0;
  for (int wave = 0; wave < 7; ++wave) {
    for (int i = 0; i < 60; ++i) {
      tree.AddPosting(i % 7, P(++s, ++t, 1));
    }
    if (tree.NeedsMerge()) tree.MergeCascade(MergeHooks{});
  }
  EXPECT_EQ(tree.total_postings(), 7u * 60u);
  EXPECT_GE(tree.num_levels(), 2u);

  // Level sizes respect the geometric capacities.
  const auto snapshot = tree.SealedSnapshot();
  std::size_t total = tree.l0_postings();
  for (const auto& component : snapshot) {
    total += component->num_postings();
    const double capacity = 50.0 * std::pow(2.0, component->level());
    EXPECT_LE(static_cast<double>(component->num_postings()), capacity)
        << "level " << component->level();
  }
  EXPECT_EQ(total, 7u * 60u);
}

TEST(LsmTreeTest, SnapshotSeesEveryPostingDuringAndAfterMerges) {
  LsmTree tree(SmallConfig(64, 2.0));
  Rng rng(5);
  Timestamp t = 0;
  std::size_t inserted = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 40; ++i) {
      tree.AddPosting(static_cast<TermId>(rng.NextUint64(13)),
                      P(rng.NextUint64(50), ++t, 1));
      ++inserted;
    }
    if (tree.NeedsMerge()) tree.MergeCascade(MergeHooks{});
    // Count every posting reachable via snapshot + L0.
    std::size_t visible = tree.l0_postings();
    for (const auto& component : tree.SealedSnapshot()) {
      visible += component->num_postings();
    }
    // Consolidation can only reduce posting count; totals from summed tf
    // must match exactly, so just check visible <= inserted and that the
    // tf mass is preserved.
    std::uint64_t tf_mass = 0;
    for (const auto& component : tree.SealedSnapshot()) {
      component->ForEachTerm([&](TermId, const index::TermPostings& p) {
        for (const auto& posting : p.entries()) tf_mass += posting.tf;
      });
    }
    for (TermId term = 0; term < 13; ++term) {
      tree.WithL0Term(term, [&](const index::TermPostings* postings) {
        if (postings == nullptr) return;
        for (const auto& posting : postings->entries()) {
          tf_mass += posting.tf;
        }
      });
    }
    ASSERT_EQ(tf_mass, inserted) << "round " << round;
    ASSERT_LE(visible, inserted);
  }
}

TEST(LsmTreeTest, HuffmanCompressionShrinksSealedComponents) {
  auto config = SmallConfig(200, 2.0);
  LsmTree plain_tree(config);
  config.compress = true;
  LsmTree compressed_tree(config);

  Timestamp t = 0;
  for (int i = 0; i < 2000; ++i) {
    const Posting p = P(i % 100, ++t, 1 + i % 4);
    plain_tree.AddPosting(i % 20, p);
    compressed_tree.AddPosting(i % 20, p);
    if (plain_tree.NeedsMerge()) plain_tree.MergeCascade(MergeHooks{});
    if (compressed_tree.NeedsMerge()) {
      compressed_tree.MergeCascade(MergeHooks{});
    }
  }
  EXPECT_LT(compressed_tree.MemoryBytes(), plain_tree.MemoryBytes());
  EXPECT_EQ(compressed_tree.total_postings(), plain_tree.total_postings());
}

TEST(LsmTreeTest, FreezeBetweenMarkAndAddCannotSplitEpoch) {
  // Regression for the historical InsertWindow race: the stream was
  // marked in L0 first, a freeze cleared the seen set, and only then did
  // the postings land — in the *new* epoch, with StreamInL0() false and
  // the per-stream component count short by one. The mark now travels
  // with each posting under the term-shard lock (AddPosting's return),
  // so a freeze can never separate them; a stale stand-alone mark is
  // simply superseded.
  LsmTree tree(SmallConfig(10, 2.0));
  EXPECT_TRUE(tree.MarkStreamInL0(7));  // The doomed pre-freeze mark.
  Timestamp t = 0;
  for (int i = 0; i < 20; ++i) tree.AddPosting(1, P(3, ++t, 1));
  tree.MergeCascade(MergeHooks{});  // Freeze: clears the seen set.
  ASSERT_FALSE(tree.StreamInL0(7));
  // Stream 7's posting lands after the freeze: it must report
  // first-in-epoch so the caller increments the component count for the
  // new epoch, and the seen set must agree.
  EXPECT_TRUE(tree.AddPosting(2, P(7, ++t, 1)));
  EXPECT_TRUE(tree.StreamInL0(7));
  EXPECT_FALSE(tree.AddPosting(2, P(7, ++t, 1)));  // Not first anymore.
}

TEST(LsmTreeTest, DriftedCounterCascadePublishesNothing) {
  // Regression for the double epoch bump: when a cascade fired with no
  // actual L0 postings behind the counter, FreezeL0 published a
  // permanently empty component and the early-return erased it with a
  // *second* publish — readers pinning the intermediate epoch saw the
  // empty component. Now nothing is published at all.
  LsmTree tree(SmallConfig(10, 2.0));
  LsmTreeTestPeer::SetL0Counter(tree, 1000);  // Shards are empty.
  ASSERT_TRUE(tree.NeedsMerge());
  const std::uint64_t epoch = tree.epoch();
  tree.MergeCascade(MergeHooks{});
  EXPECT_EQ(tree.epoch(), epoch);  // No transient view was published.
  EXPECT_TRUE(tree.PinView()->components.empty());
  EXPECT_EQ(tree.num_levels(), 0u);
  EXPECT_FALSE(tree.NeedsMerge());  // Counter was reset regardless.
  // The tree keeps working normally afterwards (distinct streams, so
  // merge consolidation folds nothing).
  Timestamp t = 0;
  for (StreamId s = 0; s < 20; ++s) tree.AddPosting(1, P(s, ++t, 1));
  tree.MergeCascade(MergeHooks{});
  EXPECT_EQ(tree.total_postings(), 20u);
  for (const auto& component : tree.SealedSnapshot()) {
    EXPECT_FALSE(component->empty());
  }
}

TEST(LsmTreeTest, RestoreAcceptsLevelZeroAndSharedLevels) {
  // Mid-cascade snapshots legitimately contain a frozen L0 component
  // (level 0) and several components on one level; restore must accept
  // all of them and the next cascade re-plans from that shape.
  LsmTree tree(SmallConfig(10, 2.0));
  auto frozen = std::make_shared<InvertedIndex>(0);
  frozen->Add(1, P(1, 100, 1));
  frozen->SealAll();
  auto run_a = std::make_shared<InvertedIndex>(1);
  run_a->Add(1, P(2, 200, 1));
  run_a->SealAll();
  auto run_b = std::make_shared<InvertedIndex>(1);
  run_b->Add(1, P(3, 300, 1));
  run_b->SealAll();

  ASSERT_TRUE(tree.RestoreSealedComponent(frozen).ok());
  ASSERT_TRUE(tree.RestoreSealedComponent(run_a).ok());
  ASSERT_TRUE(tree.RestoreSealedComponent(run_b).ok());
  EXPECT_EQ(tree.num_runs(), 3u);
  EXPECT_EQ(tree.num_levels(), 2u);
  EXPECT_EQ(tree.RunsPerLevel(), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(tree.total_postings(), 3u);
  EXPECT_EQ(tree.PinView()->components.size(), 3u);

  // The next cascade folds the restored shape back to steady state
  // (distinct streams, so consolidation folds nothing).
  Timestamp t = 1000;
  for (StreamId s = 100; s < 120; ++s) tree.AddPosting(1, P(s, ++t, 1));
  tree.MergeCascade(MergeHooks{});
  EXPECT_EQ(tree.total_postings(), 23u);
  // Geometric steady state: at most one run per level, no level-0 run.
  const auto runs = tree.RunsPerLevel();
  EXPECT_TRUE(runs.empty() || runs[0] == 0u);
  for (const std::size_t count : runs) EXPECT_LE(count, 1u);
}

TEST(LsmTreeTest, TieredPolicyAccumulatesRunsThenFoldsTier) {
  auto config = SmallConfig(10, 2.0);
  config.policy = MergePolicy::kTiered;
  config.tier_runs = 3;
  LsmTree tree(config);
  Timestamp t = 0;
  StreamId s = 0;

  // Two freezes: below the tier fan-out, runs just accumulate at level 0
  // with zero merge work.
  for (int wave = 0; wave < 2; ++wave) {
    for (int i = 0; i < 12; ++i) tree.AddPosting(i % 3, P(++s, ++t, 1));
    tree.MergeCascade(MergeHooks{});
  }
  EXPECT_EQ(tree.RunsPerLevel(), (std::vector<std::size_t>{2}));
  EXPECT_EQ(tree.GetMergeStats().merges, 0u);

  // Third freeze reaches tier_runs: the whole tier folds one level down.
  for (int i = 0; i < 12; ++i) tree.AddPosting(i % 3, P(++s, ++t, 1));
  tree.MergeCascade(MergeHooks{});
  EXPECT_EQ(tree.RunsPerLevel(), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(tree.GetMergeStats().merges, 1u);
  EXPECT_EQ(tree.total_postings(), 36u);
}

TEST(LsmTreeTest, ConcurrentInsertAndQueryDuringMerges) {
  LsmTree tree(SmallConfig(256, 2.0));
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries_ok{0};

  std::thread reader([&] {
    while (!stop.load()) {
      const auto snapshot = tree.SealedSnapshot();
      std::size_t total = 0;
      for (const auto& component : snapshot) {
        total += component->num_postings();
      }
      (void)total;
      tree.WithL0Term(3, [&](const index::TermPostings* postings) {
        if (postings != nullptr) {
          // The freshness view must be readable while writers append.
          volatile Timestamp x = postings->max_frsh();
          (void)x;
        }
      });
      queries_ok.fetch_add(1);
    }
  });

  Timestamp t = 0;
  for (int i = 0; i < 20000; ++i) {
    tree.AddPosting(i % 11, P(i % 200, ++t, 1));
    if (tree.NeedsMerge()) tree.MergeCascade(MergeHooks{});
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(queries_ok.load(), 0u);
  EXPECT_EQ(tree.total_postings(), tree.l0_postings() + [&] {
    std::size_t sealed = 0;
    for (const auto& c : tree.SealedSnapshot()) sealed += c->num_postings();
    return sealed;
  }());
}

}  // namespace
}  // namespace rtsi::lsm
