#include "lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "lsm/mirror_set.h"

namespace rtsi::lsm {
namespace {

using index::InvertedIndex;
using index::Posting;

Posting P(StreamId s, Timestamp frsh, TermFreq tf) {
  return Posting{s, 0.0f, frsh, tf};
}

LsmTree::Config SmallConfig(std::size_t delta = 100, double rho = 2.0) {
  LsmTree::Config config;
  config.delta = delta;
  config.rho = rho;
  config.num_l0_shards = 4;
  return config;
}

TEST(MirrorSetTest, RegisterUnregister) {
  MirrorSet mirrors;
  auto component = std::make_shared<InvertedIndex>(1);
  mirrors.Register(component);
  EXPECT_EQ(mirrors.size(), 1u);
  EXPECT_EQ(mirrors.GetAll().size(), 1u);
  mirrors.Unregister(component.get());
  EXPECT_EQ(mirrors.size(), 0u);
}

TEST(MirrorSetTest, UnregisterUnknownIsNoOp) {
  MirrorSet mirrors;
  InvertedIndex component(1);
  mirrors.Unregister(&component);
  EXPECT_EQ(mirrors.size(), 0u);
}

TEST(LsmTreeTest, PostingsAccumulateInL0) {
  LsmTree tree(SmallConfig());
  Timestamp t = 0;
  for (int i = 0; i < 50; ++i) {
    tree.AddPosting(i % 5, P(i, ++t, 1));
  }
  EXPECT_EQ(tree.l0_postings(), 50u);
  EXPECT_FALSE(tree.NeedsMerge());
  EXPECT_EQ(tree.num_levels(), 0u);

  bool found = false;
  tree.WithL0Term(0, [&](const index::TermPostings* postings) {
    found = postings != nullptr && postings->size() == 10;
  });
  EXPECT_TRUE(found);
}

TEST(LsmTreeTest, MergeCascadeFreezesL0) {
  LsmTree tree(SmallConfig(100, 2.0));
  Timestamp t = 0;
  for (int i = 0; i < 150; ++i) {
    tree.AddPosting(i % 10, P(i, ++t, 1));
  }
  ASSERT_TRUE(tree.NeedsMerge());
  tree.MergeCascade(MergeHooks{});
  EXPECT_EQ(tree.l0_postings(), 0u);
  EXPECT_EQ(tree.num_levels(), 1u);
  EXPECT_EQ(tree.total_postings(), 150u);
  EXPECT_EQ(tree.mirrors().size(), 0u);  // Mirrors cleared post-merge.

  const auto stats = tree.GetMergeStats();
  EXPECT_GE(stats.merges, 1u);
}

TEST(LsmTreeTest, StreamSeenResetsOnFreeze) {
  LsmTree tree(SmallConfig(10, 2.0));
  EXPECT_TRUE(tree.MarkStreamInL0(7));
  EXPECT_FALSE(tree.MarkStreamInL0(7));
  EXPECT_TRUE(tree.StreamInL0(7));

  Timestamp t = 0;
  for (int i = 0; i < 20; ++i) tree.AddPosting(1, P(7, ++t, 1));
  tree.MergeCascade(MergeHooks{});
  EXPECT_FALSE(tree.StreamInL0(7));
  EXPECT_TRUE(tree.MarkStreamInL0(7));  // New epoch: first again.
}

TEST(LsmTreeTest, CascadePushesDownAtCapacity) {
  // delta=50, rho=2: level slot i holds at most 50 * 2^(i+1) postings.
  // Seven waves of 60 postings leave a binomial-counter profile of
  // 60 / 120 / 240 across three levels (wave 8 would collapse them all
  // into one deep component — also legal, so we stop at 7).
  LsmTree tree(SmallConfig(50, 2.0));
  Timestamp t = 0;
  StreamId s = 0;
  for (int wave = 0; wave < 7; ++wave) {
    for (int i = 0; i < 60; ++i) {
      tree.AddPosting(i % 7, P(++s, ++t, 1));
    }
    if (tree.NeedsMerge()) tree.MergeCascade(MergeHooks{});
  }
  EXPECT_EQ(tree.total_postings(), 7u * 60u);
  EXPECT_GE(tree.num_levels(), 2u);

  // Level sizes respect the geometric capacities.
  const auto snapshot = tree.SealedSnapshot();
  std::size_t total = tree.l0_postings();
  for (const auto& component : snapshot) {
    total += component->num_postings();
    const double capacity = 50.0 * std::pow(2.0, component->level());
    EXPECT_LE(static_cast<double>(component->num_postings()), capacity)
        << "level " << component->level();
  }
  EXPECT_EQ(total, 7u * 60u);
}

TEST(LsmTreeTest, SnapshotSeesEveryPostingDuringAndAfterMerges) {
  LsmTree tree(SmallConfig(64, 2.0));
  Rng rng(5);
  Timestamp t = 0;
  std::size_t inserted = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 40; ++i) {
      tree.AddPosting(static_cast<TermId>(rng.NextUint64(13)),
                      P(rng.NextUint64(50), ++t, 1));
      ++inserted;
    }
    if (tree.NeedsMerge()) tree.MergeCascade(MergeHooks{});
    // Count every posting reachable via snapshot + L0.
    std::size_t visible = tree.l0_postings();
    for (const auto& component : tree.SealedSnapshot()) {
      visible += component->num_postings();
    }
    // Consolidation can only reduce posting count; totals from summed tf
    // must match exactly, so just check visible <= inserted and that the
    // tf mass is preserved.
    std::uint64_t tf_mass = 0;
    for (const auto& component : tree.SealedSnapshot()) {
      component->ForEachTerm([&](TermId, const index::TermPostings& p) {
        for (const auto& posting : p.entries()) tf_mass += posting.tf;
      });
    }
    for (TermId term = 0; term < 13; ++term) {
      tree.WithL0Term(term, [&](const index::TermPostings* postings) {
        if (postings == nullptr) return;
        for (const auto& posting : postings->entries()) {
          tf_mass += posting.tf;
        }
      });
    }
    ASSERT_EQ(tf_mass, inserted) << "round " << round;
    ASSERT_LE(visible, inserted);
  }
}

TEST(LsmTreeTest, HuffmanCompressionShrinksSealedComponents) {
  auto config = SmallConfig(200, 2.0);
  LsmTree plain_tree(config);
  config.compress = true;
  LsmTree compressed_tree(config);

  Timestamp t = 0;
  for (int i = 0; i < 2000; ++i) {
    const Posting p = P(i % 100, ++t, 1 + i % 4);
    plain_tree.AddPosting(i % 20, p);
    compressed_tree.AddPosting(i % 20, p);
    if (plain_tree.NeedsMerge()) plain_tree.MergeCascade(MergeHooks{});
    if (compressed_tree.NeedsMerge()) {
      compressed_tree.MergeCascade(MergeHooks{});
    }
  }
  EXPECT_LT(compressed_tree.MemoryBytes(), plain_tree.MemoryBytes());
  EXPECT_EQ(compressed_tree.total_postings(), plain_tree.total_postings());
}

TEST(LsmTreeTest, ConcurrentInsertAndQueryDuringMerges) {
  LsmTree tree(SmallConfig(256, 2.0));
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries_ok{0};

  std::thread reader([&] {
    while (!stop.load()) {
      const auto snapshot = tree.SealedSnapshot();
      std::size_t total = 0;
      for (const auto& component : snapshot) {
        total += component->num_postings();
      }
      (void)total;
      tree.WithL0Term(3, [&](const index::TermPostings* postings) {
        if (postings != nullptr) {
          // The freshness view must be readable while writers append.
          volatile Timestamp x = postings->max_frsh();
          (void)x;
        }
      });
      queries_ok.fetch_add(1);
    }
  });

  Timestamp t = 0;
  for (int i = 0; i < 20000; ++i) {
    tree.AddPosting(i % 11, P(i % 200, ++t, 1));
    if (tree.NeedsMerge()) tree.MergeCascade(MergeHooks{});
  }
  stop.store(true);
  reader.join();
  EXPECT_GT(queries_ok.load(), 0u);
  EXPECT_EQ(tree.total_postings(), tree.l0_postings() + [&] {
    std::size_t sealed = 0;
    for (const auto& c : tree.SealedSnapshot()) sealed += c->num_postings();
    return sealed;
  }());
}

}  // namespace
}  // namespace rtsi::lsm
