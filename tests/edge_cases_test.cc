// Edge-case and failure-injection tests across the index facades:
// operations on unknown streams, degenerate windows, duplicate terms
// inside one window, deletion before insertion, and bound-safety
// properties under randomized component contents.

#include <gtest/gtest.h>

#include <set>

#include "baseline/lsii_index.h"
#include "common/rng.h"
#include "exec/traversal.h"
#include "core/rtsi_index.h"

namespace rtsi {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using core::TermCount;

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 100;
  config.lsm.num_l0_shards = 4;
  return config;
}

TEST(EdgeCaseTest, OperationsOnUnknownStreamsAreSafe) {
  RtsiIndex index(SmallConfig());
  index.FinishStream(42);
  index.DeleteStream(43);
  index.UpdatePopularity(44, 10);
  EXPECT_TRUE(index.Query({1}, 5, 100).empty());
}

TEST(EdgeCaseTest, EmptyWindowInsertIsSafe) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 100, {}, true);
  // The stream exists (metadata) but matches nothing.
  EXPECT_TRUE(index.Query({1}, 5, 200).empty());
  index::StreamInfo info;
  EXPECT_TRUE(index.stream_table().Get(1, info));
}

TEST(EdgeCaseTest, ZeroTfTermsAreIgnored) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 100, {{10, 0}, {11, 2}}, true);
  EXPECT_TRUE(index.Query({10}, 5, 200).empty());
  EXPECT_EQ(index.Query({11}, 5, 200).size(), 1u);
}

TEST(EdgeCaseTest, DuplicateTermInOneWindowAccumulates) {
  RtsiIndex a(SmallConfig());
  RtsiIndex b(SmallConfig());
  // Window with term 10 split into two entries vs one combined entry.
  a.InsertWindow(1, 100, {{10, 2}, {10, 3}}, false);
  b.InsertWindow(1, 100, {{10, 5}}, false);
  const auto ra = a.Query({10}, 1, 200);
  const auto rb = b.Query({10}, 1, 200);
  ASSERT_EQ(ra.size(), 1u);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_NEAR(ra[0].score, rb[0].score, 1e-9);
}

TEST(EdgeCaseTest, UpdateBeforeFirstInsertIsVisible) {
  RtsiIndex index(SmallConfig());
  index.UpdatePopularity(1, 500);  // Play counter before content exists.
  index.InsertWindow(1, 100, {{10, 1}}, true);
  index.InsertWindow(2, 100, {{10, 1}}, true);
  const auto results = index.Query({10}, 2, 200);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 1u);  // Pre-seeded popularity wins.
}

TEST(EdgeCaseTest, DeleteThenReinsertStaysDeleted) {
  // Lazy deletion marks the stream forever (ids are never recycled on the
  // platform); inserting after deletion does not resurrect it.
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 100, {{10, 1}}, true);
  index.DeleteStream(1);
  index.InsertWindow(1, 200, {{10, 1}}, true);
  EXPECT_TRUE(index.Query({10}, 5, 300).empty());
}

TEST(EdgeCaseTest, DeleteEverythingThenQuery) {
  auto config = SmallConfig();
  config.lsm.delta = 30;
  RtsiIndex index(config);
  Timestamp t = 0;
  for (StreamId s = 0; s < 50; ++s) {
    index.InsertWindow(s, t += 1000, {{10, 1}}, false);
  }
  for (StreamId s = 0; s < 50; ++s) index.DeleteStream(s);
  EXPECT_TRUE(index.Query({10}, 10, t).empty());
  // Keep inserting to cycle merges over tombstones.
  for (StreamId s = 100; s < 160; ++s) {
    index.InsertWindow(s, t += 1000, {{11, 1}}, false);
  }
  EXPECT_TRUE(index.Query({10}, 10, t).empty());
  EXPECT_EQ(index.Query({11}, 100, t).size(), 60u);
}

TEST(EdgeCaseTest, KLargerThanCandidateSet) {
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, 100, {{10, 1}}, true);
  index.InsertWindow(2, 100, {{10, 1}}, true);
  const auto results = index.Query({10}, 100, 200);
  EXPECT_EQ(results.size(), 2u);
}

TEST(EdgeCaseTest, ManyTermQueryWorks) {
  RtsiIndex index(SmallConfig());
  std::vector<TermCount> terms;
  for (TermId t = 0; t < 20; ++t) terms.push_back({t, 1});
  index.InsertWindow(1, 100, terms, false);
  std::vector<TermId> q;
  for (TermId t = 0; t < 20; ++t) q.push_back(t);
  const auto results = index.Query(q, 5, 200);
  ASSERT_EQ(results.size(), 1u);
}

TEST(EdgeCaseTest, LsiiMirrorsRtsiEdgeBehaviour) {
  baseline::LsiiIndex index(SmallConfig());
  index.FinishStream(42);
  index.UpdatePopularity(44, 10);
  index.InsertWindow(1, 100, {{10, 0}, {11, 2}}, true);
  EXPECT_TRUE(index.Query({10}, 5, 200).empty());
  EXPECT_EQ(index.Query({11}, 5, 200).size(), 1u);
  index.DeleteStream(1);
  EXPECT_TRUE(index.Query({11}, 5, 200).empty());
}

TEST(EdgeCaseTest, VeryLongStreamManyWindows) {
  auto config = SmallConfig();
  config.lsm.delta = 60;
  RtsiIndex index(config);
  Timestamp t = 0;
  // A two-hour stream: 120 windows, same dominant term; postings scatter
  // across many components, yet the total tf must stay exact thanks to
  // the live-term table.
  for (int w = 0; w < 120; ++w) {
    index.InsertWindow(7, t += 60 * kMicrosPerSecond, {{10, 2}, {11, 1}},
                       true);
  }
  index.InsertWindow(8, t, {{10, 5}}, true);  // tf 5 << 240.
  const auto results = index.Query({10}, 2, t);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 7u);
  EXPECT_EQ(index.live_table().GetTotal(7, 10), 240u);
}

class BoundSafetyProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundSafetyProperty, ComponentBoundDominatesRandomContents) {
  Rng rng(GetParam() * 97);
  const core::Scorer scorer(core::ScoreWeights{}, 3600.0);
  index::InvertedIndex component(1);

  const int num_terms = 1 + static_cast<int>(rng.NextUint64(3));
  std::vector<TermId> terms;
  for (int i = 0; i < num_terms; ++i) terms.push_back(i);
  const std::uint64_t max_pop = 1000;

  // Sealed merge outputs are consolidated: at most one posting per
  // (term, stream) pair, which is what the per-term maxima bound assumes.
  std::set<std::pair<TermId, StreamId>> used;
  for (int i = 0; i < 200; ++i) {
    const auto term = static_cast<TermId>(rng.NextUint64(num_terms));
    const StreamId stream = rng.NextUint64(50);
    if (!used.insert({term, stream}).second) continue;
    component.Add(term,
                  index::Posting{stream,
                                 static_cast<float>(rng.NextUint64(max_pop)),
                                 static_cast<Timestamp>(rng.NextUint64(1000)),
                                 1 + static_cast<TermFreq>(rng.NextUint64(9))});
  }
  component.SealAll();

  std::vector<exec::PerTermBound> per_term(terms.size());
  std::vector<double> idfs(terms.size());
  for (std::size_t i = 0; i < terms.size(); ++i) {
    per_term[i].bounds = component.Bounds(terms[i]);
    per_term[i].idf = idfs[i] = 0.5 + rng.NextDouble() * 3.0;
  }
  const Timestamp now = 1000;
  const double bound = exec::ComponentBound(
      scorer, per_term, now, max_pop, 0, core::BoundMode::kSnapshot);

  // Any stream scored purely from this component's postings must fall
  // under the bound.
  std::set<StreamId> streams;
  for (const TermId term : terms) {
    const auto* postings = component.GetPlain(term);
    if (postings == nullptr) continue;
    for (const auto& p : postings->entries()) streams.insert(p.stream);
  }
  for (const StreamId stream : streams) {
    double tfidf = 0.0;
    float best_pop = 0.0f;
    Timestamp best_frsh = 0;
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const auto* postings = component.GetPlain(terms[i]);
      if (postings == nullptr) continue;
      index::Posting agg;
      if (postings->AggregateForStream(stream, agg)) {
        tfidf += scorer.TermTfIdf(agg.tf, idfs[i]);
        best_pop = std::max(best_pop, agg.pop);
        best_frsh = std::max(best_frsh, agg.frsh);
      }
    }
    const double score = scorer.Combine(
        scorer.PopScore(static_cast<std::uint64_t>(best_pop), max_pop),
        scorer.RelScore(tfidf, static_cast<int>(terms.size())),
        scorer.FrshScore(best_frsh, now));
    ASSERT_LE(score, bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundSafetyProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace rtsi
