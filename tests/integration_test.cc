// Cross-module integration tests: live-arrival workloads over the full
// RTSI stack, concurrent insert/query/update against a merging tree, and
// the query-during-merge completeness guarantee of pinned views.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "baseline/lsii_index.h"
#include "common/rng.h"
#include "core/rtsi_index.h"
#include "workload/corpus.h"
#include "workload/driver.h"
#include "workload/query_gen.h"

namespace rtsi {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using core::TermCount;

RtsiConfig MergeHeavyConfig() {
  RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.rho = 2.0;
  config.lsm.num_l0_shards = 8;
  return config;
}

TEST(IntegrationTest, LiveCorpusWorkloadEndToEnd) {
  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = 120;
  corpus_config.vocab_size = 500;
  corpus_config.avg_windows_per_stream = 5;
  corpus_config.min_windows_per_stream = 2;
  corpus_config.words_per_window = 40;
  const workload::SyntheticCorpus corpus(corpus_config);

  RtsiIndex index(MergeHeavyConfig());
  SimulatedClock clock;
  const auto init = workload::InitializeIndex(index, corpus, 0, 120, clock);
  EXPECT_GT(init.windows_inserted, 0u);
  EXPECT_GT(index.GetMergeStats().merges, 0u);  // delta=300 forces merges.

  // Head terms must return full result pages.
  const auto results = index.Query({0, 1}, 10, clock.Now());
  EXPECT_EQ(results.size(), 10u);
  // Scores are sorted descending.
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_LE(results[i].score, results[i - 1].score);
  }
}

TEST(IntegrationTest, EveryInsertedStreamIsFindable) {
  // After arbitrary merging, a query for a stream's dedicated term finds
  // it (no stream lost across freezes/merges/view swaps).
  auto config = MergeHeavyConfig();
  config.lsm.delta = 100;
  RtsiIndex index(config);
  Timestamp t = 0;
  constexpr int kStreams = 150;
  for (StreamId s = 0; s < kStreams; ++s) {
    // Term 1000+s is unique to stream s; term 5 is shared.
    std::vector<TermCount> terms = {{static_cast<TermId>(1000 + s), 2},
                                    {5, 1}};
    index.InsertWindow(s, t += kMicrosPerSecond, terms, false);
    index.FinishStream(s);
  }
  for (StreamId s = 0; s < kStreams; ++s) {
    const auto results =
        index.Query({static_cast<TermId>(1000 + s)}, 3, t);
    ASSERT_EQ(results.size(), 1u) << "stream " << s;
    EXPECT_EQ(results[0].stream, s);
  }
}

TEST(IntegrationTest, ConcurrentInsertQueryUpdateIsSane) {
  auto config = MergeHeavyConfig();
  config.lsm.delta = 500;
  RtsiIndex index(config);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries_done{0};
  std::atomic<std::size_t> updates_done{0};

  std::thread query_thread([&] {
    Rng rng(1);
    while (!stop.load()) {
      const std::vector<TermId> q = {
          static_cast<TermId>(rng.NextUint64(40)),
          static_cast<TermId>(rng.NextUint64(40))};
      const auto results = index.Query(q, 10, 1'000'000'000);
      // Results must be sorted and deduplicated.
      std::set<StreamId> seen;
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(seen.insert(results[i].stream).second);
        if (i > 0) ASSERT_LE(results[i].score, results[i - 1].score);
      }
      queries_done.fetch_add(1);
    }
  });

  std::thread update_thread([&] {
    Rng rng(2);
    while (!stop.load()) {
      index.UpdatePopularity(rng.NextUint64(200), 1);
      updates_done.fetch_add(1);
    }
  });

  Rng rng(3);
  Timestamp t = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto stream = static_cast<StreamId>(rng.NextUint64(200));
    std::vector<TermCount> terms;
    for (int j = 0; j < 5; ++j) {
      terms.push_back({static_cast<TermId>(rng.NextUint64(40)),
                       1 + static_cast<TermFreq>(rng.NextUint64(3))});
    }
    index.InsertWindow(stream, t += kMicrosPerSecond, terms, true);
  }
  stop.store(true);
  query_thread.join();
  update_thread.join();

  EXPECT_GT(queries_done.load(), 0u);
  EXPECT_GT(updates_done.load(), 0u);
  EXPECT_GT(index.GetMergeStats().merges, 0u);
}

TEST(IntegrationTest, QueriesDuringMergeSeeAllStreams) {
  // Force large merges while a reader repeatedly checks that a sentinel
  // set of streams stays visible (view-pin completeness).
  auto config = MergeHeavyConfig();
  config.lsm.delta = 400;
  RtsiIndex index(config);

  Timestamp t = 0;
  constexpr TermId kSentinelTerm = 7777;
  for (StreamId s = 0; s < 20; ++s) {
    index.InsertWindow(s, t += kMicrosPerSecond,
                       {{kSentinelTerm, 3}}, false);
    index.FinishStream(s);
  }

  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto results = index.Query({kSentinelTerm}, 50, 1'000'000'000);
      if (results.size() != 20u) {
        violation.store(true);
        return;
      }
    }
  });

  Rng rng(9);
  for (int i = 0; i < 6000; ++i) {
    std::vector<TermCount> terms = {
        {static_cast<TermId>(rng.NextUint64(500)), 1}};
    index.InsertWindow(100 + rng.NextUint64(300), t += kMicrosPerSecond,
                       terms, false);
  }
  stop.store(true);
  reader.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(index.GetMergeStats().merges, 1u);
}

TEST(IntegrationTest, RtsiAndLsiiProcessIdenticalWorkloads) {
  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = 60;
  corpus_config.vocab_size = 300;
  corpus_config.avg_windows_per_stream = 4;
  corpus_config.min_windows_per_stream = 2;
  corpus_config.words_per_window = 30;
  const workload::SyntheticCorpus corpus(corpus_config);

  auto config = MergeHeavyConfig();
  RtsiIndex rtsi(config);
  baseline::LsiiIndex lsii(config);
  SimulatedClock clock_a, clock_b;
  workload::InitializeIndex(rtsi, corpus, 0, 60, clock_a);
  workload::InitializeIndex(lsii, corpus, 0, 60, clock_b);

  // Both must return result sets of the same size for head queries (exact
  // order can differ once multi-window streams span components in LSII's
  // approximate-bound regime, but recall must hold).
  for (TermId term = 0; term < 10; ++term) {
    const auto r1 = rtsi.Query({term}, 20, clock_a.Now());
    const auto r2 = lsii.Query({term}, 20, clock_b.Now());
    EXPECT_EQ(r1.size(), r2.size()) << term;
  }
}

TEST(IntegrationTest, HuffmanIndexAnswersIdenticallyToPlain) {
  auto plain_config = MergeHeavyConfig();
  plain_config.lsm.delta = 150;
  auto compressed_config = plain_config;
  compressed_config.lsm.compress = true;

  RtsiIndex plain(plain_config);
  RtsiIndex compressed(compressed_config);
  Rng rng(21);
  Timestamp t = 0;
  for (StreamId s = 0; s < 200; ++s) {
    std::vector<TermCount> terms;
    std::set<TermId> used;
    for (int i = 0; i < 6; ++i) {
      const auto term = static_cast<TermId>(rng.NextUint64(60));
      if (used.insert(term).second) {
        terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
      }
    }
    t += kMicrosPerSecond;
    plain.InsertWindow(s, t, terms, false);
    compressed.InsertWindow(s, t, terms, false);
    plain.FinishStream(s);
    compressed.FinishStream(s);
  }
  for (TermId a = 0; a < 20; ++a) {
    const auto r1 = plain.Query({a, a + 20}, 10, t);
    const auto r2 = compressed.Query({a, a + 20}, 10, t);
    ASSERT_EQ(r1.size(), r2.size()) << a;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << a << " " << i;
    }
  }
  EXPECT_LT(compressed.MemoryBytes(), plain.MemoryBytes());
}

}  // namespace
}  // namespace rtsi
