#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace rtsi {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelWorkActuallyOverlapsQueue) {
  ThreadPool pool(4);
  std::atomic<int> max_active{0};
  std::atomic<int> active{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&] {
      const int now = active.fetch_add(1) + 1;
      int prev = max_active.load();
      while (now > prev && !max_active.compare_exchange_weak(prev, now)) {
      }
      for (int spin = 0; spin < 20000; ++spin) {
      }
      active.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(max_active.load(), 1);
}

}  // namespace
}  // namespace rtsi
