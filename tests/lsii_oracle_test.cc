// Brute-force oracle comparison for the extended-LSII baseline on full
// multi-window live workloads. With the global-pop bound mode LSII's
// pruning is provably safe (its per-term tf correction covers streams
// spanning components), so its top-k must be exact — evidence that the
// baseline is implemented faithfully, not handicapped.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "baseline/lsii_index.h"
#include "common/rng.h"
#include "core/scorer.h"

namespace rtsi::baseline {
namespace {

using core::RtsiConfig;
using core::ScoredStream;
using core::TermCount;

class LsiiOracle {
 public:
  void Insert(StreamId stream, Timestamp now,
              const std::vector<TermCount>& terms) {
    auto& s = streams_[stream];
    s.frsh = std::max(s.frsh, now);
    for (const auto& tc : terms) s.tf[tc.term] += tc.tf;
  }
  void UpdatePop(StreamId stream, std::uint64_t delta) {
    streams_[stream].pop += delta;
  }
  void Delete(StreamId stream) { streams_[stream].deleted = true; }

  std::vector<ScoredStream> TopK(const LsiiIndex& index,
                                 const core::Scorer& scorer,
                                 const std::vector<TermId>& q, int k,
                                 Timestamp now,
                                 const core::DocumentFrequencyTable& df)
      const {
    const std::uint64_t max_pop = index.big_table().max_pop_count();
    std::vector<ScoredStream> all;
    for (const auto& [id, s] : streams_) {
      if (s.deleted) continue;
      double tfidf = 0.0;
      bool relevant = false;
      for (const TermId term : q) {
        auto it = s.tf.find(term);
        if (it != s.tf.end()) {
          relevant = true;
          tfidf += scorer.TermTfIdf(it->second, df.Idf(term));
        }
      }
      if (!relevant) continue;
      all.push_back(
          {id, scorer.Combine(scorer.PopScore(s.pop, max_pop),
                              scorer.RelScore(tfidf,
                                              static_cast<int>(q.size())),
                              scorer.FrshScore(s.frsh, now))});
    }
    std::sort(all.begin(), all.end(),
              [](const ScoredStream& a, const ScoredStream& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.stream < b.stream;
              });
    if (all.size() > static_cast<std::size_t>(k)) all.resize(k);
    return all;
  }

 private:
  struct StreamState {
    std::uint64_t pop = 0;
    Timestamp frsh = 0;
    std::map<TermId, TermFreq> tf;
    bool deleted = false;
  };
  std::map<StreamId, StreamState> streams_;
};

class LsiiOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(LsiiOracleTest, TopKMatchesBruteForce) {
  RtsiConfig config;
  config.lsm.delta = 150;
  config.lsm.num_l0_shards = 4;
  config.bound_mode = core::BoundMode::kGlobalPop;
  LsiiIndex index(config);
  const core::Scorer scorer(config.weights, config.freshness_tau_seconds);
  LsiiOracle oracle;
  // Mirror of LSII's internal df accounting for idf parity.
  core::DocumentFrequencyTable df;
  std::set<StreamId> known_streams;
  std::set<std::pair<StreamId, TermId>> known_pairs;

  Rng rng(GetParam() * 71);
  Timestamp t = 1000;
  constexpr int kNumStreams = 50;
  constexpr int kVocab = 35;
  std::vector<int> windows_left(kNumStreams);
  for (auto& w : windows_left) w = 1 + static_cast<int>(rng.NextUint64(5));

  for (int step = 0; step < 350; ++step) {
    t += 30 * kMicrosPerSecond;
    const auto stream = static_cast<StreamId>(rng.NextUint64(kNumStreams));
    const double action = rng.NextDouble();
    if (action < 0.65) {
      if (windows_left[stream] <= 0) continue;
      --windows_left[stream];
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 5; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      const bool live = windows_left[stream] > 0;
      index.InsertWindow(stream, t, terms, live);
      if (!live) index.FinishStream(stream);
      oracle.Insert(stream, t, terms);
      if (known_streams.insert(stream).second) df.AddDocument();
      for (const auto& tc : terms) {
        if (known_pairs.insert({stream, tc.term}).second) {
          df.AddOccurrence(tc.term);
        }
      }
    } else if (action < 0.80) {
      const std::uint64_t delta = 1 + rng.NextUint64(60);
      index.UpdatePopularity(stream, delta);
      oracle.UpdatePop(stream, delta);
    } else if (action < 0.84) {
      index.DeleteStream(stream);
      oracle.Delete(stream);
      windows_left[stream] = 0;
    } else {
      std::vector<TermId> q = {static_cast<TermId>(rng.NextUint64(kVocab))};
      if (rng.NextBool(0.6)) {
        q.push_back(static_cast<TermId>(rng.NextUint64(kVocab)));
      }
      const int k = 1 + static_cast<int>(rng.NextUint64(8));
      const auto got = index.Query(q, k, t);
      const auto expected = oracle.TopK(index, scorer, q, k, t, df);
      ASSERT_EQ(got.size(), expected.size()) << "step " << step;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i].score, expected[i].score, 1e-9)
            << "step " << step << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LsiiOracleTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace rtsi::baseline
