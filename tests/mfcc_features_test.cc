// Dynamic-feature extensions of the MFCC front-end: delta features,
// CMVN, and their interaction with the acoustic model.

#include <gtest/gtest.h>

#include <cmath>

#include "asr/acoustic_model.h"
#include "asr/phoneme.h"
#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/rng.h"

namespace rtsi::audio {
namespace {

PcmBuffer OneSecondTone() {
  SynthesizerConfig config;
  config.noise_floor = 0.0;
  Synthesizer synth(config);
  Rng rng(1);
  return synth.Render({{500.0, 1500.0, 0.0, 1.0, 0.6}}, rng);
}

TEST(DeltaFeaturesTest, ConstantSignalHasZeroDeltas) {
  std::vector<MfccFrame> frames(10, MfccFrame(5, 3.0));
  const auto deltas = ComputeDeltas(frames, 2);
  ASSERT_EQ(deltas.size(), 10u);
  for (const auto& d : deltas) {
    for (const double v : d) EXPECT_NEAR(v, 0.0, 1e-12);
  }
}

TEST(DeltaFeaturesTest, LinearRampHasConstantDelta) {
  std::vector<MfccFrame> frames;
  for (int t = 0; t < 20; ++t) {
    frames.push_back(MfccFrame(3, 2.0 * t));  // Slope 2 per frame.
  }
  const auto deltas = ComputeDeltas(frames, 2);
  // Interior frames see the exact slope.
  for (int t = 3; t < 17; ++t) {
    for (const double v : deltas[t]) EXPECT_NEAR(v, 2.0, 1e-9);
  }
}

TEST(DeltaFeaturesTest, EmptyInputYieldsEmpty) {
  EXPECT_TRUE(ComputeDeltas({}, 2).empty());
}

TEST(CmvnTest, NormalizesMeanAndVariance) {
  Rng rng(3);
  std::vector<MfccFrame> frames;
  for (int t = 0; t < 100; ++t) {
    MfccFrame f(4);
    for (double& v : f) v = 10.0 + 5.0 * (rng.NextDouble() - 0.5);
    frames.push_back(f);
  }
  ApplyCmvn(frames);
  for (std::size_t i = 0; i < 4; ++i) {
    double mean = 0.0, var = 0.0;
    for (const auto& f : frames) mean += f[i];
    mean /= frames.size();
    for (const auto& f : frames) var += (f[i] - mean) * (f[i] - mean);
    var /= frames.size();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-6);
  }
}

TEST(CmvnTest, ConstantDimensionCentersOnly) {
  std::vector<MfccFrame> frames(10, MfccFrame(2, 7.0));
  ApplyCmvn(frames);
  for (const auto& f : frames) {
    EXPECT_NEAR(f[0], 0.0, 1e-9);
  }
}

TEST(MfccDeltaTest, FeatureDimensionGrowsWithOrders) {
  for (int orders = 0; orders <= 2; ++orders) {
    MfccConfig config;
    config.num_delta_orders = orders;
    MfccExtractor extractor(config);
    EXPECT_EQ(extractor.feature_dimension(), 13 * (orders + 1));
    const auto frames = extractor.Extract(OneSecondTone());
    ASSERT_FALSE(frames.empty());
    EXPECT_EQ(frames[0].size(),
              static_cast<std::size_t>(13 * (orders + 1)));
  }
}

TEST(MfccDeltaTest, SteadyToneHasSmallDeltas) {
  MfccConfig config;
  config.num_delta_orders = 1;
  MfccExtractor extractor(config);
  const auto frames = extractor.Extract(OneSecondTone());
  ASSERT_GT(frames.size(), 10u);
  // Mid-utterance frames of a steady tone: delta block near zero versus
  // the static block magnitude.
  const auto& mid = frames[frames.size() / 2];
  double static_mag = 0.0, delta_mag = 0.0;
  for (int i = 0; i < 13; ++i) static_mag += std::abs(mid[i]);
  for (int i = 13; i < 26; ++i) delta_mag += std::abs(mid[i]);
  EXPECT_LT(delta_mag, static_mag * 0.1);
}

TEST(MfccDeltaTest, AcousticModelWorksWithDynamicFeatures) {
  MfccConfig config;
  config.num_delta_orders = 2;
  config.apply_cmvn = false;
  MfccExtractor extractor(config);
  asr::AcousticModel model(extractor);
  EXPECT_EQ(model.prototypes()[0].size(), 39u);

  // Clean vowels must still classify correctly with the wider features.
  SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.0;
  Synthesizer synth(synth_config);
  Rng rng(13);
  for (const char* name : {"iy", "aa"}) {
    const asr::PhonemeId phone = asr::PhonemeByName(name);
    PhoneSpec spec = asr::PhonemeSpec(phone);
    spec.duration_seconds = 0.2;
    const auto frames = extractor.Extract(synth.Render({spec}, rng));
    ASSERT_GT(frames.size(), 4u);
    EXPECT_EQ(model.BestPhone(frames[frames.size() / 2]), phone) << name;
  }
}

}  // namespace
}  // namespace rtsi::audio
