// Reproducibility: the whole service pipeline is deterministic given the
// seed — identical ingests produce identical dictionaries, index contents
// and search results across independently constructed services.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "service/search_service.h"
#include "workload/corpus.h"

namespace rtsi::service {
namespace {

SearchServiceConfig Config(std::uint64_t seed) {
  SearchServiceConfig config;
  config.index.lsm.delta = 4000;
  config.ingestion.acoustic_path = AcousticPath::kDirect;
  config.ingestion.transcriber.word_error_rate = 0.1;  // Uses the RNG.
  config.seed = seed;
  return config;
}

void IngestCorpus(SearchService& service, SimulatedClock& clock) {
  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = 40;
  corpus_config.vocab_size = 800;
  corpus_config.words_per_window = 30;
  corpus_config.avg_windows_per_stream = 3;
  corpus_config.min_windows_per_stream = 2;
  const workload::SyntheticCorpus corpus(corpus_config);
  for (StreamId s = 0; s < 40; ++s) {
    const int n = corpus.NumWindows(s);
    for (int w = 0; w < n; ++w) {
      service.IngestWindow(s, corpus.WindowWords(s, w), w + 1 < n);
    }
    service.FinishStream(s);
    clock.Advance(kMicrosPerSecond);
  }
}

TEST(ServiceDeterminismTest, SameSeedSameResults) {
  SimulatedClock clock_a, clock_b;
  SearchService a(Config(123), &clock_a);
  SearchService b(Config(123), &clock_b);
  IngestCorpus(a, clock_a);
  IngestCorpus(b, clock_b);

  EXPECT_EQ(a.text_dictionary().size(), b.text_dictionary().size());
  EXPECT_EQ(a.sound_dictionary().size(), b.sound_dictionary().size());
  EXPECT_EQ(a.text_index().tree().total_postings(),
            b.text_index().tree().total_postings());
  EXPECT_EQ(a.sound_index().tree().total_postings(),
            b.sound_index().tree().total_postings());

  for (const char* query : {"w3 w17", "w100", "w5 w250"}) {
    const auto ra = a.SearchKeywords(query, 10);
    const auto rb = b.SearchKeywords(query, 10);
    ASSERT_EQ(ra.size(), rb.size()) << query;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      ASSERT_EQ(ra[i].stream, rb[i].stream) << query;
      ASSERT_NEAR(ra[i].score, rb[i].score, 1e-12) << query;
    }
  }
}

TEST(ServiceDeterminismTest, DifferentSeedsDifferentErrorPatterns) {
  SimulatedClock clock_a, clock_b;
  SearchService a(Config(1), &clock_a);
  SearchService b(Config(2), &clock_b);
  IngestCorpus(a, clock_a);
  IngestCorpus(b, clock_b);
  // 10% WER with different RNG seeds: the substituted words differ, so
  // the text dictionaries almost surely diverge.
  EXPECT_NE(a.text_index().tree().total_postings(),
            b.text_index().tree().total_postings());
}

}  // namespace
}  // namespace rtsi::service
