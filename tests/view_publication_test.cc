// Epoch-published read views under fire (run under TSan/ASan via
// tools/run_sanitizers.sh; ctest labels: concurrency, sanitizer).
//
// Queries pin one immutable IndexView and traverse it lock-free while
// merge cascades, L0 freezes, deletions and whole-index restores publish
// new views underneath. These tests hammer exactly that overlap and
// assert the three properties the refactor owes:
//   (a) no torn view: every pin observes an internally immutable view
//       and epochs are monotone across successive pins;
//   (b) pruning soundness: pruned-walk top-k equals full-walk top-k
//       bit-for-bit on every quiescent snapshot the chaos produced;
//   (c) reclamation: components retired from the published view are
//       actually freed once the last pinning view drops — the refcount
//       replaces the mirror set without inheriting a mirror-style leak.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "core/rtsi_index.h"
#include "service/search_service.h"

namespace rtsi {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using core::ScoredStream;
using core::TermCount;

RtsiConfig ChurnConfig() {
  RtsiConfig config;
  config.lsm.delta = 200;        // Trip cascades constantly.
  config.lsm.rho = 2.0;
  config.lsm.num_l0_shards = 4;
  config.async_merge = true;     // Cascades race queries for real.
  // Streams keep re-inserting after their components seal; only the
  // global-pop mode's live ceilings keep pruning lossless there (§6c),
  // which the pruned-vs-full comparison requires.
  config.bound_mode = core::BoundMode::kGlobalPop;
  return config;
}

std::vector<TermCount> RandomTerms(Rng& rng, TermId vocab) {
  std::vector<TermCount> terms;
  std::set<TermId> used;
  for (int j = 0; j < 4; ++j) {
    const auto term = static_cast<TermId>(rng.NextUint64(vocab));
    if (used.insert(term).second) {
      terms.push_back({term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
    }
  }
  return terms;
}

// (a) Torn-view detection: readers repeatedly pin the view while a
// writer drives freezes, cascades, deletions and seals. Each pin must be
// internally frozen (re-reads agree) and epochs never go backwards.
TEST(ViewPublicationTest, EpochsMonotonePerReaderAndViewsImmutable) {
  RtsiIndex index(ChurnConfig());
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> pins_checked{0};

  const auto reader = [&] {
    std::uint64_t last_epoch = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const lsm::IndexViewPtr view = index.tree().PinView();
      ASSERT_NE(view, nullptr);
      ASSERT_GE(view->epoch, last_epoch) << "epoch went backwards";
      last_epoch = view->epoch;
      // The pinned view is immutable: its epoch and component list must
      // re-read identically, and every component is sealed and complete
      // (non-null, with a valid id) no matter what publishes meanwhile.
      const std::size_t n = view->components.size();
      std::size_t postings = 0;
      for (const auto& component : view->components) {
        ASSERT_NE(component, nullptr);
        ASSERT_NE(component->component_id(), kInvalidComponentId);
        postings += component->num_postings();
      }
      ASSERT_EQ(view->components.size(), n);
      ASSERT_EQ(view->epoch, last_epoch);
      (void)postings;
      pins_checked.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::thread r1(reader), r2(reader);
  Rng rng(17);
  Timestamp t = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto stream = static_cast<StreamId>(rng.NextUint64(80));
    index.InsertWindow(stream, t += kMicrosPerSecond,
                       RandomTerms(rng, 24), rng.NextBool(0.5));
    if (rng.NextBool(0.05)) index.FinishStream(stream);
    if (rng.NextBool(0.03)) index.DeleteStream(stream);
    if (rng.NextBool(0.2)) {
      index.UpdatePopularity(stream, 1 + rng.NextUint64(50));
    }
  }
  index.WaitForMerges();
  stop.store(true, std::memory_order_release);
  r1.join();
  r2.join();
  EXPECT_GT(pins_checked.load(), 0u);
}

// (b) Pruned-walk == full-walk, bit for bit, on every quiescent snapshot
// a merge-heavy, deletion-heavy workload produces. Queries also run
// *during* the chaos to exercise the lock-free path itself.
TEST(ViewPublicationTest, PrunedTopKEqualsFullTopKOnEverySnapshot) {
  auto config = ChurnConfig();
  RtsiIndex index(config);
  Rng rng(23);
  Timestamp t = 0;
  constexpr TermId kVocab = 24;

  for (int burst = 0; burst < 8; ++burst) {
    for (int i = 0; i < 400; ++i) {
      const auto stream = static_cast<StreamId>(rng.NextUint64(70));
      index.InsertWindow(stream, t += kMicrosPerSecond,
                         RandomTerms(rng, kVocab), rng.NextBool(0.6));
      if (rng.NextBool(0.04)) index.FinishStream(stream);
      if (rng.NextBool(0.02)) index.DeleteStream(stream);
      // Query mid-churn: must be well-formed whatever view it pinned.
      if (i % 37 == 0) {
        const auto results = index.Query(
            {static_cast<TermId>(rng.NextUint64(kVocab)),
             static_cast<TermId>(rng.NextUint64(kVocab))},
            10, t);
        ASSERT_LE(results.size(), 10u);
        for (std::size_t r = 1; r < results.size(); ++r) {
          ASSERT_LE(results[r].score, results[r - 1].score);
        }
        for (const auto& r : results) ASSERT_TRUE(std::isfinite(r.score));
      }
    }
    // Quiesce, then certify the bound on this burst's snapshot.
    index.WaitForMerges();
    for (int qi = 0; qi < 4; ++qi) {
      const std::vector<TermId> q = {
          static_cast<TermId>(rng.NextUint64(kVocab)),
          static_cast<TermId>(rng.NextUint64(kVocab))};
      index.SetUseBound(true);
      const auto pruned = index.Query(q, 10, t);
      index.SetUseBound(false);
      const auto full = index.Query(q, 10, t);
      index.SetUseBound(true);
      ASSERT_EQ(pruned.size(), full.size()) << "burst " << burst;
      for (std::size_t i = 0; i < pruned.size(); ++i) {
        ASSERT_EQ(pruned[i].stream, full[i].stream) << "rank " << i;
        ASSERT_EQ(pruned[i].score, full[i].score) << "rank " << i;
      }
    }
  }
}

// (c) Reclamation: components leaving the view stay alive exactly as
// long as a pin references them, then are freed — no mirror-style leak.
TEST(ViewPublicationTest, RetiredComponentsFreedWhenLastPinDrops) {
  auto config = ChurnConfig();
  config.async_merge = false;  // Deterministic cascade points.
  RtsiIndex index(config);
  Rng rng(41);
  Timestamp t = 0;
  for (int i = 0; i < 600; ++i) {
    index.InsertWindow(static_cast<StreamId>(rng.NextUint64(40)),
                       t += kMicrosPerSecond, RandomTerms(rng, 16), true);
  }
  ASSERT_GT(index.tree().PinView()->components.size(), 0u);

  lsm::IndexViewPtr pinned = index.tree().PinView();
  const std::uint64_t pinned_epoch = pinned->epoch;
  // Drive enough churn that every pinned component is merged away.
  for (int i = 0; i < 3000; ++i) {
    index.InsertWindow(static_cast<StreamId>(rng.NextUint64(40)),
                       t += kMicrosPerSecond, RandomTerms(rng, 16), true);
  }
  ASSERT_GT(index.tree().epoch(), pinned_epoch);
  EXPECT_GT(index.tree().retired_components(), 0u);
  EXPECT_GT(index.tree().RetiredBytes(), 0u);
  EXPECT_GE(index.tree().live_views(), 2);  // Published + our pin.

  pinned.reset();
  EXPECT_EQ(index.tree().retired_components(), 0u);
  EXPECT_EQ(index.tree().RetiredBytes(), 0u);
  EXPECT_EQ(index.tree().live_views(), 1);
}

// Service layer: ReplaceIndices is a swap, not a stall. Queries and
// ingestion run concurrently with repeated whole-index restores; pinned
// pairs stay fully usable after the swap replaces them.
TEST(ViewPublicationTest, ReplaceIndicesSwapsUnderConcurrentQueries) {
  service::SearchServiceConfig config;
  config.index.lsm.delta = 500;
  config.index.async_merge = true;
  SimulatedClock clock;
  clock.Advance(kMicrosPerSecond);
  service::SearchService service(config, &clock);

  const std::vector<std::string> vocab = {"alpha", "bravo", "charlie",
                                          "delta", "echo",  "foxtrot"};
  const auto words_for = [&](Rng& rng) {
    std::vector<std::string> words;
    for (int i = 0; i < 12; ++i) {
      words.push_back(vocab[rng.NextUint64(vocab.size())]);
    }
    return words;
  };

  {
    Rng seed_rng(7);
    for (StreamId s = 0; s < 30; ++s) {
      service.IngestWindow(s, words_for(seed_rng), true);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries_done{0};

  std::thread querier([&] {
    Rng rng(11);
    while (!stop.load(std::memory_order_acquire)) {
      const auto results = service.SearchKeywords("alpha charlie", 5);
      ASSERT_LE(results.size(), 5u);
      for (std::size_t i = 1; i < results.size(); ++i) {
        ASSERT_LE(results[i].score, results[i - 1].score);
      }
      queries_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread ingester([&] {
    Rng rng(13);
    StreamId next = 1000;
    while (!stop.load(std::memory_order_acquire)) {
      service.IngestWindow(next++, words_for(rng), true);
    }
  });

  // A pinned pair must outlive any number of restores.
  const auto pinned = service.PinIndices();
  for (int restore = 0; restore < 6; ++restore) {
    auto text = std::make_unique<core::RtsiIndex>(config.index);
    auto sound = std::make_unique<core::RtsiIndex>(config.index);
    service.ReplaceIndices(std::move(text), std::move(sound));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  querier.join();
  ingester.join();

  EXPECT_GT(queries_done.load(), 0u);
  // The pre-restore pair is intact and queryable through its pin.
  const auto held = pinned->text->Query({0, 1}, 5, clock.Now());
  EXPECT_LE(held.size(), 5u);
  pinned->text->WaitForMerges();
  pinned->sound->WaitForMerges();
}

}  // namespace
}  // namespace rtsi
