// Per-shard crash recovery: a sharded durable deployment must uphold the
// PR 3 crash-consistency contract INDEPENDENTLY per shard. A machine
// crash at any filesystem syscall boundary may lose each shard's
// unacknowledged tail, but never an acknowledged op — and a fault that
// degrades one shard must leave the others acking and their files
// untouched.
//
// The invariant per crash point: each recovered shard matches some
// prefix of ITS OWN op subsequence (the workload partitioned by
// ShardForStream) of length >= the ops acknowledged by that shard.
// Probes unbind the shared scoring state first so each shard compares
// bit-for-bit against a plain single-index oracle fed only its
// subsequence.

#include "shard/shard_set.h"

#include <dirent.h>
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/rtsi_index.h"
#include "storage/fault_injection.h"
#include "storage/journal.h"
#include "workload/trace.h"

namespace rtsi::shard {
namespace {

using core::RtsiConfig;
using storage::FaultInjection;
using workload::TraceOp;

const char* kDir = "/tmp/rtsi_shard_crash_recovery_test";
constexpr int kShards = 2;

// Removes every file under the shard directories (snapshots, journals,
// temporaries), creating the tree if needed.
void CleanDir() {
  ::mkdir(kDir, 0755);
  for (int s = 0; s < kShards; ++s) {
    const std::string shard_dir =
        std::string(kDir) + "/shard-" + std::to_string(s);
    ::mkdir(shard_dir.c_str(), 0755);
    DIR* dir = ::opendir(shard_dir.c_str());
    if (dir == nullptr) continue;
    std::vector<std::string> names;
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    for (const std::string& name : names) {
      std::remove((shard_dir + "/" + name).c_str());
    }
  }
}

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.num_l0_shards = 2;
  return config;
}

ShardSetConfig SetConfig() {
  ShardSetConfig config;
  config.index = SmallConfig();
  config.num_shards = kShards;
  config.durable_dir = kDir;
  config.journal.flush_each_record = true;
  return config;
}

constexpr TermId kVocab = 8;
constexpr StreamId kNumStreams = 8;

std::vector<TraceOp> MakeWorkload(int n) {
  std::vector<TraceOp> ops;
  Timestamp now = 0;
  for (int i = 0; i < n; ++i) {
    now += kMicrosPerSecond;
    TraceOp op;
    if (i == 9) {
      op.kind = TraceOp::Kind::kFinish;
      op.stream = 1;
    } else if (i == 13) {
      op.kind = TraceOp::Kind::kDelete;
      op.stream = 3;
    } else if (i % 6 == 5) {
      op.kind = TraceOp::Kind::kUpdate;
      op.stream = static_cast<StreamId>(i % kNumStreams);
      op.delta = 3 + i % 5;
    } else {
      op.kind = TraceOp::Kind::kInsert;
      op.stream = static_cast<StreamId>(i % kNumStreams);
      op.now = now;
      op.live = true;
      op.terms = {{static_cast<TermId>(i % kVocab),
                   static_cast<TermFreq>(1 + i % 3)},
                  {static_cast<TermId>((i + 3) % kVocab), 1}};
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

void ApplyOp(core::SearchIndex& index, const TraceOp& op) {
  switch (op.kind) {
    case TraceOp::Kind::kInsert:
      index.InsertWindow(op.stream, op.now, op.terms, op.live);
      break;
    case TraceOp::Kind::kFinish:
      index.FinishStream(op.stream);
      break;
    case TraceOp::Kind::kDelete:
      index.DeleteStream(op.stream);
      break;
    case TraceOp::Kind::kUpdate:
      index.UpdatePopularity(op.stream, op.delta);
      break;
    case TraceOp::Kind::kQuery:
      break;
  }
}

using Probe = std::vector<std::vector<std::pair<StreamId, double>>>;

Probe ProbeIndex(core::SearchIndex& index) {
  Probe probe(kVocab);
  for (TermId t = 0; t < kVocab; ++t) {
    for (const auto& r :
         index.Query({t}, 2 * static_cast<int>(kNumStreams),
                     1'000'000'000'000LL)) {
      probe[t].emplace_back(r.stream, r.score);
    }
    std::sort(probe[t].begin(), probe[t].end());
  }
  return probe;
}

bool SameProbe(const Probe& a, const Probe& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].size() != b[t].size()) return false;
    for (std::size_t i = 0; i < a[t].size(); ++i) {
      if (a[t][i].first != b[t][i].first) return false;
      if (std::fabs(a[t][i].second - b[t][i].second) > 1e-9) return false;
    }
  }
  return true;
}

/// The workload split into one op subsequence per owning shard.
std::vector<std::vector<TraceOp>> PartitionByShard(
    const std::vector<TraceOp>& ops) {
  std::vector<std::vector<TraceOp>> parts(kShards);
  for (const TraceOp& op : ops) {
    parts[ShardForStream(op.stream, kShards)].push_back(op);
  }
  return parts;
}

// Applies the workload through a durable shard set, checkpointing before
// op `checkpoint_at` (-1 = never). Returns per-shard acknowledged counts:
// ops applied while the OWNING shard was healthy. Ops routed to a
// degraded shard are rejected and not acknowledged.
std::vector<std::size_t> RunWorkload(const std::vector<TraceOp>& ops,
                                     int checkpoint_at) {
  std::vector<std::size_t> acked(kShards, 0);
  auto opened = IndexShardSet::Open(SetConfig());
  if (!opened.ok()) return acked;  // Crashed during open: nothing acked.
  IndexShardSet& set = *opened.value();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (static_cast<int>(i) == checkpoint_at) (void)set.Checkpoint();
    const int s = set.ShardOf(ops[i].stream);
    ApplyOp(set, ops[i]);
    if (!set.durable_shard(s)->degraded()) ++acked[s];
  }
  return acked;
}

TEST(ShardCrashRecoveryTest, EveryCrashPointLosesNoAckedOpsPerShard) {
  const int kOps = 20;
  const int kCheckpoint = 8;  // Exercises both shards' rotation windows.
  const std::vector<TraceOp> ops = MakeWorkload(kOps);
  const auto parts = PartitionByShard(ops);
  for (int s = 0; s < kShards; ++s) {
    ASSERT_GE(parts[s].size(), 3u)
        << "workload leaves shard " << s << " nearly empty; "
        << "pick different stream ids";
  }

  // Per-shard oracle: the probe after every prefix of that shard's own
  // subsequence, on a plain unsharded index.
  std::vector<std::vector<Probe>> oracle(kShards);
  for (int s = 0; s < kShards; ++s) {
    core::RtsiIndex reference(SmallConfig());
    oracle[s].push_back(ProbeIndex(reference));
    for (const TraceOp& op : parts[s]) {
      ApplyOp(reference, op);
      oracle[s].push_back(ProbeIndex(reference));
    }
  }

  auto& fi = FaultInjection::Instance();

  // Enumerate fault points with one instrumented, un-armed run. The
  // sequence interleaves both shards' filesystem ops, so arming each
  // index crashes the machine inside different shards' windows.
  CleanDir();
  fi.Enable();
  const auto clean_acked = RunWorkload(ops, kCheckpoint);
  const std::uint64_t total_points = fi.ops_seen();
  fi.Disable();
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(clean_acked[s], parts[s].size());
  }
  ASSERT_GT(total_points, 60u);

  for (std::uint64_t point = 0; point < total_points; ++point) {
    SCOPED_TRACE("crash at fault point " + std::to_string(point) + "/" +
                 std::to_string(total_points));
    CleanDir();
    fi.Enable();
    fi.ArmFaultAt(point, /*crash=*/true);
    const auto acked = RunWorkload(ops, kCheckpoint);
    EXPECT_TRUE(fi.crash_triggered());

    FaultInjection::CrashOptions crash;
    crash.keep_unsynced_tail_bytes = (point % 3 == 0) ? 7 : 0;
    crash.undo_unsynced_dir_ops = (point % 2 == 0);
    fi.SimulateCrash(crash);
    fi.Disable();

    std::vector<storage::RecoveryStats> recovery;
    auto reopened = IndexShardSet::Open(SetConfig(), &recovery);
    ASSERT_TRUE(reopened.ok())
        << "recovery failed: " << reopened.status().ToString();
    ASSERT_EQ(recovery.size(), static_cast<std::size_t>(kShards));

    for (int s = 0; s < kShards; ++s) {
      // Unbind the cross-shard scoring aggregate so the probe scores
      // from shard-local tables, exactly like the per-shard oracle.
      reopened.value()->shard_index(s).BindSharedScoring(nullptr);
      const Probe recovered = ProbeIndex(reopened.value()->shard_index(s));
      bool matched = false;
      for (std::size_t len = acked[s];
           len <= parts[s].size() && !matched; ++len) {
        matched = SameProbe(recovered, oracle[s][len]);
      }
      EXPECT_TRUE(matched)
          << "shard " << s << " acked=" << acked[s]
          << " but its recovered state matches no prefix of its op "
          << "subsequence >= acked (acknowledged operations lost)";
    }
  }
  CleanDir();
}

// A non-crash fault (e.g. a full disk on one shard's journal) must
// degrade exactly the faulted shard: the sibling keeps acknowledging
// writes, and after the "operator replaces the disk" (reopen), the
// healthy shard's data is complete and the degraded shard kept every op
// it acknowledged before failing.
TEST(ShardCrashRecoveryTest, DegradedShardLeavesSiblingServing) {
  const int kOps = 20;
  const std::vector<TraceOp> ops = MakeWorkload(kOps);
  const auto parts = PartitionByShard(ops);

  auto& fi = FaultInjection::Instance();

  // Count fault points during open alone, then pick one safely inside
  // the workload's journal appends so open itself succeeds.
  CleanDir();
  fi.Enable();
  {
    auto opened = IndexShardSet::Open(SetConfig());
    ASSERT_TRUE(opened.ok());
  }
  const std::uint64_t open_points = fi.ops_seen();
  fi.Disable();

  CleanDir();
  fi.Enable();
  fi.ArmFaultAt(open_points + 10, /*crash=*/false);
  std::vector<std::size_t> acked(kShards, 0);
  int degraded_shard = -1;
  {
    auto opened = IndexShardSet::Open(SetConfig());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    IndexShardSet& set = *opened.value();
    for (const TraceOp& op : ops) {
      const int s = set.ShardOf(op.stream);
      ApplyOp(set, op);
      if (!set.durable_shard(s)->degraded()) ++acked[s];
    }
    int degraded_count = 0;
    for (int s = 0; s < kShards; ++s) {
      if (set.durable_shard(s)->degraded()) {
        degraded_count++;
        degraded_shard = s;
        EXPECT_TRUE(set.GetShardStats(s).degraded);
      } else {
        EXPECT_FALSE(set.GetShardStats(s).degraded);
      }
    }
    ASSERT_EQ(degraded_count, 1)
        << "exactly one shard should hit the injected fault";
  }
  fi.Disable();
  const int healthy_shard = 1 - degraded_shard;
  // The sibling never stopped acking.
  EXPECT_EQ(acked[healthy_shard], parts[healthy_shard].size());
  EXPECT_LT(acked[degraded_shard], parts[degraded_shard].size());

  // Reopen: both shards recover; nothing acknowledged is missing.
  auto reopened = IndexShardSet::Open(SetConfig());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (int s = 0; s < kShards; ++s) {
    reopened.value()->shard_index(s).BindSharedScoring(nullptr);
    const Probe recovered = ProbeIndex(reopened.value()->shard_index(s));
    core::RtsiIndex reference(SmallConfig());
    std::vector<Probe> prefixes;
    prefixes.push_back(ProbeIndex(reference));
    for (const TraceOp& op : parts[s]) {
      ApplyOp(reference, op);
      prefixes.push_back(ProbeIndex(reference));
    }
    bool matched = false;
    for (std::size_t len = acked[s];
         len <= parts[s].size() && !matched; ++len) {
      matched = SameProbe(recovered, prefixes[len]);
    }
    EXPECT_TRUE(matched) << "shard " << s << " lost acked ops (acked="
                         << acked[s] << ")";
    EXPECT_FALSE(reopened.value()->GetShardStats(s).degraded);
  }
  CleanDir();
}

}  // namespace
}  // namespace rtsi::shard
