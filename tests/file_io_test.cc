#include "storage/file_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace rtsi::storage {
namespace {

const char* kPath = "/tmp/rtsi_file_io_test.bin";

TEST(FileIoTest, PrimitivesRoundTrip) {
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(kPath, 7).ok());
    writer.WriteU32(0xDEADBEEF);
    writer.WriteU64(0x0123456789ABCDEFULL);
    writer.WriteVarint(300);
    writer.WriteDouble(3.14159);
    writer.WriteBlob({1, 2, 3, 4, 5});
    writer.WriteString("hello snapshot");
    ASSERT_TRUE(writer.Finish().ok());
  }
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(kPath, 7).ok());
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0, varint = 0;
  double d = 0;
  std::vector<std::uint8_t> blob;
  std::string s;
  ASSERT_TRUE(reader.ReadU32(u32));
  ASSERT_TRUE(reader.ReadU64(u64));
  ASSERT_TRUE(reader.ReadVarint(varint));
  ASSERT_TRUE(reader.ReadDouble(d));
  ASSERT_TRUE(reader.ReadBlob(blob));
  ASSERT_TRUE(reader.ReadString(s));
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(varint, 300u);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(blob, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(s, "hello snapshot");
  EXPECT_TRUE(reader.AtEnd());
  std::remove(kPath);
}

TEST(FileIoTest, VersionMismatchRejected) {
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(kPath, 1).ok());
    writer.WriteU32(5);
    ASSERT_TRUE(writer.Finish().ok());
  }
  SnapshotReader reader;
  EXPECT_FALSE(reader.Open(kPath, 2).ok());
  std::remove(kPath);
}

TEST(FileIoTest, ReadPastEndFails) {
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(kPath, 1).ok());
    writer.WriteU32(5);
    ASSERT_TRUE(writer.Finish().ok());
  }
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(kPath, 1).ok());
  std::uint32_t value = 0;
  ASSERT_TRUE(reader.ReadU32(value));
  std::uint64_t extra = 0;
  EXPECT_FALSE(reader.ReadU64(extra));
  std::remove(kPath);
}

TEST(FileIoTest, CorruptedPayloadDetected) {
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(kPath, 1).ok());
    for (int i = 0; i < 100; ++i) writer.WriteU64(i);
    ASSERT_TRUE(writer.Finish().ok());
  }
  std::FILE* f = std::fopen(kPath, "r+b");
  std::fseek(f, 40, SEEK_SET);
  std::fputc(0x5A, f);
  std::fclose(f);
  SnapshotReader reader;
  EXPECT_FALSE(reader.Open(kPath, 1).ok());
  std::remove(kPath);
}

TEST(FileIoTest, RandomBlobsRoundTrip) {
  Rng rng(5);
  std::vector<std::vector<std::uint8_t>> blobs;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> blob(rng.NextUint64(5000));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
    blobs.push_back(std::move(blob));
  }
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(kPath, 3).ok());
    for (const auto& blob : blobs) writer.WriteBlob(blob);
    ASSERT_TRUE(writer.Finish().ok());
  }
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(kPath, 3).ok());
  for (const auto& expected : blobs) {
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(reader.ReadBlob(got));
    ASSERT_EQ(got, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
  std::remove(kPath);
}

TEST(FileIoTest, EmptyPayloadIsValid) {
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(kPath, 1).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(kPath, 1).ok());
  EXPECT_TRUE(reader.AtEnd());
  std::remove(kPath);
}

}  // namespace
}  // namespace rtsi::storage
