#include "common/latency_stats.h"

#include <gtest/gtest.h>

namespace rtsi {
namespace {

TEST(LatencyStatsTest, EmptyStatsAreZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean_micros(), 0.0);
  EXPECT_DOUBLE_EQ(stats.PercentileMicros(0.99), 0.0);
}

TEST(LatencyStatsTest, TracksMinMaxMean) {
  LatencyStats stats;
  stats.Record(10.0);
  stats.Record(20.0);
  stats.Record(30.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.min_micros(), 10.0);
  EXPECT_DOUBLE_EQ(stats.max_micros(), 30.0);
  EXPECT_DOUBLE_EQ(stats.mean_micros(), 20.0);
}

TEST(LatencyStatsTest, PercentilesAreOrdered) {
  LatencyStats stats;
  for (int i = 1; i <= 1000; ++i) stats.Record(static_cast<double>(i));
  const double p50 = stats.PercentileMicros(0.5);
  const double p90 = stats.PercentileMicros(0.9);
  const double p99 = stats.PercentileMicros(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log buckets are coarse; allow a bucket of slack.
  EXPECT_NEAR(p50, 500.0, 100.0);
  EXPECT_LE(p99, stats.max_micros());
}

TEST(LatencyStatsTest, MergeCombinesCounts) {
  LatencyStats a, b;
  a.Record(5.0);
  a.Record(10.0);
  b.Record(100.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max_micros(), 100.0);
  EXPECT_DOUBLE_EQ(a.min_micros(), 5.0);
}

TEST(LatencyStatsTest, MergeIntoEmpty) {
  LatencyStats a, b;
  b.Record(42.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min_micros(), 42.0);
}

TEST(LatencyStatsTest, ResetClearsEverything) {
  LatencyStats stats;
  stats.Record(7.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.max_micros(), 0.0);
}

TEST(LatencyStatsTest, SummaryMentionsCount) {
  LatencyStats stats;
  stats.Record(1.0);
  stats.Record(2.0);
  EXPECT_NE(stats.Summary().find("n=2"), std::string::npos);
}

TEST(StopwatchTest, MeasuresNonNegativeElapsed) {
  Stopwatch watch;
  double total = 0.0;
  for (int i = 0; i < 10000; ++i) total += i;
  (void)total;
  EXPECT_GE(watch.ElapsedMicros(), 0.0);
}

}  // namespace
}  // namespace rtsi
