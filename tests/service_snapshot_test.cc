// Whole-service snapshots: dictionaries + both modality trees.

#include "service/service_snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/clock.h"

namespace rtsi::service {
namespace {

SearchServiceConfig SmallServiceConfig() {
  SearchServiceConfig config;
  config.index.lsm.delta = 2000;
  config.ingestion.acoustic_path = AcousticPath::kDirect;
  config.ingestion.transcriber.word_error_rate = 0.0;
  return config;
}

void RemoveSnapshotFiles(const std::string& prefix) {
  std::remove((prefix + ".text").c_str());
  std::remove((prefix + ".sound").c_str());
  std::remove((prefix + ".dicts").c_str());
}

TEST(ServiceSnapshotTest, RoundTripPreservesSearchResults) {
  const std::string prefix = "/tmp/rtsi_service_snap_roundtrip";
  SimulatedClock clock;
  SearchService original(SmallServiceConfig(), &clock);
  original.IngestWindow(1, {"quantum", "physics", "lecture", "series"});
  original.IngestWindow(2, {"football", "league", "highlights"});
  original.IngestWindow(3, {"cooking", "pasta", "recipes"});
  original.UpdatePopularity(2, 5000);
  original.FinishStream(3);
  clock.Advance(kMicrosPerMinute);

  ASSERT_TRUE(SaveServiceSnapshot(original, prefix).ok());

  SimulatedClock clock2;
  clock2.SetTime(clock.Now());
  SearchService restored(SmallServiceConfig(), &clock2);
  const Status status = LoadServiceSnapshot(restored, prefix);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(restored.text_dictionary().size(),
            original.text_dictionary().size());
  EXPECT_EQ(restored.sound_dictionary().size(),
            original.sound_dictionary().size());

  for (const char* query : {"quantum physics", "football", "pasta"}) {
    const auto r1 = original.SearchKeywords(query, 5);
    const auto r2 = restored.SearchKeywords(query, 5);
    ASSERT_EQ(r1.size(), r2.size()) << query;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].stream, r2[i].stream) << query;
      EXPECT_NEAR(r1[i].score, r2[i].score, 1e-9) << query;
    }
  }
  RemoveSnapshotFiles(prefix);
}

TEST(ServiceSnapshotTest, RestoredServiceAcceptsNewContent) {
  const std::string prefix = "/tmp/rtsi_service_snap_continue";
  SimulatedClock clock;
  SearchService original(SmallServiceConfig(), &clock);
  original.IngestWindow(1, {"archive", "episode", "history"});
  ASSERT_TRUE(SaveServiceSnapshot(original, prefix).ok());

  SimulatedClock clock2;
  SearchService restored(SmallServiceConfig(), &clock2);
  ASSERT_TRUE(LoadServiceSnapshot(restored, prefix).ok());
  restored.IngestWindow(9, {"fresh", "broadcast", "tonight"});
  clock2.Advance(kMicrosPerMinute);

  EXPECT_FALSE(restored.SearchKeywords("history", 3).empty());
  const auto fresh = restored.SearchKeywords("broadcast", 3);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh[0].stream, 9u);
  RemoveSnapshotFiles(prefix);
}

TEST(ServiceSnapshotTest, LoadIntoNonEmptyServiceFails) {
  const std::string prefix = "/tmp/rtsi_service_snap_nonempty";
  SimulatedClock clock;
  SearchService original(SmallServiceConfig(), &clock);
  original.IngestWindow(1, {"content"});
  ASSERT_TRUE(SaveServiceSnapshot(original, prefix).ok());

  SimulatedClock clock2;
  SearchService busy(SmallServiceConfig(), &clock2);
  busy.IngestWindow(5, {"already", "here"});
  const Status status = LoadServiceSnapshot(busy, prefix);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  RemoveSnapshotFiles(prefix);
}

TEST(ServiceSnapshotTest, MissingFilesReported) {
  SimulatedClock clock;
  SearchService service(SmallServiceConfig(), &clock);
  EXPECT_FALSE(
      LoadServiceSnapshot(service, "/tmp/rtsi_no_such_prefix_xyz").ok());
}

}  // namespace
}  // namespace rtsi::service
