#include "audio/mfcc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "audio/mel_filterbank.h"
#include "audio/synthesizer.h"
#include "common/rng.h"

namespace rtsi::audio {
namespace {

TEST(MelScaleTest, RoundTrips) {
  for (double hz : {100.0, 440.0, 1000.0, 4000.0, 7999.0}) {
    EXPECT_NEAR(MelToHz(HzToMel(hz)), hz, 1e-6) << hz;
  }
}

TEST(MelScaleTest, IsMonotone) {
  double prev = HzToMel(10.0);
  for (double hz = 20.0; hz < 8000.0; hz += 100.0) {
    const double mel = HzToMel(hz);
    EXPECT_GT(mel, prev);
    prev = mel;
  }
}

TEST(MelFilterbankTest, FiltersCoverSpectrumWithoutGaps) {
  const int fft_size = 512;
  MelFilterbank bank(26, fft_size, 16000, 20.0, 8000.0);
  // A flat power spectrum must produce nonzero energy in every filter.
  std::vector<double> flat(fft_size / 2 + 1, 1.0);
  const auto energies = bank.Apply(flat);
  ASSERT_EQ(energies.size(), 26u);
  for (int f = 0; f < 26; ++f) {
    EXPECT_GT(energies[f], 0.0) << "filter " << f;
  }
}

TEST(MelFilterbankTest, LowToneExcitesLowFiltersMost) {
  const int fft_size = 512;
  const int rate = 16000;
  MelFilterbank bank(26, fft_size, rate, 20.0, 8000.0);
  std::vector<double> power(fft_size / 2 + 1, 0.0);
  // Energy at ~300 Hz.
  power[static_cast<std::size_t>(300.0 * fft_size / rate)] = 100.0;
  const auto energies = bank.Apply(power);
  std::size_t argmax = 0;
  for (std::size_t f = 1; f < energies.size(); ++f) {
    if (energies[f] > energies[argmax]) argmax = f;
  }
  EXPECT_LT(argmax, 8u);  // Should land in the low third of the bank.
}

TEST(DctTest, ConstantInputIsOnlyCoefficientZero) {
  std::vector<double> input(26, 2.0);
  const auto out = DctII(input, 13);
  ASSERT_EQ(out.size(), 13u);
  EXPECT_GT(std::abs(out[0]), 1.0);
  for (std::size_t k = 1; k < out.size(); ++k) {
    EXPECT_NEAR(out[k], 0.0, 1e-9) << k;
  }
}

TEST(DctTest, EmptyInputYieldsEmptyOutput) {
  const auto out = DctII({}, 13);
  EXPECT_TRUE(out.empty());
}

TEST(MfccExtractorTest, FrameCountMatchesDuration) {
  MfccConfig config;
  MfccExtractor extractor(config);
  PcmBuffer pcm;
  pcm.sample_rate_hz = 16000;
  pcm.samples.assign(16000, 0.1f);  // 1 second.
  const auto frames = extractor.Extract(pcm);
  // (16000 - 400) / 160 + 1 = 98 frames.
  EXPECT_EQ(frames.size(), 98u);
  for (const auto& frame : frames) {
    EXPECT_EQ(frame.size(), 13u);
  }
}

TEST(MfccExtractorTest, TooShortBufferYieldsNothing) {
  MfccExtractor extractor(MfccConfig{});
  PcmBuffer pcm;
  pcm.samples.assign(100, 0.1f);
  EXPECT_TRUE(extractor.Extract(pcm).empty());
}

TEST(MfccExtractorTest, DistinctTonesGiveDistinctCoefficients) {
  MfccExtractor extractor(MfccConfig{});
  SynthesizerConfig synth_config;
  synth_config.noise_floor = 0.0;
  Synthesizer synth(synth_config);
  Rng rng(3);

  PhoneSpec low{300.0, 900.0, 0.0, 0.3, 0.6};
  PhoneSpec high{1800.0, 2600.0, 0.0, 0.3, 0.6};
  const auto frames_low = extractor.Extract(synth.Render({low}, rng));
  const auto frames_high = extractor.Extract(synth.Render({high}, rng));
  ASSERT_FALSE(frames_low.empty());
  ASSERT_FALSE(frames_high.empty());

  // Compare mid-frames (steady state): should differ markedly.
  const auto& a = frames_low[frames_low.size() / 2];
  const auto& b = frames_high[frames_high.size() / 2];
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += (a[i] - b[i]) * (a[i] - b[i]);
  }
  EXPECT_GT(distance, 1.0);
}

TEST(SynthesizerTest, RenderDurationMatchesSpecs) {
  SynthesizerConfig config;
  Synthesizer synth(config);
  Rng rng(1);
  std::vector<PhoneSpec> phones = {{500, 1500, 0.0, 0.1, 0.5},
                                   {700, 1200, 0.5, 0.05, 0.5}};
  const PcmBuffer pcm = synth.Render(phones, rng);
  EXPECT_EQ(pcm.samples.size(),
            static_cast<std::size_t>(0.15 * config.sample_rate_hz));
}

TEST(SynthesizerTest, SamplesStayInRange) {
  SynthesizerConfig config;
  Synthesizer synth(config);
  Rng rng(2);
  const PcmBuffer pcm =
      synth.Render({{600, 1600, 0.5, 0.2, 1.0}}, rng);
  for (const float s : pcm.samples) {
    ASSERT_GE(s, -1.0f);
    ASSERT_LE(s, 1.0f);
  }
}

}  // namespace
}  // namespace rtsi::audio
