#include "text/stemmer.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "service/search_service.h"

namespace rtsi::text {
namespace {

TEST(StemmerTest, FoldsPlurals) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("streams"), "stream");
  EXPECT_EQ(stemmer.Stem("podcasts"), "podcast");
  EXPECT_EQ(stemmer.Stem("stories"), "story");
  EXPECT_EQ(stemmer.Stem("addresses"), "address");
}

TEST(StemmerTest, FoldsVerbForms) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("streaming"), "stream");
  EXPECT_EQ(stemmer.Stem("streamed"), "stream");
  EXPECT_EQ(stemmer.Stem("running"), "run");
  EXPECT_EQ(stemmer.Stem("broadcasting"), "broadcast");
}

TEST(StemmerTest, InflectionsShareAStem) {
  Stemmer stemmer;
  const std::string base = stemmer.Stem("stream");
  EXPECT_EQ(stemmer.Stem("streams"), base);
  EXPECT_EQ(stemmer.Stem("streaming"), base);
  EXPECT_EQ(stemmer.Stem("streamed"), base);
}

TEST(StemmerTest, LeavesShortAndSpecialTokensAlone) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("its"), "its");
  EXPECT_EQ(stemmer.Stem("abc"), "abc");
  EXPECT_EQ(stemmer.Stem("w1234"), "w1234");   // Synthetic corpus ids.
  EXPECT_EQ(stemmer.Stem("音频流"), "音频流");  // UTF-8 untouched.
}

TEST(StemmerTest, DoesNotMangleNonSuffixWords) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("jazz"), "jazz");
  EXPECT_EQ(stemmer.Stem("chess"), "chess");  // "ss" is not a plural.
  EXPECT_EQ(stemmer.Stem("ring"), "ring");    // Too short for -ing strip.
}

TEST(StemmerTest, AdverbsAndNominalizations) {
  Stemmer stemmer;
  EXPECT_EQ(stemmer.Stem("quickly"), "quick");
  EXPECT_EQ(stemmer.Stem("darkness"), "dark");
}

TEST(StemmerServiceTest, StemmedServiceMatchesInflectedQueries) {
  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  config.ingestion.transcriber.word_error_rate = 0.0;
  config.ingestion.stem_text = true;
  service::SearchService search(config, &clock);

  search.IngestWindow(1, {"streaming", "music", "concerts"});
  clock.Advance(kMicrosPerMinute);

  // Inflected query forms hit the same stems.
  for (const char* query : {"stream", "streams", "streamed", "concert"}) {
    const auto results = search.SearchKeywords(query, 3);
    ASSERT_FALSE(results.empty()) << query;
    EXPECT_EQ(results[0].stream, 1u) << query;
    EXPECT_GT(results[0].text_score, 0.0) << query;
  }
}

TEST(StemmerServiceTest, UnstemmedServiceMissesInflections) {
  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  config.ingestion.transcriber.word_error_rate = 0.0;
  config.ingestion.stem_text = false;
  service::SearchService search(config, &clock);

  search.IngestWindow(1, {"streaming", "music"});
  clock.Advance(kMicrosPerMinute);
  const auto results = search.SearchKeywords("streams", 3);
  // Text modality misses; only sound similarity could rescue, and for a
  // different inflection the lattice units differ too.
  for (const auto& r : results) {
    EXPECT_EQ(r.text_score, 0.0);
  }
}

}  // namespace
}  // namespace rtsi::text
