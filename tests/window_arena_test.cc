// WindowArena unit tests: size-class rounding, free-list recycling,
// oversized blocks, the MemoryTracker gauge, and the ArenaAllocator
// adapter driving real containers (including the Seal() heap migration).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/window_arena.h"
#include "index/term_postings.h"

namespace rtsi {
namespace {

TEST(WindowArenaTest, RoundsRequestsToPowerOfTwoClasses) {
  WindowArena arena;
  arena.Allocate(1);
  EXPECT_EQ(arena.allocated_bytes(), 16u);  // Min class.
  arena.Allocate(16);
  EXPECT_EQ(arena.allocated_bytes(), 32u);
  arena.Allocate(17);
  EXPECT_EQ(arena.allocated_bytes(), 64u);  // 17 -> 32.
  arena.Allocate(100);
  EXPECT_EQ(arena.allocated_bytes(), 192u);  // 100 -> 128.
  EXPECT_EQ(arena.GetStats().requests, 4u);
}

TEST(WindowArenaTest, CarvesAreMaxAligned) {
  WindowArena arena;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(static_cast<std::size_t>(1 + i * 7 % 120));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
  }
}

TEST(WindowArenaTest, FreeListRecyclesBlocksOfTheSameClass) {
  WindowArena arena;
  void* a = arena.Allocate(24);  // Class 32.
  arena.Deallocate(a, 24);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  void* b = arena.Allocate(30);  // Same class; must reuse the freed block.
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.GetStats().freelist_hits, 1u);
  // A different class must not reuse it.
  void* c = arena.Allocate(200);
  EXPECT_NE(c, a);
}

TEST(WindowArenaTest, OversizedAllocationsGetDedicatedBlocks) {
  WindowArena arena(/*slab_bytes=*/1024);
  const std::size_t before = arena.owned_bytes();
  void* p = arena.Allocate(4096);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.owned_bytes() - before, 4096u);  // No slab padding.
  // Freed oversized blocks recycle through their class like any other.
  arena.Deallocate(p, 4096);
  EXPECT_EQ(arena.Allocate(4000), p);
}

TEST(WindowArenaTest, TrackerGaugeFollowsOwnedBytesAndZeroesAtDeath) {
  auto tracker = std::make_shared<MemoryTracker>();
  {
    WindowArena arena(WindowArena::kDefaultSlabBytes, tracker);
    EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), 0u);
    arena.Allocate(100);
    EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), arena.owned_bytes());
    arena.Allocate(1 << 20);  // Oversized block also charged.
    EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), arena.owned_bytes());
    EXPECT_GT(arena.owned_bytes(), static_cast<std::size_t>(1 << 20));
  }
  EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), 0u);
}

TEST(WindowArenaTest, VectorPromotesThroughClassesAndReturnsBlocks) {
  WindowArena arena;
  {
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 10000; ++i) v.push_back(i);
    for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
    // Growth promoted the buffer through several classes; the abandoned
    // smaller buffers are on free lists, not leaked.
    EXPECT_GT(arena.GetStats().requests, 1u);
  }
  // Vector destruction returned the final buffer too.
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_GT(arena.owned_bytes(), 0u);  // Slabs are kept for reuse.
}

TEST(WindowArenaTest, UnorderedMapChurnHitsTheFreeList) {
  WindowArena arena;
  using Alloc = ArenaAllocator<std::pair<const int, int>>;
  using Map = std::unordered_map<int, int, std::hash<int>, std::equal_to<int>,
                                 Alloc>;
  Map map{Alloc(&arena)};
  for (int i = 0; i < 500; ++i) map[i] = i;
  for (int i = 0; i < 500; ++i) map.erase(i);
  const std::uint64_t hits_before = arena.GetStats().freelist_hits;
  const std::size_t owned_before = arena.owned_bytes();
  for (int i = 0; i < 500; ++i) map[i] = i;  // Refill: recycled nodes.
  EXPECT_GT(arena.GetStats().freelist_hits, hits_before);
  EXPECT_EQ(arena.owned_bytes(), owned_before);  // No new slabs needed.
}

TEST(WindowArenaTest, NullArenaAllocatorFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> v;  // Default allocator: no arena.
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
}

TEST(WindowArenaTest, SealMigratesPostingsOffTheArena) {
  WindowArena arena;
  index::TermPostings postings(&arena);
  for (int i = 0; i < 100; ++i) {
    postings.Append({static_cast<StreamId>(i), 1.0f,
                     static_cast<Timestamp>(i), 1});
  }
  EXPECT_GT(arena.allocated_bytes(), 0u);
  postings.Seal();
  // Every arena byte is back on the free lists: the sealed object holds
  // no arena memory, so the arena can be retired wholesale.
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(postings.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(postings.entries()[i].stream, static_cast<StreamId>(i));
  }
  EXPECT_TRUE(postings.IsSorted(index::SortKey::kPopularity));
}

}  // namespace
}  // namespace rtsi
