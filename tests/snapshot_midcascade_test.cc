// Tentpole acceptance test for multi-component levels: a snapshot taken
// at ANY published step of a merge cascade — after the freeze, after each
// intermediate fold — is a fully restorable state. The restored index
// answers the probe queries identically to the live (uninterrupted)
// index at the moment the snapshot was taken, round-trips its exact
// per-level run shape, and keeps compacting correctly from the
// mid-cascade shape (the stateless policies re-plan from whatever levels
// they see). Verified for all three compaction policies, plus a
// power-loss variant where the snapshot write itself is killed at every
// filesystem syscall boundary.

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/rtsi_index.h"
#include "storage/fault_injection.h"
#include "storage/snapshot.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using core::ScoredStream;
using core::TermCount;

const char* kDir = "/tmp/rtsi_midcascade_test";

std::string StepPath(std::size_t step) {
  return std::string(kDir) + "/step_" + std::to_string(step) + ".snap";
}

constexpr TermId kVocab = 30;
constexpr int kNumOps = 260;

RtsiConfig SmallConfig(lsm::MergePolicy policy) {
  RtsiConfig config;
  config.lsm.delta = 120;  // Small: many freezes, deep cascades.
  config.lsm.rho = 2.0;
  config.lsm.num_l0_shards = 2;
  config.lsm.policy = policy;
  config.lsm.tier_runs = 3;
  return config;
}

// One deterministic InsertWindow op. No popularity updates: those drift
// the kSnapshot pruning bounds, which would make results depend on
// component layout rather than content (covered elsewhere); here every
// comparison must be layout-independent.
struct Op {
  StreamId stream;
  Timestamp now;
  std::vector<TermCount> terms;
  bool finish;
};

std::vector<Op> MakeWorkload(std::uint64_t seed, int n, StreamId base) {
  Rng rng(seed);
  std::vector<Op> ops;
  Timestamp t = static_cast<Timestamp>(base) * kMicrosPerSecond;
  for (int i = 0; i < n; ++i) {
    Op op;
    op.stream = base + static_cast<StreamId>(i);
    op.now = (t += kMicrosPerSecond);
    std::set<TermId> used;
    for (int j = 0; j < 4; ++j) {
      const auto term = static_cast<TermId>(rng.NextUint64(kVocab));
      if (used.insert(term).second) {
        op.terms.push_back(
            {term, 1 + static_cast<TermFreq>(rng.NextUint64(3))});
      }
    }
    op.finish = (i % 2 == 0);
    ops.push_back(std::move(op));
  }
  return ops;
}

void Apply(RtsiIndex& index, const Op& op) {
  index.InsertWindow(op.stream, op.now, op.terms, !op.finish);
  if (op.finish) index.FinishStream(op.stream);
}

std::vector<ScoredStream> Probe(RtsiIndex& index, Timestamp now) {
  std::vector<ScoredStream> all;
  for (TermId q = 0; q < kVocab; q += 4) {
    auto r = index.Query({q, (q + 9) % kVocab}, 8, now);
    all.insert(all.end(), r.begin(), r.end());
  }
  return all;
}

bool SameResults(const std::vector<ScoredStream>& got,
                 const std::vector<ScoredStream>& expect) {
  if (got.size() != expect.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].stream != expect[i].stream) return false;
    if (std::abs(got[i].score - expect[i].score) > 1e-9) return false;
  }
  return true;
}

void ExpectSameResults(const std::vector<ScoredStream>& got,
                       const std::vector<ScoredStream>& expect,
                       const std::string& label) {
  ASSERT_EQ(got.size(), expect.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].stream, expect[i].stream) << label << " entry " << i;
    ASSERT_NEAR(got[i].score, expect[i].score, 1e-9)
        << label << " entry " << i;
  }
}

/// Everything recorded at one published cascade step, at the instant the
/// step's view went live: the uninterrupted index IS the oracle.
struct StepRecord {
  std::size_t step = 0;
  int ops_applied = 0;               // whole InsertWindow ops so far
  Timestamp now = 0;
  std::vector<std::size_t> runs_per_level;
  std::vector<ScoredStream> oracle;  // probe results of the live index
};

class SnapshotMidCascadeTest : public ::testing::Test {
 protected:
  void SetUp() override { ::mkdir(kDir, 0755); }
};

void RunSnapshotEveryStep(lsm::MergePolicy policy) {
  RtsiIndex index(SmallConfig(policy));
  const auto ops = MakeWorkload(/*seed=*/29, kNumOps, /*base=*/0);

  std::vector<StepRecord> records;
  int ops_applied = 0;
  Timestamp now = 0;
  // The observer runs after every published cascade step, with no tree
  // locks held — snapshotting and querying from it is the supported way
  // to capture a mid-cascade state.
  index.SetCascadeObserver([&] {
    StepRecord rec;
    rec.step = records.size();
    rec.ops_applied = ops_applied;
    rec.now = now;
    rec.runs_per_level = index.tree().RunsPerLevel();
    rec.oracle = Probe(index, now);
    ASSERT_TRUE(
        storage::SaveIndexSnapshot(index, StepPath(rec.step)).ok());
    records.push_back(std::move(rec));
  });

  for (const Op& op : ops) {
    now = op.now;
    Apply(index, op);
    ++ops_applied;
  }
  index.SetCascadeObserver(nullptr);

  ASSERT_GT(records.size(), 5u) << lsm::MergePolicyName(policy);
  // At least one captured state must be genuinely mid-cascade — a frozen
  // level-0 run still awaiting its fold. Those states were exactly the
  // unrestorable ones before multi-component levels.
  bool saw_l0_run = false;
  for (const auto& rec : records) {
    if (!rec.runs_per_level.empty() && rec.runs_per_level[0] > 0) {
      saw_l0_run = true;
    }
  }
  EXPECT_TRUE(saw_l0_run) << lsm::MergePolicyName(policy);

  for (const auto& rec : records) {
    const std::string label = std::string(lsm::MergePolicyName(policy)) +
                              " step " + std::to_string(rec.step);
    auto loaded = storage::LoadIndexSnapshot(StepPath(rec.step));
    ASSERT_TRUE(loaded.ok()) << label << ": " << loaded.status().ToString();
    auto restored = std::move(loaded).value();
    // Shape round-trips exactly, mid-cascade or not.
    EXPECT_EQ(restored->tree().RunsPerLevel(), rec.runs_per_level) << label;
    EXPECT_EQ(restored->tree().policy(), policy) << label;
    ExpectSameResults(Probe(*restored, rec.now), rec.oracle, label);
    std::remove(StepPath(rec.step).c_str());
  }
}

TEST_F(SnapshotMidCascadeTest, GeometricEveryStepRestorable) {
  RunSnapshotEveryStep(lsm::MergePolicy::kGeometric);
}

TEST_F(SnapshotMidCascadeTest, TieredEveryStepRestorable) {
  RunSnapshotEveryStep(lsm::MergePolicy::kTiered);
}

TEST_F(SnapshotMidCascadeTest, FullCompactionEveryStepRestorable) {
  RunSnapshotEveryStep(lsm::MergePolicy::kFullCompaction);
}

// A restored mid-cascade state is not a dead end: feeding it the rest of
// the workload produces the same results as an oracle that was never
// snapshotted — the stateless policy re-plans from the restored shape
// and compacts it back down.
void RunRestoreAndContinue(lsm::MergePolicy policy) {
  RtsiIndex index(SmallConfig(policy));
  const auto prefix = MakeWorkload(/*seed=*/31, kNumOps, /*base=*/0);
  const auto suffix =
      MakeWorkload(/*seed=*/33, 120, /*base=*/kNumOps + 100);

  // Snapshot at the LAST cascade step whose shape still holds a frozen
  // L0 run — the deepest mid-cascade seam the workload produces.
  const std::string path = std::string(kDir) + "/continue.snap";
  int snap_ops = -1;
  int ops_applied = 0;
  index.SetCascadeObserver([&] {
    const auto runs = index.tree().RunsPerLevel();
    if (!runs.empty() && runs[0] > 0) {
      ASSERT_TRUE(storage::SaveIndexSnapshot(index, path).ok());
      snap_ops = ops_applied;
    }
  });
  for (const Op& op : prefix) {
    Apply(index, op);
    ++ops_applied;
  }
  index.SetCascadeObserver(nullptr);
  ASSERT_GE(snap_ops, 0) << lsm::MergePolicyName(policy);

  auto loaded = storage::LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto restored = std::move(loaded).value();

  // Oracle: fresh index fed the same prefix-up-to-snapshot + suffix,
  // with its cascades running uninterrupted the whole time. The cascade
  // (and so the snapshot) fires after op `snap_ops` finished inserting
  // its window, so the prefix is inclusive.
  RtsiIndex oracle(SmallConfig(policy));
  for (int i = 0; i <= snap_ops; ++i) Apply(oracle, prefix[i]);
  Timestamp now = 0;
  for (const Op& op : suffix) {
    Apply(*restored, op);
    Apply(oracle, op);
    now = op.now;
  }
  restored->WaitForMerges();
  oracle.WaitForMerges();
  EXPECT_EQ(restored->tree().total_postings(),
            oracle.tree().total_postings())
      << lsm::MergePolicyName(policy);
  ExpectSameResults(Probe(*restored, now), Probe(oracle, now),
                    std::string(lsm::MergePolicyName(policy)) +
                        " continue-after-restore");
  std::remove(path.c_str());
}

TEST_F(SnapshotMidCascadeTest, GeometricRestoreAndContinue) {
  RunRestoreAndContinue(lsm::MergePolicy::kGeometric);
}

TEST_F(SnapshotMidCascadeTest, TieredRestoreAndContinue) {
  RunRestoreAndContinue(lsm::MergePolicy::kTiered);
}

TEST_F(SnapshotMidCascadeTest, FullCompactionRestoreAndContinue) {
  RunRestoreAndContinue(lsm::MergePolicy::kFullCompaction);
}

// Power-loss torture on the mid-cascade snapshot write itself: kill the
// save at every filesystem syscall boundary in turn. Whatever the crash
// point, the path must afterwards hold a loadable snapshot whose results
// match either the previous durable snapshot (write never committed) or
// the new one (write committed) — never a torn in-between.
TEST_F(SnapshotMidCascadeTest, CrashDuringMidCascadeSnapshotWrite) {
  const std::string path = std::string(kDir) + "/torture.snap";
  std::remove(path.c_str());

  RtsiIndex index(SmallConfig(lsm::MergePolicy::kTiered));
  const auto ops = MakeWorkload(/*seed=*/41, kNumOps, /*base=*/0);

  // Capture two mid-cascade states: an early one (becomes the durable
  // base snapshot) and the final index (the state being re-saved when
  // the "machine" loses power).
  std::size_t steps_seen = 0;
  Timestamp base_now = 0;
  Timestamp now = 0;
  std::vector<ScoredStream> base_oracle;
  index.SetCascadeObserver([&] {
    if (++steps_seen == 3) {
      base_now = now;
      base_oracle = Probe(index, now);
      ASSERT_TRUE(storage::SaveIndexSnapshot(index, path).ok());
    }
  });
  for (const Op& op : ops) {
    now = op.now;
    Apply(index, op);
  }
  index.SetCascadeObserver(nullptr);
  ASSERT_GE(steps_seen, 3u);
  ASSERT_FALSE(base_oracle.empty());
  const auto final_oracle = Probe(index, now);

  auto& faults = FaultInjection::Instance();
  for (std::uint64_t fault_at = 0;; ++fault_at) {
    faults.Enable();
    faults.ArmFaultAt(fault_at, /*crash=*/true);
    const Status status = storage::SaveIndexSnapshot(index, path);
    const bool crashed = faults.crash_triggered();
    faults.SimulateCrash({});
    faults.Disable();
    ASSERT_EQ(status.ok(), !crashed) << "fault " << fault_at;

    auto loaded = storage::LoadIndexSnapshot(path);
    ASSERT_TRUE(loaded.ok())
        << "fault " << fault_at << ": " << loaded.status().ToString();
    auto restored = std::move(loaded).value();
    if (crashed) {
      // Atomic write: either the old durable snapshot survived untouched
      // (crash before the rename committed) or the complete new one is in
      // place (crash after) — never a torn in-between.
      const bool is_base = SameResults(Probe(*restored, base_now),
                                       base_oracle);
      const bool is_final =
          is_base || SameResults(Probe(*restored, now), final_oracle);
      EXPECT_TRUE(is_base || is_final) << "fault " << fault_at;
    } else {
      ExpectSameResults(Probe(*restored, now), final_oracle, "committed");
      break;  // Fault point past the end of the write: done.
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtsi::storage
