#include "lsm/merge.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "index/stream_info_table.h"

namespace rtsi::lsm {
namespace {

using index::InvertedIndex;
using index::Posting;

Posting P(StreamId s, float pop, Timestamp frsh, TermFreq tf) {
  return Posting{s, pop, frsh, tf};
}

TEST(MergeTest, CombineWithNullConsolidatesDuplicates) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.Add(1, P(10, 2.0f, 200, 3));  // Same stream, later window.
  a.Add(1, P(11, 5.0f, 150, 1));
  a.SealAll();

  MergeStats stats;
  const auto merged =
      CombineComponents(a, nullptr, 1, false, MergeHooks{}, &stats);
  ASSERT_NE(merged->GetPlain(1), nullptr);
  EXPECT_EQ(merged->GetPlain(1)->size(), 2u);

  Posting out;
  ASSERT_TRUE(merged->GetPlain(1)->AggregateForStream(10, out));
  EXPECT_EQ(out.tf, 5u);
  EXPECT_EQ(out.frsh, 200);
  EXPECT_FLOAT_EQ(out.pop, 2.0f);
  EXPECT_EQ(stats.consolidated_postings, 1u);
}

TEST(MergeTest, CombineMergesTermsFromBothInputs) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.Add(2, P(10, 1.0f, 100, 1));
  a.SealAll();
  InvertedIndex b(1);
  b.Add(1, P(20, 3.0f, 50, 4));
  b.Add(3, P(30, 2.0f, 60, 5));
  b.SealAll();

  MergeStats stats;
  const auto merged =
      CombineComponents(a, &b, 2, false, MergeHooks{}, &stats);
  EXPECT_EQ(merged->num_terms(), 3u);
  EXPECT_EQ(merged->num_postings(), 4u);
  EXPECT_EQ(merged->GetPlain(1)->size(), 2u);
  EXPECT_EQ(stats.postings_in, 4u);
  EXPECT_EQ(stats.postings_out, 4u);
}

TEST(MergeTest, CrossComponentDuplicatesAreConsolidated) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 300, 2));
  a.SealAll();
  InvertedIndex b(1);
  b.Add(1, P(10, 4.0f, 100, 6));
  b.SealAll();

  const auto merged =
      CombineComponents(a, &b, 2, false, MergeHooks{}, nullptr);
  ASSERT_EQ(merged->GetPlain(1)->size(), 1u);
  const Posting& p = merged->GetPlain(1)->entries()[0];
  EXPECT_EQ(p.tf, 8u);
  EXPECT_EQ(p.frsh, 300);
  EXPECT_FLOAT_EQ(p.pop, 4.0f);
}

TEST(MergeTest, LazyDeletionPurgesPostings) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.Add(1, P(11, 1.0f, 110, 3));
  a.SealAll();

  MergeHooks hooks;
  hooks.is_deleted = [](StreamId s) { return s == 10; };
  MergeStats stats;
  const auto merged = CombineComponents(a, nullptr, 1, false, hooks, &stats);
  EXPECT_EQ(merged->num_postings(), 1u);
  EXPECT_EQ(stats.purged_postings, 1u);
  Posting out;
  EXPECT_FALSE(merged->GetPlain(1)->AggregateForStream(10, out));
}

TEST(MergeTest, TermFullyPurgedDisappears) {
  InvertedIndex a(0);
  a.Add(7, P(10, 1.0f, 100, 2));
  a.SealAll();
  MergeHooks hooks;
  hooks.is_deleted = [](StreamId) { return true; };
  const auto merged = CombineComponents(a, nullptr, 1, false, hooks, nullptr);
  EXPECT_EQ(merged->num_terms(), 0u);
  EXPECT_EQ(merged->num_postings(), 0u);
}

TEST(MergeTest, OnStreamHookSeesMembership) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.Add(1, P(11, 1.0f, 110, 3));
  a.SealAll();
  InvertedIndex b(1);
  b.Add(2, P(11, 1.0f, 50, 1));
  b.Add(2, P(12, 1.0f, 60, 1));
  b.SealAll();

  std::set<StreamId> only_a, both, only_b;
  MergeHooks hooks;
  hooks.on_stream = [&](StreamId s, std::uint32_t copies,
                        const InvertedIndex&) {
    if (copies == 2) {
      both.insert(s);
    } else if (s == 12) {
      only_b.insert(s);
    } else {
      only_a.insert(s);
    }
  };
  CombineComponents(a, &b, 2, false, hooks, nullptr);
  EXPECT_EQ(both, std::set<StreamId>{11});
  EXPECT_EQ(only_a, std::set<StreamId>{10});
  EXPECT_EQ(only_b, std::set<StreamId>{12});
}

TEST(MergeTest, OnStreamHookSeesCopyCountAndOutput) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.SealAll();
  a.AdoptCeiling(7, std::make_shared<index::FreshnessCeiling>());
  InvertedIndex b(1);
  b.Add(1, P(10, 1.0f, 50, 1));
  b.SealAll();
  b.AdoptCeiling(8, std::make_shared<index::FreshnessCeiling>());

  int calls = 0;
  MergeHooks hooks;
  hooks.on_stream = [&](StreamId s, std::uint32_t copies,
                        const InvertedIndex& merged) {
    ++calls;
    EXPECT_EQ(s, 10u);
    EXPECT_EQ(copies, 2u);  // Present in both inputs.
    EXPECT_EQ(merged.component_id(), 9u);
  };
  const auto merged = CombineComponents(
      a, &b, 2, false, hooks, nullptr, 9,
      std::make_shared<index::FreshnessCeiling>());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(merged->component_id(), 9u);
}

TEST(MergeTest, MergedCeilingInheritsBothInputs) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.SealAll();
  a.AdoptCeiling(1, std::make_shared<index::FreshnessCeiling>());
  a.BumpCeiling(500);  // A resident stream stayed active after sealing.
  InvertedIndex b(1);
  b.Add(1, P(20, 2.0f, 250, 3));
  b.SealAll();
  b.AdoptCeiling(2, std::make_shared<index::FreshnessCeiling>());

  const auto merged = CombineComponents(
      a, &b, 2, false, MergeHooks{}, nullptr, 3,
      std::make_shared<index::FreshnessCeiling>());
  EXPECT_EQ(merged->component_id(), 3u);
  ASSERT_TRUE(merged->has_ceiling());
  // Dominates a's bumped ceiling (500) and b's stored maximum (250).
  EXPECT_EQ(merged->LiveFrshCeiling(), 500);
}

TEST(MergeTest, NoCeilingCellFallsBackToStoredMax) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.Add(1, P(11, 1.0f, 140, 1));
  a.SealAll();

  // Tests that call CombineComponents without an id/cell still get a
  // sound component: LiveFrshCeiling() floors at the stored maximum and
  // queries fall back to the table-global max_frsh().
  const auto merged =
      CombineComponents(a, nullptr, 1, false, MergeHooks{}, nullptr);
  EXPECT_EQ(merged->component_id(), kInvalidComponentId);
  EXPECT_FALSE(merged->has_ceiling());
  EXPECT_EQ(merged->LiveFrshCeiling(), 140);
}

TEST(MergeTest, OutputIsSealedAndSorted) {
  InvertedIndex a(0);
  a.Add(1, P(10, 3.0f, 100, 2));
  a.Add(1, P(11, 1.0f, 110, 9));
  a.Add(1, P(12, 7.0f, 120, 4));
  a.SealAll();
  const auto merged =
      CombineComponents(a, nullptr, 1, false, MergeHooks{}, nullptr);
  const auto* postings = merged->GetPlain(1);
  ASSERT_NE(postings, nullptr);
  EXPECT_TRUE(postings->sealed());
  EXPECT_TRUE(postings->IsSorted(index::SortKey::kPopularity));
  EXPECT_TRUE(postings->IsSorted(index::SortKey::kFreshness));
  EXPECT_TRUE(postings->IsSorted(index::SortKey::kTermFrequency));
}

TEST(MergeTest, CompressedOutputWhenRequested) {
  InvertedIndex a(0);
  for (int i = 0; i < 50; ++i) {
    a.Add(1, P(i, static_cast<float>(i), 100 + i, 1));
  }
  a.SealAll();
  const auto merged =
      CombineComponents(a, nullptr, 1, true, MergeHooks{}, nullptr);
  EXPECT_TRUE(merged->compressed());
  EXPECT_EQ(merged->num_postings(), 50u);
  const auto view = merged->View(1);
  ASSERT_TRUE(static_cast<bool>(view));
  EXPECT_EQ(view->size(), 50u);
}

TEST(MergeTest, SurvivingStreamsReportedForRetirePass) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.Add(1, P(11, 1.0f, 110, 3));
  a.SealAll();
  InvertedIndex b(1);
  b.Add(2, P(11, 1.0f, 50, 1));
  b.Add(2, P(12, 1.0f, 60, 1));
  b.SealAll();

  MergeHooks hooks;
  hooks.is_deleted = [](StreamId s) { return s == 12; };
  hooks.on_stream = [](StreamId, std::uint32_t, const InvertedIndex&) {};
  std::vector<StreamId> surviving;
  CombineComponents(a, &b, 2, false, hooks, nullptr, 3,
                    std::make_shared<index::FreshnessCeiling>(), &surviving);
  // Purged streams are not reported: there is nothing to retire for them.
  EXPECT_EQ(std::set<StreamId>(surviving.begin(), surviving.end()),
            (std::set<StreamId>{10, 11}));
}

// The review-critical window: an insert that lands after the merge
// registered the output residency but before the output replaces its
// inputs must still raise the *inputs'* ceilings — they are what a
// concurrent query snapshots. Drives a real StreamInfoTable through the
// same hook wiring RtsiIndex uses.
TEST(MergeTest, InsertDuringMergeWindowKeepsInputCeilingsSound) {
  index::StreamInfoTable table;
  table.OnInsert(10, 100, true);

  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.SealAll();
  a.AdoptCeiling(1, std::make_shared<index::FreshnessCeiling>());
  table.AddSealedResidency(10, 1, a.ceiling_cell());
  InvertedIndex b(1);
  b.Add(1, P(10, 1.0f, 50, 1));
  b.SealAll();
  b.AdoptCeiling(2, std::make_shared<index::FreshnessCeiling>());
  table.AddSealedResidency(10, 2, b.ceiling_cell());

  MergeHooks hooks;
  hooks.is_deleted = [&](StreamId s) { return table.IsDeleted(s); };
  hooks.on_stream = [&](StreamId s, std::uint32_t copies,
                        const InvertedIndex& merged) {
    table.MergeResidency(s, copies, merged.component_id(),
                         merged.ceiling_cell());
    // Simulate the racing insert inside the merge window, while the
    // inputs are still query-visible.
    table.OnInsert(s, 900, true);
  };
  std::vector<StreamId> surviving;
  const auto merged = CombineComponents(
      a, &b, 2, false, hooks, nullptr, 3,
      std::make_shared<index::FreshnessCeiling>(), &surviving);

  // Both inputs and the (unpublished) output cover the in-window insert.
  EXPECT_EQ(a.LiveFrshCeiling(), 900);
  EXPECT_EQ(b.LiveFrshCeiling(), 900);
  EXPECT_EQ(merged->LiveFrshCeiling(), 900);

  // Post-swap retire pass, as LsmTree runs it.
  for (const StreamId s : surviving) {
    table.DropResidency(s, {a.component_id(), b.component_id()});
  }
  EXPECT_EQ(table.GetResidency(10), std::vector<ComponentId>{3});
}

TEST(MergeTest, CompressedInputCanBeMerged) {
  InvertedIndex a(0);
  a.Add(1, P(10, 1.0f, 100, 2));
  a.SealAll();
  InvertedIndex b(1);
  b.Add(1, P(20, 2.0f, 50, 3));
  b.SealAll();
  b.CompressAll();

  const auto merged =
      CombineComponents(a, &b, 2, false, MergeHooks{}, nullptr);
  EXPECT_EQ(merged->num_postings(), 2u);
}

}  // namespace
}  // namespace rtsi::lsm
