#include "common/clock.h"

#include <gtest/gtest.h>

#include "common/memory_tracker.h"

namespace rtsi {
namespace {

TEST(SimulatedClockTest, StartsAtGivenTime) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(SimulatedClockTest, AdvanceMovesForward) {
  SimulatedClock clock;
  EXPECT_EQ(clock.Advance(500), 500);
  EXPECT_EQ(clock.Now(), 500);
  clock.Advance(kMicrosPerMinute);
  EXPECT_EQ(clock.Now(), 500 + kMicrosPerMinute);
}

TEST(SimulatedClockTest, SetTimeJumps) {
  SimulatedClock clock;
  clock.SetTime(123456);
  EXPECT_EQ(clock.Now(), 123456);
}

TEST(WallClockTest, IsMonotone) {
  WallClock clock;
  const Timestamp a = clock.Now();
  const Timestamp b = clock.Now();
  EXPECT_LE(a, b);
}

TEST(MemoryTrackerTest, TracksAddAndSub) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.bytes(), 150u);
  tracker.Sub(30);
  EXPECT_EQ(tracker.bytes(), 120u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
}

TEST(MemoryTrackerTest, PeakSurvivesShrink) {
  MemoryTracker tracker;
  tracker.Add(1000);
  tracker.Sub(1000);
  EXPECT_EQ(tracker.bytes(), 0u);
  EXPECT_EQ(tracker.peak_bytes(), 1000u);
}

TEST(RssTest, ReportsPlausibleResidentSize) {
  const std::size_t rss = CurrentRssBytes();
  const std::size_t peak = PeakRssBytes();
  EXPECT_GT(rss, 1024u * 1024);  // A test binary resident set is > 1 MB.
  EXPECT_GE(peak, rss / 2);      // Peak can't be wildly below current.
}

}  // namespace
}  // namespace rtsi
