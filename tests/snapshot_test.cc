// Snapshot save/restore: round-trip fidelity, corruption detection, and
// continued operation (inserts + merges) after restore.

#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/crc32.h"
#include "common/rng.h"
#include "index/compressed_postings.h"
#include "storage/file_io.h"
#include "workload/corpus.h"
#include "workload/driver.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using core::TermCount;

std::string TempPath(const char* name) {
  return std::string("/tmp/rtsi_snapshot_test_") + name + ".snap";
}

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 200;
  config.lsm.num_l0_shards = 4;
  return config;
}

// Builds a nontrivial index: merges, live + finished + deleted streams,
// popularity updates, L0 residue.
std::unique_ptr<RtsiIndex> BuildPopulatedIndex(const RtsiConfig& config) {
  auto index = std::make_unique<RtsiIndex>(config);
  Rng rng(7);
  Timestamp t = 0;
  for (StreamId s = 0; s < 120; ++s) {
    const int windows = 1 + static_cast<int>(rng.NextUint64(4));
    for (int w = 0; w < windows; ++w) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 6; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(40));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      t += kMicrosPerSecond;
      index->InsertWindow(s, t, terms, w + 1 < windows);
    }
    if (s % 3 != 0) index->FinishStream(s);  // Every third stays live.
    if (s % 17 == 0) index->DeleteStream(s);
    index->UpdatePopularity(s, rng.NextUint64(500));
  }
  return index;
}

TEST(SnapshotTest, JournalEpochRoundTrips) {
  const std::string path = TempPath("epoch");
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, kMicrosPerSecond, {{5, 2}}, true);
  ASSERT_TRUE(SaveIndexSnapshot(index, path, /*journal_epoch=*/42).ok());
  std::uint64_t epoch = 99;
  auto loaded = LoadIndexSnapshot(path, &epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(epoch, 42u);

  // The default (epoch-less) save carries epoch 0, matching the pre-v3
  // semantics of "replay every journal".
  ASSERT_TRUE(SaveIndexSnapshot(index, path).ok());
  epoch = 99;
  ASSERT_TRUE(LoadIndexSnapshot(path, &epoch).ok());
  EXPECT_EQ(epoch, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveLeavesNoTemporaryBehind) {
  const std::string path = TempPath("tmpclean");
  RtsiIndex index(SmallConfig());
  index.InsertWindow(1, kMicrosPerSecond, {{5, 2}}, true);
  ASSERT_TRUE(SaveIndexSnapshot(index, path).ok());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr) << "snapshot temporary not cleaned up";
  if (tmp != nullptr) std::fclose(tmp);
  ASSERT_TRUE(LoadIndexSnapshot(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(Crc32(0, "123456789", 9), 0xCBF43926u);
}

TEST(SnapshotTest, RoundTripPreservesQueryResults) {
  const std::string path = TempPath("roundtrip");
  const RtsiConfig config = SmallConfig();
  auto original = BuildPopulatedIndex(config);
  ASSERT_TRUE(SaveIndexSnapshot(*original, path).ok());

  auto loaded_result = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  auto& loaded = *loaded_result.value();

  EXPECT_EQ(loaded.tree().total_postings(),
            original->tree().total_postings());
  EXPECT_EQ(loaded.stream_table().size(), original->stream_table().size());
  EXPECT_EQ(loaded.live_table().num_entries(),
            original->live_table().num_entries());
  EXPECT_EQ(loaded.doc_freq().num_documents(),
            original->doc_freq().num_documents());

  const Timestamp now = 1'000'000'000;
  for (TermId a = 0; a < 40; ++a) {
    const auto r1 = original->Query({a, (a + 11) % 40}, 10, now);
    const auto r2 = loaded.Query({a, (a + 11) % 40}, 10, now);
    ASSERT_EQ(r1.size(), r2.size()) << a;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      ASSERT_EQ(r1[i].stream, r2[i].stream) << a << " rank " << i;
      ASSERT_NEAR(r1[i].score, r2[i].score, 1e-12) << a << " rank " << i;
    }
  }
  std::remove(path.c_str());
}

// v2 persists per-component live-freshness ceilings and re-registers
// stream residencies on load, so pruning on the restored index is both
// sound (matches an unbounded full walk) and kept tight by post-restore
// inserts (later windows keep bumping the restored cells).
TEST(SnapshotTest, CeilingsSurviveRestoreAndStayTight) {
  const std::string path = TempPath("ceilings");
  RtsiConfig config = SmallConfig();
  config.bound_mode = core::BoundMode::kGlobalPop;
  auto original = BuildPopulatedIndex(config);
  ASSERT_TRUE(SaveIndexSnapshot(*original, path).ok());
  auto loaded_result = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded_result.ok());
  auto& loaded = *loaded_result.value();

  // Every restored sealed component carries an identity and a ceiling
  // cell dominating its own stored freshness.
  for (const auto& component : loaded.tree().SealedSnapshot()) {
    EXPECT_NE(component->component_id(), kInvalidComponentId);
    ASSERT_TRUE(component->has_ceiling());
    EXPECT_GE(component->LiveFrshCeiling(), component->max_stored_frsh());
  }

  // Re-insert old streams far in the future: their sealed postings' live
  // freshness runs ahead of everything stored, the regime where a stale
  // ceiling would prune top-k streams away.
  Timestamp t = 5'000'000'000;
  for (StreamId s = 0; s < 120; s += 4) {
    loaded.InsertWindow(s, t += kMicrosPerSecond, {{7, 1}}, true);
  }
  for (TermId a = 0; a < 40; ++a) {
    const std::vector<TermId> q = {a, (a + 13) % 40};
    loaded.SetUseBound(true);
    const auto pruned = loaded.Query(q, 30, t);
    loaded.SetUseBound(false);
    const auto full = loaded.Query(q, 30, t);
    ASSERT_EQ(pruned.size(), full.size()) << a;
    for (std::size_t i = 0; i < pruned.size(); ++i) {
      ASSERT_EQ(pruned[i].stream, full[i].stream) << a << " rank " << i;
      ASSERT_EQ(pruned[i].score, full[i].score) << a << " rank " << i;
    }
  }
  std::remove(path.c_str());
}

// A v1 snapshot (no per-component ceiling varint, no `finished` flag
// bit) must still load: the ceiling is reconstructed from the restored
// stream table when residencies are re-registered, so pruning stays
// sound without regenerating the file. Writes the legacy layout by hand.
TEST(SnapshotTest, LoadsVersion1Snapshots) {
  const std::string path = TempPath("v1compat");
  {
    SnapshotWriter writer;
    ASSERT_TRUE(writer.Open(path, 1).ok());
    // Config section (layout identical in v1 and v2).
    const RtsiConfig config;
    writer.WriteU64(config.lsm.delta);
    writer.WriteDouble(config.lsm.rho);
    writer.WriteU32(config.lsm.compress ? 1 : 0);
    writer.WriteU64(config.lsm.num_l0_shards);
    writer.WriteDouble(config.weights.pop);
    writer.WriteDouble(config.weights.rel);
    writer.WriteDouble(config.weights.frsh);
    writer.WriteDouble(config.freshness_tau_seconds);
    writer.WriteU32(config.use_bound ? 1 : 0);
    writer.WriteU32(static_cast<std::uint32_t>(config.bound_mode));
    writer.WriteU32(static_cast<std::uint32_t>(config.default_k));
    // Document frequencies: 2 documents, term 7 in both.
    writer.WriteU64(2);
    writer.WriteVarint(1);
    writer.WriteVarint(7);
    writer.WriteVarint(2);
    // Stream table: streams 1 and 2, one component each, live.
    writer.WriteVarint(2);
    for (StreamId s = 1; s <= 2; ++s) {
      writer.WriteVarint(s);
      writer.WriteVarint(10 * s);   // pop_count
      writer.WriteVarint(100 * s);  // frsh
      writer.WriteVarint(1);        // component_count
      writer.WriteU32(1u | 4u);     // live | content_seen (no finished bit)
    }
    // Live-term table: empty.
    writer.WriteVarint(0);
    // One sealed component at level 1 — v1 layout: no ceiling varint
    // between the level and the term count.
    writer.WriteVarint(1);
    writer.WriteU32(1);
    writer.WriteVarint(1);
    writer.WriteVarint(7);
    index::TermPostings postings;
    postings.Append(index::Posting{1, 1.0f, 100, 2});
    postings.Append(index::Posting{2, 2.0f, 200, 3});
    postings.Seal();
    writer.WriteBlob(
        index::CompressedTermPostings::FromPostings(postings).blob());
    // No L0 postings.
    writer.WriteVarint(0);
    ASSERT_TRUE(writer.Finish().ok());
  }

  auto loaded_result = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded_result.ok()) << loaded_result.status().ToString();
  auto& loaded = *loaded_result.value();
  EXPECT_EQ(loaded.tree().total_postings(), 2u);

  // The ceiling is rebuilt from the restored stream table: every resident
  // stream's live freshness is covered even though v1 persisted none.
  const auto components = loaded.tree().SealedSnapshot();
  ASSERT_EQ(components.size(), 1u);
  ASSERT_TRUE(components[0]->has_ceiling());
  EXPECT_GE(components[0]->LiveFrshCeiling(), 200);

  // Residencies were re-registered on load: later inserts keep bumping.
  loaded.InsertWindow(1, 5'000, {{7, 1}}, true);
  EXPECT_GE(components[0]->LiveFrshCeiling(), 5'000);

  const auto results = loaded.Query({7}, 10, 1'000);
  EXPECT_EQ(results.size(), 2u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, RestoredIndexKeepsWorking) {
  const std::string path = TempPath("keepworking");
  auto original = BuildPopulatedIndex(SmallConfig());
  ASSERT_TRUE(SaveIndexSnapshot(*original, path).ok());
  auto loaded_result = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded_result.ok());
  auto& loaded = *loaded_result.value();

  // New insertions must merge cleanly with restored components.
  Timestamp t = 2'000'000'000;
  for (StreamId s = 1000; s < 1200; ++s) {
    loaded.InsertWindow(s, t += kMicrosPerSecond, {{5, 2}, {900, 1}}, false);
    loaded.FinishStream(s);
  }
  const auto results = loaded.Query({900}, 300, t);
  EXPECT_EQ(results.size(), 200u);
  EXPECT_GT(loaded.GetMergeStats().merges, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, CompressedConfigRoundTrips) {
  const std::string path = TempPath("compressed");
  RtsiConfig config = SmallConfig();
  config.lsm.compress = true;
  auto original = BuildPopulatedIndex(config);
  ASSERT_TRUE(SaveIndexSnapshot(*original, path).ok());
  auto loaded_result = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded_result.ok());
  auto& loaded = *loaded_result.value();
  EXPECT_TRUE(loaded.config().lsm.compress);
  EXPECT_EQ(loaded.tree().total_postings(),
            original->tree().total_postings());
  const auto r1 = original->Query({3}, 10, 1'000'000'000);
  const auto r2 = loaded.Query({3}, 10, 1'000'000'000);
  ASSERT_EQ(r1.size(), r2.size());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsCorruption) {
  const std::string path = TempPath("corrupt");
  auto original = BuildPopulatedIndex(SmallConfig());
  ASSERT_TRUE(SaveIndexSnapshot(*original, path).ok());

  // Flip one byte in the middle.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  const int byte = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(byte ^ 0xFF, f);
  std::fclose(f);

  const auto result = LoadIndexSnapshot(path);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos)
      << result.status().ToString();
  std::remove(path.c_str());
}

TEST(SnapshotTest, DetectsTruncation) {
  const std::string path = TempPath("truncated");
  auto original = BuildPopulatedIndex(SmallConfig());
  ASSERT_TRUE(SaveIndexSnapshot(*original, path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> data(size / 2);
  ASSERT_EQ(std::fread(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);

  EXPECT_FALSE(LoadIndexSnapshot(path).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileReportsNotFound) {
  const auto result = LoadIndexSnapshot("/tmp/does_not_exist_rtsi.snap");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, BadMagicRejected) {
  const std::string path = TempPath("badmagic");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[] = "NOTASNAPSHOTFILE________________";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  const auto result = LoadIndexSnapshot(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, EmptyIndexRoundTrips) {
  const std::string path = TempPath("empty");
  RtsiIndex index(SmallConfig());
  ASSERT_TRUE(SaveIndexSnapshot(index, path).ok());
  auto result = LoadIndexSnapshot(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value()->tree().total_postings(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtsi::storage
