// Differential soak: RTSI and extended LSII implement the same scoring
// model, so under single-window streams (where postings never span
// components and both bounds are exact) a long randomized stream of
// inserts, finishes, deletions, popularity updates and queries must
// produce identical top-k output from both indices at every step.

#include <gtest/gtest.h>

#include <set>

#include "baseline/lsii_index.h"
#include "common/rng.h"
#include "core/rtsi_index.h"

namespace rtsi {
namespace {

using core::RtsiConfig;
using core::TermCount;

class DifferentialSoak : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSoak, RtsiAndLsiiAgreeOnSingleWindowWorkloads) {
  RtsiConfig config;
  config.lsm.delta = 200;
  config.lsm.num_l0_shards = 4;
  // Popularity updates land after insertion; the snapshot bound mode is
  // then only approximate. The global-pop mode keeps both systems exact,
  // so their outputs must match bit for bit.
  config.bound_mode = core::BoundMode::kGlobalPop;
  core::RtsiIndex rtsi(config);
  baseline::LsiiIndex lsii(config);

  Rng rng(GetParam() * 1003);
  Timestamp t = 0;
  StreamId next_stream = 0;
  std::vector<StreamId> active;

  for (int step = 0; step < 1500; ++step) {
    t += kMicrosPerSecond;
    const double action = rng.NextDouble();
    if (action < 0.55) {
      // New single-window stream.
      const StreamId stream = next_stream++;
      std::vector<TermCount> terms;
      std::set<TermId> used;
      const int n = 2 + static_cast<int>(rng.NextUint64(6));
      for (int i = 0; i < n; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(60));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      rtsi.InsertWindow(stream, t, terms, false);
      lsii.InsertWindow(stream, t, terms, false);
      rtsi.FinishStream(stream);
      lsii.FinishStream(stream);
      active.push_back(stream);
    } else if (action < 0.70 && !active.empty()) {
      const StreamId stream = active[rng.NextUint64(active.size())];
      const std::uint64_t delta = 1 + rng.NextUint64(50);
      rtsi.UpdatePopularity(stream, delta);
      lsii.UpdatePopularity(stream, delta);
    } else if (action < 0.76 && !active.empty()) {
      const std::size_t pick = rng.NextUint64(active.size());
      const StreamId stream = active[pick];
      rtsi.DeleteStream(stream);
      lsii.DeleteStream(stream);
      active.erase(active.begin() + static_cast<long>(pick));
    } else {
      std::vector<TermId> q = {static_cast<TermId>(rng.NextUint64(60))};
      if (rng.NextBool(0.6)) {
        q.push_back(static_cast<TermId>(rng.NextUint64(60)));
      }
      const int k = 1 + static_cast<int>(rng.NextUint64(12));
      const auto r1 = rtsi.Query(q, k, t);
      const auto r2 = lsii.Query(q, k, t);
      ASSERT_EQ(r1.size(), r2.size()) << "step " << step;
      for (std::size_t i = 0; i < r1.size(); ++i) {
        // Scores (and therefore ranks up to ties) must match exactly.
        ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9)
            << "step " << step << " rank " << i;
      }
    }
  }
  // Both must have merged at some point for the comparison to be
  // interesting.
  EXPECT_GT(rtsi.GetMergeStats().merges, 0u);
  EXPECT_GT(lsii.GetMergeStats().merges, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSoak, ::testing::Range(1, 7));

}  // namespace
}  // namespace rtsi
