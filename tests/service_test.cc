// End-to-end multi-modal service tests: ingestion (both acoustic paths),
// keyword search, voice search, and query processing.

#include "service/search_service.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "service/ingestion.h"
#include "service/query_processor.h"

namespace rtsi::service {
namespace {

SearchServiceConfig SmallServiceConfig(AcousticPath path) {
  SearchServiceConfig config;
  config.index.lsm.delta = 500;
  config.index.lsm.num_l0_shards = 4;
  config.ingestion.acoustic_path = path;
  config.ingestion.transcriber.word_error_rate = 0.0;  // Deterministic.
  return config;
}

TEST(IngestionTest, CountTermsAggregates) {
  const auto counts = CountTerms({1, 2, 1, 3, 1, 2});
  ASSERT_EQ(counts.size(), 3u);
  TermFreq tf1 = 0;
  for (const auto& tc : counts) {
    if (tc.term == 1) tf1 = tc.tf;
  }
  EXPECT_EQ(tf1, 3u);
}

TEST(IngestionTest, ProcessWindowProducesBothModalities) {
  text::TermDictionary text_dict, sound_dict;
  IngestionConfig config;
  config.transcriber.word_error_rate = 0.0;
  IngestionPipeline pipeline(config, &text_dict, &sound_dict);
  Rng rng(1);
  const auto artifacts = pipeline.ProcessWindow(
      {"morning", "news", "about", "technology"}, rng);
  EXPECT_FALSE(artifacts.text_terms.empty());
  EXPECT_FALSE(artifacts.sound_terms.empty());
  EXPECT_EQ(artifacts.transcript.size(), 4u);
  EXPECT_GT(text_dict.size(), 0u);
  EXPECT_GT(sound_dict.size(), 0u);
}

TEST(IngestionTest, ErrorModelChangesTranscript) {
  text::TermDictionary text_dict, sound_dict;
  IngestionConfig config;
  config.transcriber.word_error_rate = 0.9;
  IngestionPipeline pipeline(config, &text_dict, &sound_dict);
  // Warm the dictionary so substitutions have material.
  Rng rng(2);
  pipeline.ProcessWindow({"alpha", "beta", "gamma", "delta"}, rng);
  int unchanged = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto artifacts =
        pipeline.ProcessWindow({"alpha", "beta", "gamma", "delta"}, rng);
    if (artifacts.transcript ==
        std::vector<std::string>({"alpha", "beta", "gamma", "delta"})) {
      ++unchanged;
    }
  }
  EXPECT_LT(unchanged, 5);  // 90% WER: transcripts rarely survive intact.
}

TEST(IngestionTest, FullAcousticPathProducesLattices) {
  text::TermDictionary text_dict, sound_dict;
  IngestionConfig config;
  config.acoustic_path = AcousticPath::kFull;
  config.transcriber.word_error_rate = 0.0;
  IngestionPipeline pipeline(config, &text_dict, &sound_dict);
  Rng rng(3);
  const auto lattice = pipeline.BuildLattice({"hello"}, rng);
  EXPECT_FALSE(lattice.empty());
  const auto artifacts = pipeline.ProcessWindow({"hello", "world"}, rng);
  EXPECT_FALSE(artifacts.sound_terms.empty());
}

TEST(SearchServiceTest, KeywordSearchFindsIngestedStream) {
  SimulatedClock clock;
  SearchService service(SmallServiceConfig(AcousticPath::kDirect), &clock);
  service.IngestWindow(1, {"jazz", "music", "evening", "radio"});
  service.IngestWindow(2, {"sports", "football", "league", "results"});
  clock.Advance(kMicrosPerMinute);

  const auto results = service.SearchKeywords("football results", 5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].stream, 2u);
  EXPECT_GT(results[0].score, 0.0);
}

TEST(SearchServiceTest, MultiModalFusionCombinesScores) {
  SimulatedClock clock;
  auto config = SmallServiceConfig(AcousticPath::kDirect);
  SearchService service(config, &clock);
  service.IngestWindow(1, {"quantum", "physics", "lecture"});
  clock.Advance(kMicrosPerMinute);

  const auto results = service.SearchKeywords("quantum physics", 5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].stream, 1u);
  // Both modalities should contribute for an exact keyword match.
  EXPECT_GT(results[0].text_score, 0.0);
  EXPECT_GT(results[0].sound_score, 0.0);
}

TEST(SearchServiceTest, VoiceSearchRoundTrips) {
  SimulatedClock clock;
  // Full acoustic path end to end: synthesize the query audio, decode it,
  // search both trees.
  auto config = SmallServiceConfig(AcousticPath::kFull);
  SearchService service(config, &clock);
  service.IngestWindow(1, {"weather", "forecast", "sunny"});
  service.IngestWindow(2, {"cooking", "recipes", "pasta"});
  clock.Advance(kMicrosPerMinute);

  const audio::PcmBuffer query =
      service.SynthesizeQuery({"weather", "forecast"});
  ASSERT_FALSE(query.samples.empty());
  const auto results = service.SearchVoice(query, 5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].stream, 1u);
}

TEST(SearchServiceTest, LiveStreamSearchableBeforeFinish) {
  SimulatedClock clock;
  SearchService service(SmallServiceConfig(AcousticPath::kDirect), &clock);
  service.IngestWindow(7, {"breaking", "news", "earthquake"},
                       /*live=*/true);
  const auto results = service.SearchKeywords("earthquake", 3);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].stream, 7u);
  service.FinishStream(7);
  EXPECT_FALSE(service.SearchKeywords("earthquake", 3).empty());
}

TEST(SearchServiceTest, DeleteRemovesFromResults) {
  SimulatedClock clock;
  SearchService service(SmallServiceConfig(AcousticPath::kDirect), &clock);
  service.IngestWindow(1, {"gardening", "tips"});
  service.DeleteStream(1);
  EXPECT_TRUE(service.SearchKeywords("gardening", 3).empty());
}

TEST(SearchServiceTest, PopularityBoostsFusedRanking) {
  SimulatedClock clock;
  SearchService service(SmallServiceConfig(AcousticPath::kDirect), &clock);
  service.IngestWindow(1, {"movie", "review", "cinema"});
  service.IngestWindow(2, {"movie", "review", "cinema"});
  service.UpdatePopularity(2, 10000);
  const auto results = service.SearchKeywords("movie review", 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stream, 2u);
}

TEST(QueryProcessorTest, PhonesToKeywordsRecoversWords) {
  text::TermDictionary text_dict, sound_dict;
  IngestionConfig config;
  IngestionPipeline pipeline(config, &text_dict, &sound_dict);
  QueryProcessor processor(&pipeline, &text_dict, &sound_dict, 3, 0.2);

  // Prime the lexicon with the vocabulary.
  const auto phones_hello = pipeline.lexicon().Pronounce("hello");
  const auto phones_world = pipeline.lexicon().Pronounce("world");
  std::vector<asr::PhonemeId> sequence = phones_hello;
  sequence.insert(sequence.end(), phones_world.begin(), phones_world.end());

  const auto words = processor.PhonesToKeywords(sequence);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], "hello");
  EXPECT_EQ(words[1], "world");
}

TEST(QueryProcessorTest, UnknownKeywordsYieldNoTextTerms) {
  text::TermDictionary text_dict, sound_dict;
  IngestionConfig config;
  IngestionPipeline pipeline(config, &text_dict, &sound_dict);
  QueryProcessor processor(&pipeline, &text_dict, &sound_dict, 3, 0.2);
  Rng rng(5);
  const auto processed = processor.ProcessKeywords("neverindexed", rng);
  EXPECT_TRUE(processed.text_terms.empty());
  EXPECT_EQ(processed.keywords.size(), 1u);
}

}  // namespace
}  // namespace rtsi::service
