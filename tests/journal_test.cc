// Durability: journaled operations, crash recovery (snapshot + journal
// tail), and checkpointing.

#include "storage/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "storage/fault_injection.h"
#include "storage/fs.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using core::TermCount;

const char* kSnapPath = "/tmp/rtsi_journal_test.snap";
const char* kJournalPath = "/tmp/rtsi_journal_test.journal";

void Cleanup() {
  std::remove(kSnapPath);
  std::remove((std::string(kSnapPath) + ".tmp").c_str());
  std::remove(kJournalPath);
  std::remove((std::string(kJournalPath) + ".old").c_str());
  for (int epoch = 0; epoch < 8; ++epoch) {
    std::remove(
        (std::string(kJournalPath) + "." + std::to_string(epoch)).c_str());
  }
}

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.num_l0_shards = 4;
  return config;
}

TEST(JournalWriterTest, AppendAndReset) {
  Cleanup();
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(kJournalPath).ok());
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kFinish;
  op.stream = 5;
  ASSERT_TRUE(writer.Append(op).ok());
  ASSERT_TRUE(writer.Append(op).ok());
  EXPECT_EQ(writer.records_written(), 2u);
  ASSERT_TRUE(writer.Reset().ok());
  EXPECT_EQ(writer.records_written(), 0u);
  ASSERT_TRUE(writer.Close().ok());
  Cleanup();
}

TEST(DurableIndexTest, FreshOpenWorksWithoutFiles) {
  Cleanup();
  auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& index = *opened.value();
  index.InsertWindow(1, 1000, {{10, 3}}, true);
  EXPECT_EQ(index.Query({10}, 5, 2000).size(), 1u);
  Cleanup();
}

TEST(DurableIndexTest, RecoversFromJournalAlone) {
  Cleanup();
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true);
    ASSERT_TRUE(opened.ok());
    auto& index = *opened.value();
    index.InsertWindow(1, 1000, {{10, 3}, {11, 1}}, true);
    index.InsertWindow(2, 2000, {{10, 1}}, true);
    index.UpdatePopularity(2, 500);
    index.FinishStream(1);
    index.DeleteStream(2);
    // "Crash": no checkpoint, destructor just closes the file.
  }
  auto reopened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& index = *reopened.value();
  const auto results = index.Query({10}, 5, 3000);
  ASSERT_EQ(results.size(), 1u);      // Stream 2 deleted.
  EXPECT_EQ(results[0].stream, 1u);
  Cleanup();
}

TEST(DurableIndexTest, CheckpointTruncatesJournalAndSurvivesReopen) {
  Cleanup();
  {
    auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
    ASSERT_TRUE(opened.ok());
    auto& index = *opened.value();
    Rng rng(5);
    Timestamp t = 0;
    for (StreamId s = 0; s < 150; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond,
                         {{static_cast<TermId>(s % 20), 2}}, false);
      index.FinishStream(s);
    }
    ASSERT_TRUE(index.Checkpoint().ok());
    // Post-checkpoint ops land in the (now empty) journal.
    index.InsertWindow(900, t += kMicrosPerSecond, {{7, 5}}, true);
  }
  // Journal should only contain the post-checkpoint tail.
  auto tail = workload::Trace::LoadFromFile(kJournalPath);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().size(), 1u);

  auto reopened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(reopened.ok());
  auto& index = *reopened.value();
  EXPECT_EQ(index.index().stream_table().size(), 151u);
  const auto results = index.Query({7}, 200, 10'000'000'000LL);
  bool found_tail_stream = false;
  for (const auto& r : results) {
    if (r.stream == 900) found_tail_stream = true;
  }
  EXPECT_TRUE(found_tail_stream);
  Cleanup();
}

TEST(DurableIndexTest, RecoveryMatchesUninterruptedExecution) {
  Cleanup();
  // Run the same op sequence (a) straight through on a plain index and
  // (b) split across a crash + recovery; results must agree.
  core::RtsiIndex reference(SmallConfig());
  Rng rng(9);
  Timestamp t = 0;

  auto apply_ops = [&](core::SearchIndex& target, Rng local_rng,
                       Timestamp start, int from, int to) {
    Timestamp now = start;
    for (int i = from; i < to; ++i) {
      (void)local_rng;
      now += kMicrosPerSecond;
      const auto stream = static_cast<StreamId>(i % 40);
      target.InsertWindow(stream, now,
                          {{static_cast<TermId>(i % 25), 1 + i % 3}}, true);
      if (i % 7 == 0) target.UpdatePopularity(stream, 10);
    }
    return now;
  };

  apply_ops(reference, rng, t, 0, 200);
  {
    auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
    ASSERT_TRUE(opened.ok());
    apply_ops(*opened.value(), rng, t, 0, 120);
    // Crash here.
  }
  {
    auto reopened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
    ASSERT_TRUE(reopened.ok());
    apply_ops(*reopened.value(), rng, t + 120 * kMicrosPerSecond, 120, 200);

    const Timestamp now = 10'000'000'000LL;
    for (TermId q = 0; q < 25; ++q) {
      const auto r1 = reference.Query({q}, 10, now);
      const auto r2 = reopened.value()->Query({q}, 10, now);
      ASSERT_EQ(r1.size(), r2.size()) << q;
      for (std::size_t i = 0; i < r1.size(); ++i) {
        ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << q << " rank " << i;
      }
    }
  }
  Cleanup();
}

TEST(JournalWriterTest, RecordsWrittenSurvivesClose) {
  Cleanup();
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(kJournalPath).ok());
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kFinish;
  op.stream = 3;
  ASSERT_TRUE(writer.Append(op).ok());
  ASSERT_TRUE(writer.Append(op).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.records_written(), 2u);
  EXPECT_FALSE(writer.is_open());
  Cleanup();
}

TEST(JournalWriterTest, FailedResetKeepsWriterConsistent) {
  Cleanup();
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(kJournalPath, /*flush_each_record=*/true).ok());
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kFinish;
  op.stream = 9;
  ASSERT_TRUE(writer.Append(op).ok());
  ASSERT_TRUE(writer.Append(op).ok());

  auto& fi = FaultInjection::Instance();
  fi.Enable();
  fi.ArmFaultAt(0, /*crash=*/false);  // Reset's rename fails once.
  EXPECT_FALSE(writer.Reset().ok());
  fi.Disable();

  // Bookkeeping must reflect reality: the old file and its records are
  // still there, and the writer keeps working.
  EXPECT_TRUE(writer.is_open());
  EXPECT_EQ(writer.records_written(), 2u);
  ASSERT_TRUE(writer.Append(op).ok());
  EXPECT_EQ(writer.records_written(), 3u);

  ASSERT_TRUE(writer.Reset().ok());
  EXPECT_EQ(writer.records_written(), 0u);
  EXPECT_FALSE(fs::Exists(std::string(kJournalPath) + ".old"));
  ASSERT_TRUE(writer.Close().ok());
  Cleanup();
}

TEST(DurableIndexTest, AppendFailureFailsStopIntoReadOnlyMode) {
  Cleanup();
  auto& fi = FaultInjection::Instance();
  fi.Enable();
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& index = *opened.value();
    index.InsertWindow(1, 1'000'000, {{10, 3}}, true);
    index.InsertWindow(2, 2'000'000, {{10, 1}}, true);
    ASSERT_FALSE(index.degraded());

    fi.ClearSchedule();
    fi.ArmFaultAt(0, /*crash=*/false);  // Next append's write fails.
    index.InsertWindow(3, 3'000'000, {{10, 2}}, true);
    EXPECT_TRUE(index.degraded());
    EXPECT_FALSE(index.last_error().ok());

    // Read-only: queries keep serving, mutations are rejected and NOT
    // applied in memory — durable and in-memory state never diverge.
    EXPECT_EQ(index.Query({10}, 10, 4'000'000).size(), 2u);
    index.InsertWindow(4, 4'000'000, {{10, 2}}, true);
    index.UpdatePopularity(1, 50);
    EXPECT_EQ(index.Query({10}, 10, 5'000'000).size(), 2u);

    // A successful checkpoint re-establishes a healthy journal.
    ASSERT_TRUE(index.Checkpoint().ok());
    EXPECT_FALSE(index.degraded());
    EXPECT_TRUE(index.last_error().ok());
    index.InsertWindow(5, 5'000'000, {{10, 1}}, true);
    EXPECT_EQ(index.Query({10}, 10, 6'000'000).size(), 3u);
  }
  fi.Disable();

  // The durable state equals what the in-memory index reported.
  auto reopened =
      DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto results = reopened.value()->Query({10}, 10, 6'000'000);
  ASSERT_EQ(results.size(), 3u);
  bool seen[6] = {};
  for (const auto& r : results) seen[r.stream] = true;
  EXPECT_TRUE(seen[1] && seen[2] && seen[5]);
  EXPECT_FALSE(seen[3] || seen[4]);  // The rejected ops never happened.
  Cleanup();
}

TEST(DurableIndexTest, LegacyJournalWithoutChecksumsReplays) {
  Cleanup();
  // An old-format journal: no epoch header, no CRC suffixes.
  std::FILE* f = std::fopen(kJournalPath, "w");
  ASSERT_NE(f, nullptr);
  std::fputs("I 1 1000000 1 10:3 11:1\nI 2 2000000 1 10:2\nU 2 50\n", f);
  std::fclose(f);

  RecoveryStats stats;
  auto opened =
      DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true, &stats);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_EQ(stats.journals_replayed, 1u);
  EXPECT_EQ(stats.ops_replayed, 3u);
  EXPECT_EQ(opened.value()->Query({10}, 5, 3'000'000).size(), 2u);

  // New (checksummed) records append cleanly after the legacy tail.
  opened.value()->InsertWindow(3, 3'000'000, {{10, 1}}, true);
  ASSERT_FALSE(opened.value()->degraded());
  auto reopened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->Query({10}, 5, 4'000'000).size(), 3u);
  Cleanup();
}

TEST(DurableIndexTest, TornFinalRecordIsDroppedAndTruncated) {
  Cleanup();
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true);
    ASSERT_TRUE(opened.ok());
    opened.value()->InsertWindow(1, 1'000'000, {{10, 3}}, true);
    opened.value()->InsertWindow(2, 2'000'000, {{11, 1}}, true);
  }
  // A torn final write: half a record, no newline, no checksum.
  std::FILE* f = std::fopen(kJournalPath, "a");
  ASSERT_NE(f, nullptr);
  std::fputs("I 9 9000000 1 10", f);
  std::fclose(f);
  const std::uint64_t torn_size = fs::FileSize(kJournalPath);

  RecoveryStats stats;
  auto reopened =
      DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(stats.ops_replayed, 2u);
  EXPECT_EQ(stats.torn_tails_dropped, 1u);
  EXPECT_EQ(reopened.value()->Query({10}, 5, 9'999'999).size(), 1u);

  // Recovery truncated the torn bytes so future appends are safe.
  EXPECT_LT(fs::FileSize(kJournalPath), torn_size);
  const JournalInspection inspection = InspectJournal(kJournalPath);
  EXPECT_TRUE(inspection.readable);
  EXPECT_FALSE(inspection.corrupt);
  EXPECT_FALSE(inspection.torn_tail);
  EXPECT_EQ(inspection.records, 2u);
  EXPECT_EQ(inspection.checksummed_records, 2u);
  Cleanup();
}

TEST(DurableIndexTest, MidFileCorruptionFailsRecoveryHard) {
  Cleanup();
  {
    JournalWriter writer;
    ASSERT_TRUE(writer.Open(kJournalPath, true).ok());
    workload::TraceOp op;
    op.kind = workload::TraceOp::Kind::kFinish;
    for (StreamId s = 1; s <= 3; ++s) {
      op.stream = s;
      ASSERT_TRUE(writer.Append(op).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
  }
  // Flip one byte in the MIDDLE record (not the tail).
  std::FILE* f = std::fopen(kJournalPath, "rb");
  ASSERT_NE(f, nullptr);
  std::string data(4096, '\0');
  data.resize(std::fread(data.data(), 1, data.size(), f));
  std::fclose(f);
  const std::size_t pos = data.find("F 2");
  ASSERT_NE(pos, std::string::npos);
  data[pos] = 'D';  // Valid syntax, wrong checksum.
  f = std::fopen(kJournalPath, "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  std::fclose(f);

  auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().ToString().find("checksum"), std::string::npos)
      << opened.status().ToString();

  const JournalInspection inspection = InspectJournal(kJournalPath);
  EXPECT_TRUE(inspection.readable);
  EXPECT_TRUE(inspection.corrupt);
  EXPECT_EQ(inspection.first_corrupt_offset,
            static_cast<std::uint64_t>(pos));
  Cleanup();
}

TEST(DurableIndexTest, RecoveryStatsReportSnapshotAndReplay) {
  Cleanup();
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true);
    ASSERT_TRUE(opened.ok());
    for (StreamId s = 0; s < 5; ++s) {
      opened.value()->InsertWindow(s, (s + 1) * kMicrosPerSecond,
                                   {{static_cast<TermId>(s), 1}}, true);
    }
    ASSERT_TRUE(opened.value()->Checkpoint().ok());
    opened.value()->InsertWindow(7, 9 * kMicrosPerSecond, {{2, 4}}, true);
    opened.value()->UpdatePopularity(7, 11);
  }
  RecoveryStats stats;
  auto reopened =
      DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true, &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.snapshot_epoch, 1u);
  EXPECT_EQ(stats.journals_replayed, 1u);  // Only the post-checkpoint tail.
  EXPECT_EQ(stats.journals_skipped, 0u);
  EXPECT_EQ(stats.ops_replayed, 2u);
  EXPECT_EQ(stats.torn_tails_dropped, 0u);
  EXPECT_GE(stats.replay_seconds, 0.0);
  Cleanup();
}

TEST(DurableIndexTest, JournalDoublesAsWorkloadTrace) {
  Cleanup();
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true);
    ASSERT_TRUE(opened.ok());
    opened.value()->InsertWindow(1, 1'000'000, {{10, 3}}, true);
    opened.value()->UpdatePopularity(1, 5);
    opened.value()->FinishStream(1);
  }
  // The journal (epoch header + checksummed records) is itself a valid
  // trace: the header parses as a comment, checksums verify and strip.
  auto trace = workload::Trace::LoadFromFile(kJournalPath);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace.value().size(), 3u);
  EXPECT_EQ(trace.value().ops()[0].kind, workload::TraceOp::Kind::kInsert);
  EXPECT_EQ(trace.value().ops()[2].kind, workload::TraceOp::Kind::kFinish);
  Cleanup();
}

}  // namespace
}  // namespace rtsi::storage
