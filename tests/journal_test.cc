// Durability: journaled operations, crash recovery (snapshot + journal
// tail), and checkpointing.

#include "storage/journal.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using core::TermCount;

const char* kSnapPath = "/tmp/rtsi_journal_test.snap";
const char* kJournalPath = "/tmp/rtsi_journal_test.journal";

void Cleanup() {
  std::remove(kSnapPath);
  std::remove(kJournalPath);
}

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.num_l0_shards = 4;
  return config;
}

TEST(JournalWriterTest, AppendAndReset) {
  Cleanup();
  JournalWriter writer;
  ASSERT_TRUE(writer.Open(kJournalPath).ok());
  workload::TraceOp op;
  op.kind = workload::TraceOp::Kind::kFinish;
  op.stream = 5;
  ASSERT_TRUE(writer.Append(op).ok());
  ASSERT_TRUE(writer.Append(op).ok());
  EXPECT_EQ(writer.records_written(), 2u);
  ASSERT_TRUE(writer.Reset().ok());
  EXPECT_EQ(writer.records_written(), 0u);
  ASSERT_TRUE(writer.Close().ok());
  Cleanup();
}

TEST(DurableIndexTest, FreshOpenWorksWithoutFiles) {
  Cleanup();
  auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& index = *opened.value();
  index.InsertWindow(1, 1000, {{10, 3}}, true);
  EXPECT_EQ(index.Query({10}, 5, 2000).size(), 1u);
  Cleanup();
}

TEST(DurableIndexTest, RecoversFromJournalAlone) {
  Cleanup();
  {
    auto opened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath, true);
    ASSERT_TRUE(opened.ok());
    auto& index = *opened.value();
    index.InsertWindow(1, 1000, {{10, 3}, {11, 1}}, true);
    index.InsertWindow(2, 2000, {{10, 1}}, true);
    index.UpdatePopularity(2, 500);
    index.FinishStream(1);
    index.DeleteStream(2);
    // "Crash": no checkpoint, destructor just closes the file.
  }
  auto reopened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& index = *reopened.value();
  const auto results = index.Query({10}, 5, 3000);
  ASSERT_EQ(results.size(), 1u);      // Stream 2 deleted.
  EXPECT_EQ(results[0].stream, 1u);
  Cleanup();
}

TEST(DurableIndexTest, CheckpointTruncatesJournalAndSurvivesReopen) {
  Cleanup();
  {
    auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
    ASSERT_TRUE(opened.ok());
    auto& index = *opened.value();
    Rng rng(5);
    Timestamp t = 0;
    for (StreamId s = 0; s < 150; ++s) {
      index.InsertWindow(s, t += kMicrosPerSecond,
                         {{static_cast<TermId>(s % 20), 2}}, false);
      index.FinishStream(s);
    }
    ASSERT_TRUE(index.Checkpoint().ok());
    // Post-checkpoint ops land in the (now empty) journal.
    index.InsertWindow(900, t += kMicrosPerSecond, {{7, 5}}, true);
  }
  // Journal should only contain the post-checkpoint tail.
  auto tail = workload::Trace::LoadFromFile(kJournalPath);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().size(), 1u);

  auto reopened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
  ASSERT_TRUE(reopened.ok());
  auto& index = *reopened.value();
  EXPECT_EQ(index.index().stream_table().size(), 151u);
  const auto results = index.Query({7}, 200, 10'000'000'000LL);
  bool found_tail_stream = false;
  for (const auto& r : results) {
    if (r.stream == 900) found_tail_stream = true;
  }
  EXPECT_TRUE(found_tail_stream);
  Cleanup();
}

TEST(DurableIndexTest, RecoveryMatchesUninterruptedExecution) {
  Cleanup();
  // Run the same op sequence (a) straight through on a plain index and
  // (b) split across a crash + recovery; results must agree.
  core::RtsiIndex reference(SmallConfig());
  Rng rng(9);
  Timestamp t = 0;

  auto apply_ops = [&](core::SearchIndex& target, Rng local_rng,
                       Timestamp start, int from, int to) {
    Timestamp now = start;
    for (int i = from; i < to; ++i) {
      (void)local_rng;
      now += kMicrosPerSecond;
      const auto stream = static_cast<StreamId>(i % 40);
      target.InsertWindow(stream, now,
                          {{static_cast<TermId>(i % 25), 1 + i % 3}}, true);
      if (i % 7 == 0) target.UpdatePopularity(stream, 10);
    }
    return now;
  };

  apply_ops(reference, rng, t, 0, 200);
  {
    auto opened = DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
    ASSERT_TRUE(opened.ok());
    apply_ops(*opened.value(), rng, t, 0, 120);
    // Crash here.
  }
  {
    auto reopened =
        DurableIndex::Open(SmallConfig(), kSnapPath, kJournalPath);
    ASSERT_TRUE(reopened.ok());
    apply_ops(*reopened.value(), rng, t + 120 * kMicrosPerSecond, 120, 200);

    const Timestamp now = 10'000'000'000LL;
    for (TermId q = 0; q < 25; ++q) {
      const auto r1 = reference.Query({q}, 10, now);
      const auto r2 = reopened.value()->Query({q}, 10, now);
      ASSERT_EQ(r1.size(), r2.size()) << q;
      for (std::size_t i = 0; i < r1.size(); ++i) {
        ASSERT_NEAR(r1[i].score, r2[i].score, 1e-9) << q << " rank " << i;
      }
    }
  }
  Cleanup();
}

}  // namespace
}  // namespace rtsi::storage
