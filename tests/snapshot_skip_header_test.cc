// Snapshot v4 skip-header persistence: round-trip bit-exactness, the
// checked-in v3 fixture loading with headers rebuilt, and pruned-vs-full
// top-k equality on the restored index.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/rtsi_index.h"
#include "index/skip_header.h"
#include "storage/snapshot.h"

#ifndef RTSI_TEST_DATA_DIR
#error "RTSI_TEST_DATA_DIR must point at tests/data"
#endif

namespace rtsi::storage {
namespace {

using core::RtsiConfig;
using core::RtsiIndex;
using core::TermCount;

std::string TempPath(const char* name) {
  return std::string("/tmp/rtsi_skip_snapshot_test_") + name + ".snap";
}

std::unique_ptr<RtsiIndex> BuildPopulatedIndex(bool compress) {
  RtsiConfig config;
  config.lsm.delta = 256;
  config.lsm.rho = 2.0;
  config.lsm.compress = compress;
  config.lsm.num_l0_shards = 2;
  auto index = std::make_unique<RtsiIndex>(config);
  Rng rng(23);
  Timestamp t = 0;
  for (StreamId s = 0; s < 140; ++s) {
    for (int w = 0; w < 3; ++w) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 8; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(150));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      t += kMicrosPerSecond;
      index->InsertWindow(s, t, terms, w < 2);
    }
    if (s % 2 == 0) index->FinishStream(s);
    index->UpdatePopularity(s, rng.NextUint64(400));
  }
  index->WaitForMerges();
  return index;
}

std::vector<std::vector<std::uint8_t>> HeaderBytes(const RtsiIndex& index) {
  std::vector<std::vector<std::uint8_t>> out;
  for (const auto& component : index.tree().SealedSnapshot()) {
    EXPECT_NE(component->skip_header(), nullptr);
    out.push_back(component->skip_header() != nullptr
                      ? component->skip_header()->Serialize()
                      : std::vector<std::uint8_t>{});
  }
  return out;
}

// Pruned-vs-full and skip-on/off equality on one index: every toggle
// combination must return identical (stream, score) lists.
void ExpectTogglesAreLossless(RtsiIndex& index, std::size_t vocab) {
  Rng rng(31);
  const Timestamp now = 100'000 * kMicrosPerSecond;
  for (int qi = 0; qi < 100; ++qi) {
    std::vector<TermId> q;
    const int nq = 1 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < nq; ++i) {
      q.push_back(static_cast<TermId>(rng.NextUint64(vocab)));
    }
    index.SetUseBound(true);
    index.SetUseSkipHeader(true);
    const auto pruned = index.Query(q, 10, now);
    index.SetUseSkipHeader(false);
    const auto pruned_noskip = index.Query(q, 10, now);
    index.SetUseBound(false);
    const auto full = index.Query(q, 10, now);
    index.SetUseBound(true);
    index.SetUseSkipHeader(true);
    ASSERT_EQ(pruned.size(), full.size()) << "query " << qi;
    ASSERT_EQ(pruned_noskip.size(), full.size()) << "query " << qi;
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(pruned[i].stream, full[i].stream) << qi << "/" << i;
      EXPECT_EQ(pruned[i].score, full[i].score) << qi << "/" << i;
      EXPECT_EQ(pruned_noskip[i].stream, full[i].stream) << qi << "/" << i;
      EXPECT_EQ(pruned_noskip[i].score, full[i].score) << qi << "/" << i;
    }
  }
}

TEST(SnapshotSkipHeaderTest, V4RoundTripPreservesHeadersBitExactly) {
  for (const bool compress : {false, true}) {
    const std::string path = TempPath(compress ? "v4_huff" : "v4_plain");
    const auto index = BuildPopulatedIndex(compress);
    const auto original = HeaderBytes(*index);
    ASSERT_FALSE(original.empty());
    ASSERT_TRUE(SaveIndexSnapshot(*index, path).ok());

    auto loaded = LoadIndexSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const auto restored = HeaderBytes(*loaded.value());
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t c = 0; c < original.size(); ++c) {
      EXPECT_FALSE(original[c].empty());
      EXPECT_EQ(restored[c], original[c]) << "component " << c;
    }
    std::remove(path.c_str());
  }
}

TEST(SnapshotSkipHeaderTest, V3FixtureLoadsWithRebuiltHeaders) {
  const std::string fixture =
      std::string(RTSI_TEST_DATA_DIR) + "/index_v3.snap";
  std::uint64_t epoch = 0;
  auto loaded = LoadIndexSnapshot(fixture, &epoch);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(epoch, 7u);
  RtsiIndex& index = *loaded.value();

  // A pre-v4 file carries no headers; the restore path must have rebuilt
  // one per sealed component.
  const auto components = index.tree().SealedSnapshot();
  ASSERT_FALSE(components.empty());
  for (const auto& component : components) {
    ASSERT_NE(component->skip_header(), nullptr);
    EXPECT_GT(component->skip_header()->num_terms(), 0u);
    EXPECT_EQ(component->skip_header()->num_terms(),
              component->num_terms());
  }

  ExpectTogglesAreLossless(index, /*vocab=*/150);
}

TEST(SnapshotSkipHeaderTest, V3RebuiltHeadersMatchV4Persistence) {
  // Determinism end to end: rebuild-from-v3 then save as v4 then load;
  // the carried headers must be byte-identical to the rebuilt ones.
  const std::string fixture =
      std::string(RTSI_TEST_DATA_DIR) + "/index_v3.snap";
  auto loaded = LoadIndexSnapshot(fixture);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto rebuilt = HeaderBytes(*loaded.value());

  const std::string path = TempPath("v3_to_v4");
  ASSERT_TRUE(SaveIndexSnapshot(*loaded.value(), path).ok());
  auto reloaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(HeaderBytes(*reloaded.value()), rebuilt);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtsi::storage
