// StreamInfoTable and LiveTermTable tests (RTSI's two small hash tables).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/memory_tracker.h"
#include "index/live_term_table.h"
#include "index/stream_info_table.h"

namespace rtsi::index {
namespace {

TEST(StreamInfoTableTest, OnInsertCreatesOnce) {
  StreamInfoTable table;
  EXPECT_TRUE(table.OnInsert(1, 100, true));
  EXPECT_FALSE(table.OnInsert(1, 200, true));
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_EQ(info.frsh, 200);
  EXPECT_TRUE(info.live);
}

TEST(StreamInfoTableTest, FreshnessNeverMovesBackwards) {
  StreamInfoTable table;
  table.OnInsert(1, 500, true);
  table.OnInsert(1, 300, true);  // Stale timestamp must not regress.
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_EQ(info.frsh, 500);
}

TEST(StreamInfoTableTest, PopularityAccumulatesAndTracksMax) {
  StreamInfoTable table;
  table.AddPopularity(1, 10);
  table.AddPopularity(1, 5);
  table.AddPopularity(2, 100);
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_EQ(info.pop_count, 15u);
  EXPECT_EQ(table.max_pop_count(), 100u);
}

TEST(StreamInfoTableTest, MarkFinishedClearsLive) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  EXPECT_TRUE(table.IsLive(1));
  table.MarkFinished(1);
  EXPECT_FALSE(table.IsLive(1));
  StreamInfo info;
  EXPECT_TRUE(table.Get(1, info));  // Still queryable.
}

TEST(StreamInfoTableTest, DeletedStreamsInvisibleToGet) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  table.MarkDeleted(1);
  StreamInfo info;
  EXPECT_FALSE(table.Get(1, info));
  EXPECT_TRUE(table.IsDeleted(1));
  EXPECT_FALSE(table.IsLive(1));
}

TEST(StreamInfoTableTest, ComponentCountLifecycle) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  table.IncrementComponentCount(1);
  table.IncrementComponentCount(1);
  EXPECT_EQ(table.GetComponentCount(1), 2u);
  // A merge consolidating two residencies (copies=2) decrements the count.
  auto cell = std::make_shared<FreshnessCeiling>();
  auto [count, live] = table.MergeResidency(1, /*copies=*/2, 12, cell);
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(live);
  table.MarkFinished(1);
  auto [count2, live2] = table.MergeResidency(1, /*copies=*/2, 14, cell);
  EXPECT_EQ(count2, 0u);
  EXPECT_FALSE(live2);
}

TEST(StreamInfoTableTest, MergeResidencyOnUnknownStreamIsSafe) {
  StreamInfoTable table;
  auto cell = std::make_shared<FreshnessCeiling>();
  auto [count, live] = table.MergeResidency(42, /*copies=*/2, 3, cell);
  EXPECT_EQ(count, 0u);
  EXPECT_FALSE(live);
  EXPECT_TRUE(table.GetResidency(42).empty());
}

TEST(StreamInfoTableTest, LateWindowCannotResurrectFinishedStream) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  table.MarkFinished(1);
  EXPECT_FALSE(table.IsLive(1));
  // Out-of-order delivery: a window recorded before the finish event
  // arrives after it. Liveness is monotone — the stream must stay
  // finished — while the freshness update still lands.
  table.OnInsert(1, 150, true);
  EXPECT_FALSE(table.IsLive(1));
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_FALSE(info.live);
  EXPECT_TRUE(info.finished);
  EXPECT_EQ(info.frsh, 150);
}

TEST(StreamInfoTableTest, ResidencyCellTracksLiveFreshness) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  auto cell = std::make_shared<FreshnessCeiling>();
  // Registration folds the stream's current freshness into the cell, so
  // an insert that raced ahead of the registration is already covered.
  table.AddSealedResidency(1, 7, cell);
  EXPECT_EQ(cell->Get(), 100);
  // Every later insert bumps the cell through the residency.
  table.OnInsert(1, 250, true);
  EXPECT_EQ(cell->Get(), 250);
  // Idempotent per (stream, component): re-registering must not create a
  // second entry.
  table.AddSealedResidency(1, 7, cell);
  EXPECT_EQ(table.GetResidency(1), std::vector<ComponentId>{7});
}

TEST(StreamInfoTableTest, MergeKeepsInputCeilingsLiveUntilRetired) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  auto cell_a = std::make_shared<FreshnessCeiling>();
  auto cell_b = std::make_shared<FreshnessCeiling>();
  table.AddSealedResidency(1, 10, cell_a);
  table.AddSealedResidency(1, 11, cell_b);
  table.IncrementComponentCount(1);
  table.IncrementComponentCount(1);

  // Merge window opens: the (unpublished) output is registered, the
  // inputs stay. Registration bumps the output's cell with the live
  // freshness.
  auto cell_merged = std::make_shared<FreshnessCeiling>();
  table.MergeResidency(1, /*copies=*/2, 12, cell_merged);
  EXPECT_EQ(cell_merged->Get(), 100);
  EXPECT_EQ(table.GetResidency(1),
            (std::vector<ComponentId>{10, 11, 12}));

  // An insert inside the merge window (inputs still query-visible!) must
  // raise the inputs' ceilings too, or a query snapshotting them would
  // prune with a bound below the stream's live freshness.
  table.OnInsert(1, 300, true);
  EXPECT_EQ(cell_a->Get(), 300);
  EXPECT_EQ(cell_b->Get(), 300);
  EXPECT_EQ(cell_merged->Get(), 300);

  // Swap published the output: the inputs are retired and later inserts
  // reach only the output's cell.
  table.DropResidency(1, {10, 11});
  EXPECT_EQ(table.GetResidency(1), std::vector<ComponentId>{12});
  table.OnInsert(1, 400, true);
  EXPECT_EQ(cell_merged->Get(), 400);
  EXPECT_EQ(cell_a->Get(), 300);
  EXPECT_EQ(cell_b->Get(), 300);
}

TEST(StreamInfoTableTest, MergeResidencySkipsDeletedStream) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  auto cell = std::make_shared<FreshnessCeiling>();
  table.AddSealedResidency(1, 10, cell);
  table.IncrementComponentCount(1);
  table.IncrementComponentCount(1);
  table.MarkDeleted(1);
  EXPECT_TRUE(table.GetResidency(1).empty());

  // A merge whose deletion verdicts were memoized before the delete still
  // reports the stream; re-registering it would leak an orphan entry
  // (later merges purge its postings without another hook call).
  auto cell_merged = std::make_shared<FreshnessCeiling>();
  auto [count, live] = table.MergeResidency(1, /*copies=*/2, 12,
                                            cell_merged);
  EXPECT_EQ(count, 1u);  // Count bookkeeping still applies.
  EXPECT_FALSE(live);
  EXPECT_TRUE(table.GetResidency(1).empty());

  // Same for freeze-time registration of a stream deleted beforehand.
  table.AddSealedResidency(1, 13, cell_merged);
  EXPECT_TRUE(table.GetResidency(1).empty());
}

TEST(StreamInfoTableTest, MarkDeletedDropsResidency) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  auto cell = std::make_shared<FreshnessCeiling>();
  table.AddSealedResidency(1, 7, cell);
  table.MarkDeleted(1);
  EXPECT_TRUE(table.GetResidency(1).empty());
  table.OnInsert(1, 400, true);  // Tombstoned: must not bump the cell.
  EXPECT_EQ(cell->Get(), 100);
}

TEST(StreamInfoTableTest, SizeCountsEntries) {
  StreamInfoTable table;
  for (StreamId s = 0; s < 100; ++s) table.OnInsert(s, 1, true);
  EXPECT_EQ(table.size(), 100u);
  EXPECT_GT(table.MemoryBytes(), 100 * sizeof(StreamInfo));
}

TEST(StreamInfoTableTest, ConcurrentPopularityUpdates) {
  StreamInfoTable table;
  constexpr int kThreads = 8;
  constexpr int kUpdates = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table] {
      for (int i = 0; i < kUpdates; ++i) table.AddPopularity(i % 10, 1);
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total = 0;
  for (StreamId s = 0; s < 10; ++s) {
    StreamInfo info;
    ASSERT_TRUE(table.Get(s, info));
    total += info.pop_count;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kUpdates);
}

TEST(LiveTermTableTest, AddAccumulatesTotals) {
  LiveTermTable table;
  EXPECT_EQ(table.Add(1, 100, 3), 3u);
  EXPECT_EQ(table.Add(1, 100, 4), 7u);
  EXPECT_EQ(table.GetTotal(1, 100), 7u);
  EXPECT_EQ(table.GetTotal(1, 101), 0u);
  EXPECT_EQ(table.GetTotal(2, 100), 0u);
}

TEST(LiveTermTableTest, MaxTotalIsMonotone) {
  LiveTermTable table;
  table.Add(1, 100, 3);
  table.Add(2, 100, 10);
  table.Add(1, 100, 2);
  EXPECT_EQ(table.GetMaxTotal(100), 10u);
  table.RemoveStream(2);
  // Monotone bound survives removal (it is a bound, not an exact max).
  EXPECT_EQ(table.GetMaxTotal(100), 10u);
}

TEST(LiveTermTableTest, RemoveStreamDropsAllTerms) {
  LiveTermTable table;
  table.Add(1, 100, 1);
  table.Add(1, 101, 2);
  table.Add(2, 100, 3);
  EXPECT_TRUE(table.ContainsStream(1));
  table.RemoveStream(1);
  EXPECT_FALSE(table.ContainsStream(1));
  EXPECT_EQ(table.GetTotal(1, 100), 0u);
  EXPECT_EQ(table.GetTotal(2, 100), 3u);
  EXPECT_EQ(table.num_streams(), 1u);
}

TEST(LiveTermTableTest, CountsStreamsAndEntries) {
  LiveTermTable table;
  table.Add(1, 100, 1);
  table.Add(1, 101, 1);
  table.Add(2, 100, 1);
  EXPECT_EQ(table.num_streams(), 2u);
  EXPECT_EQ(table.num_entries(), 3u);
}

TEST(LiveTermTableTest, ForEachStreamVisitsEverything) {
  LiveTermTable table;
  table.Add(1, 100, 1);
  table.Add(2, 101, 2);
  table.Add(3, 102, 3);
  std::size_t streams = 0;
  TermFreq total = 0;
  table.ForEachStream(
      [&](StreamId, const std::unordered_map<TermId, TermFreq>& terms) {
        ++streams;
        for (const auto& [term, tf] : terms) total += tf;
      });
  EXPECT_EQ(streams, 3u);
  EXPECT_EQ(total, 6u);
}

TEST(LiveTermTableTest, ConcurrentAddsAreConsistent) {
  LiveTermTable table;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table] {
      for (int i = 0; i < 1000; ++i) {
        table.Add(i % 7, i % 13, 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  TermFreq total = 0;
  table.ForEachStream(
      [&](StreamId, const std::unordered_map<TermId, TermFreq>& terms) {
        for (const auto& [term, tf] : terms) total += tf;
      });
  EXPECT_EQ(total, static_cast<TermFreq>(kThreads * 1000));
}

TEST(LiveTermTableTest, AddWindowDuplicateTermsAccumulateWithinWindow) {
  LiveTermTable table;
  const std::vector<TermCount> window{{100, 2}, {100, 3}, {101, 1}};
  const auto totals = table.AddWindow(1, window);
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0], 2u);
  EXPECT_EQ(totals[1], 5u);  // Second occurrence sees the first's mass.
  EXPECT_EQ(totals[2], 1u);
  EXPECT_EQ(table.GetTotal(1, 100), 5u);
  EXPECT_EQ(table.GetMaxTotal(100), 5u);
  // The duplicate must register (term 100 -> stream 1) exactly once, or
  // RemoveStream would visit it twice and num_entries would drift.
  EXPECT_EQ(table.num_entries(), 2u);
  table.RemoveStream(1);
  EXPECT_EQ(table.num_entries(), 0u);
  EXPECT_EQ(table.num_streams(), 0u);
}

TEST(LiveTermTableTest, AddWindowZeroTfInterleavedWithNonzero) {
  LiveTermTable table;
  const std::vector<TermCount> window{{100, 0}, {101, 4}, {102, 0}, {103, 1}};
  const auto totals = table.AddWindow(1, window);
  EXPECT_EQ(totals, (std::vector<TermFreq>{0, 4, 0, 1}));
  // tf == 0 entries create no counters, no registrations, no bounds.
  EXPECT_EQ(table.GetTotal(1, 100), 0u);
  EXPECT_EQ(table.GetMaxTotal(100), 0u);
  EXPECT_EQ(table.num_entries(), 2u);
  // An all-zero window must not even register the stream.
  table.AddWindow(2, {{200, 0}, {201, 0}});
  EXPECT_FALSE(table.ContainsStream(2));
  EXPECT_EQ(table.num_streams(), 1u);
}

TEST(LiveTermTableTest, AddWindowMaxTotalMonotoneAcrossWindowsAndRemoves) {
  LiveTermTable table;
  TermFreq last_max = 0;
  for (int w = 0; w < 10; ++w) {
    table.AddWindow(1, {{100, 3}});
    const TermFreq now = table.GetMaxTotal(100);
    EXPECT_GE(now, last_max);
    last_max = now;
    if (w == 4) {
      table.RemoveStream(1);  // Consolidation resets the totals...
      EXPECT_GE(table.GetMaxTotal(100), last_max);  // ...not the bound.
    }
  }
  EXPECT_EQ(table.GetMaxTotal(100), 15u);  // 5 windows after the removal.
}

TEST(LiveTermTableTest, AddWindowDuringConsolidationNeverLeaksEntries) {
  // A stream's windows keep arriving while a consolidation merge evicts
  // it (the on_purged hook path). Whatever interleaving occurs, the
  // quiesced table must be fully reclaimable by one RemoveStream.
  LiveTermTable table;
  std::atomic<bool> stop{false};
  std::thread consolidator([&table, &stop] {
    while (!stop.load(std::memory_order_relaxed)) table.RemoveStream(1);
  });
  std::vector<TermCount> window;
  for (int i = 0; i < 3000; ++i) {
    window.assign(1, {static_cast<TermId>(i % 17), 1});
    table.AddWindow(1, window);
  }
  stop.store(true, std::memory_order_relaxed);
  consolidator.join();
  table.RemoveStream(1);
  EXPECT_EQ(table.num_entries(), 0u);
  EXPECT_EQ(table.num_streams(), 0u);
  EXPECT_GE(table.GetMaxTotal(0), 1u);  // Bound survived it all.
}

TEST(LiveTermTableTest, MemoryAccountingMatchesArenaGauge) {
  auto tracker = std::make_shared<MemoryTracker>();
  {
    LiveTermTable table(/*use_arena=*/true, tracker);
    for (StreamId s = 0; s < 64; ++s) {
      for (TermId t = 0; t < 32; ++t) table.Add(s, t, 1);
    }
    const WindowArena::Stats stats = table.ArenaStats();
    EXPECT_GT(stats.owned_bytes, 0u);
    EXPECT_GT(stats.allocated_bytes, 0u);
    EXPECT_GE(stats.owned_bytes, stats.allocated_bytes);
    // The tracker's kLiveArena gauge and the arenas' own view must agree
    // exactly — one number, two observers.
    EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), stats.owned_bytes);
    // MemoryBytes attributes the arenas' in-use bytes to the inner maps;
    // it can only exceed them (outer maps, stream shards, max_total_).
    EXPECT_GT(table.MemoryBytes(), stats.allocated_bytes);
    // Erasing returns every node; the in-use gauge drops to zero while
    // owned slabs are kept for reuse and stay charged.
    for (StreamId s = 0; s < 64; ++s) table.RemoveStream(s);
    EXPECT_EQ(table.ArenaStats().allocated_bytes, 0u);
    EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), stats.owned_bytes);
  }
  // Table destruction frees the slabs and balances the gauge to zero.
  EXPECT_EQ(tracker->bytes(MemCategory::kLiveArena), 0u);
}

TEST(LiveTermTableTest, HeapModeUsesUniformNodeAccounting) {
  LiveTermTable table(/*use_arena=*/false);
  const std::size_t empty = table.MemoryBytes();
  constexpr std::size_t kEntries = 64;
  for (StreamId s = 0; s < kEntries; ++s) table.Add(s, 5, 1);
  // One formula for every map: each entry pays at least payload plus the
  // node header; the old per-callsite formulas dropped parts of this.
  const std::size_t per_entry =
      sizeof(StreamId) + sizeof(TermFreq) + 2 * sizeof(void*);
  EXPECT_GE(table.MemoryBytes(), empty + kEntries * per_entry);
  EXPECT_EQ(table.ArenaStats().owned_bytes, 0u);  // No arenas in heap mode.
}

}  // namespace
}  // namespace rtsi::index
