// StreamInfoTable and LiveTermTable tests (RTSI's two small hash tables).

#include <gtest/gtest.h>

#include <thread>

#include "index/live_term_table.h"
#include "index/stream_info_table.h"

namespace rtsi::index {
namespace {

TEST(StreamInfoTableTest, OnInsertCreatesOnce) {
  StreamInfoTable table;
  EXPECT_TRUE(table.OnInsert(1, 100, true));
  EXPECT_FALSE(table.OnInsert(1, 200, true));
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_EQ(info.frsh, 200);
  EXPECT_TRUE(info.live);
}

TEST(StreamInfoTableTest, FreshnessNeverMovesBackwards) {
  StreamInfoTable table;
  table.OnInsert(1, 500, true);
  table.OnInsert(1, 300, true);  // Stale timestamp must not regress.
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_EQ(info.frsh, 500);
}

TEST(StreamInfoTableTest, PopularityAccumulatesAndTracksMax) {
  StreamInfoTable table;
  table.AddPopularity(1, 10);
  table.AddPopularity(1, 5);
  table.AddPopularity(2, 100);
  StreamInfo info;
  ASSERT_TRUE(table.Get(1, info));
  EXPECT_EQ(info.pop_count, 15u);
  EXPECT_EQ(table.max_pop_count(), 100u);
}

TEST(StreamInfoTableTest, MarkFinishedClearsLive) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  EXPECT_TRUE(table.IsLive(1));
  table.MarkFinished(1);
  EXPECT_FALSE(table.IsLive(1));
  StreamInfo info;
  EXPECT_TRUE(table.Get(1, info));  // Still queryable.
}

TEST(StreamInfoTableTest, DeletedStreamsInvisibleToGet) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  table.MarkDeleted(1);
  StreamInfo info;
  EXPECT_FALSE(table.Get(1, info));
  EXPECT_TRUE(table.IsDeleted(1));
  EXPECT_FALSE(table.IsLive(1));
}

TEST(StreamInfoTableTest, ComponentCountLifecycle) {
  StreamInfoTable table;
  table.OnInsert(1, 100, true);
  table.IncrementComponentCount(1);
  table.IncrementComponentCount(1);
  EXPECT_EQ(table.GetComponentCount(1), 2u);
  auto [count, live] = table.DecrementComponentCount(1);
  EXPECT_EQ(count, 1u);
  EXPECT_TRUE(live);
  table.MarkFinished(1);
  auto [count2, live2] = table.DecrementComponentCount(1);
  EXPECT_EQ(count2, 0u);
  EXPECT_FALSE(live2);
}

TEST(StreamInfoTableTest, DecrementOnUnknownStreamIsSafe) {
  StreamInfoTable table;
  auto [count, live] = table.DecrementComponentCount(42);
  EXPECT_EQ(count, 0u);
  EXPECT_FALSE(live);
}

TEST(StreamInfoTableTest, SizeCountsEntries) {
  StreamInfoTable table;
  for (StreamId s = 0; s < 100; ++s) table.OnInsert(s, 1, true);
  EXPECT_EQ(table.size(), 100u);
  EXPECT_GT(table.MemoryBytes(), 100 * sizeof(StreamInfo));
}

TEST(StreamInfoTableTest, ConcurrentPopularityUpdates) {
  StreamInfoTable table;
  constexpr int kThreads = 8;
  constexpr int kUpdates = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table] {
      for (int i = 0; i < kUpdates; ++i) table.AddPopularity(i % 10, 1);
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total = 0;
  for (StreamId s = 0; s < 10; ++s) {
    StreamInfo info;
    ASSERT_TRUE(table.Get(s, info));
    total += info.pop_count;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kUpdates);
}

TEST(LiveTermTableTest, AddAccumulatesTotals) {
  LiveTermTable table;
  EXPECT_EQ(table.Add(1, 100, 3), 3u);
  EXPECT_EQ(table.Add(1, 100, 4), 7u);
  EXPECT_EQ(table.GetTotal(1, 100), 7u);
  EXPECT_EQ(table.GetTotal(1, 101), 0u);
  EXPECT_EQ(table.GetTotal(2, 100), 0u);
}

TEST(LiveTermTableTest, MaxTotalIsMonotone) {
  LiveTermTable table;
  table.Add(1, 100, 3);
  table.Add(2, 100, 10);
  table.Add(1, 100, 2);
  EXPECT_EQ(table.GetMaxTotal(100), 10u);
  table.RemoveStream(2);
  // Monotone bound survives removal (it is a bound, not an exact max).
  EXPECT_EQ(table.GetMaxTotal(100), 10u);
}

TEST(LiveTermTableTest, RemoveStreamDropsAllTerms) {
  LiveTermTable table;
  table.Add(1, 100, 1);
  table.Add(1, 101, 2);
  table.Add(2, 100, 3);
  EXPECT_TRUE(table.ContainsStream(1));
  table.RemoveStream(1);
  EXPECT_FALSE(table.ContainsStream(1));
  EXPECT_EQ(table.GetTotal(1, 100), 0u);
  EXPECT_EQ(table.GetTotal(2, 100), 3u);
  EXPECT_EQ(table.num_streams(), 1u);
}

TEST(LiveTermTableTest, CountsStreamsAndEntries) {
  LiveTermTable table;
  table.Add(1, 100, 1);
  table.Add(1, 101, 1);
  table.Add(2, 100, 1);
  EXPECT_EQ(table.num_streams(), 2u);
  EXPECT_EQ(table.num_entries(), 3u);
}

TEST(LiveTermTableTest, ForEachStreamVisitsEverything) {
  LiveTermTable table;
  table.Add(1, 100, 1);
  table.Add(2, 101, 2);
  table.Add(3, 102, 3);
  std::size_t streams = 0;
  TermFreq total = 0;
  table.ForEachStream(
      [&](StreamId, const std::unordered_map<TermId, TermFreq>& terms) {
        ++streams;
        for (const auto& [term, tf] : terms) total += tf;
      });
  EXPECT_EQ(streams, 3u);
  EXPECT_EQ(total, 6u);
}

TEST(LiveTermTableTest, ConcurrentAddsAreConsistent) {
  LiveTermTable table;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table] {
      for (int i = 0; i < 1000; ++i) {
        table.Add(i % 7, i % 13, 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  TermFreq total = 0;
  table.ForEachStream(
      [&](StreamId, const std::unordered_map<TermId, TermFreq>& terms) {
        for (const auto& [term, tf] : terms) total += tf;
      });
  EXPECT_EQ(total, static_cast<TermFreq>(kThreads * 1000));
}

}  // namespace
}  // namespace rtsi::index
