// Filtered queries: live-only search and freshness windows.

#include <gtest/gtest.h>

#include "core/rtsi_index.h"

namespace rtsi::core {
namespace {

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 100;
  config.lsm.num_l0_shards = 4;
  return config;
}

class QueryFilterTest : public ::testing::Test {
 protected:
  QueryFilterTest() : index_(SmallConfig()) {
    // Streams 1-3 live, 4-6 finished; interleaved freshness.
    Timestamp t = 0;
    for (StreamId s = 1; s <= 6; ++s) {
      t = static_cast<Timestamp>(s) * kMicrosPerHour;
      index_.InsertWindow(s, t, {{10, 2}}, s <= 3);
      if (s > 3) index_.FinishStream(s);
    }
    now_ = 7 * kMicrosPerHour;
  }

  RtsiIndex index_;
  Timestamp now_ = 0;
};

TEST_F(QueryFilterTest, UnfilteredReturnsAll) {
  EXPECT_EQ(index_.Query({10}, 10, now_).size(), 6u);
}

TEST_F(QueryFilterTest, LiveOnlyReturnsLiveStreams) {
  QueryFilter filter;
  filter.live_only = true;
  const auto results = index_.QueryFiltered({10}, 10, now_, filter);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_LE(r.stream, 3u);
  }
}

TEST_F(QueryFilterTest, LiveOnlyReflectsFinishTransitions) {
  QueryFilter filter;
  filter.live_only = true;
  index_.FinishStream(2);
  const auto results = index_.QueryFiltered({10}, 10, now_, filter);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.stream == 1 || r.stream == 3);
  }
}

TEST_F(QueryFilterTest, MinFrshWindowsResults) {
  QueryFilter filter;
  filter.min_frsh = 4 * kMicrosPerHour;  // Streams 4, 5, 6 qualify.
  const auto results = index_.QueryFiltered({10}, 10, now_, filter);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_GE(r.stream, 4u);
  }
}

TEST_F(QueryFilterTest, CombinedFiltersIntersect) {
  QueryFilter filter;
  filter.live_only = true;
  filter.min_frsh = 2 * kMicrosPerHour;  // Live and fresh: streams 2, 3.
  const auto results = index_.QueryFiltered({10}, 10, now_, filter);
  ASSERT_EQ(results.size(), 2u);
}

TEST_F(QueryFilterTest, FilterEverythingYieldsEmpty) {
  QueryFilter filter;
  filter.min_frsh = 100 * kMicrosPerHour;
  EXPECT_TRUE(index_.QueryFiltered({10}, 10, now_, filter).empty());
}

TEST_F(QueryFilterTest, FilterWorksAcrossMerges) {
  // Push enough postings to force merges; live-only must stay correct
  // for candidates coming from sealed components.
  Timestamp t = 10 * kMicrosPerHour;
  for (StreamId s = 100; s < 200; ++s) {
    index_.InsertWindow(s, t += kMicrosPerSecond, {{10, 1}, {11, 1}},
                        false);
    index_.FinishStream(s);
  }
  QueryFilter filter;
  filter.live_only = true;
  const auto results = index_.QueryFiltered({10}, 200, t, filter);
  ASSERT_EQ(results.size(), 3u);  // Only the original live streams 1-3.
}

TEST_F(QueryFilterTest, FilteredAndUnfilteredScoresAgree) {
  // A stream's score must not depend on the filter.
  const auto all = index_.Query({10}, 10, now_);
  QueryFilter filter;
  filter.live_only = true;
  const auto live = index_.QueryFiltered({10}, 10, now_, filter);
  for (const auto& lr : live) {
    bool found = false;
    for (const auto& ar : all) {
      if (ar.stream == lr.stream) {
        EXPECT_NEAR(ar.score, lr.score, 1e-12);
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace rtsi::core
