// Workload trace recording, text round trip, and replay equivalence: an
// index built by replaying a trace must answer queries identically to one
// built by the live operations the trace recorded.

#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/lsii_index.h"
#include "core/rtsi_index.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"

namespace rtsi::workload {
namespace {

core::RtsiConfig SmallConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 300;
  config.lsm.num_l0_shards = 4;
  return config;
}

CorpusConfig SmallCorpusConfig() {
  CorpusConfig config;
  config.num_streams = 100;
  config.vocab_size = 500;
  config.avg_windows_per_stream = 4;
  config.min_windows_per_stream = 2;
  config.words_per_window = 25;
  return config;
}

TEST(TraceTest, FormatParseRoundTripsEveryKind) {
  std::vector<TraceOp> ops(5);
  ops[0].kind = TraceOp::Kind::kInsert;
  ops[0].stream = 7;
  ops[0].now = 123456;
  ops[0].live = true;
  ops[0].terms = {{10, 3}, {99, 1}};
  ops[1].kind = TraceOp::Kind::kFinish;
  ops[1].stream = 7;
  ops[2].kind = TraceOp::Kind::kDelete;
  ops[2].stream = 8;
  ops[3].kind = TraceOp::Kind::kUpdate;
  ops[3].stream = 9;
  ops[3].delta = 42;
  ops[4].kind = TraceOp::Kind::kQuery;
  ops[4].k = 5;
  ops[4].now = 999;
  ops[4].terms = {{1, 1}, {2, 1}};

  for (const TraceOp& original : ops) {
    const std::string line = Trace::FormatOp(original);
    TraceOp parsed;
    bool is_comment = false;
    ASSERT_TRUE(Trace::ParseLine(line, parsed, &is_comment)) << line;
    EXPECT_EQ(parsed.kind, original.kind) << line;
    EXPECT_EQ(parsed.stream, original.stream) << line;
    EXPECT_EQ(parsed.terms.size(), original.terms.size()) << line;
  }
}

TEST(TraceTest, CommentsAndBlanksAreSkipped) {
  TraceOp op;
  bool is_comment = false;
  EXPECT_FALSE(Trace::ParseLine("# hello", op, &is_comment));
  EXPECT_TRUE(is_comment);
  EXPECT_FALSE(Trace::ParseLine("", op, &is_comment));
  EXPECT_TRUE(is_comment);
}

TEST(TraceTest, MalformedLinesRejected) {
  TraceOp op;
  bool is_comment = false;
  EXPECT_FALSE(Trace::ParseLine("I 5", op, &is_comment));  // Too short.
  EXPECT_FALSE(is_comment);
  EXPECT_FALSE(Trace::ParseLine("X 1 2 3", op, &is_comment));
  EXPECT_FALSE(Trace::ParseLine("I 1 2 1 nocolon", op, &is_comment));
  EXPECT_FALSE(Trace::ParseLine("Q 5 100", op, &is_comment));  // No terms.
}

TEST(TraceTest, FileRoundTrip) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  QueryGenConfig query_config;
  query_config.vocab_size = 500;
  QueryGenerator gen(query_config);
  const Trace trace = RecordMixedTrace(corpus, gen, 20, 300, 30, 10);
  ASSERT_GT(trace.size(), 300u);

  const std::string path = "/tmp/rtsi_trace_test.trace";
  ASSERT_TRUE(trace.SaveToFile(path).ok());
  const auto loaded = Trace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(Trace::FormatOp(loaded.value().ops()[i]),
              Trace::FormatOp(trace.ops()[i]))
        << i;
  }
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayMatchesLiveExecution) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  QueryGenConfig query_config;
  query_config.vocab_size = 500;
  QueryGenerator gen(query_config);
  const Trace trace = RecordMixedTrace(corpus, gen, 30, 400, 20, 10);

  // Build one index by replay; build a second by replay again (the trace
  // is the canonical op source, so both must agree).
  core::RtsiIndex a(SmallConfig());
  core::RtsiIndex b(SmallConfig());
  const ReplayResult ra = ReplayTrace(trace, a);
  const ReplayResult rb = ReplayTrace(trace, b);
  EXPECT_EQ(ra.insertions.count(), rb.insertions.count());
  EXPECT_GT(ra.insertions.count(), 0u);
  EXPECT_GT(ra.queries.count(), 0u);

  const Timestamp now = 1'000'000'000;
  for (TermId term = 0; term < 20; ++term) {
    const auto qa = a.Query({term}, 10, now);
    const auto qb = b.Query({term}, 10, now);
    ASSERT_EQ(qa.size(), qb.size()) << term;
    for (std::size_t i = 0; i < qa.size(); ++i) {
      ASSERT_EQ(qa[i].stream, qb[i].stream) << term;
    }
  }
}

TEST(TraceTest, SameTraceDrivesBothIndexImplementations) {
  const SyntheticCorpus corpus(SmallCorpusConfig());
  QueryGenConfig query_config;
  query_config.vocab_size = 500;
  QueryGenerator gen(query_config);
  const Trace trace = RecordMixedTrace(corpus, gen, 30, 200, 30, 10);

  core::RtsiIndex rtsi(SmallConfig());
  baseline::LsiiIndex lsii(SmallConfig());
  const ReplayResult rr = ReplayTrace(trace, rtsi);
  const ReplayResult rl = ReplayTrace(trace, lsii);
  EXPECT_EQ(rr.insertions.count(), rl.insertions.count());
  EXPECT_EQ(rr.queries.count(), rl.queries.count());
  EXPECT_EQ(rr.finishes, rl.finishes);
}

TEST(TraceTest, ChecksummedLinesRoundTripAndDetectTampering) {
  TraceOp op;
  op.kind = TraceOp::Kind::kInsert;
  op.stream = 42;
  op.now = 123456789;
  op.live = true;
  op.terms = {{7, 2}, {9, 1}};

  const std::string line = Trace::FormatOpChecked(op);
  EXPECT_TRUE(Trace::HasChecksumSuffix(line));
  TraceOp parsed;
  ASSERT_EQ(Trace::ParseLineChecked(line, parsed), Trace::LineParse::kOk);
  EXPECT_EQ(Trace::FormatOp(parsed), Trace::FormatOp(op));

  // Any flipped payload byte must be caught by the CRC.
  std::string tampered = line;
  tampered[2] = tampered[2] == '4' ? '5' : '4';
  EXPECT_EQ(Trace::ParseLineChecked(tampered, parsed),
            Trace::LineParse::kBadChecksum);

  // Un-checksummed lines still parse (legacy journals).
  EXPECT_EQ(Trace::ParseLineChecked(Trace::FormatOp(op), parsed),
            Trace::LineParse::kOk);
}

TEST(TraceTest, LoadsLinesLongerThanAnyFixedBuffer) {
  // A single insert whose line is far beyond the 64 KiB fgets buffer the
  // loader used to rely on.
  TraceOp op;
  op.kind = TraceOp::Kind::kInsert;
  op.stream = 1;
  op.now = 1000;
  op.live = true;
  for (TermId t = 0; t < 12'000; ++t) {
    op.terms.push_back({t, static_cast<TermFreq>(1 + t % 4)});
  }
  Trace trace;
  trace.Add(op);
  ASSERT_GT(Trace::FormatOp(op).size(), 80'000u);

  const std::string path = "/tmp/rtsi_trace_test_long.trace";
  ASSERT_TRUE(trace.SaveToFile(path).ok());
  const auto loaded = Trace::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value().ops()[0].terms.size(), op.terms.size());
  EXPECT_EQ(Trace::FormatOp(loaded.value().ops()[0]), Trace::FormatOp(op));
  std::remove(path.c_str());
}

TEST(TraceTest, LoadErrorsReportLineNumberAndByteOffset) {
  const std::string path = "/tmp/rtsi_trace_test_bad.trace";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# header\nF 1\nX bogus line\nF 2\n", f);
  std::fclose(f);

  const auto loaded = Trace::LoadFromFile(path);
  ASSERT_FALSE(loaded.ok());
  const std::string message = loaded.status().ToString();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  // "# header\n" is 9 bytes, "F 1\n" is 4: the bad line starts at 13.
  EXPECT_NE(message.find("byte offset 13"), std::string::npos) << message;
  EXPECT_NE(message.find("X bogus line"), std::string::npos) << message;
  std::remove(path.c_str());
}

TEST(TraceTest, TornTailToleranceIsOptInAndFinalLineOnly) {
  const std::string path = "/tmp/rtsi_trace_test_torn.trace";
  TraceOp op;
  op.kind = TraceOp::Kind::kFinish;
  op.stream = 1;
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs((Trace::FormatOpChecked(op) + "\n").c_str(), f);
  op.stream = 2;
  std::fputs((Trace::FormatOpChecked(op) + "\n").c_str(), f);
  std::fputs("I 9 90", f);  // Torn mid-record: no live flag, no newline.
  std::fclose(f);

  // Strict mode refuses the file outright.
  EXPECT_FALSE(Trace::LoadFromFile(path).ok());

  // Tolerant mode drops exactly the torn tail and reports it.
  TraceLoadOptions options;
  options.tolerate_torn_tail = true;
  TraceLoadInfo info;
  const auto loaded = Trace::LoadFromFile(path, options, &info);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_TRUE(info.torn_tail_dropped);
  EXPECT_GT(info.torn_tail_offset, 0u);
  EXPECT_FALSE(info.torn_tail_reason.empty());

  // A complete final record that merely LOST its checksum in a
  // checksummed file is also treated as torn, not silently accepted.
  f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs((Trace::FormatOpChecked(op) + "\n").c_str(), f);
  std::fputs("F 9\n", f);
  std::fclose(f);
  const auto uncrc = Trace::LoadFromFile(path, options, &info);
  ASSERT_TRUE(uncrc.ok());
  EXPECT_EQ(uncrc.value().size(), 1u);
  EXPECT_TRUE(info.torn_tail_dropped);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtsi::workload
