// Skip headers: Bloom filter guarantees, summary aggregation, serialization
// determinism, MemoryTracker category accounting across the component
// lifecycle, and skip-on/off query equality with skip counters.

#include "index/skip_header.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "core/rtsi_index.h"
#include "index/inverted_index.h"

namespace rtsi::index {
namespace {

Posting P(StreamId s, float pop, Timestamp frsh, TermFreq tf) {
  return Posting{s, pop, frsh, tf};
}

TEST(SplitBlockBloomTest, NoFalseNegatives) {
  SplitBlockBloom bloom;
  const std::size_t n = 5000;
  bloom.Reset(n);
  for (TermId t = 0; t < n; ++t) bloom.Insert(t * 7 + 1);
  for (TermId t = 0; t < n; ++t) {
    EXPECT_TRUE(bloom.MayContain(t * 7 + 1)) << t;
  }
}

TEST(SplitBlockBloomTest, FalsePositiveRateIsSmall) {
  SplitBlockBloom bloom;
  const std::size_t n = 5000;
  bloom.Reset(n);
  std::set<TermId> inserted;
  for (TermId t = 0; t < n; ++t) {
    bloom.Insert(t * 7 + 1);
    inserted.insert(t * 7 + 1);
  }
  std::size_t fp = 0, probes = 0;
  for (TermId t = 100'000; t < 150'000; ++t) {
    if (inserted.count(t) != 0) continue;
    ++probes;
    if (bloom.MayContain(t)) ++fp;
  }
  // ~1% expected at 10 bits/key; 5% is a generous determinism-safe cap.
  EXPECT_LT(static_cast<double>(fp) / static_cast<double>(probes), 0.05);
}

TEST(SplitBlockBloomTest, EmptyFilterContainsNothing) {
  SplitBlockBloom bloom;
  EXPECT_FALSE(bloom.MayContain(1));
  bloom.Reset(0);  // Still at least one block; nothing inserted.
  EXPECT_FALSE(bloom.MayContain(1));
}

TEST(SkipHeaderTest, BuildSortsAndFindIsExact) {
  std::vector<TermSummary> summaries = {
      {30, 3.0f, 300, 3, 3, 3},
      {10, 1.0f, 100, 1, 1, 1},
      {20, 2.0f, 200, 2, 2, 2},
  };
  const SkipHeader header = SkipHeader::Build(std::move(summaries));
  EXPECT_EQ(header.num_terms(), 3u);
  EXPECT_EQ(header.summaries()[0].term, 10u);
  EXPECT_EQ(header.summaries()[2].term, 30u);
  const TermSummary* s = header.Find(20);
  ASSERT_NE(s, nullptr);
  EXPECT_FLOAT_EQ(s->max_pop, 2.0f);
  EXPECT_EQ(s->max_frsh, 200);
  EXPECT_EQ(header.Find(25), nullptr);
  EXPECT_TRUE(header.MayContain(10));
  EXPECT_TRUE(header.MayContain(30));
}

TEST(SkipHeaderTest, IndexBuildAggregatesPerStream) {
  // Term 1 holds two postings of stream 10 (frozen-L0 shape): the summary
  // must bound their *sum*, which is what traversal scoring accumulates.
  InvertedIndex idx(0);
  idx.Add(1, P(10, 2.0f, 100, 2));
  idx.Add(1, P(10, 1.0f, 250, 3));
  idx.Add(1, P(11, 5.0f, 50, 1));
  idx.Add(2, P(10, 1.0f, 10, 4));
  idx.BuildSkipHeader();
  ASSERT_NE(idx.skip_header(), nullptr);
  const SkipHeader& header = *idx.skip_header();
  ASSERT_EQ(header.num_terms(), 2u);
  const TermSummary* s1 = header.Find(1);
  ASSERT_NE(s1, nullptr);
  EXPECT_FLOAT_EQ(s1->max_pop, 5.0f);
  EXPECT_EQ(s1->max_frsh, 250);
  EXPECT_EQ(s1->max_tf, 5u);      // 2 + 3 aggregated for stream 10.
  EXPECT_EQ(s1->df, 2u);          // Streams 10, 11.
  EXPECT_EQ(s1->postings, 3u);    // Raw stored postings.
  const TermSummary* s2 = header.Find(2);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->df, 1u);
  EXPECT_EQ(s2->max_tf, 4u);
}

TEST(SkipHeaderTest, SerializeRoundTripIsBitExact) {
  Rng rng(11);
  std::vector<TermSummary> summaries;
  for (TermId t = 0; t < 400; ++t) {
    summaries.push_back({t * 3,
                         static_cast<float>(rng.NextUint64(1000)),
                         static_cast<Timestamp>(rng.NextUint64(1 << 20)),
                         static_cast<TermFreq>(1 + rng.NextUint64(50)),
                         static_cast<std::uint32_t>(1 + rng.NextUint64(9)),
                         static_cast<std::uint32_t>(1 + rng.NextUint64(20))});
  }
  const SkipHeader header = SkipHeader::Build(std::move(summaries));
  const std::vector<std::uint8_t> bytes = header.Serialize();
  SkipHeader decoded;
  ASSERT_TRUE(SkipHeader::Deserialize(bytes.data(), bytes.size(), decoded));
  EXPECT_EQ(decoded.num_terms(), header.num_terms());
  EXPECT_EQ(decoded.Serialize(), bytes);
  // Decoded summaries and Bloom behave identically.
  for (const TermSummary& s : header.summaries()) {
    const TermSummary* d = decoded.Find(s.term);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->max_frsh, s.max_frsh);
    EXPECT_EQ(d->max_tf, s.max_tf);
    EXPECT_TRUE(decoded.MayContain(s.term));
  }
}

TEST(SkipHeaderTest, DeserializeRejectsMalformedInput) {
  const SkipHeader header =
      SkipHeader::Build({{1, 1.0f, 1, 1, 1, 1}, {2, 2.0f, 2, 2, 1, 1}});
  std::vector<std::uint8_t> bytes = header.Serialize();
  SkipHeader out;
  // Truncation at every prefix length must fail cleanly, never crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(SkipHeader::Deserialize(bytes.data(), cut, out))
        << "cut=" << cut;
  }
  // Trailing garbage is rejected too.
  bytes.push_back(0x7f);
  EXPECT_FALSE(SkipHeader::Deserialize(bytes.data(), bytes.size(), out));
}

TEST(SkipHeaderTest, RebuildIsDeterministicAcrossRepresentations) {
  // The same consolidated content built plain-then-compressed must yield a
  // byte-identical header (the v3 snapshot restore path rebuilds from the
  // compressed representation).
  auto build = [](bool compress) {
    InvertedIndex idx(1);
    for (TermId t = 0; t < 20; ++t) {
      for (StreamId s = 0; s < 30; ++s) {
        idx.Add(t, P(s, static_cast<float>(s % 7), 100 + s, 1 + s % 5));
      }
    }
    idx.SealAll();
    if (compress) idx.CompressAll();
    idx.BuildSkipHeader();
    return idx.skip_header()->Serialize();
  };
  EXPECT_EQ(build(false), build(true));
}

}  // namespace
}  // namespace rtsi::index

namespace rtsi::core {
namespace {

RtsiConfig SmallConfig() {
  RtsiConfig config;
  config.lsm.delta = 200;
  config.lsm.num_l0_shards = 2;
  return config;
}

void Populate(RtsiIndex& index, StreamId num_streams) {
  Rng rng(5);
  Timestamp t = 0;
  for (StreamId s = 0; s < num_streams; ++s) {
    for (int w = 0; w < 3; ++w) {
      std::vector<TermCount> terms;
      std::set<TermId> used;
      for (int i = 0; i < 6; ++i) {
        const auto term = static_cast<TermId>(rng.NextUint64(50));
        if (used.insert(term).second) {
          terms.push_back(
              {term, 1 + static_cast<TermFreq>(rng.NextUint64(4))});
        }
      }
      t += kMicrosPerSecond;
      index.InsertWindow(s, t, terms, w < 2);
    }
    if (s % 2 == 0) index.FinishStream(s);
    index.UpdatePopularity(s, rng.NextUint64(300));
  }
}

TEST(SkipHeaderLifecycleTest, TrackerCategoryBalancesAcrossMergesAndRetire) {
  // Hold the tracker past index destruction (the RAII charge owns a
  // shared_ptr, so late releases must still balance).
  std::shared_ptr<MemoryTracker> tracker;
  {
    RtsiIndex index(SmallConfig());
    tracker = index.tree().memory_tracker();
    Populate(index, 120);
    index.WaitForMerges();

    // Every sealed component carries a header and the category gauge
    // equals the sum of their footprints: freeze charges, merge charges
    // the output and releases the inputs once views retire them.
    const auto components = index.tree().SealedSnapshot();
    ASSERT_FALSE(components.empty());
    std::size_t expected = 0;
    for (const auto& component : components) {
      ASSERT_NE(component->skip_header(), nullptr);
      EXPECT_GT(component->skip_header()->num_terms(), 0u);
      expected += component->skip_header()->MemoryBytes();
    }
    EXPECT_EQ(tracker->bytes(MemCategory::kSkipHeader), expected);
    EXPECT_GT(tracker->bytes(MemCategory::kSkipHeader), 0u);
  }
  // All components destroyed with the index: the category must drain to
  // zero — any residue is a leak in the charge/release pairing.
  EXPECT_EQ(tracker->bytes(MemCategory::kSkipHeader), 0u);
}

TEST(SkipHeaderQueryTest, SkipOnOffResultsAreIdentical) {
  RtsiIndex index(SmallConfig());
  Populate(index, 150);
  index.WaitForMerges();
  ASSERT_FALSE(index.tree().SealedSnapshot().empty());

  Rng rng(17);
  const Timestamp now = 10'000 * kMicrosPerSecond;
  for (int qi = 0; qi < 200; ++qi) {
    std::vector<TermId> q;
    const int nq = 1 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < nq; ++i) {
      q.push_back(static_cast<TermId>(rng.NextUint64(60)));
    }
    index.SetUseSkipHeader(true);
    const auto with_skip = index.Query(q, 10, now);
    index.SetUseSkipHeader(false);
    const auto without_skip = index.Query(q, 10, now);
    index.SetUseSkipHeader(true);
    ASSERT_EQ(with_skip.size(), without_skip.size()) << "query " << qi;
    for (std::size_t i = 0; i < with_skip.size(); ++i) {
      EXPECT_EQ(with_skip[i].stream, without_skip[i].stream)
          << "query " << qi << " rank " << i;
      EXPECT_EQ(with_skip[i].score, without_skip[i].score)
          << "query " << qi << " rank " << i;
    }
  }
}

TEST(SkipHeaderQueryTest, AbsentTermsSkipComponentsAndCount) {
  RtsiIndex index(SmallConfig());
  Populate(index, 150);
  index.WaitForMerges();
  const std::size_t sealed = index.tree().SealedSnapshot().size();
  ASSERT_GT(sealed, 0u);

  // Vocabulary tops out at 49; term 1'000'000 is in no component, so every
  // sealed component is Bloom-skipped and the query returns nothing from
  // the sealed phase.
  QueryStats qs;
  const auto results =
      index.Query({1'000'000}, 10, 10'000 * kMicrosPerSecond, &qs);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(qs.components_skipped, sealed);
  EXPECT_EQ(qs.components_visited, 0u);

  const RtsiIndex::SkipCounters counters = index.GetSkipCounters();
  EXPECT_GE(counters.components_skipped, sealed);

  // A present term still visits.
  QueryStats qs2;
  index.Query({3}, 10, 10'000 * kMicrosPerSecond, &qs2);
  EXPECT_EQ(qs2.components_skipped, 0u);
  EXPECT_GT(qs2.components_visited + qs2.components_pruned, 0u);
}

}  // namespace
}  // namespace rtsi::core
