
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/doc_freq.cc" "src/core/CMakeFiles/rtsi_core.dir/doc_freq.cc.o" "gcc" "src/core/CMakeFiles/rtsi_core.dir/doc_freq.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/rtsi_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/rtsi_core.dir/explain.cc.o.d"
  "/root/repo/src/core/query_util.cc" "src/core/CMakeFiles/rtsi_core.dir/query_util.cc.o" "gcc" "src/core/CMakeFiles/rtsi_core.dir/query_util.cc.o.d"
  "/root/repo/src/core/rtsi_index.cc" "src/core/CMakeFiles/rtsi_core.dir/rtsi_index.cc.o" "gcc" "src/core/CMakeFiles/rtsi_core.dir/rtsi_index.cc.o.d"
  "/root/repo/src/core/scorer.cc" "src/core/CMakeFiles/rtsi_core.dir/scorer.cc.o" "gcc" "src/core/CMakeFiles/rtsi_core.dir/scorer.cc.o.d"
  "/root/repo/src/core/top_k.cc" "src/core/CMakeFiles/rtsi_core.dir/top_k.cc.o" "gcc" "src/core/CMakeFiles/rtsi_core.dir/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lsm/CMakeFiles/rtsi_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
