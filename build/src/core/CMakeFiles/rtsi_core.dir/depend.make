# Empty dependencies file for rtsi_core.
# This may be replaced when dependencies are built.
