file(REMOVE_RECURSE
  "librtsi_core.a"
)
