file(REMOVE_RECURSE
  "CMakeFiles/rtsi_core.dir/doc_freq.cc.o"
  "CMakeFiles/rtsi_core.dir/doc_freq.cc.o.d"
  "CMakeFiles/rtsi_core.dir/explain.cc.o"
  "CMakeFiles/rtsi_core.dir/explain.cc.o.d"
  "CMakeFiles/rtsi_core.dir/query_util.cc.o"
  "CMakeFiles/rtsi_core.dir/query_util.cc.o.d"
  "CMakeFiles/rtsi_core.dir/rtsi_index.cc.o"
  "CMakeFiles/rtsi_core.dir/rtsi_index.cc.o.d"
  "CMakeFiles/rtsi_core.dir/scorer.cc.o"
  "CMakeFiles/rtsi_core.dir/scorer.cc.o.d"
  "CMakeFiles/rtsi_core.dir/top_k.cc.o"
  "CMakeFiles/rtsi_core.dir/top_k.cc.o.d"
  "librtsi_core.a"
  "librtsi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
