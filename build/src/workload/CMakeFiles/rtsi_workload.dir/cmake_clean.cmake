file(REMOVE_RECURSE
  "CMakeFiles/rtsi_workload.dir/corpus.cc.o"
  "CMakeFiles/rtsi_workload.dir/corpus.cc.o.d"
  "CMakeFiles/rtsi_workload.dir/driver.cc.o"
  "CMakeFiles/rtsi_workload.dir/driver.cc.o.d"
  "CMakeFiles/rtsi_workload.dir/query_gen.cc.o"
  "CMakeFiles/rtsi_workload.dir/query_gen.cc.o.d"
  "CMakeFiles/rtsi_workload.dir/report.cc.o"
  "CMakeFiles/rtsi_workload.dir/report.cc.o.d"
  "CMakeFiles/rtsi_workload.dir/trace.cc.o"
  "CMakeFiles/rtsi_workload.dir/trace.cc.o.d"
  "librtsi_workload.a"
  "librtsi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
