file(REMOVE_RECURSE
  "librtsi_workload.a"
)
