# Empty dependencies file for rtsi_workload.
# This may be replaced when dependencies are built.
