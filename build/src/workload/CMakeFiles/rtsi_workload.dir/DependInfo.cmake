
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus.cc" "src/workload/CMakeFiles/rtsi_workload.dir/corpus.cc.o" "gcc" "src/workload/CMakeFiles/rtsi_workload.dir/corpus.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/workload/CMakeFiles/rtsi_workload.dir/driver.cc.o" "gcc" "src/workload/CMakeFiles/rtsi_workload.dir/driver.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/workload/CMakeFiles/rtsi_workload.dir/query_gen.cc.o" "gcc" "src/workload/CMakeFiles/rtsi_workload.dir/query_gen.cc.o.d"
  "/root/repo/src/workload/report.cc" "src/workload/CMakeFiles/rtsi_workload.dir/report.cc.o" "gcc" "src/workload/CMakeFiles/rtsi_workload.dir/report.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/rtsi_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/rtsi_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rtsi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rtsi_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
