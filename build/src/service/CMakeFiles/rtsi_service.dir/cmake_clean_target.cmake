file(REMOVE_RECURSE
  "librtsi_service.a"
)
