# Empty compiler generated dependencies file for rtsi_service.
# This may be replaced when dependencies are built.
