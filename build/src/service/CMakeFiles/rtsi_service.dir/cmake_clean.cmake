file(REMOVE_RECURSE
  "CMakeFiles/rtsi_service.dir/ingestion.cc.o"
  "CMakeFiles/rtsi_service.dir/ingestion.cc.o.d"
  "CMakeFiles/rtsi_service.dir/query_processor.cc.o"
  "CMakeFiles/rtsi_service.dir/query_processor.cc.o.d"
  "CMakeFiles/rtsi_service.dir/search_service.cc.o"
  "CMakeFiles/rtsi_service.dir/search_service.cc.o.d"
  "CMakeFiles/rtsi_service.dir/service_snapshot.cc.o"
  "CMakeFiles/rtsi_service.dir/service_snapshot.cc.o.d"
  "librtsi_service.a"
  "librtsi_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
