
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/ingestion.cc" "src/service/CMakeFiles/rtsi_service.dir/ingestion.cc.o" "gcc" "src/service/CMakeFiles/rtsi_service.dir/ingestion.cc.o.d"
  "/root/repo/src/service/query_processor.cc" "src/service/CMakeFiles/rtsi_service.dir/query_processor.cc.o" "gcc" "src/service/CMakeFiles/rtsi_service.dir/query_processor.cc.o.d"
  "/root/repo/src/service/search_service.cc" "src/service/CMakeFiles/rtsi_service.dir/search_service.cc.o" "gcc" "src/service/CMakeFiles/rtsi_service.dir/search_service.cc.o.d"
  "/root/repo/src/service/service_snapshot.cc" "src/service/CMakeFiles/rtsi_service.dir/service_snapshot.cc.o" "gcc" "src/service/CMakeFiles/rtsi_service.dir/service_snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rtsi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rtsi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/asr/CMakeFiles/rtsi_asr.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/rtsi_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rtsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rtsi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rtsi_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
