file(REMOVE_RECURSE
  "CMakeFiles/rtsi_text.dir/stemmer.cc.o"
  "CMakeFiles/rtsi_text.dir/stemmer.cc.o.d"
  "CMakeFiles/rtsi_text.dir/stopwords.cc.o"
  "CMakeFiles/rtsi_text.dir/stopwords.cc.o.d"
  "CMakeFiles/rtsi_text.dir/term_dictionary.cc.o"
  "CMakeFiles/rtsi_text.dir/term_dictionary.cc.o.d"
  "CMakeFiles/rtsi_text.dir/tokenizer.cc.o"
  "CMakeFiles/rtsi_text.dir/tokenizer.cc.o.d"
  "librtsi_text.a"
  "librtsi_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
