file(REMOVE_RECURSE
  "librtsi_text.a"
)
