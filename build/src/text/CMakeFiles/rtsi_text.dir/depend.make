# Empty dependencies file for rtsi_text.
# This may be replaced when dependencies are built.
