file(REMOVE_RECURSE
  "librtsi_common.a"
)
