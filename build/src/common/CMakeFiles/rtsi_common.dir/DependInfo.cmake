
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cc" "src/common/CMakeFiles/rtsi_common.dir/clock.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/clock.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/common/CMakeFiles/rtsi_common.dir/crc32.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/crc32.cc.o.d"
  "/root/repo/src/common/latency_stats.cc" "src/common/CMakeFiles/rtsi_common.dir/latency_stats.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/latency_stats.cc.o.d"
  "/root/repo/src/common/memory_tracker.cc" "src/common/CMakeFiles/rtsi_common.dir/memory_tracker.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/memory_tracker.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/rtsi_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/rtsi_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/thread_pool.cc.o.d"
  "/root/repo/src/common/varint.cc" "src/common/CMakeFiles/rtsi_common.dir/varint.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/varint.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/common/CMakeFiles/rtsi_common.dir/zipf.cc.o" "gcc" "src/common/CMakeFiles/rtsi_common.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
