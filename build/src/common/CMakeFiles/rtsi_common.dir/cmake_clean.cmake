file(REMOVE_RECURSE
  "CMakeFiles/rtsi_common.dir/clock.cc.o"
  "CMakeFiles/rtsi_common.dir/clock.cc.o.d"
  "CMakeFiles/rtsi_common.dir/crc32.cc.o"
  "CMakeFiles/rtsi_common.dir/crc32.cc.o.d"
  "CMakeFiles/rtsi_common.dir/latency_stats.cc.o"
  "CMakeFiles/rtsi_common.dir/latency_stats.cc.o.d"
  "CMakeFiles/rtsi_common.dir/memory_tracker.cc.o"
  "CMakeFiles/rtsi_common.dir/memory_tracker.cc.o.d"
  "CMakeFiles/rtsi_common.dir/status.cc.o"
  "CMakeFiles/rtsi_common.dir/status.cc.o.d"
  "CMakeFiles/rtsi_common.dir/thread_pool.cc.o"
  "CMakeFiles/rtsi_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/rtsi_common.dir/varint.cc.o"
  "CMakeFiles/rtsi_common.dir/varint.cc.o.d"
  "CMakeFiles/rtsi_common.dir/zipf.cc.o"
  "CMakeFiles/rtsi_common.dir/zipf.cc.o.d"
  "librtsi_common.a"
  "librtsi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
