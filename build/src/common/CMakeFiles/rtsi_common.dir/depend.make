# Empty dependencies file for rtsi_common.
# This may be replaced when dependencies are built.
