# Empty dependencies file for rtsi_asr.
# This may be replaced when dependencies are built.
