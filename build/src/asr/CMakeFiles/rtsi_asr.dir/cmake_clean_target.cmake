file(REMOVE_RECURSE
  "librtsi_asr.a"
)
