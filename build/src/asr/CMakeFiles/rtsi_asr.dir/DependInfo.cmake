
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asr/acoustic_model.cc" "src/asr/CMakeFiles/rtsi_asr.dir/acoustic_model.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/acoustic_model.cc.o.d"
  "/root/repo/src/asr/decoder.cc" "src/asr/CMakeFiles/rtsi_asr.dir/decoder.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/decoder.cc.o.d"
  "/root/repo/src/asr/lattice.cc" "src/asr/CMakeFiles/rtsi_asr.dir/lattice.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/lattice.cc.o.d"
  "/root/repo/src/asr/lexicon.cc" "src/asr/CMakeFiles/rtsi_asr.dir/lexicon.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/lexicon.cc.o.d"
  "/root/repo/src/asr/phone_lm.cc" "src/asr/CMakeFiles/rtsi_asr.dir/phone_lm.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/phone_lm.cc.o.d"
  "/root/repo/src/asr/phoneme.cc" "src/asr/CMakeFiles/rtsi_asr.dir/phoneme.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/phoneme.cc.o.d"
  "/root/repo/src/asr/transcriber.cc" "src/asr/CMakeFiles/rtsi_asr.dir/transcriber.cc.o" "gcc" "src/asr/CMakeFiles/rtsi_asr.dir/transcriber.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/audio/CMakeFiles/rtsi_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
