file(REMOVE_RECURSE
  "CMakeFiles/rtsi_asr.dir/acoustic_model.cc.o"
  "CMakeFiles/rtsi_asr.dir/acoustic_model.cc.o.d"
  "CMakeFiles/rtsi_asr.dir/decoder.cc.o"
  "CMakeFiles/rtsi_asr.dir/decoder.cc.o.d"
  "CMakeFiles/rtsi_asr.dir/lattice.cc.o"
  "CMakeFiles/rtsi_asr.dir/lattice.cc.o.d"
  "CMakeFiles/rtsi_asr.dir/lexicon.cc.o"
  "CMakeFiles/rtsi_asr.dir/lexicon.cc.o.d"
  "CMakeFiles/rtsi_asr.dir/phone_lm.cc.o"
  "CMakeFiles/rtsi_asr.dir/phone_lm.cc.o.d"
  "CMakeFiles/rtsi_asr.dir/phoneme.cc.o"
  "CMakeFiles/rtsi_asr.dir/phoneme.cc.o.d"
  "CMakeFiles/rtsi_asr.dir/transcriber.cc.o"
  "CMakeFiles/rtsi_asr.dir/transcriber.cc.o.d"
  "librtsi_asr.a"
  "librtsi_asr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_asr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
