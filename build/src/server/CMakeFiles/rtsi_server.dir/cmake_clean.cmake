file(REMOVE_RECURSE
  "CMakeFiles/rtsi_server.dir/http_server.cc.o"
  "CMakeFiles/rtsi_server.dir/http_server.cc.o.d"
  "CMakeFiles/rtsi_server.dir/search_handler.cc.o"
  "CMakeFiles/rtsi_server.dir/search_handler.cc.o.d"
  "librtsi_server.a"
  "librtsi_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
