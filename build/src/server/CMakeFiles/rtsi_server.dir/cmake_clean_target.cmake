file(REMOVE_RECURSE
  "librtsi_server.a"
)
