# Empty dependencies file for rtsi_server.
# This may be replaced when dependencies are built.
