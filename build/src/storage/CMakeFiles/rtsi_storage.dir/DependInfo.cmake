
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/file_io.cc" "src/storage/CMakeFiles/rtsi_storage.dir/file_io.cc.o" "gcc" "src/storage/CMakeFiles/rtsi_storage.dir/file_io.cc.o.d"
  "/root/repo/src/storage/journal.cc" "src/storage/CMakeFiles/rtsi_storage.dir/journal.cc.o" "gcc" "src/storage/CMakeFiles/rtsi_storage.dir/journal.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "src/storage/CMakeFiles/rtsi_storage.dir/snapshot.cc.o" "gcc" "src/storage/CMakeFiles/rtsi_storage.dir/snapshot.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/rtsi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rtsi_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rtsi_baseline.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
