file(REMOVE_RECURSE
  "CMakeFiles/rtsi_storage.dir/file_io.cc.o"
  "CMakeFiles/rtsi_storage.dir/file_io.cc.o.d"
  "CMakeFiles/rtsi_storage.dir/journal.cc.o"
  "CMakeFiles/rtsi_storage.dir/journal.cc.o.d"
  "CMakeFiles/rtsi_storage.dir/snapshot.cc.o"
  "CMakeFiles/rtsi_storage.dir/snapshot.cc.o.d"
  "librtsi_storage.a"
  "librtsi_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
