file(REMOVE_RECURSE
  "librtsi_storage.a"
)
