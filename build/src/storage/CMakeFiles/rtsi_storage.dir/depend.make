# Empty dependencies file for rtsi_storage.
# This may be replaced when dependencies are built.
