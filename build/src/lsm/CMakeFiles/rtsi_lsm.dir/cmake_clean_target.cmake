file(REMOVE_RECURSE
  "librtsi_lsm.a"
)
