file(REMOVE_RECURSE
  "CMakeFiles/rtsi_lsm.dir/lsm_tree.cc.o"
  "CMakeFiles/rtsi_lsm.dir/lsm_tree.cc.o.d"
  "CMakeFiles/rtsi_lsm.dir/merge.cc.o"
  "CMakeFiles/rtsi_lsm.dir/merge.cc.o.d"
  "CMakeFiles/rtsi_lsm.dir/mirror_set.cc.o"
  "CMakeFiles/rtsi_lsm.dir/mirror_set.cc.o.d"
  "librtsi_lsm.a"
  "librtsi_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
