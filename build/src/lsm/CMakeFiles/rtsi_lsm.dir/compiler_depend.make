# Empty compiler generated dependencies file for rtsi_lsm.
# This may be replaced when dependencies are built.
