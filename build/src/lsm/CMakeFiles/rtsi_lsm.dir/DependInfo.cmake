
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/lsm_tree.cc" "src/lsm/CMakeFiles/rtsi_lsm.dir/lsm_tree.cc.o" "gcc" "src/lsm/CMakeFiles/rtsi_lsm.dir/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/merge.cc" "src/lsm/CMakeFiles/rtsi_lsm.dir/merge.cc.o" "gcc" "src/lsm/CMakeFiles/rtsi_lsm.dir/merge.cc.o.d"
  "/root/repo/src/lsm/mirror_set.cc" "src/lsm/CMakeFiles/rtsi_lsm.dir/mirror_set.cc.o" "gcc" "src/lsm/CMakeFiles/rtsi_lsm.dir/mirror_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
