# Empty dependencies file for rtsi_baseline.
# This may be replaced when dependencies are built.
