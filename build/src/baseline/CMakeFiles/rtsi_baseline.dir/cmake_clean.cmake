file(REMOVE_RECURSE
  "CMakeFiles/rtsi_baseline.dir/big_table.cc.o"
  "CMakeFiles/rtsi_baseline.dir/big_table.cc.o.d"
  "CMakeFiles/rtsi_baseline.dir/lsii_index.cc.o"
  "CMakeFiles/rtsi_baseline.dir/lsii_index.cc.o.d"
  "CMakeFiles/rtsi_baseline.dir/metadata_index.cc.o"
  "CMakeFiles/rtsi_baseline.dir/metadata_index.cc.o.d"
  "librtsi_baseline.a"
  "librtsi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
