file(REMOVE_RECURSE
  "librtsi_baseline.a"
)
