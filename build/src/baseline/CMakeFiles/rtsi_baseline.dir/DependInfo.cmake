
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/big_table.cc" "src/baseline/CMakeFiles/rtsi_baseline.dir/big_table.cc.o" "gcc" "src/baseline/CMakeFiles/rtsi_baseline.dir/big_table.cc.o.d"
  "/root/repo/src/baseline/lsii_index.cc" "src/baseline/CMakeFiles/rtsi_baseline.dir/lsii_index.cc.o" "gcc" "src/baseline/CMakeFiles/rtsi_baseline.dir/lsii_index.cc.o.d"
  "/root/repo/src/baseline/metadata_index.cc" "src/baseline/CMakeFiles/rtsi_baseline.dir/metadata_index.cc.o" "gcc" "src/baseline/CMakeFiles/rtsi_baseline.dir/metadata_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rtsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rtsi_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
