file(REMOVE_RECURSE
  "CMakeFiles/rtsi_audio.dir/fft.cc.o"
  "CMakeFiles/rtsi_audio.dir/fft.cc.o.d"
  "CMakeFiles/rtsi_audio.dir/mel_filterbank.cc.o"
  "CMakeFiles/rtsi_audio.dir/mel_filterbank.cc.o.d"
  "CMakeFiles/rtsi_audio.dir/mfcc.cc.o"
  "CMakeFiles/rtsi_audio.dir/mfcc.cc.o.d"
  "CMakeFiles/rtsi_audio.dir/synthesizer.cc.o"
  "CMakeFiles/rtsi_audio.dir/synthesizer.cc.o.d"
  "CMakeFiles/rtsi_audio.dir/wav.cc.o"
  "CMakeFiles/rtsi_audio.dir/wav.cc.o.d"
  "librtsi_audio.a"
  "librtsi_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
