# Empty compiler generated dependencies file for rtsi_audio.
# This may be replaced when dependencies are built.
