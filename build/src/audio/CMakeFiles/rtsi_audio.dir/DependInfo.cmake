
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audio/fft.cc" "src/audio/CMakeFiles/rtsi_audio.dir/fft.cc.o" "gcc" "src/audio/CMakeFiles/rtsi_audio.dir/fft.cc.o.d"
  "/root/repo/src/audio/mel_filterbank.cc" "src/audio/CMakeFiles/rtsi_audio.dir/mel_filterbank.cc.o" "gcc" "src/audio/CMakeFiles/rtsi_audio.dir/mel_filterbank.cc.o.d"
  "/root/repo/src/audio/mfcc.cc" "src/audio/CMakeFiles/rtsi_audio.dir/mfcc.cc.o" "gcc" "src/audio/CMakeFiles/rtsi_audio.dir/mfcc.cc.o.d"
  "/root/repo/src/audio/synthesizer.cc" "src/audio/CMakeFiles/rtsi_audio.dir/synthesizer.cc.o" "gcc" "src/audio/CMakeFiles/rtsi_audio.dir/synthesizer.cc.o.d"
  "/root/repo/src/audio/wav.cc" "src/audio/CMakeFiles/rtsi_audio.dir/wav.cc.o" "gcc" "src/audio/CMakeFiles/rtsi_audio.dir/wav.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
