file(REMOVE_RECURSE
  "librtsi_audio.a"
)
