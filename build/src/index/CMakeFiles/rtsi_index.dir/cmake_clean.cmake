file(REMOVE_RECURSE
  "CMakeFiles/rtsi_index.dir/compressed_postings.cc.o"
  "CMakeFiles/rtsi_index.dir/compressed_postings.cc.o.d"
  "CMakeFiles/rtsi_index.dir/huffman.cc.o"
  "CMakeFiles/rtsi_index.dir/huffman.cc.o.d"
  "CMakeFiles/rtsi_index.dir/inverted_index.cc.o"
  "CMakeFiles/rtsi_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/rtsi_index.dir/live_term_table.cc.o"
  "CMakeFiles/rtsi_index.dir/live_term_table.cc.o.d"
  "CMakeFiles/rtsi_index.dir/stream_info_table.cc.o"
  "CMakeFiles/rtsi_index.dir/stream_info_table.cc.o.d"
  "CMakeFiles/rtsi_index.dir/term_postings.cc.o"
  "CMakeFiles/rtsi_index.dir/term_postings.cc.o.d"
  "librtsi_index.a"
  "librtsi_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
