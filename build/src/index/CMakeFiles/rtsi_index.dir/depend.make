# Empty dependencies file for rtsi_index.
# This may be replaced when dependencies are built.
