
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/compressed_postings.cc" "src/index/CMakeFiles/rtsi_index.dir/compressed_postings.cc.o" "gcc" "src/index/CMakeFiles/rtsi_index.dir/compressed_postings.cc.o.d"
  "/root/repo/src/index/huffman.cc" "src/index/CMakeFiles/rtsi_index.dir/huffman.cc.o" "gcc" "src/index/CMakeFiles/rtsi_index.dir/huffman.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/index/CMakeFiles/rtsi_index.dir/inverted_index.cc.o" "gcc" "src/index/CMakeFiles/rtsi_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/index/live_term_table.cc" "src/index/CMakeFiles/rtsi_index.dir/live_term_table.cc.o" "gcc" "src/index/CMakeFiles/rtsi_index.dir/live_term_table.cc.o.d"
  "/root/repo/src/index/stream_info_table.cc" "src/index/CMakeFiles/rtsi_index.dir/stream_info_table.cc.o" "gcc" "src/index/CMakeFiles/rtsi_index.dir/stream_info_table.cc.o.d"
  "/root/repo/src/index/term_postings.cc" "src/index/CMakeFiles/rtsi_index.dir/term_postings.cc.o" "gcc" "src/index/CMakeFiles/rtsi_index.dir/term_postings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
