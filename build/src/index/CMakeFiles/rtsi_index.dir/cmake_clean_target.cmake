file(REMOVE_RECURSE
  "librtsi_index.a"
)
