# Empty compiler generated dependencies file for http_demo.
# This may be replaced when dependencies are built.
