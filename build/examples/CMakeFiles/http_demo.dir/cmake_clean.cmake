file(REMOVE_RECURSE
  "CMakeFiles/http_demo.dir/http_demo.cpp.o"
  "CMakeFiles/http_demo.dir/http_demo.cpp.o.d"
  "http_demo"
  "http_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
