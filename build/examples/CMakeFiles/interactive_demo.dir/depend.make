# Empty dependencies file for interactive_demo.
# This may be replaced when dependencies are built.
