file(REMOVE_RECURSE
  "CMakeFiles/interactive_demo.dir/interactive_demo.cpp.o"
  "CMakeFiles/interactive_demo.dir/interactive_demo.cpp.o.d"
  "interactive_demo"
  "interactive_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
