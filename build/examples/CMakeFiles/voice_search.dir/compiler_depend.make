# Empty compiler generated dependencies file for voice_search.
# This may be replaced when dependencies are built.
