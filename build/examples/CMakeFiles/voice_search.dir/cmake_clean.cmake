file(REMOVE_RECURSE
  "CMakeFiles/voice_search.dir/voice_search.cpp.o"
  "CMakeFiles/voice_search.dir/voice_search.cpp.o.d"
  "voice_search"
  "voice_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
