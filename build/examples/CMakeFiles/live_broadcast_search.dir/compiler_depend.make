# Empty compiler generated dependencies file for live_broadcast_search.
# This may be replaced when dependencies are built.
