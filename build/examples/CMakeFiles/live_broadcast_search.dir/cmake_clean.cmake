file(REMOVE_RECURSE
  "CMakeFiles/live_broadcast_search.dir/live_broadcast_search.cpp.o"
  "CMakeFiles/live_broadcast_search.dir/live_broadcast_search.cpp.o.d"
  "live_broadcast_search"
  "live_broadcast_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_broadcast_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
