file(REMOVE_RECURSE
  "CMakeFiles/ranking_invariants_test.dir/ranking_invariants_test.cc.o"
  "CMakeFiles/ranking_invariants_test.dir/ranking_invariants_test.cc.o.d"
  "ranking_invariants_test"
  "ranking_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
