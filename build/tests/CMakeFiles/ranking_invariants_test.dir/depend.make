# Empty dependencies file for ranking_invariants_test.
# This may be replaced when dependencies are built.
