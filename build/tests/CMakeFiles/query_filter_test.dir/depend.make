# Empty dependencies file for query_filter_test.
# This may be replaced when dependencies are built.
