file(REMOVE_RECURSE
  "CMakeFiles/query_filter_test.dir/query_filter_test.cc.o"
  "CMakeFiles/query_filter_test.dir/query_filter_test.cc.o.d"
  "query_filter_test"
  "query_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
