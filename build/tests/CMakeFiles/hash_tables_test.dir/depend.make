# Empty dependencies file for hash_tables_test.
# This may be replaced when dependencies are built.
