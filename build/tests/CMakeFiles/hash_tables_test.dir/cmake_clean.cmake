file(REMOVE_RECURSE
  "CMakeFiles/hash_tables_test.dir/hash_tables_test.cc.o"
  "CMakeFiles/hash_tables_test.dir/hash_tables_test.cc.o.d"
  "hash_tables_test"
  "hash_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
