file(REMOVE_RECURSE
  "CMakeFiles/latency_stats_test.dir/latency_stats_test.cc.o"
  "CMakeFiles/latency_stats_test.dir/latency_stats_test.cc.o.d"
  "latency_stats_test"
  "latency_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
