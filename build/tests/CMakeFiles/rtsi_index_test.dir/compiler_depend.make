# Empty compiler generated dependencies file for rtsi_index_test.
# This may be replaced when dependencies are built.
