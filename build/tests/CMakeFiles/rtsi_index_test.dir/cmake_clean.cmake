file(REMOVE_RECURSE
  "CMakeFiles/rtsi_index_test.dir/rtsi_index_test.cc.o"
  "CMakeFiles/rtsi_index_test.dir/rtsi_index_test.cc.o.d"
  "rtsi_index_test"
  "rtsi_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
