# Empty compiler generated dependencies file for compressed_postings_test.
# This may be replaced when dependencies are built.
