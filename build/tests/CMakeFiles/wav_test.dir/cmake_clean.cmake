file(REMOVE_RECURSE
  "CMakeFiles/wav_test.dir/wav_test.cc.o"
  "CMakeFiles/wav_test.dir/wav_test.cc.o.d"
  "wav_test"
  "wav_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wav_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
