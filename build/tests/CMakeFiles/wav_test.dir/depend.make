# Empty dependencies file for wav_test.
# This may be replaced when dependencies are built.
