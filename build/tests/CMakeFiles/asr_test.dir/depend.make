# Empty dependencies file for asr_test.
# This may be replaced when dependencies are built.
