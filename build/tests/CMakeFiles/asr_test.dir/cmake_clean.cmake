file(REMOVE_RECURSE
  "CMakeFiles/asr_test.dir/asr_test.cc.o"
  "CMakeFiles/asr_test.dir/asr_test.cc.o.d"
  "asr_test"
  "asr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
