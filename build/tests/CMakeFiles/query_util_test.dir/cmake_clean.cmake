file(REMOVE_RECURSE
  "CMakeFiles/query_util_test.dir/query_util_test.cc.o"
  "CMakeFiles/query_util_test.dir/query_util_test.cc.o.d"
  "query_util_test"
  "query_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
