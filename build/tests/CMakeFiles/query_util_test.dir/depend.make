# Empty dependencies file for query_util_test.
# This may be replaced when dependencies are built.
