# Empty dependencies file for lsii_oracle_test.
# This may be replaced when dependencies are built.
