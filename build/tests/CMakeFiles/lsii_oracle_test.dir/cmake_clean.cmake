file(REMOVE_RECURSE
  "CMakeFiles/lsii_oracle_test.dir/lsii_oracle_test.cc.o"
  "CMakeFiles/lsii_oracle_test.dir/lsii_oracle_test.cc.o.d"
  "lsii_oracle_test"
  "lsii_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsii_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
