file(REMOVE_RECURSE
  "CMakeFiles/idf_regression_test.dir/idf_regression_test.cc.o"
  "CMakeFiles/idf_regression_test.dir/idf_regression_test.cc.o.d"
  "idf_regression_test"
  "idf_regression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/idf_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
