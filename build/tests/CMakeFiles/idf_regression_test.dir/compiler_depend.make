# Empty compiler generated dependencies file for idf_regression_test.
# This may be replaced when dependencies are built.
