# Empty dependencies file for mfcc_features_test.
# This may be replaced when dependencies are built.
