file(REMOVE_RECURSE
  "CMakeFiles/mfcc_features_test.dir/mfcc_features_test.cc.o"
  "CMakeFiles/mfcc_features_test.dir/mfcc_features_test.cc.o.d"
  "mfcc_features_test"
  "mfcc_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcc_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
