# Empty dependencies file for async_merge_test.
# This may be replaced when dependencies are built.
