file(REMOVE_RECURSE
  "CMakeFiles/async_merge_test.dir/async_merge_test.cc.o"
  "CMakeFiles/async_merge_test.dir/async_merge_test.cc.o.d"
  "async_merge_test"
  "async_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
