# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lsii_index_test.
