# Empty dependencies file for lsii_index_test.
# This may be replaced when dependencies are built.
