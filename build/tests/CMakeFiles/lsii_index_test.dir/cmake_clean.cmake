file(REMOVE_RECURSE
  "CMakeFiles/lsii_index_test.dir/lsii_index_test.cc.o"
  "CMakeFiles/lsii_index_test.dir/lsii_index_test.cc.o.d"
  "lsii_index_test"
  "lsii_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsii_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
