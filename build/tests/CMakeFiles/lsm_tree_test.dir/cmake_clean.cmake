file(REMOVE_RECURSE
  "CMakeFiles/lsm_tree_test.dir/lsm_tree_test.cc.o"
  "CMakeFiles/lsm_tree_test.dir/lsm_tree_test.cc.o.d"
  "lsm_tree_test"
  "lsm_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
