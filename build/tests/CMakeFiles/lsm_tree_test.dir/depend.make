# Empty dependencies file for lsm_tree_test.
# This may be replaced when dependencies are built.
