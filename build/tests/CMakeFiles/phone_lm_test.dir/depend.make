# Empty dependencies file for phone_lm_test.
# This may be replaced when dependencies are built.
