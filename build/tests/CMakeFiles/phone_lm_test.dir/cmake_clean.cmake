file(REMOVE_RECURSE
  "CMakeFiles/phone_lm_test.dir/phone_lm_test.cc.o"
  "CMakeFiles/phone_lm_test.dir/phone_lm_test.cc.o.d"
  "phone_lm_test"
  "phone_lm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_lm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
