# Empty dependencies file for merge_policy_test.
# This may be replaced when dependencies are built.
