file(REMOVE_RECURSE
  "CMakeFiles/merge_policy_test.dir/merge_policy_test.cc.o"
  "CMakeFiles/merge_policy_test.dir/merge_policy_test.cc.o.d"
  "merge_policy_test"
  "merge_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
