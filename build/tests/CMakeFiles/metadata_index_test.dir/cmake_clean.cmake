file(REMOVE_RECURSE
  "CMakeFiles/metadata_index_test.dir/metadata_index_test.cc.o"
  "CMakeFiles/metadata_index_test.dir/metadata_index_test.cc.o.d"
  "metadata_index_test"
  "metadata_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
