# Empty compiler generated dependencies file for lsm_complexity_test.
# This may be replaced when dependencies are built.
