file(REMOVE_RECURSE
  "CMakeFiles/lsm_complexity_test.dir/lsm_complexity_test.cc.o"
  "CMakeFiles/lsm_complexity_test.dir/lsm_complexity_test.cc.o.d"
  "lsm_complexity_test"
  "lsm_complexity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
