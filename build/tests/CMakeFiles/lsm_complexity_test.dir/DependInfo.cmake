
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lsm_complexity_test.cc" "tests/CMakeFiles/lsm_complexity_test.dir/lsm_complexity_test.cc.o" "gcc" "tests/CMakeFiles/lsm_complexity_test.dir/lsm_complexity_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/rtsi_server.dir/DependInfo.cmake"
  "/root/repo/build/src/service/CMakeFiles/rtsi_service.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rtsi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/rtsi_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rtsi_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rtsi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/rtsi_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/rtsi_index.dir/DependInfo.cmake"
  "/root/repo/build/src/asr/CMakeFiles/rtsi_asr.dir/DependInfo.cmake"
  "/root/repo/build/src/audio/CMakeFiles/rtsi_audio.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rtsi_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rtsi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
