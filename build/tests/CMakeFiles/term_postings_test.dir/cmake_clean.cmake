file(REMOVE_RECURSE
  "CMakeFiles/term_postings_test.dir/term_postings_test.cc.o"
  "CMakeFiles/term_postings_test.dir/term_postings_test.cc.o.d"
  "term_postings_test"
  "term_postings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_postings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
