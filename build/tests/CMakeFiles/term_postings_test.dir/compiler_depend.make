# Empty compiler generated dependencies file for term_postings_test.
# This may be replaced when dependencies are built.
