file(REMOVE_RECURSE
  "CMakeFiles/voice_robustness_test.dir/voice_robustness_test.cc.o"
  "CMakeFiles/voice_robustness_test.dir/voice_robustness_test.cc.o.d"
  "voice_robustness_test"
  "voice_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voice_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
