# Empty compiler generated dependencies file for voice_robustness_test.
# This may be replaced when dependencies are built.
