# Empty compiler generated dependencies file for mfcc_test.
# This may be replaced when dependencies are built.
