file(REMOVE_RECURSE
  "CMakeFiles/mfcc_test.dir/mfcc_test.cc.o"
  "CMakeFiles/mfcc_test.dir/mfcc_test.cc.o.d"
  "mfcc_test"
  "mfcc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
