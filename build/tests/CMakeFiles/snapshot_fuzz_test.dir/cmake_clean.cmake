file(REMOVE_RECURSE
  "CMakeFiles/snapshot_fuzz_test.dir/snapshot_fuzz_test.cc.o"
  "CMakeFiles/snapshot_fuzz_test.dir/snapshot_fuzz_test.cc.o.d"
  "snapshot_fuzz_test"
  "snapshot_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
