file(REMOVE_RECURSE
  "CMakeFiles/rtsi_cli.dir/rtsi_cli.cc.o"
  "CMakeFiles/rtsi_cli.dir/rtsi_cli.cc.o.d"
  "rtsi_cli"
  "rtsi_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtsi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
