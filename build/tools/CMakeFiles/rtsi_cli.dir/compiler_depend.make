# Empty compiler generated dependencies file for rtsi_cli.
# This may be replaced when dependencies are built.
