# Empty dependencies file for bench_fig7_init.
# This may be replaced when dependencies are built.
