# Empty dependencies file for bench_fig12_query_sens.
# This may be replaced when dependencies are built.
