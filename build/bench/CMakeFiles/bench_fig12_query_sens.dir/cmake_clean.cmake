file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_query_sens.dir/bench_fig12_query_sens.cc.o"
  "CMakeFiles/bench_fig12_query_sens.dir/bench_fig12_query_sens.cc.o.d"
  "bench_fig12_query_sens"
  "bench_fig12_query_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_query_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
