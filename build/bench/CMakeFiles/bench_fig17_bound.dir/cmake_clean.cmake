file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_bound.dir/bench_fig17_bound.cc.o"
  "CMakeFiles/bench_fig17_bound.dir/bench_fig17_bound.cc.o.d"
  "bench_fig17_bound"
  "bench_fig17_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
