# Empty dependencies file for bench_fig17_bound.
# This may be replaced when dependencies are built.
