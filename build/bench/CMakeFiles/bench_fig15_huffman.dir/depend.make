# Empty dependencies file for bench_fig15_huffman.
# This may be replaced when dependencies are built.
