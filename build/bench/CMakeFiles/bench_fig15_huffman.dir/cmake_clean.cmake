file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_huffman.dir/bench_fig15_huffman.cc.o"
  "CMakeFiles/bench_fig15_huffman.dir/bench_fig15_huffman.cc.o.d"
  "bench_fig15_huffman"
  "bench_fig15_huffman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_huffman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
