# Empty compiler generated dependencies file for bench_scale_crossover.
# This may be replaced when dependencies are built.
