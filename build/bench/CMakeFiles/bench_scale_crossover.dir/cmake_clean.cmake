file(REMOVE_RECURSE
  "CMakeFiles/bench_scale_crossover.dir/bench_scale_crossover.cc.o"
  "CMakeFiles/bench_scale_crossover.dir/bench_scale_crossover.cc.o.d"
  "bench_scale_crossover"
  "bench_scale_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scale_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
