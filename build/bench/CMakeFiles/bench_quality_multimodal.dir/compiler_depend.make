# Empty compiler generated dependencies file for bench_quality_multimodal.
# This may be replaced when dependencies are built.
