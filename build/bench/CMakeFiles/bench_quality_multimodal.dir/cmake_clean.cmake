file(REMOVE_RECURSE
  "CMakeFiles/bench_quality_multimodal.dir/bench_quality_multimodal.cc.o"
  "CMakeFiles/bench_quality_multimodal.dir/bench_quality_multimodal.cc.o.d"
  "bench_quality_multimodal"
  "bench_quality_multimodal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quality_multimodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
