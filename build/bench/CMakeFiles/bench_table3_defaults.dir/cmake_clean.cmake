file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_defaults.dir/bench_table3_defaults.cc.o"
  "CMakeFiles/bench_table3_defaults.dir/bench_table3_defaults.cc.o.d"
  "bench_table3_defaults"
  "bench_table3_defaults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_defaults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
