# Empty compiler generated dependencies file for bench_fig6_mix.
# This may be replaced when dependencies are built.
