# Empty dependencies file for bench_fig16_concurrent.
# This may be replaced when dependencies are built.
