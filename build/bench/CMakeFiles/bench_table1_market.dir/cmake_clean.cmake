file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_market.dir/bench_table1_market.cc.o"
  "CMakeFiles/bench_table1_market.dir/bench_table1_market.cc.o.d"
  "bench_table1_market"
  "bench_table1_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
