# Empty dependencies file for bench_fig11_topk.
# This may be replaced when dependencies are built.
