file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_update_sens.dir/bench_fig14_update_sens.cc.o"
  "CMakeFiles/bench_fig14_update_sens.dir/bench_fig14_update_sens.cc.o.d"
  "bench_fig14_update_sens"
  "bench_fig14_update_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_update_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
