file(REMOVE_RECURSE
  "CMakeFiles/bench_quality_metadata.dir/bench_quality_metadata.cc.o"
  "CMakeFiles/bench_quality_metadata.dir/bench_quality_metadata.cc.o.d"
  "bench_quality_metadata"
  "bench_quality_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quality_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
