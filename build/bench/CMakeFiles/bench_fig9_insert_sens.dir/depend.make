# Empty dependencies file for bench_fig9_insert_sens.
# This may be replaced when dependencies are built.
