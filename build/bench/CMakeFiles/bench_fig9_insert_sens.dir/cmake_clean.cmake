file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_insert_sens.dir/bench_fig9_insert_sens.cc.o"
  "CMakeFiles/bench_fig9_insert_sens.dir/bench_fig9_insert_sens.cc.o.d"
  "bench_fig9_insert_sens"
  "bench_fig9_insert_sens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_insert_sens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
