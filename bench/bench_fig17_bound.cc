// Figure 17: effectiveness of the top-k upper bound — mean query latency
// versus the number of audio streams, with the bound enabled and
// disabled. The paper's finding: with the bound, query time stays nearly
// flat as the index grows.
//
// Extended with the bound-mode dimension: kSnapshot prunes with the
// component-local stored maxima (fast but stale under post-seal updates),
// kGlobalPop with sound live ceilings. The per-component live-freshness
// ceilings exist so that the sound mode prices in at ~the component-local
// cost instead of the 2.5x regression a table-global freshness ceiling
// caused; the "global/snap" column is that acceptance ratio.
//
// Skip headers (Bloom + summary bounds + admission screen) are on in
// every bound mode and off in the nobound mode only as a side effect of
// the screen being gated on use_bound; the per-mode skipped/visited/
// screened counters land in BENCH_fig17_bound.json alongside latency.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

struct Mode {
  const char* name;
  bool use_bound;
  core::BoundMode bound_mode;
};

constexpr Mode kModes[] = {
    {"snapshot", true, core::BoundMode::kSnapshot},
    {"globalpop", true, core::BoundMode::kGlobalPop},
    {"nobound", false, core::BoundMode::kSnapshot},
};
constexpr std::size_t kNumModes = sizeof(kModes) / sizeof(kModes[0]);

struct Row {
  double mean_micros[kNumModes] = {};
  core::QueryStats stats[kNumModes] = {};  // summed over the pass
};

Row Run(std::size_t num_streams, std::size_t num_queries) {
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));
  Row row{};
  for (std::size_t m = 0; m < kNumModes; ++m) {
    auto config = bench::DefaultIndexConfig();
    config.use_bound = kModes[m].use_bound;
    config.bound_mode = kModes[m].bound_mode;
    core::RtsiIndex index(config);
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, num_streams, clock);

    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    LatencyStats stats;
    Stopwatch watch;
    core::QueryStats& sum = row.stats[m];
    for (std::size_t i = 0; i < num_queries; ++i) {
      const auto q = gen.Next();
      core::QueryStats qs;
      watch.Restart();
      index.Query(q, 10, clock.Now(), &qs);
      stats.Record(watch.ElapsedMicros());
      sum.components_visited += qs.components_visited;
      sum.components_pruned += qs.components_pruned;
      sum.components_skipped += qs.components_skipped;
      sum.bloom_false_positives += qs.bloom_false_positives;
      sum.candidates_screened += qs.candidates_screened;
      sum.candidates_scored += qs.candidates_scored;
    }
    row.mean_micros[m] = stats.mean_micros();
  }
  return row;
}

}  // namespace

int main() {
  const std::size_t num_queries = bench::Scaled(1000);
  workload::ReportTable table(
      "Figure 17: query latency by bound mode (snapshot = stale "
      "component-local, globalpop = sound live ceilings)",
      {"#streams", "snapshot", "globalpop", "nobound", "global/snap",
       "speedup vs nobound", "pruned (snap/global)", "skipped/visited"});

  bench::JsonReport report("fig17_bound");
  report.Field("scale", bench::Scale());
  report.Field("queries_per_point", static_cast<double>(num_queries));
  report.Field("k", 10.0);

  for (const std::size_t base : {1000, 2000, 4000, 8000}) {
    const std::size_t n = bench::Scaled(base);
    const Row row = Run(n, num_queries);
    table.AddRow(
        {std::to_string(n), workload::FormatMicros(row.mean_micros[0]),
         workload::FormatMicros(row.mean_micros[1]),
         workload::FormatMicros(row.mean_micros[2]),
         workload::FormatDouble(row.mean_micros[1] / row.mean_micros[0], 2) +
             "x",
         workload::FormatDouble(row.mean_micros[2] / row.mean_micros[1], 2) +
             "x",
         std::to_string(row.stats[0].components_pruned) + "/" +
             std::to_string(row.stats[1].components_pruned),
         std::to_string(row.stats[1].components_skipped) + "/" +
             std::to_string(row.stats[1].components_visited)});

    for (std::size_t m = 0; m < kNumModes; ++m) {
      auto& json_row = report.AddRow();
      json_row.Field("streams", static_cast<double>(n))
          .Field("mode", kModes[m].name)
          .Field("mean_us", row.mean_micros[m])
          .Field("components_visited",
                 static_cast<double>(row.stats[m].components_visited))
          .Field("components_pruned",
                 static_cast<double>(row.stats[m].components_pruned))
          .Field("components_skipped",
                 static_cast<double>(row.stats[m].components_skipped))
          .Field("bloom_false_positives",
                 static_cast<double>(row.stats[m].bloom_false_positives))
          .Field("candidates_screened",
                 static_cast<double>(row.stats[m].candidates_screened))
          .Field("candidates_scored",
                 static_cast<double>(row.stats[m].candidates_scored));
    }
  }
  table.Print();
  report.Write("BENCH_fig17_bound.json");
  return 0;
}
