// Figure 17: effectiveness of the top-k upper bound — mean query latency
// versus the number of audio streams, with the bound enabled and
// disabled. The paper's finding: with the bound, query time stays nearly
// flat as the index grows.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

struct Row {
  double mean_with_bound;
  double mean_without_bound;
  std::size_t pruned_components;
};

Row Run(std::size_t num_streams, std::size_t num_queries) {
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));
  Row row{};
  for (const bool use_bound : {true, false}) {
    auto config = bench::DefaultIndexConfig();
    config.use_bound = use_bound;
    core::RtsiIndex index(config);
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, num_streams, clock);

    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    LatencyStats stats;
    Stopwatch watch;
    std::size_t pruned = 0;
    for (std::size_t i = 0; i < num_queries; ++i) {
      const auto q = gen.Next();
      core::QueryStats qs;
      watch.Restart();
      index.Query(q, 10, clock.Now(), &qs);
      stats.Record(watch.ElapsedMicros());
      pruned += qs.components_pruned;
    }
    if (use_bound) {
      row.mean_with_bound = stats.mean_micros();
      row.pruned_components = pruned;
    } else {
      row.mean_without_bound = stats.mean_micros();
    }
  }
  return row;
}

}  // namespace

int main() {
  const std::size_t num_queries = bench::Scaled(1000);
  workload::ReportTable table(
      "Figure 17: query latency with/without the top-k bound",
      {"#streams", "with bound", "without bound", "speedup",
       "components pruned"});
  for (const std::size_t base : {1000, 2000, 4000, 8000}) {
    const std::size_t n = bench::Scaled(base);
    const Row row = Run(n, num_queries);
    table.AddRow(
        {std::to_string(n), workload::FormatMicros(row.mean_with_bound),
         workload::FormatMicros(row.mean_without_bound),
         workload::FormatDouble(
             row.mean_without_bound / row.mean_with_bound, 2) + "x",
         std::to_string(row.pruned_components)});
  }
  table.Print();
  return 0;
}
