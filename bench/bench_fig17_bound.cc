// Figure 17: effectiveness of the top-k upper bound — mean query latency
// versus the number of audio streams, with the bound enabled and
// disabled. The paper's finding: with the bound, query time stays nearly
// flat as the index grows.
//
// Extended with the bound-mode dimension: kSnapshot prunes with the
// component-local stored maxima (fast but stale under post-seal updates),
// kGlobalPop with sound live ceilings. The per-component live-freshness
// ceilings exist so that the sound mode prices in at ~the component-local
// cost instead of the 2.5x regression a table-global freshness ceiling
// caused; the "global/snap" column is that acceptance ratio.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

struct Mode {
  const char* name;
  bool use_bound;
  core::BoundMode bound_mode;
};

constexpr Mode kModes[] = {
    {"snapshot", true, core::BoundMode::kSnapshot},
    {"globalpop", true, core::BoundMode::kGlobalPop},
    {"nobound", false, core::BoundMode::kSnapshot},
};
constexpr std::size_t kNumModes = sizeof(kModes) / sizeof(kModes[0]);

struct Row {
  double mean_micros[kNumModes] = {};
  std::size_t pruned_components[kNumModes] = {};
};

Row Run(std::size_t num_streams, std::size_t num_queries) {
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));
  Row row{};
  for (std::size_t m = 0; m < kNumModes; ++m) {
    auto config = bench::DefaultIndexConfig();
    config.use_bound = kModes[m].use_bound;
    config.bound_mode = kModes[m].bound_mode;
    core::RtsiIndex index(config);
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, num_streams, clock);

    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    LatencyStats stats;
    Stopwatch watch;
    std::size_t pruned = 0;
    for (std::size_t i = 0; i < num_queries; ++i) {
      const auto q = gen.Next();
      core::QueryStats qs;
      watch.Restart();
      index.Query(q, 10, clock.Now(), &qs);
      stats.Record(watch.ElapsedMicros());
      pruned += qs.components_pruned;
    }
    row.mean_micros[m] = stats.mean_micros();
    row.pruned_components[m] = pruned;
  }
  return row;
}

}  // namespace

int main() {
  const std::size_t num_queries = bench::Scaled(1000);
  workload::ReportTable table(
      "Figure 17: query latency by bound mode (snapshot = stale "
      "component-local, globalpop = sound live ceilings)",
      {"#streams", "snapshot", "globalpop", "nobound", "global/snap",
       "speedup vs nobound", "pruned (snap/global)"});
  for (const std::size_t base : {1000, 2000, 4000, 8000}) {
    const std::size_t n = bench::Scaled(base);
    const Row row = Run(n, num_queries);
    table.AddRow(
        {std::to_string(n), workload::FormatMicros(row.mean_micros[0]),
         workload::FormatMicros(row.mean_micros[1]),
         workload::FormatMicros(row.mean_micros[2]),
         workload::FormatDouble(row.mean_micros[1] / row.mean_micros[0], 2) +
             "x",
         workload::FormatDouble(row.mean_micros[2] / row.mean_micros[1], 2) +
             "x",
         std::to_string(row.pruned_components[0]) + "/" +
             std::to_string(row.pruned_components[1])});
  }
  table.Print();
  return 0;
}
