// Figure 5: overall normalized improvement of RTSI over LSII across
// initialization, insertion, query, update and memory consumption.
//
// normalized improvement = (metric_LSII - metric_RTSI) / metric_LSII,
// i.e. the fraction of LSII's cost that RTSI saves (higher is better;
// positive means RTSI wins).
//
// Insertion is reported twice: the median per-window latency (the
// real-time path: posting appends + hash-table updates) and the total
// including merge cascades. Merges run the same LSM machinery in both
// systems, so the total converges while the per-window path shows the
// hash-table difference.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

struct Metrics {
  double init_micros = 0;
  double insert_median_micros = 0;
  double insert_total_micros = 0;
  double query_micros = 0;
  double update_micros = 0;
  double memory_bytes = 0;
};

Metrics RunAll(const std::string& name) {
  using namespace rtsi;
  // Sized past the big-table cache crossover (~10k streams on this
  // container); the paper's corpus is 80k streams. See EXPERIMENTS.md.
  const std::size_t init_streams = bench::Scaled(12000);
  const std::size_t insert_streams = bench::Scaled(600);
  const std::size_t num_queries = bench::Scaled(2000);
  const std::size_t num_updates = bench::Scaled(50000);

  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams + insert_streams));
  auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
  SimulatedClock clock;

  Metrics m;
  const auto init =
      workload::InitializeIndex(*index, corpus, 0, init_streams, clock);
  m.init_micros = init.elapsed_micros;

  const auto inserts = workload::MeasureInsertions(
      *index, corpus, init_streams, insert_streams, clock);
  m.insert_median_micros = inserts.PercentileMicros(0.5);
  m.insert_total_micros = inserts.sum_micros();

  workload::QueryGenerator gen(
      rtsi::bench::DefaultQueryConfig(corpus.vocab_size()));
  const auto queries =
      workload::MeasureQueries(*index, gen, num_queries, 10, clock);
  m.query_micros = queries.sum_micros();

  const auto updates = workload::MeasureUpdates(
      *index, num_updates, init_streams + insert_streams, clock);
  m.update_micros = updates.sum_micros();

  m.memory_bytes = static_cast<double>(index->MemoryBytes());
  return m;
}

std::string Improvement(double lsii, double rtsi) {
  if (lsii <= 0.0) return "n/a";
  return rtsi::workload::FormatDouble(100.0 * (lsii - rtsi) / lsii, 1) + "%";
}

}  // namespace

int main() {
  std::printf("Figure 5: running RTSI...\n");
  const Metrics rtsi_m = RunAll("RTSI");
  std::printf("Figure 5: running LSII...\n");
  const Metrics lsii_m = RunAll("LSII");

  rtsi::workload::ReportTable table(
      "Figure 5: normalized improvement of RTSI over LSII",
      {"operation", "RTSI", "LSII", "normalized improvement"});
  using rtsi::workload::FormatBytes;
  using rtsi::workload::FormatMicros;
  table.AddRow({"initialization", FormatMicros(rtsi_m.init_micros),
                FormatMicros(lsii_m.init_micros),
                Improvement(lsii_m.init_micros, rtsi_m.init_micros)});
  table.AddRow({"insertion (median/window)",
                FormatMicros(rtsi_m.insert_median_micros),
                FormatMicros(lsii_m.insert_median_micros),
                Improvement(lsii_m.insert_median_micros,
                            rtsi_m.insert_median_micros)});
  table.AddRow({"insertion (total incl merges)",
                FormatMicros(rtsi_m.insert_total_micros),
                FormatMicros(lsii_m.insert_total_micros),
                Improvement(lsii_m.insert_total_micros,
                            rtsi_m.insert_total_micros)});
  table.AddRow({"query", FormatMicros(rtsi_m.query_micros),
                FormatMicros(lsii_m.query_micros),
                Improvement(lsii_m.query_micros, rtsi_m.query_micros)});
  table.AddRow({"update", FormatMicros(rtsi_m.update_micros),
                FormatMicros(lsii_m.update_micros),
                Improvement(lsii_m.update_micros, rtsi_m.update_micros)});
  table.AddRow(
      {"memory", FormatBytes(static_cast<std::size_t>(rtsi_m.memory_bytes)),
       FormatBytes(static_cast<std::size_t>(lsii_m.memory_bytes)),
       Improvement(lsii_m.memory_bytes, rtsi_m.memory_bytes)});
  table.Print();
  return 0;
}
