// Multi-modal search quality: recall@10 of the text tree, the sound
// (phonetic-lattice) tree, and the fused ranking, as the simulated ASR's
// word error rate grows. This quantifies the paper's motivation for
// multi-modal indexing: transcription errors erode text search, while
// lattice units degrade differently, and fusion recovers most losses.

#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "service/search_service.h"
#include "workload/corpus.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

struct Recall {
  double text = 0;
  double sound = 0;
  double fused = 0;
};

Recall Measure(double wer, const workload::SyntheticCorpus& corpus,
               std::size_t num_streams, int num_trials) {
  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.index.lsm.delta = 64 * 1024;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  config.ingestion.transcriber.word_error_rate = wer;
  service::SearchService service(config, &clock);

  for (StreamId s = 0; s < num_streams; ++s) {
    const int windows = std::min(corpus.NumWindows(s), 4);
    for (int w = 0; w < windows; ++w) {
      service.IngestWindow(s, corpus.WindowWords(s, w),
                           w + 1 < windows);
    }
    service.FinishStream(s);
    clock.Advance(kMicrosPerSecond);
  }
  clock.Advance(kMicrosPerMinute);

  Rng rng(4242);
  int text_hits = 0, sound_hits = 0, fused_hits = 0;
  for (int trial = 0; trial < num_trials; ++trial) {
    const StreamId target = rng.NextUint64(num_streams);
    const auto words = corpus.WindowWords(target, 0);
    // The two rarest ground-truth words of the window (highest Zipf rank)
    // form the query — the realistic "I heard them say X Y" scenario.
    std::vector<std::string> sorted_words = words;
    std::sort(sorted_words.begin(), sorted_words.end(),
              [](const std::string& a, const std::string& b) {
                return std::stoul(a.substr(1)) > std::stoul(b.substr(1));
              });
    sorted_words.erase(
        std::unique(sorted_words.begin(), sorted_words.end()),
        sorted_words.end());
    if (sorted_words.size() < 2) continue;
    const std::string query = sorted_words[0] + " " + sorted_words[1];

    const auto processed =
        service.query_processor().ProcessKeywords(query, rng);
    const Timestamp now = clock.Now();
    auto contains = [&](const std::vector<core::ScoredStream>& results) {
      for (const auto& r : results) {
        if (r.stream == target) return true;
      }
      return false;
    };
    if (contains(service.text_index().Query(processed.text_terms, 10, now))) {
      ++text_hits;
    }
    if (contains(
            service.sound_index().Query(processed.sound_terms, 10, now))) {
      ++sound_hits;
    }
    const auto fused = service.SearchKeywords(query, 10);
    for (const auto& r : fused) {
      if (r.stream == target) {
        ++fused_hits;
        break;
      }
    }
  }
  Recall recall;
  recall.text = 100.0 * text_hits / num_trials;
  recall.sound = 100.0 * sound_hits / num_trials;
  recall.fused = 100.0 * fused_hits / num_trials;
  return recall;
}

}  // namespace

int main() {
  const std::size_t num_streams = bench::Scaled(300);
  const int num_trials = 200;
  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = num_streams;
  corpus_config.vocab_size = 5000;
  corpus_config.words_per_window = 60;
  corpus_config.avg_windows_per_stream = 4;
  corpus_config.min_windows_per_stream = 2;
  const workload::SyntheticCorpus corpus(corpus_config);

  workload::ReportTable table(
      "Multi-modal quality: recall@10 vs ASR word error rate (" +
          std::to_string(num_streams) + " streams, " +
          std::to_string(num_trials) + " queries)",
      {"WER", "text recall", "sound recall", "fused recall"});
  for (const double wer : {0.0, 0.1, 0.2, 0.4}) {
    const Recall r = Measure(wer, corpus, num_streams, num_trials);
    table.AddRow({workload::FormatDouble(100.0 * wer, 0) + "%",
                  workload::FormatDouble(r.text, 1) + "%",
                  workload::FormatDouble(r.sound, 1) + "%",
                  workload::FormatDouble(r.fused, 1) + "%"});
  }
  table.Print();
  return 0;
}
