// Figure 8: insertion cost versus the number of insertions (window
// batches), RTSI vs LSII, on top of an initialized index.
//
// Extended with the live-arena A/B: every insertion batch is measured
// against two identically-fed RTSI indices, one with the per-window
// arenas on (the default) and one allocating every live posting and
// counter node from the global heap. The arena is a pure allocation
// optimization — the two indices must answer every query bit-identically
// — so a post-insert query audit folds per-query result checksums on
// both sides and the bench exits nonzero on any divergence. Emits
// BENCH_fig8_insert.json so the live ingest path has a tracked perf
// trajectory (throughput, allocations-per-insert).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "common/window_arena.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t ResultChecksum(
    const std::vector<rtsi::core::ScoredStream>& results) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : results) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.score));
    std::memcpy(&bits, &r.score, sizeof(bits));
    h = Mix(h, r.stream);
    h = Mix(h, bits);
  }
  return h;
}

struct InsertPass {
  double total_us = 0.0;
  double median_us = 0.0;
  double inserts_per_sec = 0.0;
  double requests_per_insert = 0.0;  // Arena allocation requests.
  double upstream_per_insert = 0.0;  // Requests that reached operator new.
};

InsertPass MeasureArenaPass(rtsi::core::RtsiIndex& index,
                            const rtsi::workload::SyntheticCorpus& corpus,
                            rtsi::StreamId first, std::size_t count,
                            rtsi::SimulatedClock& clock) {
  using namespace rtsi;
  const WindowArena::Stats before = index.LiveArenaStats();
  const auto stats =
      workload::MeasureInsertions(index, corpus, first, count, clock);
  const WindowArena::Stats after = index.LiveArenaStats();
  InsertPass pass;
  pass.total_us = stats.sum_micros();
  pass.median_us = stats.PercentileMicros(0.5);
  pass.inserts_per_sec =
      pass.total_us > 0.0 ? stats.count() * 1e6 / pass.total_us : 0.0;
  if (stats.count() > 0) {
    pass.requests_per_insert =
        static_cast<double>(after.requests - before.requests) / stats.count();
    pass.upstream_per_insert =
        static_cast<double>(after.upstream_allocations -
                            before.upstream_allocations) /
        stats.count();
  }
  return pass;
}

}  // namespace

int main() {
  using namespace rtsi;
  const std::size_t init_streams = bench::Scaled(2000);

  workload::ReportTable table(
      "Figure 8: insertion cost vs #inserted streams (on top of " +
          std::to_string(init_streams) +
          " initial streams; arena = live WindowArena A/B)",
      {"#new streams", "RTSI arena", "RTSI heap", "gain", "LSII total",
       "ins/s arena", "alloc/ins", "match"});

  bench::JsonReport report("fig8_insert");
  report.Field("scale", bench::Scale());
  report.Field("init_streams", static_cast<double>(init_streams));

  bool all_match = true;
  for (const std::size_t base : {250, 500, 1000, 2000}) {
    const std::size_t n = bench::Scaled(base);
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(init_streams + n));

    // Two identically-fed RTSI indices: arenas on vs global heap.
    core::RtsiConfig arena_config = bench::DefaultIndexConfig();
    arena_config.use_arena = true;
    core::RtsiConfig heap_config = bench::DefaultIndexConfig();
    heap_config.use_arena = false;
    core::RtsiIndex arena_index(arena_config);
    core::RtsiIndex heap_index(heap_config);
    SimulatedClock clock_arena, clock_heap;
    workload::InitializeIndex(arena_index, corpus, 0, init_streams,
                              clock_arena);
    workload::InitializeIndex(heap_index, corpus, 0, init_streams,
                              clock_heap);
    const InsertPass arena_pass =
        MeasureArenaPass(arena_index, corpus, init_streams, n, clock_arena);
    const InsertPass heap_pass =
        MeasureArenaPass(heap_index, corpus, init_streams, n, clock_heap);

    // Bit-identity audit: the same query stream against both indices must
    // fold to the same checksum, result for result.
    auto query_config = bench::DefaultQueryConfig(corpus.vocab_size());
    workload::QueryGenerator gen_a(query_config), gen_b(query_config);
    const Timestamp now = clock_arena.Now();
    bool match = true;
    std::uint64_t checksum = 1469598103934665603ull;
    for (int q = 0; q < 200; ++q) {
      const auto query_a = gen_a.Next();
      const auto query_b = gen_b.Next();
      const std::uint64_t sum_a =
          ResultChecksum(arena_index.Query(query_a, 10, now, nullptr));
      const std::uint64_t sum_b =
          ResultChecksum(heap_index.Query(query_b, 10, now, nullptr));
      checksum = Mix(checksum, sum_a);
      if (sum_a != sum_b) {
        std::fprintf(stderr,
                     "DIVERGENCE streams=%zu query=%d "
                     "(arena=%016llx heap=%016llx)\n",
                     n, q, static_cast<unsigned long long>(sum_a),
                     static_cast<unsigned long long>(sum_b));
        match = false;
      }
    }
    all_match = all_match && match;

    // LSII reference series (the figure's original comparison).
    auto lsii_index = bench::MakeIndex("LSII", bench::DefaultIndexConfig());
    SimulatedClock clock_lsii;
    workload::InitializeIndex(*lsii_index, corpus, 0, init_streams,
                              clock_lsii);
    const auto lsii_stats = workload::MeasureInsertions(
        *lsii_index, corpus, init_streams, n, clock_lsii);

    const double gain =
        heap_pass.inserts_per_sec > 0.0
            ? (arena_pass.inserts_per_sec - heap_pass.inserts_per_sec) /
                  heap_pass.inserts_per_sec
            : 0.0;
    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(checksum));
    table.AddRow({std::to_string(n),
                  workload::FormatMicros(arena_pass.total_us),
                  workload::FormatMicros(heap_pass.total_us),
                  workload::FormatDouble(gain * 100.0, 1) + "%",
                  workload::FormatMicros(lsii_stats.sum_micros()),
                  workload::FormatDouble(arena_pass.inserts_per_sec, 0),
                  workload::FormatDouble(arena_pass.requests_per_insert, 1),
                  match ? "ok" : "MISMATCH"});

    auto& row = report.AddRow();
    row.Field("streams", static_cast<double>(n))
        .Field("total_us_arena", arena_pass.total_us)
        .Field("total_us_heap", heap_pass.total_us)
        .Field("median_us_arena", arena_pass.median_us)
        .Field("median_us_heap", heap_pass.median_us)
        .Field("inserts_per_sec_arena", arena_pass.inserts_per_sec)
        .Field("inserts_per_sec_heap", heap_pass.inserts_per_sec)
        .Field("throughput_gain", gain)
        .Field("arena_requests_per_insert", arena_pass.requests_per_insert)
        .Field("arena_upstream_per_insert", arena_pass.upstream_per_insert)
        .Field("lsii_total_us", lsii_stats.sum_micros())
        .Field("checksum", checksum_hex)
        .Field("results_match", match ? "yes" : "NO");
  }
  table.Print();
  report.Write("BENCH_fig8_insert.json");
  if (!all_match) {
    std::fprintf(stderr, "error: arena on/off results diverged\n");
    return 1;
  }
  return 0;
}
