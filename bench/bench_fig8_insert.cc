// Figure 8: insertion cost versus the number of insertions (window
// batches), RTSI vs LSII, on top of an initialized index.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t init_streams = bench::Scaled(2000);

  workload::ReportTable table(
      "Figure 8: insertion cost vs #inserted streams (on top of " +
          std::to_string(init_streams) + " initial streams)",
      {"#new streams", "RTSI total", "RTSI median", "LSII total",
       "LSII median"});

  for (const std::size_t base : {250, 500, 1000, 2000}) {
    const std::size_t n = bench::Scaled(base);
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(init_streams + n));

    double total[2], median[2];
    int slot = 0;
    for (const char* name : {"RTSI", "LSII"}) {
      auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
      SimulatedClock clock;
      workload::InitializeIndex(*index, corpus, 0, init_streams, clock);
      const auto stats =
          workload::MeasureInsertions(*index, corpus, init_streams, n, clock);
      total[slot] = stats.sum_micros();
      median[slot] = stats.PercentileMicros(0.5);
      ++slot;
    }
    table.AddRow({std::to_string(n), workload::FormatMicros(total[0]),
                  workload::FormatMicros(median[0]),
                  workload::FormatMicros(total[1]),
                  workload::FormatMicros(median[1])});
  }
  table.Print();
  return 0;
}
