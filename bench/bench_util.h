// Shared setup for the experiment harness binaries.
//
// Every bench prints the rows/series of one paper table or figure. The
// absolute workload sizes are scaled to a laptop-class container via
// RTSI_BENCH_SCALE (default 1.0 = the sizes hard-coded here; the paper's
// 80k-stream corpus corresponds to roughly scale 10 and needs a
// correspondingly large machine).

#ifndef RTSI_BENCH_BENCH_UTIL_H_
#define RTSI_BENCH_BENCH_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/lsii_index.h"
#include "core/rtsi_index.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"

namespace rtsi::bench {

inline double Scale() {
  const char* env = std::getenv("RTSI_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline std::size_t Scaled(std::size_t base) {
  return static_cast<std::size_t>(base * Scale());
}

/// Whether wall-clock speedup is measurable on this host. On one CPU
/// every thread setting time-slices the same core, so a speedup ratio is
/// noise around 1.0 — benches must emit "parallelism": "unavailable"
/// instead of a number that downstream tracking would mistake for a
/// regression or a win.
inline bool ParallelismMeasurable() {
  return std::thread::hardware_concurrency() > 1;
}

/// Corpus statistics mirror the Ximalaya dataset's shape at reduced size.
inline workload::CorpusConfig DefaultCorpusConfig(std::size_t num_streams) {
  workload::CorpusConfig config;
  config.num_streams = num_streams;
  config.vocab_size = 20'000;
  config.zipf_skew = 1.0;
  config.avg_windows_per_stream = 8;
  config.min_windows_per_stream = 3;
  config.words_per_window = 80;
  return config;
}

/// Table III defaults (our documented choices; see DESIGN.md §4).
inline core::RtsiConfig DefaultIndexConfig() {
  core::RtsiConfig config;
  config.lsm.delta = 64 * 1024;
  config.lsm.rho = 4.0;
  config.lsm.compress = false;
  config.lsm.num_l0_shards = 16;
  config.weights.pop = 0.3;
  config.weights.rel = 0.5;
  config.weights.frsh = 0.2;
  config.freshness_tau_seconds = 6.0 * 3600.0;
  config.use_bound = true;
  config.default_k = 10;
  return config;
}

inline std::unique_ptr<core::SearchIndex> MakeIndex(
    const std::string& name, const core::RtsiConfig& config) {
  if (name == "RTSI") {
    return std::make_unique<core::RtsiIndex>(config);
  }
  return std::make_unique<baseline::LsiiIndex>(config);
}

inline workload::QueryGenConfig DefaultQueryConfig(std::size_t vocab_size) {
  workload::QueryGenConfig config;
  config.vocab_size = vocab_size;
  config.zipf_skew = 0.8;
  config.min_terms = 2;
  config.max_terms = 2;
  return config;
}

/// Minimal machine-readable output for benches that track a perf
/// trajectory across PRs: a flat JSON object of scalar fields plus one
/// "rows" array of flat objects. Field order is preserved. Every bench
/// emitting JSON writes BENCH_<name>.json through this writer so the
/// files share one schema: {"bench": ..., <meta fields>, "rows": [...]}.
class JsonReport {
 public:
  explicit JsonReport(const std::string& bench_name) {
    Field("bench", bench_name);
  }

  JsonReport& Field(const std::string& key, const std::string& value) {
    meta_.push_back("\"" + key + "\": \"" + value + "\"");
    return *this;
  }
  JsonReport& Field(const std::string& key, double value) {
    meta_.push_back("\"" + key + "\": " + Number(value));
    return *this;
  }

  class Row {
   public:
    Row& Field(const std::string& key, const std::string& value) {
      fields_.push_back("\"" + key + "\": \"" + value + "\"");
      return *this;
    }
    Row& Field(const std::string& key, double value) {
      fields_.push_back("\"" + key + "\": " + Number(value));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::string> fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes "BENCH_<name>.json"-style output to `path`.
  void Write(const std::string& path) const {
    std::ofstream out(path);
    out << "{\n";
    for (const std::string& field : meta_) out << "  " << field << ",\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {";
      const auto& fields = rows_[i].fields_;
      for (std::size_t j = 0; j < fields.size(); ++j) {
        out << fields[j] << (j + 1 < fields.size() ? ", " : "");
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }

 private:
  static std::string Number(double value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  std::vector<std::string> meta_;
  std::vector<Row> rows_;
};

/// A committed BENCH_*.json (bench/baselines/) read back for the
/// before/after-pipeline comparison. Only parses the flat two-level
/// shape JsonReport writes: scalar meta fields plus one "rows" array of
/// flat objects. All values come back as strings; use Num/Str.
struct BaselineReport {
  bool loaded = false;
  std::map<std::string, std::string> meta;
  std::vector<std::map<std::string, std::string>> rows;

  static double Num(const std::map<std::string, std::string>& object,
                    const std::string& key, double fallback = 0.0) {
    const auto it = object.find(key);
    return it == object.end() ? fallback : std::atof(it->second.c_str());
  }
  static std::string Str(const std::map<std::string, std::string>& object,
                         const std::string& key) {
    const auto it = object.find(key);
    return it == object.end() ? std::string() : it->second;
  }
  double MetaNum(const std::string& key, double fallback = 0.0) const {
    return Num(meta, key, fallback);
  }

  /// The first row where every (key, numeric value) of `match` agrees,
  /// or null. Benches key rows on their sweep variables (mix, queries,
  /// streams, query_threads, ...).
  const std::map<std::string, std::string>* FindRow(
      const std::vector<std::pair<std::string, double>>& match) const {
    for (const auto& row : rows) {
      bool ok = true;
      for (const auto& [key, value] : match) {
        if (Num(row, key, value - 1.0) != value) {
          ok = false;
          break;
        }
      }
      if (ok) return &row;
    }
    return nullptr;
  }
};

namespace internal {

/// Key/value pairs of one flat JSON object body (no nested objects).
inline std::map<std::string, std::string> ParseFlatObject(
    const std::string& text) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  while (true) {
    const std::size_t key_open = text.find('"', i);
    if (key_open == std::string::npos) break;
    const std::size_t key_close = text.find('"', key_open + 1);
    if (key_close == std::string::npos) break;
    const std::string key =
        text.substr(key_open + 1, key_close - key_open - 1);
    std::size_t v = text.find(':', key_close);
    if (v == std::string::npos) break;
    ++v;
    while (v < text.size() &&
           std::isspace(static_cast<unsigned char>(text[v]))) {
      ++v;
    }
    if (v >= text.size()) break;
    if (text[v] == '"') {
      const std::size_t value_close = text.find('"', v + 1);
      if (value_close == std::string::npos) break;
      out[key] = text.substr(v + 1, value_close - v - 1);
      i = value_close + 1;
    } else {
      std::size_t value_end = v;
      while (value_end < text.size() && text[value_end] != ',' &&
             text[value_end] != '}' && text[value_end] != '\n') {
        ++value_end;
      }
      std::string value = text.substr(v, value_end - v);
      while (!value.empty() &&
             std::isspace(static_cast<unsigned char>(value.back()))) {
        value.pop_back();
      }
      out[key] = value;
      i = value_end;
    }
  }
  return out;
}

}  // namespace internal

/// Loads bench/baselines/<name>; `loaded` stays false when the file is
/// absent (benches then skip the comparison columns, they never fail).
inline BaselineReport LoadBaseline(const std::string& name) {
  BaselineReport report;
#ifdef RTSI_BENCH_BASELINE_DIR
  std::ifstream in(std::string(RTSI_BENCH_BASELINE_DIR) + "/" + name);
  if (!in) return report;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::size_t rows_at = text.find("\"rows\"");
  if (rows_at == std::string::npos) return report;
  report.meta = internal::ParseFlatObject(text.substr(0, rows_at));
  const std::size_t array_end = text.rfind(']');
  std::size_t i = text.find('[', rows_at);
  while (i != std::string::npos && array_end != std::string::npos) {
    const std::size_t open = text.find('{', i);
    if (open == std::string::npos || open > array_end) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    report.rows.push_back(
        internal::ParseFlatObject(text.substr(open + 1, close - open - 1)));
    i = close + 1;
  }
  report.loaded = true;
#else
  (void)name;
#endif
  return report;
}

/// The committed-baseline latency gate (see bench/baselines/README.md):
/// drift is always printed; the exit-nonzero enforcement is opt-in
/// because wall-clock baselines only transfer within one machine class.
inline bool LatencyGateEnforced() {
  const char* env = std::getenv("RTSI_BENCH_GATE_LATENCY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace rtsi::bench

#endif  // RTSI_BENCH_BENCH_UTIL_H_
