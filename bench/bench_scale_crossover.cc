// Scalability crossover: median per-window insertion latency (merges
// excluded by using the median) for RTSI vs LSII as the corpus grows.
//
// RTSI's insert path does slightly more bookkeeping per term (live-term
// table + residency counts), but its hash tables stay small; LSII's
// single big table grows with the corpus and its per-term probes fall
// out of cache. The paper's 80k-stream corpus sits far beyond the
// crossover; this bench locates it on the current machine.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  workload::ReportTable table(
      "Insert-path crossover: median per-window latency vs corpus size",
      {"#streams", "RTSI median", "LSII median", "RTSI mem", "LSII mem"});

  for (const std::size_t base : {2000, 4000, 8000, 16000}) {
    const std::size_t n = bench::Scaled(base);
    const std::size_t probe_streams = bench::Scaled(300);
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(n + probe_streams));

    double median[2];
    std::size_t memory[2];
    int slot = 0;
    for (const char* name : {"RTSI", "LSII"}) {
      auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
      SimulatedClock clock;
      workload::InitializeIndex(*index, corpus, 0, n, clock);
      const auto stats = workload::MeasureInsertions(*index, corpus, n,
                                                     probe_streams, clock);
      median[slot] = stats.PercentileMicros(0.5);
      memory[slot] = index->MemoryBytes();
      ++slot;
    }
    table.AddRow({std::to_string(n), workload::FormatMicros(median[0]),
                  workload::FormatMicros(median[1]),
                  workload::FormatBytes(memory[0]),
                  workload::FormatBytes(memory[1])});
  }
  table.Print();
  return 0;
}
