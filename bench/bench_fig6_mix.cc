// Figure 6: correlation of queries and insertions. The index starts with
// an initialized corpus, then a fixed budget of mixed operations runs with
// the query share swept from 10% to 90%. Reported: mean elapsed time per
// query and per insertion, plus the merge count (the paper's latency
// spikes correspond to merge triggers).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t init_streams = bench::Scaled(4000);
  const std::size_t total_ops = bench::Scaled(4000);

  workload::ReportTable table(
      "Figure 6: per-op latency vs query percentage (RTSI, " +
          std::to_string(init_streams) + " initial streams, " +
          std::to_string(total_ops) + " mixed ops)",
      {"query %", "per-query mean", "per-query p99", "per-insert mean",
       "per-insert p99", "merges"});

  for (int query_percent = 10; query_percent <= 90; query_percent += 20) {
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(init_streams + total_ops));
    core::RtsiIndex index(bench::DefaultIndexConfig());
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, init_streams, clock);
    const auto merges_before = index.GetMergeStats().merges;

    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    const auto result = workload::RunMixedWorkload(
        index, corpus, gen, total_ops, query_percent, 10, init_streams,
        clock);
    const auto merges = index.GetMergeStats().merges - merges_before;

    table.AddRow({std::to_string(query_percent),
                  workload::FormatMicros(result.queries.mean_micros()),
                  workload::FormatMicros(result.queries.PercentileMicros(0.99)),
                  workload::FormatMicros(result.insertions.mean_micros()),
                  workload::FormatMicros(
                      result.insertions.PercentileMicros(0.99)),
                  std::to_string(merges)});
  }
  table.Print();
  std::printf("\nPaper shape: per-query time stays stable across the sweep;"
              "\nper-insertion mean is small with p99 spikes at merges.\n");
  return 0;
}
