// Figure 9: insertion sensitivity — total insertion cost while varying
// delta (the size of I0) and rho (the LSM-tree ratio), RTSI vs LSII.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

struct InsertCost {
  double total_micros;
  double median_micros;
};

InsertCost MeasureWithConfig(const char* name,
                             const core::RtsiConfig& config,
                             const workload::SyntheticCorpus& corpus,
                             std::size_t init_streams,
                             std::size_t new_streams) {
  auto index = bench::MakeIndex(name, config);
  SimulatedClock clock;
  workload::InitializeIndex(*index, corpus, 0, init_streams, clock);
  const auto stats = workload::MeasureInsertions(*index, corpus,
                                                 init_streams, new_streams,
                                                 clock);
  return {stats.sum_micros(), stats.PercentileMicros(0.5)};
}

}  // namespace

int main() {
  const std::size_t init_streams = bench::Scaled(2000);
  const std::size_t new_streams = bench::Scaled(500);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams + new_streams));

  {
    workload::ReportTable table(
        "Figure 9a: insertion cost vs delta (size of I0)",
        {"delta", "RTSI total", "RTSI median", "LSII total",
         "LSII median"});
    for (const std::size_t delta :
         {16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024}) {
      auto config = bench::DefaultIndexConfig();
      config.lsm.delta = delta;
      const InsertCost rtsi_c = MeasureWithConfig("RTSI", config, corpus,
                                                  init_streams, new_streams);
      const InsertCost lsii_c = MeasureWithConfig("LSII", config, corpus,
                                                  init_streams, new_streams);
      table.AddRow({std::to_string(delta / 1024) + "k",
                    workload::FormatMicros(rtsi_c.total_micros),
                    workload::FormatMicros(rtsi_c.median_micros),
                    workload::FormatMicros(lsii_c.total_micros),
                    workload::FormatMicros(lsii_c.median_micros)});
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 9b: insertion cost vs rho (LSM-tree ratio)",
        {"rho", "RTSI total", "RTSI median", "LSII total", "LSII median"});
    for (const double rho : {2.0, 3.0, 4.0, 6.0, 8.0}) {
      auto config = bench::DefaultIndexConfig();
      config.lsm.rho = rho;
      const InsertCost rtsi_c = MeasureWithConfig("RTSI", config, corpus,
                                                  init_streams, new_streams);
      const InsertCost lsii_c = MeasureWithConfig("LSII", config, corpus,
                                                  init_streams, new_streams);
      table.AddRow({workload::FormatDouble(rho, 1),
                    workload::FormatMicros(rtsi_c.total_micros),
                    workload::FormatMicros(rtsi_c.median_micros),
                    workload::FormatMicros(lsii_c.total_micros),
                    workload::FormatMicros(lsii_c.median_micros)});
    }
    table.Print();
  }
  return 0;
}
