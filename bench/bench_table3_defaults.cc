// Table III: the variables of the experiments and their default values.
// (The paper's table is partially garbled in the available text; these are
// the documented defaults of this reproduction — DESIGN.md §4.)

#include <string>

#include "bench_util.h"
#include "workload/report.h"

int main() {
  const auto config = rtsi::bench::DefaultIndexConfig();
  const auto corpus = rtsi::bench::DefaultCorpusConfig(8000);

  rtsi::workload::ReportTable table(
      "Table III: experiment variables and default values",
      {"variable", "default", "meaning"});
  table.AddRow({"delta (size of I0)", std::to_string(config.lsm.delta),
                "postings in I0 before a merge triggers"});
  table.AddRow({"rho (LSM ratio)",
                rtsi::workload::FormatDouble(config.lsm.rho, 1),
                "size ratio between adjacent levels"});
  table.AddRow({"w_p", rtsi::workload::FormatDouble(config.weights.pop, 2),
                "popularity weight (Eq. 1)"});
  table.AddRow({"w_r", rtsi::workload::FormatDouble(config.weights.rel, 2),
                "relevance weight (Eq. 1)"});
  table.AddRow({"w_f", rtsi::workload::FormatDouble(config.weights.frsh, 2),
                "freshness weight (Eq. 1)"});
  table.AddRow({"k", std::to_string(config.default_k), "top-k results"});
  table.AddRow({"freshness tau",
                rtsi::workload::FormatDouble(
                    config.freshness_tau_seconds / 3600.0, 1) + "h",
                "exponential freshness decay scale"});
  table.AddRow({"#streams (bench default)",
                std::to_string(rtsi::bench::Scaled(corpus.num_streams)),
                "corpus size at RTSI_BENCH_SCALE=1"});
  table.AddRow({"vocabulary", std::to_string(corpus.vocab_size),
                "distinct words, Zipf(1.0)"});
  table.AddRow({"window length", "60s",
                "insertion batch = one audio minute"});
  table.AddRow({"words per window", std::to_string(corpus.words_per_window),
                "tokens after stop-word removal"});
  table.AddRow({"windows per stream",
                std::to_string(corpus.avg_windows_per_stream) + " avg",
                "~16 minutes per stream in the paper"});
  table.Print();
  return 0;
}
