// Figure 13: update cost (popularity increments) versus the number of
// updates and the index size, RTSI vs LSII. RTSI touches only the small
// per-stream table; LSII touches the big hash table.
//
// Emits BENCH_fig13_update.json so the update path has a tracked perf
// trajectory. The 13a sweep also carries a live-arena A/B column: updates
// never allocate from the window arenas, so arena-on and arena-off RTSI
// must cost the same — a drift between the two columns is a regression in
// the arena plumbing, not an expected effect. A compaction-policy column
// rides along for the same reason: popularity updates touch the stream
// table, never the sealed runs, so tiered must cost the same as
// geometric — drift means updates grew a dependency on component layout.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;

  bench::JsonReport report("fig13_update");
  report.Field("scale", bench::Scale());

  {
    const std::size_t init_streams = bench::Scaled(4000);
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(init_streams));
    core::RtsiConfig arena_config = bench::DefaultIndexConfig();
    arena_config.use_arena = true;
    core::RtsiConfig heap_config = bench::DefaultIndexConfig();
    heap_config.use_arena = false;
    core::RtsiConfig tiered_config = bench::DefaultIndexConfig();
    tiered_config.lsm.policy = lsm::MergePolicy::kTiered;
    core::RtsiIndex arena_index(arena_config);
    core::RtsiIndex heap_index(heap_config);
    core::RtsiIndex tiered_index(tiered_config);
    auto lsii_index = bench::MakeIndex("LSII", bench::DefaultIndexConfig());
    SimulatedClock clock_a, clock_h, clock_t, clock_b;
    workload::InitializeIndex(arena_index, corpus, 0, init_streams, clock_a);
    workload::InitializeIndex(heap_index, corpus, 0, init_streams, clock_h);
    workload::InitializeIndex(tiered_index, corpus, 0, init_streams,
                              clock_t);
    workload::InitializeIndex(*lsii_index, corpus, 0, init_streams, clock_b);

    workload::ReportTable table(
        "Figure 13a: update cost vs #updates (" +
            std::to_string(init_streams) +
            " streams; arena + policy A/B)",
        {"#updates", "RTSI arena", "RTSI heap", "RTSI tiered",
         "LSII total"});
    for (const std::size_t base : {20000, 50000, 100000, 200000}) {
      const std::size_t n = bench::Scaled(base);
      const auto arena_stats = workload::MeasureUpdates(
          arena_index, n, init_streams, clock_a, /*seed=*/n);
      const auto heap_stats = workload::MeasureUpdates(
          heap_index, n, init_streams, clock_h, /*seed=*/n);
      const auto tiered_stats = workload::MeasureUpdates(
          tiered_index, n, init_streams, clock_t, /*seed=*/n);
      const auto lsii_stats = workload::MeasureUpdates(
          *lsii_index, n, init_streams, clock_b, /*seed=*/n);
      table.AddRow({std::to_string(n),
                    workload::FormatMicros(arena_stats.sum_micros()),
                    workload::FormatMicros(heap_stats.sum_micros()),
                    workload::FormatMicros(tiered_stats.sum_micros()),
                    workload::FormatMicros(lsii_stats.sum_micros())});
      report.AddRow()
          .Field("sweep", "updates")
          .Field("updates", static_cast<double>(n))
          .Field("streams", static_cast<double>(init_streams))
          .Field("total_us_arena", arena_stats.sum_micros())
          .Field("total_us_heap", heap_stats.sum_micros())
          .Field("mean_us_arena", arena_stats.mean_micros())
          .Field("mean_us_heap", heap_stats.mean_micros())
          .Field("total_us_tiered", tiered_stats.sum_micros())
          .Field("mean_us_tiered", tiered_stats.mean_micros())
          .Field("lsii_total_us", lsii_stats.sum_micros());
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 13b: update cost vs index size (100k updates)",
        {"#streams", "RTSI total", "LSII total"});
    for (const std::size_t base : {1000, 2000, 4000, 8000}) {
      const std::size_t n = bench::Scaled(base);
      const std::size_t num_updates = bench::Scaled(100000);
      const workload::SyntheticCorpus corpus(bench::DefaultCorpusConfig(n));

      double totals[2];
      int slot = 0;
      for (const char* name : {"RTSI", "LSII"}) {
        auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
        SimulatedClock clock;
        workload::InitializeIndex(*index, corpus, 0, n, clock);
        totals[slot++] = workload::MeasureUpdates(*index, num_updates, n,
                                                  clock, /*seed=*/n)
                             .sum_micros();
      }
      table.AddRow({std::to_string(n), workload::FormatMicros(totals[0]),
                    workload::FormatMicros(totals[1])});
      report.AddRow()
          .Field("sweep", "index_size")
          .Field("updates", static_cast<double>(num_updates))
          .Field("streams", static_cast<double>(n))
          .Field("total_us_rtsi", totals[0])
          .Field("total_us_lsii", totals[1]);
    }
    table.Print();
  }
  report.Write("BENCH_fig13_update.json");
  return 0;
}
