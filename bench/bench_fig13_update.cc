// Figure 13: update cost (popularity increments) versus the number of
// updates and the index size, RTSI vs LSII. RTSI touches only the small
// per-stream table; LSII touches the big hash table.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;

  {
    const std::size_t init_streams = bench::Scaled(4000);
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(init_streams));
    auto rtsi_index = bench::MakeIndex("RTSI", bench::DefaultIndexConfig());
    auto lsii_index = bench::MakeIndex("LSII", bench::DefaultIndexConfig());
    SimulatedClock clock_a, clock_b;
    workload::InitializeIndex(*rtsi_index, corpus, 0, init_streams, clock_a);
    workload::InitializeIndex(*lsii_index, corpus, 0, init_streams, clock_b);

    workload::ReportTable table(
        "Figure 13a: update cost vs #updates (" +
            std::to_string(init_streams) + " streams)",
        {"#updates", "RTSI total", "LSII total"});
    for (const std::size_t base : {20000, 50000, 100000, 200000}) {
      const std::size_t n = bench::Scaled(base);
      const auto rtsi_stats = workload::MeasureUpdates(
          *rtsi_index, n, init_streams, clock_a, /*seed=*/n);
      const auto lsii_stats = workload::MeasureUpdates(
          *lsii_index, n, init_streams, clock_b, /*seed=*/n);
      table.AddRow({std::to_string(n),
                    workload::FormatMicros(rtsi_stats.sum_micros()),
                    workload::FormatMicros(lsii_stats.sum_micros())});
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 13b: update cost vs index size (100k updates)",
        {"#streams", "RTSI total", "LSII total"});
    for (const std::size_t base : {1000, 2000, 4000, 8000}) {
      const std::size_t n = bench::Scaled(base);
      const std::size_t num_updates = bench::Scaled(100000);
      const workload::SyntheticCorpus corpus(bench::DefaultCorpusConfig(n));

      double totals[2];
      int slot = 0;
      for (const char* name : {"RTSI", "LSII"}) {
        auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
        SimulatedClock clock;
        workload::InitializeIndex(*index, corpus, 0, n, clock);
        totals[slot++] = workload::MeasureUpdates(*index, num_updates, n,
                                                  clock, /*seed=*/n)
                             .sum_micros();
      }
      table.AddRow({std::to_string(n), workload::FormatMicros(totals[0]),
                    workload::FormatMicros(totals[1])});
    }
    table.Print();
  }
  return 0;
}
