// Table I: market share and yearly user increment of the major audio
// streaming services in China (static data reproduced from the paper's
// cited market report; motivates the workload, not a measurement).

#include "workload/report.h"

int main() {
  rtsi::workload::ReportTable table(
      "Table I: major audio streaming services in China (paper's data)",
      {"audio streaming service", "market share", "yearly user increment"});
  table.AddRow({"Ximalaya FM", "25.8%", "29.5%"});
  table.AddRow({"Qingting FM", "20.7%", "32.5%"});
  table.AddRow({"Tingban FM", "13.8%", "17.1%"});
  table.AddRow({"LiZhi FM", "6.9%", "68.3%"});
  table.AddRow({"Douban FM", "5.2%", "15.1%"});
  table.AddRow({"Penghuang FM", "4.3%", "34.6%"});
  table.Print();
  return 0;
}
