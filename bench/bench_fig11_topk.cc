// Figure 11: query cost versus k (the number of results), RTSI vs LSII.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t init_streams = bench::Scaled(8000);
  const std::size_t num_queries = bench::Scaled(1000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams));

  auto rtsi_index = bench::MakeIndex("RTSI", bench::DefaultIndexConfig());
  auto lsii_index = bench::MakeIndex("LSII", bench::DefaultIndexConfig());
  SimulatedClock clock_a, clock_b;
  workload::InitializeIndex(*rtsi_index, corpus, 0, init_streams, clock_a);
  workload::InitializeIndex(*lsii_index, corpus, 0, init_streams, clock_b);

  workload::ReportTable table(
      "Figure 11: mean query latency vs k (" +
          std::to_string(num_queries) + " queries each)",
      {"k", "RTSI mean", "RTSI p99", "LSII mean", "LSII p99"});

  for (const int k : {1, 5, 10, 20, 50, 100}) {
    workload::QueryGenerator gen_a(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    workload::QueryGenerator gen_b(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    const auto rtsi_stats =
        workload::MeasureQueries(*rtsi_index, gen_a, num_queries, k, clock_a);
    const auto lsii_stats =
        workload::MeasureQueries(*lsii_index, gen_b, num_queries, k, clock_b);
    table.AddRow({std::to_string(k),
                  workload::FormatMicros(rtsi_stats.mean_micros()),
                  workload::FormatMicros(rtsi_stats.PercentileMicros(0.99)),
                  workload::FormatMicros(lsii_stats.mean_micros()),
                  workload::FormatMicros(lsii_stats.PercentileMicros(0.99))});
  }
  table.Print();
  return 0;
}
