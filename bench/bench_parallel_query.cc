// Parallel query executor: mean/percentile query latency versus
// query_threads (0 = the sequential path) across corpora with different
// sealed-component counts. Emits BENCH_parallel_query.json so the perf
// trajectory of the read path is tracked from this PR on.
//
// A result checksum is computed per setting and must be identical across
// all thread counts of one corpus: the executor is required to be
// bit-identical to the sequential path. Any divergence — between thread
// settings, or against the committed pre-pipeline baseline
// (bench/baselines/) when the run is comparable — exits nonzero.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t ResultChecksum(
    const std::vector<rtsi::core::ScoredStream>& results) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : results) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.score));
    std::memcpy(&bits, &r.score, sizeof(bits));
    h = Mix(h, r.stream);
    h = Mix(h, bits);
  }
  return h;
}

}  // namespace

int main() {
  using namespace rtsi;

  // Small delta and near-flat rho keep many sealed levels alive, which is
  // the regime parallel traversal targets (a big corpus naturally ends up
  // here; this reaches it at container scale). k is large and queries are
  // 4-term: upper-bound pruning makes small-k queries terminate after a
  // handful of rounds in the best component, leaving too little work to
  // parallelize — the executor targets the expensive tail (large fetch
  // depth for cross-modality fusion, broad voice queries), so that is
  // what this bench measures.
  core::RtsiConfig base = bench::DefaultIndexConfig();
  base.lsm.delta = 1024;
  base.lsm.rho = 1.3;
  // The executor always prunes with the sound kGlobalPop ceilings; give
  // the sequential baseline the same mode so every row shares one pruning
  // semantics and the checksums are comparable.
  base.bound_mode = core::BoundMode::kGlobalPop;

  const std::size_t num_queries = bench::Scaled(400);
  const int k = 100;
  const std::vector<int> thread_settings = {0, 1, 2, 4, 8};
  bool diverged = false;
  bool baseline_checksums_match = true;

  // Wall-clock speedup requires actual cores: on a single-CPU host every
  // thread setting time-slices one core, so the sweep measures executor
  // overhead and the rows carry "parallelism": "unavailable" in place of
  // a speedup number (a ~1.0 ratio would read as a regression or a win
  // to anything tracking the JSON trajectory).
  const double cpus = static_cast<double>(std::thread::hardware_concurrency());
  const bool parallelism = bench::ParallelismMeasurable();
  if (!parallelism) {
    std::fprintf(stderr,
                 "warning: 1 hardware thread detected; speedup is not "
                 "measurable, emitting \"parallelism\": \"unavailable\" "
                 "(latency and checksum columns remain valid)\n");
  }

  // The committed pre-pipeline baseline: comparable when scale, k and
  // delta match the recording; then per-row checksums must be identical
  // and the mean-latency drift is reported per (streams, threads) row.
  const bench::BaselineReport baseline =
      bench::LoadBaseline("BENCH_parallel_query.json");
  const bool baseline_comparable =
      baseline.loaded && baseline.MetaNum("scale") == bench::Scale() &&
      baseline.MetaNum("k") == static_cast<double>(k) &&
      baseline.MetaNum("delta") == static_cast<double>(base.lsm.delta);

  bench::JsonReport report("parallel_query");
  report.Field("scale", bench::Scale());
  report.Field("cpus", cpus);
  report.Field("k", static_cast<double>(k));
  report.Field("delta", static_cast<double>(base.lsm.delta));
  report.Field("rho", base.lsm.rho);

  workload::ReportTable table(
      "Parallel query executor: latency vs query_threads (k=" +
          std::to_string(k) + ")",
      {"streams", "components", "threads", "mean", "pre", "drift", "p50",
       "p99", "speedup", "checksum"});

  for (const std::size_t base_streams : {4000, 12000}) {
    const std::size_t num_streams = bench::Scaled(base_streams);
    const workload::SyntheticCorpus corpus(
        bench::DefaultCorpusConfig(num_streams));
    double sequential_mean = 0.0;
    std::vector<std::uint64_t> per_query_checksums;

    // One index serves every thread setting (queries are read-only), so
    // the dominant corpus-build cost is paid once per corpus.
    core::RtsiIndex index(base);
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, num_streams, clock);
    const std::size_t components = index.tree().SealedSnapshot().size();

    for (const int threads : thread_settings) {
      index.SetQueryThreads(threads);

      auto query_config = bench::DefaultQueryConfig(corpus.vocab_size());
      query_config.min_terms = 4;
      query_config.max_terms = 4;

      workload::QueryGenerator gen(query_config);
      // Warm-up pass (first queries grow the scratch-pool buffers).
      for (int w = 0; w < 50; ++w) {
        index.Query(gen.Next(), k, clock.Now());
      }

      workload::QueryGenerator measured_gen(query_config);
      LatencyStats stats;
      std::uint64_t checksum = 1469598103934665603ull;
      Stopwatch watch;
      for (std::size_t i = 0; i < num_queries; ++i) {
        const auto q = measured_gen.Next();
        watch.Restart();
        const auto results = index.Query(q, k, clock.Now());
        stats.Record(watch.ElapsedMicros());
        const std::uint64_t qsum = ResultChecksum(results);
        checksum = Mix(checksum, qsum);
        // Bit-identity audit against the sequential pass: pinpoint the
        // first diverging query instead of just flagging the folded sum.
        if (threads == 0) {
          per_query_checksums.push_back(qsum);
        } else if (i < per_query_checksums.size() &&
                   per_query_checksums[i] != qsum) {
          std::fprintf(stderr,
                       "DIVERGENCE streams=%zu threads=%d query=%zu "
                       "(seq=%016llx par=%016llx)\n",
                       num_streams, threads, i,
                       static_cast<unsigned long long>(
                           per_query_checksums[i]),
                       static_cast<unsigned long long>(qsum));
          diverged = true;
        }
      }

      if (threads == 0) sequential_mean = stats.mean_micros();
      const double speedup =
          stats.mean_micros() > 0.0 ? sequential_mean / stats.mean_micros()
                                    : 0.0;

      char checksum_hex[32];
      std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                    static_cast<unsigned long long>(checksum));

      // The pre-pipeline column for this (streams, threads) row.
      const auto* base_row =
          baseline_comparable
              ? baseline.FindRow(
                    {{"streams", static_cast<double>(num_streams)},
                     {"query_threads", static_cast<double>(threads)}})
              : nullptr;
      double base_mean = 0.0, drift = 0.0;
      if (base_row != nullptr) {
        base_mean = bench::BaselineReport::Num(*base_row, "mean_us");
        drift = base_mean > 0.0
                    ? (stats.mean_micros() - base_mean) / base_mean
                    : 0.0;
        const std::string base_checksum =
            bench::BaselineReport::Str(*base_row, "checksum");
        if (!base_checksum.empty() && base_checksum != checksum_hex) {
          std::fprintf(stderr,
                       "DIVERGENCE vs pre-pipeline baseline streams=%zu "
                       "threads=%d (baseline=%s current=%s)\n",
                       num_streams, threads, base_checksum.c_str(),
                       checksum_hex);
          baseline_checksums_match = false;
        }
      }

      table.AddRow({std::to_string(num_streams),
                    std::to_string(components), std::to_string(threads),
                    workload::FormatMicros(stats.mean_micros()),
                    base_row != nullptr ? workload::FormatMicros(base_mean)
                                        : "-",
                    base_row != nullptr
                        ? workload::FormatDouble(drift * 100.0, 1) + "%"
                        : "-",
                    workload::FormatMicros(stats.PercentileMicros(0.5)),
                    workload::FormatMicros(stats.PercentileMicros(0.99)),
                    parallelism ? std::to_string(speedup) : "n/a",
                    checksum_hex});

      auto& row = report.AddRow();
      row.Field("streams", static_cast<double>(num_streams))
          .Field("sealed_components", static_cast<double>(components))
          .Field("query_threads", static_cast<double>(threads))
          .Field("queries", static_cast<double>(num_queries))
          .Field("mean_us", stats.mean_micros())
          .Field("p50_us", stats.PercentileMicros(0.5))
          .Field("p95_us", stats.PercentileMicros(0.95))
          .Field("p99_us", stats.PercentileMicros(0.99))
          .Field("max_us", stats.max_micros())
          .Field("total_us", stats.sum_micros());
      if (parallelism) {
        row.Field("speedup_vs_sequential", speedup);
      } else {
        row.Field("parallelism", "unavailable");
      }
      row.Field("checksum", checksum_hex);
      if (base_row != nullptr) {
        row.Field("baseline_mean_us", base_mean)
            .Field("baseline_drift", drift);
      }
    }
  }

  table.Print();
  report.Write("BENCH_parallel_query.json");
  if (diverged) {
    std::fprintf(stderr,
                 "error: parallel results diverged from the sequential "
                 "pass\n");
    return 1;
  }
  if (!baseline_checksums_match) {
    std::fprintf(stderr,
                 "error: results diverged from the committed pre-pipeline "
                 "baseline (bench/baselines/BENCH_parallel_query.json)\n");
    return 1;
  }
  return 0;
}
