// Content-vs-metadata recall (the paper's Section I motivation): queries
// drawn from what was *said* mid-stream are found by the full-content
// RTSI index but invisible to a title/tags-only index — "many related
// audio streams are not retrieved" by the metadata approach.

#include <algorithm>
#include <string>

#include "baseline/metadata_index.h"
#include "bench_util.h"
#include "common/clock.h"
#include "common/rng.h"
#include "core/rtsi_index.h"
#include "workload/corpus.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t num_streams = bench::Scaled(2000);
  const int num_trials = 300;
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));

  core::RtsiIndex full(bench::DefaultIndexConfig());
  baseline::MetadataIndex metadata(bench::DefaultIndexConfig());
  SimulatedClock clock_a, clock_b;
  workload::InitializeIndex(full, corpus, 0, num_streams, clock_a);
  workload::InitializeIndex(metadata, corpus, 0, num_streams, clock_b);

  // Queries: rare terms from a random window of a random stream (what a
  // listener remembers hearing). Early windows favour metadata; late
  // windows are invisible to it.
  Rng rng(909);
  workload::ReportTable table(
      "Content vs metadata-only search: recall@10 (" +
          std::to_string(num_streams) + " streams, " +
          std::to_string(num_trials) + " queries per row)",
      {"query source", "RTSI (full content)", "metadata-only"});

  for (const bool late_window : {false, true}) {
    int full_hits = 0, metadata_hits = 0;
    for (int trial = 0; trial < num_trials; ++trial) {
      const StreamId target = rng.NextUint64(num_streams);
      const int windows = corpus.NumWindows(target);
      const int window = late_window ? windows - 1 : 0;
      auto terms = corpus.WindowTerms(target, window);
      // The two rarest (highest-id) terms of the window.
      std::sort(terms.begin(), terms.end(),
                [](const core::TermCount& a, const core::TermCount& b) {
                  return a.term > b.term;
                });
      if (terms.size() < 2) continue;
      const std::vector<TermId> q = {terms[0].term, terms[1].term};

      auto contains = [&](const std::vector<core::ScoredStream>& results) {
        for (const auto& r : results) {
          if (r.stream == target) return true;
        }
        return false;
      };
      if (contains(full.Query(q, 10, clock_a.Now()))) ++full_hits;
      if (contains(metadata.Query(q, 10, clock_b.Now()))) ++metadata_hits;
    }
    table.AddRow({late_window ? "terms from the last minute"
                              : "terms from the first minute",
                  workload::FormatDouble(100.0 * full_hits / num_trials, 1) +
                      "%",
                  workload::FormatDouble(
                      100.0 * metadata_hits / num_trials, 1) + "%"});
  }
  table.Print();
  std::printf("\nmemory: full-content %s vs metadata-only %s\n",
              workload::FormatBytes(full.MemoryBytes()).c_str(),
              workload::FormatBytes(metadata.MemoryBytes()).c_str());
  return 0;
}
