// Figure 14: update sensitivity — total update cost while varying delta
// and rho, RTSI vs LSII. The paper's finding: RTSI is nearly flat across
// both sweeps, LSII moves more.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

double UpdateMicros(const char* name, const core::RtsiConfig& config,
                    const workload::SyntheticCorpus& corpus,
                    std::size_t num_streams, std::size_t num_updates) {
  auto index = bench::MakeIndex(name, config);
  SimulatedClock clock;
  workload::InitializeIndex(*index, corpus, 0, num_streams, clock);
  return workload::MeasureUpdates(*index, num_updates, num_streams, clock)
      .sum_micros();
}

}  // namespace

int main() {
  const std::size_t num_streams = bench::Scaled(3000);
  const std::size_t num_updates = bench::Scaled(100000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));

  {
    workload::ReportTable table("Figure 14a: update cost vs delta",
                                {"delta", "RTSI", "LSII"});
    for (const std::size_t delta : {16 * 1024, 64 * 1024, 256 * 1024}) {
      auto config = bench::DefaultIndexConfig();
      config.lsm.delta = delta;
      table.AddRow(
          {std::to_string(delta / 1024) + "k",
           workload::FormatMicros(UpdateMicros("RTSI", config, corpus,
                                               num_streams, num_updates)),
           workload::FormatMicros(UpdateMicros("LSII", config, corpus,
                                               num_streams, num_updates))});
    }
    table.Print();
  }

  {
    workload::ReportTable table("Figure 14b: update cost vs rho",
                                {"rho", "RTSI", "LSII"});
    for (const double rho : {2.0, 4.0, 8.0}) {
      auto config = bench::DefaultIndexConfig();
      config.lsm.rho = rho;
      table.AddRow(
          {workload::FormatDouble(rho, 1),
           workload::FormatMicros(UpdateMicros("RTSI", config, corpus,
                                               num_streams, num_updates)),
           workload::FormatMicros(UpdateMicros("LSII", config, corpus,
                                               num_streams, num_updates))});
    }
    table.Print();
  }
  return 0;
}
