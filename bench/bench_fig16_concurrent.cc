// Figure 16: concurrent querying and insertion. Serial = run the insert
// batch, then the query batch, on one thread. Concurrent = one inserter
// thread and one query thread overlapped (pinned immutable views +
// partial locking let queries proceed during merges). (a) sweeps insertions at a fixed query
// count; (b) sweeps queries at a fixed insertion count.
//
// Note: on a single-core container the concurrent speedup is limited to
// the overlap of lock waits; the paper's 20-core testbed shows larger
// gains. The shape to check is that concurrency never loses badly and
// wins as volume grows.

#include <string>
#include <thread>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

struct Timing {
  double serial_micros;
  double concurrent_micros;
};

Timing Run(std::size_t init_streams, std::size_t insert_streams,
           std::size_t num_queries) {
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams + 2 * insert_streams));

  Timing timing{};
  // Serial.
  {
    core::RtsiIndex index(bench::DefaultIndexConfig());
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, init_streams, clock);
    Stopwatch watch;
    workload::MeasureInsertions(index, corpus, init_streams, insert_streams,
                                clock);
    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    workload::MeasureQueries(index, gen, num_queries, 10, clock);
    timing.serial_micros = watch.ElapsedMicros();
  }
  // Concurrent.
  {
    core::RtsiIndex index(bench::DefaultIndexConfig());
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, init_streams, clock);
    Stopwatch watch;
    std::thread inserter([&] {
      workload::MeasureInsertions(index, corpus, init_streams,
                                  insert_streams, clock);
    });
    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    workload::MeasureQueries(index, gen, num_queries, 10, clock);
    inserter.join();
    timing.concurrent_micros = watch.ElapsedMicros();
  }
  return timing;
}

}  // namespace

int main() {
  const std::size_t init_streams = bench::Scaled(2000);

  {
    workload::ReportTable table(
        "Figure 16a: serial vs concurrent, varying #inserted streams "
        "(queries fixed)",
        {"#new streams", "serial", "concurrent", "speedup"});
    const std::size_t num_queries = bench::Scaled(2000);
    for (const std::size_t base : {200, 400, 800}) {
      const std::size_t n = bench::Scaled(base);
      const Timing t = Run(init_streams, n, num_queries);
      table.AddRow({std::to_string(n),
                    workload::FormatMicros(t.serial_micros),
                    workload::FormatMicros(t.concurrent_micros),
                    workload::FormatDouble(
                        t.serial_micros / t.concurrent_micros, 2) + "x"});
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 16b: serial vs concurrent, varying #queries "
        "(insertions fixed)",
        {"#queries", "serial", "concurrent", "speedup"});
    const std::size_t insert_streams = bench::Scaled(300);
    for (const std::size_t base : {1000, 2000, 4000}) {
      const std::size_t n = bench::Scaled(base);
      const Timing t = Run(init_streams, insert_streams, n);
      table.AddRow({std::to_string(n),
                    workload::FormatMicros(t.serial_micros),
                    workload::FormatMicros(t.concurrent_micros),
                    workload::FormatDouble(
                        t.serial_micros / t.concurrent_micros, 2) + "x"});
    }
    table.Print();
  }
  return 0;
}
