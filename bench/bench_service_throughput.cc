// Service front-end A/B: the blocking demo server vs the epoll async
// server, each over 1/2/4-shard deployments of the same corpus, driven
// by open-loop HTTP load over real loopback sockets.
//
// Each configuration serves the SAME pre-loaded index state (identical
// sequential ingest through the full pipeline), so after the load phase
// a fixed audit query set must return byte-identical /search responses
// from every configuration — the end-to-end form of the scatter-gather
// bit-identity contract (DESIGN.md §6i). The bench exits nonzero if any
// configuration's audit checksum diverges.
//
// Reported per configuration: completed-request throughput, p50/p99
// latency, 503s shed by admission control, and the direct-path ingest
// rate. Writes BENCH_service_throughput.json; runs under `ctest -L
// bench-smoke` at RTSI_BENCH_SCALE=0.01.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "server/http_server.h"
#include "server/search_handler.h"
#include "service/search_service.h"
#include "workload/corpus.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

/// One keep-alive loopback connection; reconnects when the server closes
/// it (the blocking front-end serves one request per connection).
class BenchClient {
 public:
  explicit BenchClient(int port) : port_(port) {}
  ~BenchClient() { Close(); }

  /// Returns the full response, or empty on connection failure.
  std::string Get(const std::string& target) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (fd_ < 0 && !Connect()) return {};
      const std::string request = "GET " + target + " HTTP/1.1\r\n\r\n";
      if (!SendAll(request)) {
        Close();  // Server closed the keep-alive socket; reconnect once.
        continue;
      }
      const std::string response = ReadResponse();
      if (!response.empty()) return response;
      Close();
    }
    return {};
  }

 private:
  bool Connect() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port_));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  bool SendAll(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string ReadResponse() {
    while (true) {
      const std::size_t head_end = buf_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        std::size_t body_len = 0;
        const std::size_t cl = buf_.find("Content-Length: ");
        if (cl != std::string::npos && cl < head_end) {
          body_len = static_cast<std::size_t>(
              std::strtoull(buf_.c_str() + cl + 16, nullptr, 10));
        }
        const std::size_t total = head_end + 4 + body_len;
        if (buf_.size() >= total) {
          std::string response = buf_.substr(0, total);
          buf_.erase(0, total);
          if (response.find("Connection: close") != std::string::npos) {
            Close();
            buf_.clear();
          }
          return response;
        }
      }
      char chunk[8192];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int port_;
  int fd_ = -1;
  std::string buf_;
};

std::uint64_t Fnv1a(const std::string& data, std::uint64_t hash) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct RunResult {
  std::string server;
  int shards = 0;
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
  double seconds = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double ingest_rate = 0.0;
  std::uint64_t checksum = 0;
};

service::SearchServiceConfig ServiceConfig(int shards) {
  service::SearchServiceConfig config;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  config.shards = shards;
  return config;
}

/// The fixed audit query set: two-word queries drawn deterministically
/// from the corpus, identical for every configuration.
std::vector<std::string> AuditQueries(const workload::SyntheticCorpus& corpus,
                                      std::size_t num_streams, int n) {
  Rng rng(7);
  std::vector<std::string> queries;
  for (int i = 0; i < n; ++i) {
    const StreamId target = rng.NextUint64(num_streams);
    const auto words = corpus.WindowWords(target, 0);
    queries.push_back(words[rng.NextUint64(words.size())] + "+" +
                      words[rng.NextUint64(words.size())]);
  }
  return queries;
}

RunResult RunConfig(bool async_server, int shards,
                    const workload::SyntheticCorpus& corpus,
                    std::size_t num_streams,
                    const std::vector<std::string>& load_queries,
                    const std::vector<std::string>& audit_queries,
                    int client_threads, double gap_micros) {
  RunResult result;
  result.server = async_server ? "async" : "blocking";
  result.shards = shards;

  // Identical sequential pre-load through the full pipeline: every
  // configuration indexes the same corpus in the same op order, so the
  // served state is the same regardless of front-end or shard count.
  SimulatedClock clock;
  service::SearchService service(ServiceConfig(shards), &clock);
  Stopwatch ingest_watch;
  std::size_t windows = 0;
  for (StreamId s = 0; s < num_streams; ++s) {
    const int n = corpus.NumWindows(s);
    for (int w = 0; w < n; ++w) {
      service.IngestWindow(s, corpus.WindowWords(s, w), w + 1 < n);
      ++windows;
    }
    service.FinishStream(s);
    clock.Advance(kMicrosPerSecond);
  }
  result.ingest_rate = windows / (ingest_watch.ElapsedMicros() / 1e6);

  server::ServerConfig server_config;
  server_config.async = async_server;
  server_config.workers = 2;
  server_config.max_pending = 64;  // Small enough to shed under bursts.
  auto http = server::MakeHttpServer(server_config);
  server::RegisterSearchRoutes(*http, service, clock);
  if (!http->Start(0).ok()) {
    std::fprintf(stderr, "server failed to start\n");
    return result;
  }

  // Open-loop load: each client thread fires its slice of the query list
  // on a fixed arrival schedule (no coordinated omission — a request
  // that is due goes out even if the previous one was slow). The first
  // 25% are a burst to exercise admission control.
  LatencyStats latency;
  std::mutex latency_mu;
  std::atomic<std::size_t> ok{0}, shed{0}, errors{0};
  std::vector<std::thread> clients;
  Stopwatch load_watch;
  for (int t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      BenchClient client(http->port());
      const auto start = std::chrono::steady_clock::now();
      std::size_t sent = 0;
      for (std::size_t i = t; i < load_queries.size();
           i += static_cast<std::size_t>(client_threads)) {
        const bool burst = sent < load_queries.size() /
                                      static_cast<std::size_t>(
                                          client_threads) / 4;
        if (!burst) {
          const auto due =
              start + std::chrono::microseconds(static_cast<long long>(
                          gap_micros * static_cast<double>(sent)));
          std::this_thread::sleep_until(due);
        }
        ++sent;
        Stopwatch watch;
        const std::string response =
            client.Get("/search?q=" + load_queries[i] + "&k=10");
        if (response.find("200 OK") != std::string::npos) {
          ok.fetch_add(1);
          std::lock_guard<std::mutex> lock(latency_mu);
          latency.Record(watch.ElapsedMicros());
        } else if (response.find("503") != std::string::npos) {
          shed.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  result.seconds = load_watch.ElapsedMicros() / 1e6;
  result.requests = load_queries.size();
  result.ok = ok.load();
  result.shed = shed.load();
  result.errors = errors.load();
  result.p50 = latency.PercentileMicros(0.50);
  result.p99 = latency.PercentileMicros(0.99);

  // Audit pass, post-quiesce: the load phase was read-only, so every
  // configuration must return byte-identical bodies for the fixed query
  // set. Checksum the bodies (headers differ by front-end: keep-alive).
  std::uint64_t checksum = 14695981039346656037ULL;
  BenchClient audit_client(http->port());
  for (const std::string& query : audit_queries) {
    const std::string response =
        audit_client.Get("/search?q=" + query + "&k=10");
    const std::size_t body = response.find("\r\n\r\n");
    checksum = Fnv1a(
        body == std::string::npos ? response : response.substr(body + 4),
        checksum);
  }
  result.checksum = checksum;

  const auto queue = http->QueueStats();
  result.shed = std::max(result.shed, static_cast<std::size_t>(queue.shed));
  http->Stop();
  return result;
}

}  // namespace

int main() {
  const std::size_t num_streams = std::max<std::size_t>(8, bench::Scaled(150));
  const int load_n = static_cast<int>(
      std::max<std::size_t>(40, bench::Scaled(1200)));
  const int audit_n = 32;
  const int client_threads = 4;
  const double gap_micros = 800.0;  // ~1.25k req/s offered per thread slice.

  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = num_streams;
  corpus_config.vocab_size = 10'000;
  corpus_config.words_per_window = 80;
  corpus_config.avg_windows_per_stream = 6;
  corpus_config.min_windows_per_stream = 3;
  const workload::SyntheticCorpus corpus(corpus_config);

  std::vector<std::string> load_queries;
  {
    Rng rng(11);
    for (int i = 0; i < load_n; ++i) {
      const StreamId target = rng.NextUint64(num_streams);
      const auto words = corpus.WindowWords(target, 0);
      load_queries.push_back(words[rng.NextUint64(words.size())] + "+" +
                             words[rng.NextUint64(words.size())]);
    }
  }
  const auto audit_queries = AuditQueries(corpus, num_streams, audit_n);

  std::vector<RunResult> results;
  for (const bool async_server : {false, true}) {
    for (const int shards : {1, 2, 4}) {
      results.push_back(RunConfig(async_server, shards, corpus, num_streams,
                                  load_queries, audit_queries,
                                  client_threads, gap_micros));
    }
  }

  workload::ReportTable table(
      "Service front-end A/B (open-loop /search load)",
      {"server", "shards", "ok", "shed", "err", "req/s", "p50", "p99"});
  bench::JsonReport report("service_throughput");
  report.Field("scale", bench::Scale())
      .Field("streams", static_cast<double>(num_streams))
      .Field("load_queries", static_cast<double>(load_n))
      .Field("audit_queries", static_cast<double>(audit_n))
      .Field("client_threads", static_cast<double>(client_threads));

  bool divergent = false;
  for (const RunResult& r : results) {
    if (r.checksum != results.front().checksum) divergent = true;
    table.AddRow(
        {r.server, std::to_string(r.shards), std::to_string(r.ok),
         std::to_string(r.shed), std::to_string(r.errors),
         workload::FormatDouble(r.ok / std::max(r.seconds, 1e-9), 0),
         workload::FormatMicros(r.p50), workload::FormatMicros(r.p99)});
    report.AddRow()
        .Field("server", r.server)
        .Field("shards", static_cast<double>(r.shards))
        .Field("requests", static_cast<double>(r.requests))
        .Field("ok", static_cast<double>(r.ok))
        .Field("shed_503", static_cast<double>(r.shed))
        .Field("errors", static_cast<double>(r.errors))
        .Field("throughput_rps", r.ok / std::max(r.seconds, 1e-9))
        .Field("p50_micros", r.p50)
        .Field("p99_micros", r.p99)
        .Field("ingest_windows_per_sec", r.ingest_rate)
        .Field("audit_checksum", std::to_string(r.checksum));
  }
  report.Field("audit_consistent", divergent ? "false" : "true");
  table.Print();
  report.Write("BENCH_service_throughput.json");

  if (divergent) {
    std::fprintf(stderr,
                 "FAIL: /search audit responses diverge across "
                 "front-end/shard configurations\n");
    for (const RunResult& r : results) {
      std::fprintf(stderr, "  %s x%d shards: checksum %llu\n",
                   r.server.c_str(), r.shards,
                   static_cast<unsigned long long>(r.checksum));
    }
    return 1;
  }
  std::printf("audit: all %zu configurations byte-identical\n",
              results.size());
  return 0;
}
