// End-to-end service throughput: words of ground-truth transcript pushed
// through the full ingestion pipeline (transcription error model, G2P,
// lattice units, two RTSI trees) per second, plus multi-modal query
// rates. This measures the whole Figure-4 system, not just the index.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "service/search_service.h"
#include "workload/corpus.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t num_streams = bench::Scaled(400);
  const int queries = 500;

  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = num_streams;
  corpus_config.vocab_size = 10'000;
  corpus_config.words_per_window = 80;
  corpus_config.avg_windows_per_stream = 6;
  corpus_config.min_windows_per_stream = 3;
  const workload::SyntheticCorpus corpus(corpus_config);

  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  service::SearchService service(config, &clock);

  // Ingest everything through the full pipeline.
  Stopwatch watch;
  std::size_t windows = 0, words = 0;
  for (StreamId s = 0; s < num_streams; ++s) {
    const int n = corpus.NumWindows(s);
    for (int w = 0; w < n; ++w) {
      const auto window_words = corpus.WindowWords(s, w);
      words += window_words.size();
      service.IngestWindow(s, window_words, w + 1 < n);
      ++windows;
    }
    service.FinishStream(s);
    clock.Advance(kMicrosPerSecond);
  }
  const double ingest_micros = watch.ElapsedMicros();

  // Keyword queries through the multi-modal processor.
  Rng rng(11);
  LatencyStats query_latency;
  for (int i = 0; i < queries; ++i) {
    const StreamId target = rng.NextUint64(num_streams);
    const auto window_words = corpus.WindowWords(target, 0);
    const std::string query =
        window_words[rng.NextUint64(window_words.size())] + " " +
        window_words[rng.NextUint64(window_words.size())];
    watch.Restart();
    service.SearchKeywords(query, 10);
    query_latency.Record(watch.ElapsedMicros());
  }

  workload::ReportTable table("Service end-to-end throughput",
                              {"metric", "value"});
  table.AddRow({"windows ingested", std::to_string(windows)});
  table.AddRow({"transcript words", std::to_string(words)});
  table.AddRow({"ingest rate",
                workload::FormatDouble(windows / (ingest_micros / 1e6), 1) +
                    " windows/s"});
  table.AddRow({"audio-time speedup",
                workload::FormatDouble(
                    (windows * 60.0) / (ingest_micros / 1e6), 0) +
                    "x realtime"});
  table.AddRow({"keyword query mean",
                workload::FormatMicros(query_latency.mean_micros())});
  table.AddRow({"keyword query p99",
                workload::FormatMicros(query_latency.PercentileMicros(0.99))});
  table.AddRow({"text terms", std::to_string(service.text_dictionary().size())});
  table.AddRow({"lattice units",
                std::to_string(service.sound_dictionary().size())});
  table.Print();
  return 0;
}
