// Ablation: the three compaction policies head-to-head — the paper's
// geometric cascade (Algorithm 1), size-tiered (accumulate tier_runs
// runs per level, then one multi-way fold), and full compaction (one
// component, maximum write amplification). Measures the write side
// (merge work in postings, merge stall time folded into build time) and
// the read side (query mean/p99 and the skip-header planner counters —
// more runs means more components for the Bloom/summary screen to
// dismiss).
//
// Correctness audit: for every policy, the optimized pass (kGlobalPop
// pruning + skip headers) is checksum-compared against an exhaustive
// full walk of the SAME index — pruning and skipping are lossless, so
// any divergence is a merge or planner bug and the bench exits nonzero.
// The audit is within-layout on purpose: a stream whose postings still
// span several sealed runs is scored per component with partial tfs
// (keep-best-per-stream, see rtsi_index.cc phase 3), so cross-policy
// scores only converge once merges consolidate — the per-policy
// checksums are emitted for cross-PR tracking, with geometric as the
// tracked baseline. Emits BENCH_ablation_policy.json.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

struct PolicyRun {
  const char* label = "";
  double build_us = 0.0;
  rtsi::lsm::MergeStats merge;
  double query_mean_us = 0.0;
  double query_p99_us = 0.0;
  std::uint64_t checksum = 0;       // optimized pass
  std::uint64_t walk_checksum = 0;  // exhaustive full walk
  rtsi::core::QueryStats qstats;    // summed over the optimized pass
  std::size_t runs = 0;
  std::size_t levels = 0;
  std::size_t postings = 0;
};

struct Pass {
  double mean_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t checksum = 0;
  rtsi::core::QueryStats qstats;
};

Pass MeasurePass(rtsi::core::RtsiIndex& index,
                 const rtsi::workload::QueryGenConfig& query_config,
                 std::size_t num_queries, int k, rtsi::Timestamp now) {
  using namespace rtsi;
  workload::QueryGenerator warm(query_config);
  for (int w = 0; w < 50; ++w) index.Query(warm.Next(), k, now);

  workload::QueryGenerator gen(query_config);
  Pass pass;
  pass.checksum = 1469598103934665603ull;
  LatencyStats lat;
  Stopwatch watch;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto q = gen.Next();
    core::QueryStats qs;
    watch.Restart();
    const auto results = index.Query(q, k, now, &qs);
    lat.Record(watch.ElapsedMicros());
    std::uint64_t qsum = 1469598103934665603ull;
    for (const auto& r : results) {
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(r.score));
      std::memcpy(&bits, &r.score, sizeof(bits));
      qsum = Mix(qsum, r.stream);
      qsum = Mix(qsum, bits);
    }
    pass.checksum = Mix(pass.checksum, qsum);
    pass.qstats.components_visited += qs.components_visited;
    pass.qstats.components_pruned += qs.components_pruned;
    pass.qstats.components_skipped += qs.components_skipped;
    pass.qstats.postings_scanned += qs.postings_scanned;
  }
  pass.mean_us = lat.mean_micros();
  pass.p99_us = lat.PercentileMicros(0.99);
  return pass;
}

PolicyRun RunPolicy(rtsi::lsm::MergePolicy policy, const char* label,
                    const rtsi::workload::SyntheticCorpus& corpus,
                    std::size_t num_streams, std::size_t num_queries,
                    int k) {
  using namespace rtsi;
  auto config = bench::DefaultIndexConfig();
  config.lsm.policy = policy;
  // Sound, layout-blind pruning for the audited pass.
  config.bound_mode = core::BoundMode::kGlobalPop;
  core::RtsiIndex index(config);
  SimulatedClock clock;

  PolicyRun run;
  run.label = label;
  run.build_us =
      workload::InitializeIndex(index, corpus, 0, num_streams, clock)
          .elapsed_micros;
  run.merge = index.GetMergeStats();
  run.runs = index.tree().num_runs();
  run.levels = index.tree().num_levels();
  run.postings = index.tree().total_postings();

  const auto query_config = bench::DefaultQueryConfig(corpus.vocab_size());
  const Timestamp now = clock.Now();
  const Pass optimized =
      MeasurePass(index, query_config, num_queries, k, now);
  run.query_mean_us = optimized.mean_us;
  run.query_p99_us = optimized.p99_us;
  run.checksum = optimized.checksum;
  run.qstats = optimized.qstats;

  // Audit pass: exhaustive walk, no pruning, no skip headers.
  index.SetUseBound(false);
  index.SetUseSkipHeader(false);
  run.walk_checksum =
      MeasurePass(index, query_config, num_queries, k, now).checksum;
  return run;
}

}  // namespace

int main() {
  using namespace rtsi;
  const std::size_t num_streams = bench::Scaled(3000);
  const std::size_t num_queries = bench::Scaled(1000);
  const int k = 10;
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));

  const PolicyRun runs[] = {
      RunPolicy(lsm::MergePolicy::kGeometric, "geometric (paper)", corpus,
                num_streams, num_queries, k),
      RunPolicy(lsm::MergePolicy::kTiered, "tiered", corpus, num_streams,
                num_queries, k),
      RunPolicy(lsm::MergePolicy::kFullCompaction, "full compaction",
                corpus, num_streams, num_queries, k),
  };

  bench::JsonReport report("ablation_policy");
  report.Field("scale", bench::Scale());
  report.Field("streams", static_cast<double>(num_streams));
  report.Field("queries", static_cast<double>(num_queries));
  report.Field("k", static_cast<double>(k));

  workload::ReportTable table(
      "Ablation: compaction policy (" + std::to_string(num_streams) +
          " streams; write amp = merged postings / resident postings)",
      {"policy", "build time", "write amp", "merge stall", "runs/levels",
       "query mean", "query p99", "skipped/visited", "audit"});

  bool diverged = false;
  for (const PolicyRun& run : runs) {
    const double write_amp =
        run.postings == 0
            ? 0.0
            : static_cast<double>(run.merge.postings_in) /
                  static_cast<double>(run.postings);
    const bool audit_ok = run.checksum == run.walk_checksum;
    if (!audit_ok) diverged = true;

    char amp[32], hex[32];
    std::snprintf(amp, sizeof(amp), "%.2f", write_amp);
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(run.checksum));
    table.AddRow(
        {run.label, workload::FormatMicros(run.build_us), amp,
         workload::FormatMicros(run.merge.total_micros),
         std::to_string(run.runs) + "/" + std::to_string(run.levels),
         workload::FormatMicros(run.query_mean_us),
         workload::FormatMicros(run.query_p99_us),
         std::to_string(run.qstats.components_skipped) + "/" +
             std::to_string(run.qstats.components_visited),
         audit_ok ? "ok" : "DIVERGED"});

    report.AddRow()
        .Field("policy", run.label)
        .Field("build_us", run.build_us)
        .Field("merges", static_cast<double>(run.merge.merges))
        .Field("merge_postings_in",
               static_cast<double>(run.merge.postings_in))
        .Field("merge_postings_out",
               static_cast<double>(run.merge.postings_out))
        .Field("merge_stall_us", run.merge.total_micros)
        .Field("write_amplification", write_amp)
        .Field("resident_postings", static_cast<double>(run.postings))
        .Field("runs", static_cast<double>(run.runs))
        .Field("levels", static_cast<double>(run.levels))
        .Field("query_mean_us", run.query_mean_us)
        .Field("query_p99_us", run.query_p99_us)
        .Field("components_visited",
               static_cast<double>(run.qstats.components_visited))
        .Field("components_pruned",
               static_cast<double>(run.qstats.components_pruned))
        .Field("components_skipped",
               static_cast<double>(run.qstats.components_skipped))
        .Field("postings_scanned",
               static_cast<double>(run.qstats.postings_scanned))
        .Field("checksum", hex)
        .Field("audit_ok", audit_ok ? 1.0 : 0.0);
  }
  table.Print();
  report.Write("BENCH_ablation_policy.json");

  if (diverged) {
    std::fprintf(stderr,
                 "FAIL: optimized pass diverged from the exhaustive walk "
                 "— merge or planner correctness bug\n");
    return 1;
  }
  return 0;
}
