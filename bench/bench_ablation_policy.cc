// Ablation: the paper's geometric LSM merge policy vs full compaction.
// Full compaction rewrites the whole index on every freeze (insertion
// cost explodes with index size) but leaves exactly one sealed component
// (queries touch the minimum). The geometric policy is what makes the
// real-time insert rate sustainable — the reason the paper builds on an
// LSM-tree at all.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t num_streams = bench::Scaled(3000);
  const std::size_t num_queries = bench::Scaled(1000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));

  workload::ReportTable table(
      "Ablation: merge policy (" + std::to_string(num_streams) +
          " streams)",
      {"policy", "build time", "merge work (postings)", "query mean",
       "levels"});

  for (const lsm::MergePolicy policy :
       {lsm::MergePolicy::kGeometric, lsm::MergePolicy::kFullCompaction}) {
    auto config = bench::DefaultIndexConfig();
    config.lsm.policy = policy;
    core::RtsiIndex index(config);
    SimulatedClock clock;
    const auto init =
        workload::InitializeIndex(index, corpus, 0, num_streams, clock);

    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    const auto queries =
        workload::MeasureQueries(index, gen, num_queries, 10, clock);
    const auto merge_stats = index.GetMergeStats();

    table.AddRow(
        {policy == lsm::MergePolicy::kGeometric ? "geometric (paper)"
                                                : "full compaction",
         workload::FormatMicros(init.elapsed_micros),
         std::to_string(merge_stats.postings_in),
         workload::FormatMicros(queries.mean_micros()),
         std::to_string(index.tree().num_levels())});
  }
  table.Print();
  return 0;
}
