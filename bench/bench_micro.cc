// Google-benchmark micro suite: the hot primitives under the experiment
// harness — posting-list operations, Huffman coding, scoring, the MFCC
// front-end, and the random-access path used by query candidates.

#include <benchmark/benchmark.h>

#include "audio/mfcc.h"
#include "audio/synthesizer.h"
#include "common/rng.h"
#include "common/varint.h"
#include "common/zipf.h"
#include "core/scorer.h"
#include "index/compressed_postings.h"
#include "index/huffman.h"
#include "index/term_postings.h"

namespace {

using namespace rtsi;

index::TermPostings MakePostings(int n, std::uint64_t seed) {
  Rng rng(seed);
  index::TermPostings postings;
  Timestamp t = 0;
  for (int i = 0; i < n; ++i) {
    t += 60'000'000;
    postings.Append(index::Posting{
        rng.NextUint64(100000), static_cast<float>(rng.NextUint64(5000)), t,
        1 + static_cast<TermFreq>(rng.NextUint64(8))});
  }
  return postings;
}

void BM_TermPostingsAppend(benchmark::State& state) {
  for (auto _ : state) {
    index::TermPostings postings;
    for (int i = 0; i < state.range(0); ++i) {
      postings.Append(index::Posting{static_cast<StreamId>(i), 1.0f,
                                     static_cast<Timestamp>(i), 1});
    }
    benchmark::DoNotOptimize(postings.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TermPostingsAppend)->Arg(1024)->Arg(16384);

void BM_TermPostingsSeal(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    index::TermPostings postings = MakePostings(state.range(0), 7);
    state.ResumeTiming();
    postings.Seal();
    benchmark::DoNotOptimize(postings.sealed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TermPostingsSeal)->Arg(1024)->Arg(16384);

void BM_AggregateForStream(benchmark::State& state) {
  index::TermPostings postings = MakePostings(state.range(0), 11);
  postings.Seal();
  Rng rng(3);
  index::Posting out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        postings.AggregateForStream(rng.NextUint64(100000), out));
  }
}
BENCHMARK(BM_AggregateForStream)->Arg(1024)->Arg(65536);

void BM_HuffmanEncode(benchmark::State& state) {
  Rng rng(5);
  ZipfDistribution dist(64, 1.2);
  std::vector<std::uint8_t> input(state.range(0));
  for (auto& b : input) b = static_cast<std::uint8_t>(dist(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::HuffmanEncode(input));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanEncode)->Arg(4096)->Arg(65536);

void BM_HuffmanDecode(benchmark::State& state) {
  Rng rng(6);
  ZipfDistribution dist(64, 1.2);
  std::vector<std::uint8_t> input(state.range(0));
  for (auto& b : input) b = static_cast<std::uint8_t>(dist(rng));
  const auto blob = index::HuffmanEncode(input);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index::HuffmanDecode(blob, out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HuffmanDecode)->Arg(4096)->Arg(65536);

void BM_CompressedRoundTrip(benchmark::State& state) {
  const index::TermPostings postings = MakePostings(state.range(0), 13);
  for (auto _ : state) {
    const auto compressed =
        index::CompressedTermPostings::FromPostings(postings);
    benchmark::DoNotOptimize(compressed.Decode().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompressedRoundTrip)->Arg(1024)->Arg(8192);

void BM_Varint(benchmark::State& state) {
  Rng rng(8);
  std::vector<std::uint64_t> values(4096);
  for (auto& v : values) v = rng() >> rng.NextUint64(64);
  for (auto _ : state) {
    std::vector<std::uint8_t> buf;
    for (const auto v : values) PutVarint64(buf, v);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      GetVarint64(buf.data(), buf.size(), pos, out);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Varint);

void BM_ScoreComputation(benchmark::State& state) {
  const core::Scorer scorer(core::ScoreWeights{}, 6.0 * 3600.0);
  Rng rng(9);
  for (auto _ : state) {
    const double score = scorer.Combine(
        scorer.PopScore(rng.NextUint64(100000), 100000),
        scorer.RelScore(scorer.TermTfIdf(1 + rng.NextUint64(20), 2.5), 2),
        scorer.FrshScore(0, static_cast<Timestamp>(rng.NextUint64(1000000))));
    benchmark::DoNotOptimize(score);
  }
}
BENCHMARK(BM_ScoreComputation);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution dist(60000, 1.0);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_MfccExtract(benchmark::State& state) {
  audio::MfccExtractor extractor(audio::MfccConfig{});
  audio::SynthesizerConfig synth_config;
  audio::Synthesizer synth(synth_config);
  Rng rng(11);
  const audio::PcmBuffer pcm =
      synth.Render({{500.0, 1500.0, 0.2, 1.0, 0.6}}, rng);  // 1 second.
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(pcm).size());
  }
}
BENCHMARK(BM_MfccExtract);

}  // namespace

BENCHMARK_MAIN();
