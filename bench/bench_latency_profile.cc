// Real-time SLA profile: full latency distribution (p50/p90/p99/p99.9/
// max) of every operation class for both indices under the default mixed
// workload. The paper's "real-time" claim is about tails, not means.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t init_streams = bench::Scaled(4000);
  const std::size_t insert_streams = bench::Scaled(500);
  const std::size_t num_queries = bench::Scaled(2000);
  const std::size_t num_updates = bench::Scaled(20000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams + insert_streams));

  workload::ReportTable table(
      "Latency profile (" + std::to_string(init_streams) + " streams)",
      {"operation", "index", "p50", "p90", "p99", "p99.9", "max"});

  for (const char* name : {"RTSI", "LSII"}) {
    auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
    SimulatedClock clock;
    workload::InitializeIndex(*index, corpus, 0, init_streams, clock);

    const auto inserts = workload::MeasureInsertions(
        *index, corpus, init_streams, insert_streams, clock);
    workload::QueryGenerator gen(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    const auto queries =
        workload::MeasureQueries(*index, gen, num_queries, 10, clock);
    const auto updates = workload::MeasureUpdates(
        *index, num_updates, init_streams, clock);

    auto add = [&](const char* op, const LatencyStats& stats) {
      table.AddRow({op, name,
                    workload::FormatMicros(stats.PercentileMicros(0.50)),
                    workload::FormatMicros(stats.PercentileMicros(0.90)),
                    workload::FormatMicros(stats.PercentileMicros(0.99)),
                    workload::FormatMicros(stats.PercentileMicros(0.999)),
                    workload::FormatMicros(stats.max_micros())});
    };
    add("insert window", inserts);
    add("query k=10", queries);
    add("popularity update", updates);
  }
  table.Print();
  return 0;
}
