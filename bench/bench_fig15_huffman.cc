// Figure 15: memory efficiency of Huffman coding — index memory with and
// without compression, (a) versus delta and (b) versus #streams. The
// paper's finding: the saving grows with the number of audio streams.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

std::size_t IndexBytes(bool compress, std::size_t delta,
                       std::size_t num_streams) {
  auto config = bench::DefaultIndexConfig();
  config.lsm.compress = compress;
  config.lsm.delta = delta;
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));
  core::RtsiIndex index(config);
  SimulatedClock clock;
  workload::InitializeIndex(index, corpus, 0, num_streams, clock);
  return index.MemoryBytes();
}

std::string Saving(std::size_t plain, std::size_t compressed) {
  if (plain == 0) return "n/a";
  return workload::FormatDouble(
             100.0 * (static_cast<double>(plain) - compressed) / plain, 1) +
         "%";
}

}  // namespace

int main() {
  {
    const std::size_t num_streams = bench::Scaled(3000);
    workload::ReportTable table(
        "Figure 15a: memory with/without Huffman coding vs delta (" +
            std::to_string(num_streams) + " streams)",
        {"delta", "plain", "huffman", "saving"});
    for (const std::size_t delta : {16 * 1024, 64 * 1024, 256 * 1024}) {
      const std::size_t plain = IndexBytes(false, delta, num_streams);
      const std::size_t compressed = IndexBytes(true, delta, num_streams);
      table.AddRow({std::to_string(delta / 1024) + "k",
                    workload::FormatBytes(plain),
                    workload::FormatBytes(compressed),
                    Saving(plain, compressed)});
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 15b: memory with/without Huffman coding vs #streams",
        {"#streams", "plain", "huffman", "saving"});
    for (const std::size_t base : {1000, 2000, 4000, 8000}) {
      const std::size_t n = bench::Scaled(base);
      const std::size_t plain = IndexBytes(false, 64 * 1024, n);
      const std::size_t compressed = IndexBytes(true, 64 * 1024, n);
      table.AddRow({std::to_string(n), workload::FormatBytes(plain),
                    workload::FormatBytes(compressed),
                    Saving(plain, compressed)});
    }
    table.Print();
  }
  return 0;
}
