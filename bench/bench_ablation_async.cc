// Ablation: synchronous vs background merging. With async_merge the
// cascade leaves the insertion path, flattening the tail of per-window
// insert latency (the spikes visible in Figure 6); totals stay similar
// since the same merge work happens either way.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  const std::size_t init_streams = bench::Scaled(2000);
  const std::size_t new_streams = bench::Scaled(1000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams + new_streams));

  workload::ReportTable table(
      "Ablation: merge scheduling and insertion latency (" +
          std::to_string(new_streams) + " streams inserted)",
      {"merge mode", "median", "p99", "max", "total"});

  for (const bool async : {false, true}) {
    auto config = bench::DefaultIndexConfig();
    config.async_merge = async;
    core::RtsiIndex index(config);
    SimulatedClock clock;
    workload::InitializeIndex(index, corpus, 0, init_streams, clock);
    index.WaitForMerges();

    const auto stats = workload::MeasureInsertions(index, corpus,
                                                   init_streams, new_streams,
                                                   clock);
    index.WaitForMerges();
    table.AddRow({async ? "background" : "synchronous",
                  workload::FormatMicros(stats.PercentileMicros(0.5)),
                  workload::FormatMicros(stats.PercentileMicros(0.99)),
                  workload::FormatMicros(stats.max_micros()),
                  workload::FormatMicros(stats.sum_micros())});
  }
  table.Print();
  return 0;
}
