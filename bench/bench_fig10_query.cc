// Figure 10: query cost versus the number of queries, RTSI vs LSII.
//
// Extended with the component-skipping A/B: every query count is measured
// with the skip headers consulted (Bloom + summary bounds + admission
// screen) and with them off (the PR-5 walk). The two passes must produce
// bit-identical per-query results — skipping is a pure traversal
// optimization — so each query's result checksum is audited against the
// no-skip pass, and the folded checksums are emitted per row. A
// compaction-policy column rides along: the same workload against a
// size-tiered index (several resident runs per level) shows what the
// extra runs cost the read path with the headers doing the skipping.
// Emits BENCH_fig10_query.json so the sealed-phase read path has a
// tracked perf trajectory.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/latency_stats.h"
#include "core/rtsi_index.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t ResultChecksum(
    const std::vector<rtsi::core::ScoredStream>& results) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : results) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(r.score));
    std::memcpy(&bits, &r.score, sizeof(bits));
    h = Mix(h, r.stream);
    h = Mix(h, bits);
  }
  return h;
}

struct Pass {
  double mean_us = 0.0;
  double total_us = 0.0;
  std::uint64_t checksum = 0;
  std::vector<std::uint64_t> per_query;
  rtsi::core::QueryStats stats;  // summed over the pass
};

Pass MeasureRtsi(rtsi::core::RtsiIndex& index,
                 const rtsi::workload::QueryGenConfig& query_config,
                 std::size_t num_queries, int k, rtsi::Timestamp now) {
  using namespace rtsi;
  // Warm-up (scratch-pool growth, branch warm-up) outside the clock.
  workload::QueryGenerator warm(query_config);
  for (int w = 0; w < 50; ++w) index.Query(warm.Next(), k, now);

  workload::QueryGenerator gen(query_config);
  Pass pass;
  pass.checksum = 1469598103934665603ull;
  pass.per_query.reserve(num_queries);
  LatencyStats lat;
  Stopwatch watch;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const auto q = gen.Next();
    core::QueryStats qs;
    watch.Restart();
    const auto results = index.Query(q, k, now, &qs);
    lat.Record(watch.ElapsedMicros());
    const std::uint64_t qsum = ResultChecksum(results);
    pass.per_query.push_back(qsum);
    pass.checksum = Mix(pass.checksum, qsum);
    pass.stats.components_visited += qs.components_visited;
    pass.stats.components_pruned += qs.components_pruned;
    pass.stats.components_skipped += qs.components_skipped;
    pass.stats.bloom_false_positives += qs.bloom_false_positives;
    pass.stats.candidates_screened += qs.candidates_screened;
    pass.stats.candidates_scored += qs.candidates_scored;
    pass.stats.postings_scanned += qs.postings_scanned;
  }
  pass.mean_us = lat.mean_micros();
  pass.total_us = lat.sum_micros();
  return pass;
}

}  // namespace

int main() {
  using namespace rtsi;
  // Past the big-table cache crossover (see EXPERIMENTS.md); the query
  // gap between RTSI and LSII is cache-driven and needs corpus volume.
  const std::size_t init_streams = bench::Scaled(10000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams));
  const int k = 10;

  workload::ReportTable table(
      "Figure 10: query cost vs #queries (" + std::to_string(init_streams) +
          " streams, k=10; skip = Bloom+summary headers; pre = committed "
          "pre-pipeline baseline)",
      {"mix/#queries", "RTSI skip", "pre", "drift", "RTSI noskip", "gain",
       "tiered", "LSII mean", "skipped/visited", "screened", "match"});

  // Before/after the exec:: pipeline refactor: the committed baseline
  // (bench/baselines/) was recorded just before the unified pipeline
  // landed. Comparable only when this run's scale and corpus match the
  // recording; then the per-row checksums must be identical (the
  // refactor is required to be bit-preserving — a mismatch is fatal) and
  // the sealed-phase mean must hold within the 5% no-regression budget.
  const bench::BaselineReport baseline =
      bench::LoadBaseline("BENCH_fig10_query.json");
  const bool baseline_comparable =
      baseline.loaded && baseline.MetaNum("scale") == bench::Scale() &&
      baseline.MetaNum("streams") == static_cast<double>(init_streams);

  // Build the indices once; sweep the query count. The same RTSI index
  // serves both sides of the skip A/B (queries are read-only; the toggle
  // flips planner consultation only). The tiered column reads an index
  // built with the size-tiered compaction policy — more resident runs on
  // the read path, the skip headers' worst case.
  core::RtsiIndex rtsi_index(bench::DefaultIndexConfig());
  auto tiered_config = bench::DefaultIndexConfig();
  tiered_config.lsm.policy = lsm::MergePolicy::kTiered;
  core::RtsiIndex tiered_index(tiered_config);
  auto lsii_index = bench::MakeIndex("LSII", bench::DefaultIndexConfig());
  SimulatedClock clock_a, clock_b, clock_c;
  workload::InitializeIndex(rtsi_index, corpus, 0, init_streams, clock_a);
  workload::InitializeIndex(tiered_index, corpus, 0, init_streams, clock_c);
  workload::InitializeIndex(*lsii_index, corpus, 0, init_streams, clock_b);
  const std::size_t components = rtsi_index.tree().SealedSnapshot().size();

  bench::JsonReport report("fig10_query");
  report.Field("scale", bench::Scale());
  report.Field("streams", static_cast<double>(init_streams));
  report.Field("sealed_components", static_cast<double>(components));
  report.Field("tiered_runs",
               static_cast<double>(tiered_index.tree().num_runs()));
  report.Field("k", static_cast<double>(k));

  // Two query mixes. "in_vocab" is the paper's fig-10 workload: every
  // term exists somewhere, so sealed components are near-saturated and
  // whole-component Bloom skips are rare — the win comes from the
  // admission screen. "oov" doubles the query vocabulary (the ASR-noise
  // regime: transcribed voice queries carry terms the corpus never
  // produced), where the Bloom filter proves terms absent and skips
  // components outright.
  struct Mix {
    const char* name;
    double vocab_factor;
  };
  constexpr Mix kMixes[] = {{"in_vocab", 1.0}, {"oov", 2.0}};

  bool all_match = true;
  bool baseline_checksums_match = true;
  double baseline_total_us = 0.0;  // Summed over rows the baseline covers.
  double current_total_us = 0.0;
  for (const Mix& mix : kMixes)
  for (const std::size_t base : {500, 1000, 2000, 4000}) {
    const std::size_t n = bench::Scaled(base);
    auto query_config = bench::DefaultQueryConfig(corpus.vocab_size());
    query_config.vocab_size = static_cast<std::size_t>(
        static_cast<double>(corpus.vocab_size()) * mix.vocab_factor);

    rtsi_index.SetUseSkipHeader(true);
    const Pass skip_on =
        MeasureRtsi(rtsi_index, query_config, n, k, clock_a.Now());
    rtsi_index.SetUseSkipHeader(false);
    const Pass skip_off =
        MeasureRtsi(rtsi_index, query_config, n, k, clock_a.Now());
    rtsi_index.SetUseSkipHeader(true);
    const Pass tiered =
        MeasureRtsi(tiered_index, query_config, n, k, clock_c.Now());

    // Bit-identity audit: pinpoint the first diverging query.
    bool match = skip_on.per_query.size() == skip_off.per_query.size();
    for (std::size_t i = 0; match && i < skip_on.per_query.size(); ++i) {
      if (skip_on.per_query[i] != skip_off.per_query[i]) {
        std::fprintf(stderr,
                     "DIVERGENCE queries=%zu query=%zu "
                     "(skip=%016llx noskip=%016llx)\n",
                     n, i,
                     static_cast<unsigned long long>(skip_on.per_query[i]),
                     static_cast<unsigned long long>(skip_off.per_query[i]));
        match = false;
      }
    }
    all_match = all_match && match;

    workload::QueryGenerator lsii_gen(query_config);
    const auto lsii_stats =
        workload::MeasureQueries(*lsii_index, lsii_gen, n, k, clock_b);

    const double gain = skip_off.mean_us > 0.0
                            ? (skip_off.mean_us - skip_on.mean_us) /
                                  skip_off.mean_us
                            : 0.0;
    char checksum_hex[32];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(skip_on.checksum));

    // The pre-pipeline column: this (mix, queries) row in the baseline.
    const std::map<std::string, std::string>* base_row = nullptr;
    if (baseline_comparable) {
      for (const auto& row : baseline.rows) {
        if (bench::BaselineReport::Str(row, "mix") == mix.name &&
            bench::BaselineReport::Num(row, "queries") ==
                static_cast<double>(n)) {
          base_row = &row;
          break;
        }
      }
    }
    double base_mean = 0.0, drift = 0.0;
    if (base_row != nullptr) {
      base_mean = bench::BaselineReport::Num(*base_row, "mean_us_skip");
      drift = base_mean > 0.0 ? (skip_on.mean_us - base_mean) / base_mean
                              : 0.0;
      baseline_total_us +=
          bench::BaselineReport::Num(*base_row, "total_us_skip");
      current_total_us += skip_on.total_us;
      const std::string base_checksum =
          bench::BaselineReport::Str(*base_row, "checksum");
      if (!base_checksum.empty() && base_checksum != checksum_hex) {
        std::fprintf(stderr,
                     "DIVERGENCE vs pre-pipeline baseline mix=%s "
                     "queries=%zu (baseline=%s current=%s)\n",
                     mix.name, n, base_checksum.c_str(), checksum_hex);
        baseline_checksums_match = false;
      }
    }

    table.AddRow(
        {std::string(mix.name) + "/" + std::to_string(n),
         workload::FormatMicros(skip_on.mean_us),
         base_row != nullptr ? workload::FormatMicros(base_mean) : "-",
         base_row != nullptr
             ? workload::FormatDouble(drift * 100.0, 1) + "%"
             : "-",
         workload::FormatMicros(skip_off.mean_us),
         workload::FormatDouble(gain * 100.0, 1) + "%",
         workload::FormatMicros(tiered.mean_us),
         workload::FormatMicros(lsii_stats.mean_micros()),
         std::to_string(skip_on.stats.components_skipped) + "/" +
             std::to_string(skip_on.stats.components_visited),
         std::to_string(skip_on.stats.candidates_screened),
         match ? "ok" : "MISMATCH"});

    auto& row = report.AddRow();
    row.Field("mix", mix.name)
        .Field("queries", static_cast<double>(n))
        .Field("mean_us_skip", skip_on.mean_us)
        .Field("mean_us_noskip", skip_off.mean_us)
        .Field("total_us_skip", skip_on.total_us)
        .Field("total_us_noskip", skip_off.total_us)
        .Field("improvement", gain)
        .Field("mean_us_tiered", tiered.mean_us)
        .Field("total_us_tiered", tiered.total_us)
        .Field("tiered_components_skipped",
               static_cast<double>(tiered.stats.components_skipped))
        .Field("lsii_mean_us", lsii_stats.mean_micros())
        .Field("components_visited",
               static_cast<double>(skip_on.stats.components_visited))
        .Field("components_pruned",
               static_cast<double>(skip_on.stats.components_pruned))
        .Field("components_skipped",
               static_cast<double>(skip_on.stats.components_skipped))
        .Field("bloom_false_positives",
               static_cast<double>(skip_on.stats.bloom_false_positives))
        .Field("candidates_screened",
               static_cast<double>(skip_on.stats.candidates_screened))
        .Field("candidates_scored",
               static_cast<double>(skip_on.stats.candidates_scored))
        .Field("checksum", checksum_hex)
        .Field("results_match", match ? "yes" : "NO");
    if (base_row != nullptr) {
      row.Field("baseline_mean_us_skip", base_mean)
          .Field("baseline_drift", drift);
    }
  }
  table.Print();

  // Before/after-pipeline summary and the no-regression gate, over the
  // rows the committed baseline covers (see bench/baselines/README.md).
  if (baseline_comparable && baseline_total_us > 0.0) {
    const double regression = current_total_us / baseline_total_us - 1.0;
    report.Field("baseline_total_us_skip", baseline_total_us);
    report.Field("total_us_skip_vs_baseline", regression);
    std::printf(
        "pipeline before/after: pre=%.0fus post=%.0fus (%+.1f%%), "
        "checksums %s\n",
        baseline_total_us, current_total_us, regression * 100.0,
        baseline_checksums_match ? "identical" : "DIVERGED");
    if (regression > 0.05) {
      std::fprintf(stderr,
                   "%s: sealed-phase query time regressed %.1f%% vs the "
                   "pre-pipeline baseline (budget 5%%)\n",
                   bench::LatencyGateEnforced() ? "error" : "warning",
                   regression * 100.0);
      if (bench::LatencyGateEnforced()) {
        report.Write("BENCH_fig10_query.json");
        return 1;
      }
    }
  }
  report.Write("BENCH_fig10_query.json");
  if (!all_match) {
    std::fprintf(stderr, "error: skip on/off results diverged\n");
    return 1;
  }
  if (!baseline_checksums_match) {
    std::fprintf(stderr,
                 "error: results diverged from the committed pre-pipeline "
                 "baseline (bench/baselines/BENCH_fig10_query.json)\n");
    return 1;
  }
  return 0;
}
