// Figure 10: query cost versus the number of queries, RTSI vs LSII.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  // Past the big-table cache crossover (see EXPERIMENTS.md); the query
  // gap between RTSI and LSII is cache-driven and needs corpus volume.
  const std::size_t init_streams = bench::Scaled(10000);
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(init_streams));

  workload::ReportTable table(
      "Figure 10: query cost vs #queries (" +
          std::to_string(init_streams) + " streams, k=10)",
      {"#queries", "RTSI total", "RTSI mean", "LSII total", "LSII mean"});

  // Build both indices once; sweep the query count.
  auto rtsi_index = bench::MakeIndex("RTSI", bench::DefaultIndexConfig());
  auto lsii_index = bench::MakeIndex("LSII", bench::DefaultIndexConfig());
  SimulatedClock clock_a, clock_b;
  workload::InitializeIndex(*rtsi_index, corpus, 0, init_streams, clock_a);
  workload::InitializeIndex(*lsii_index, corpus, 0, init_streams, clock_b);

  for (const std::size_t base : {500, 1000, 2000, 4000}) {
    const std::size_t n = bench::Scaled(base);
    workload::QueryGenerator gen_a(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    workload::QueryGenerator gen_b(
        bench::DefaultQueryConfig(corpus.vocab_size()));
    const auto rtsi_stats =
        workload::MeasureQueries(*rtsi_index, gen_a, n, 10, clock_a);
    const auto lsii_stats =
        workload::MeasureQueries(*lsii_index, gen_b, n, 10, clock_b);
    table.AddRow({std::to_string(n),
                  workload::FormatMicros(rtsi_stats.sum_micros()),
                  workload::FormatMicros(rtsi_stats.mean_micros()),
                  workload::FormatMicros(lsii_stats.sum_micros()),
                  workload::FormatMicros(lsii_stats.mean_micros())});
  }
  table.Print();
  return 0;
}
