// Figure 7: index initialization — elapsed time and memory versus the
// number of audio streams, RTSI vs LSII.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "common/memory_tracker.h"
#include "workload/driver.h"
#include "workload/report.h"

int main() {
  using namespace rtsi;
  workload::ReportTable table(
      "Figure 7: initialization time and memory vs #streams",
      {"#streams", "RTSI time", "LSII time", "RTSI memory", "LSII memory"});

  for (const std::size_t base : {1000, 2000, 4000, 8000}) {
    const std::size_t n = bench::Scaled(base);
    const workload::SyntheticCorpus corpus(bench::DefaultCorpusConfig(n));

    double times[2];
    std::size_t memory[2];
    int slot = 0;
    for (const char* name : {"RTSI", "LSII"}) {
      auto index = bench::MakeIndex(name, bench::DefaultIndexConfig());
      SimulatedClock clock;
      const auto init = workload::InitializeIndex(*index, corpus, 0, n, clock);
      times[slot] = init.elapsed_micros;
      memory[slot] = init.index_bytes;
      ++slot;
    }
    table.AddRow({std::to_string(n), workload::FormatMicros(times[0]),
                  workload::FormatMicros(times[1]),
                  workload::FormatBytes(memory[0]),
                  workload::FormatBytes(memory[1])});
  }
  table.Print();
  return 0;
}
