// Figure 12: query sensitivity — mean query latency while varying delta
// (the size of I0), rho (the LSM ratio), the freshness weight w_f, and
// the index size (#streams), RTSI vs LSII.

#include <string>

#include "bench_util.h"
#include "common/clock.h"
#include "workload/driver.h"
#include "workload/report.h"

namespace {

using namespace rtsi;

double MeanQueryMicros(const char* name, const core::RtsiConfig& config,
                       std::size_t num_streams, std::size_t num_queries) {
  const workload::SyntheticCorpus corpus(
      bench::DefaultCorpusConfig(num_streams));
  auto index = bench::MakeIndex(name, config);
  SimulatedClock clock;
  workload::InitializeIndex(*index, corpus, 0, num_streams, clock);
  workload::QueryGenerator gen(
      bench::DefaultQueryConfig(corpus.vocab_size()));
  return workload::MeasureQueries(*index, gen, num_queries, 10, clock)
      .mean_micros();
}

}  // namespace

int main() {
  const std::size_t num_streams = bench::Scaled(6000);
  const std::size_t num_queries = bench::Scaled(2000);

  {
    workload::ReportTable table("Figure 12a: query latency vs delta",
                                {"delta", "RTSI", "LSII"});
    for (const std::size_t delta :
         {16 * 1024, 64 * 1024, 256 * 1024}) {
      auto config = bench::DefaultIndexConfig();
      config.lsm.delta = delta;
      table.AddRow({std::to_string(delta / 1024) + "k",
                    workload::FormatMicros(MeanQueryMicros(
                        "RTSI", config, num_streams, num_queries)),
                    workload::FormatMicros(MeanQueryMicros(
                        "LSII", config, num_streams, num_queries))});
    }
    table.Print();
  }

  {
    workload::ReportTable table("Figure 12b: query latency vs rho",
                                {"rho", "RTSI", "LSII"});
    for (const double rho : {2.0, 4.0, 8.0}) {
      auto config = bench::DefaultIndexConfig();
      config.lsm.rho = rho;
      table.AddRow({workload::FormatDouble(rho, 1),
                    workload::FormatMicros(MeanQueryMicros(
                        "RTSI", config, num_streams, num_queries)),
                    workload::FormatMicros(MeanQueryMicros(
                        "LSII", config, num_streams, num_queries))});
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 12c: query latency vs freshness weight w_f",
        {"w_f", "RTSI", "LSII"});
    for (const double wf : {0.1, 0.2, 0.4, 0.6}) {
      auto config = bench::DefaultIndexConfig();
      config.weights.frsh = wf;
      config.weights.rel = 0.8 - wf;
      table.AddRow({workload::FormatDouble(wf, 1),
                    workload::FormatMicros(MeanQueryMicros(
                        "RTSI", config, num_streams, num_queries)),
                    workload::FormatMicros(MeanQueryMicros(
                        "LSII", config, num_streams, num_queries))});
    }
    table.Print();
  }

  {
    workload::ReportTable table(
        "Figure 12d: query latency vs index size (#streams)",
        {"#streams", "RTSI", "LSII"});
    for (const std::size_t base : {3000, 6000, 12000}) {
      const std::size_t n = bench::Scaled(base);
      const auto config = bench::DefaultIndexConfig();
      table.AddRow({std::to_string(n),
                    workload::FormatMicros(
                        MeanQueryMicros("RTSI", config, n, num_queries)),
                    workload::FormatMicros(
                        MeanQueryMicros("LSII", config, n, num_queries))});
    }
    table.Print();
  }
  return 0;
}
