// Quickstart: index a handful of live audio streams and run keyword
// queries against the RTSI core API directly.
//
//   $ ./quickstart
//
// Demonstrates: InsertWindow (Algorithm 1), live-stream visibility,
// top-k queries (Algorithm 3), popularity updates and lazy deletion.

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/rtsi_index.h"
#include "text/term_dictionary.h"
#include "text/tokenizer.h"

namespace {

using rtsi::core::RtsiIndex;
using rtsi::core::ScoredStream;
using rtsi::core::TermCount;

// Tokenize a transcript snippet into (TermId, tf) counts.
std::vector<TermCount> Counts(rtsi::text::TermDictionary& dict,
                              const std::string& transcript) {
  const rtsi::text::Tokenizer tokenizer;
  std::vector<TermCount> counts;
  for (const std::string& token : tokenizer.Tokenize(transcript)) {
    const rtsi::TermId id = dict.Intern(token);
    bool found = false;
    for (auto& tc : counts) {
      if (tc.term == id) {
        ++tc.tf;
        found = true;
      }
    }
    if (!found) counts.push_back({id, 1});
  }
  return counts;
}

void PrintResults(const char* query,
                  const std::vector<ScoredStream>& results) {
  std::printf("query \"%s\":\n", query);
  for (const auto& r : results) {
    std::printf("  stream %llu  score %.4f\n",
                static_cast<unsigned long long>(r.stream), r.score);
  }
  if (results.empty()) std::printf("  (no results)\n");
}

}  // namespace

int main() {
  rtsi::SimulatedClock clock;
  rtsi::text::TermDictionary dict;

  rtsi::core::RtsiConfig config;  // Sensible defaults; see core/config.h.
  RtsiIndex index(config);

  // Three broadcasters go live; every ~60 s the ingestion layer hands the
  // index one transcribed window per stream.
  struct Broadcast {
    rtsi::StreamId id;
    const char* window1;
    const char* window2;
  };
  const Broadcast broadcasts[] = {
      {1, "tonight we review the latest science fiction movies",
       "the new space opera movie is a spectacular experience"},
      {2, "live football coverage from the city stadium tonight",
       "the home team scores again what a match"},
      {3, "cooking show fresh pasta with tomato and basil",
       "now we plate the pasta and add parmesan"},
  };

  for (const auto& b : broadcasts) {
    index.InsertWindow(b.id, clock.Now(), Counts(dict, b.window1),
                       /*live=*/true);
  }
  clock.Advance(60 * rtsi::kMicrosPerSecond);
  for (const auto& b : broadcasts) {
    index.InsertWindow(b.id, clock.Now(), Counts(dict, b.window2),
                       /*live=*/true);
  }

  std::printf("== live streams are searchable immediately ==\n");
  PrintResults("movie", index.Query({dict.Lookup("movie")}, 3, clock.Now()));
  PrintResults("pasta tomato",
               index.Query({dict.Lookup("pasta"), dict.Lookup("tomato")}, 3,
                           clock.Now()));

  // Listeners flock to the football stream: popularity updates are O(1)
  // against the small per-stream table.
  index.UpdatePopularity(2, 50'000);
  std::printf("\n== after 50k plays on stream 2 ==\n");
  PrintResults("tonight",
               index.Query({dict.Lookup("tonight")}, 3, clock.Now()));

  // Stream 1 ends and its broadcaster deletes it.
  index.FinishStream(1);
  index.DeleteStream(1);
  std::printf("\n== after deleting stream 1 ==\n");
  PrintResults("movie", index.Query({dict.Lookup("movie")}, 3, clock.Now()));

  std::printf("\nindex memory: %zu bytes, live-table streams: %zu\n",
              index.MemoryBytes(), index.live_table().num_streams());
  return 0;
}
