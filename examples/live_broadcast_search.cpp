// Live broadcast search: a platform-scale scenario on the synthetic
// Ximalaya-like corpus. Thousands of streams broadcast concurrently in
// 60-second windows while listeners fire queries; the example reports
// result freshness (live streams appearing in results while still
// broadcasting) and latency, and shows a merge happening mid-broadcast
// without blocking queries.
//
//   $ ./live_broadcast_search [num_streams]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/clock.h"
#include "common/latency_stats.h"
#include "core/rtsi_index.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"

int main(int argc, char** argv) {
  using namespace rtsi;
  const std::size_t num_streams =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;

  workload::CorpusConfig corpus_config;
  corpus_config.num_streams = num_streams;
  corpus_config.vocab_size = 20'000;
  corpus_config.avg_windows_per_stream = 8;
  corpus_config.min_windows_per_stream = 3;
  corpus_config.words_per_window = 80;
  const workload::SyntheticCorpus corpus(corpus_config);

  core::RtsiConfig config;
  config.lsm.delta = 64 * 1024;
  core::RtsiIndex index(config);
  SimulatedClock clock;

  workload::QueryGenConfig query_config;
  query_config.vocab_size = corpus_config.vocab_size;
  workload::QueryGenerator queries(query_config);

  std::printf("broadcasting %zu live streams, one window per minute...\n",
              num_streams);

  LatencyStats query_latency;
  std::size_t live_hits = 0, total_results = 0, windows = 0;
  Stopwatch watch;

  int max_windows = 0;
  std::vector<int> stream_windows(num_streams);
  for (std::size_t s = 0; s < num_streams; ++s) {
    stream_windows[s] = corpus.NumWindows(s);
    if (stream_windows[s] > max_windows) max_windows = stream_windows[s];
  }

  for (int w = 0; w < max_windows; ++w) {
    // One simulated minute: every active stream delivers a window.
    for (std::size_t s = 0; s < num_streams; ++s) {
      if (w >= stream_windows[s]) continue;
      const bool last = (w + 1 == stream_windows[s]);
      index.InsertWindow(s, clock.Now(), corpus.WindowTerms(s, w), !last);
      if (last) index.FinishStream(s);
      ++windows;
    }
    // Listeners issue a burst of queries between window rounds.
    for (int q = 0; q < 20; ++q) {
      const auto terms = queries.Next();
      watch.Restart();
      const auto results = index.Query(terms, 10, clock.Now());
      query_latency.Record(watch.ElapsedMicros());
      for (const auto& r : results) {
        ++total_results;
        if (index.stream_table().IsLive(r.stream)) ++live_hits;
      }
    }
    clock.Advance(60 * kMicrosPerSecond);
  }

  const auto merge_stats = index.GetMergeStats();
  std::printf("\nwindows inserted:        %zu\n", windows);
  std::printf("total postings:          %zu (across %zu LSM levels + L0)\n",
              index.tree().total_postings(), index.tree().num_levels());
  std::printf("merges while live:       %zu (avg %.1f ms each)\n",
              merge_stats.merges,
              merge_stats.merges == 0
                  ? 0.0
                  : merge_stats.total_micros / merge_stats.merges / 1000.0);
  std::printf("query latency:           %s\n",
              query_latency.Summary().c_str());
  std::printf("results from LIVE streams: %.1f%% (%zu of %zu)\n",
              total_results == 0 ? 0.0 : 100.0 * live_hits / total_results,
              live_hits, total_results);
  std::printf("index memory:            %.2f MB\n",
              index.MemoryBytes() / (1024.0 * 1024.0));
  std::printf("live-term table:         %zu streams, %zu entries\n",
              index.live_table().num_streams(),
              index.live_table().num_entries());
  return 0;
}
