// HTTP demo server: the paper's future-work "demonstration with a user
// friendly interface". Preloads a few shows, then serves search over
// HTTP on localhost.
//
//   $ ./http_demo [port]          (default 8080; 0 = ephemeral)
//   $ curl 'localhost:8080/search?q=football'
//   $ curl 'localhost:8080/ingest?stream=9&words=breaking+news+storm'
//   $ curl 'localhost:8080/live?q=news'
//   $ curl 'localhost:8080/stats'
//
// With RTSI_DEMO_SELFTEST=1 the binary starts on an ephemeral port,
// issues a few requests against itself and exits (used by automation).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/clock.h"
#include "server/http_server.h"
#include "server/search_handler.h"
#include "service/search_service.h"

namespace {

using namespace rtsi;

std::string LocalGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

int main(int argc, char** argv) {
  const bool selftest = std::getenv("RTSI_DEMO_SELFTEST") != nullptr;
  const int port = selftest ? 0 : (argc > 1 ? std::atoi(argv[1]) : 8080);

  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.ingestion.acoustic_path = service::AcousticPath::kDirect;
  service::SearchService search_service(config, &clock);

  // Preload a few shows so the demo answers immediately.
  search_service.IngestWindow(1, {"morning", "news", "politics", "economy"});
  search_service.IngestWindow(2, {"football", "match", "goal", "stadium"});
  search_service.IngestWindow(3, {"smooth", "jazz", "saxophone", "night"});
  search_service.UpdatePopularity(2, 5000);
  clock.Advance(kMicrosPerMinute);

  server::HttpServer http;
  server::RegisterSearchRoutes(http, search_service, clock);
  const Status status = http.Start(port);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to start: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("RTSI demo server listening on http://127.0.0.1:%d/\n",
              http.port());

  if (selftest) {
    const std::string search = LocalGet(http.port(), "/search?q=football");
    const std::string stats = LocalGet(http.port(), "/stats");
    const std::string ingest = LocalGet(
        http.port(), "/ingest?stream=9&words=breaking+storm+warning");
    const std::string search2 = LocalGet(http.port(), "/search?q=storm");
    std::printf("selftest /search: %s", search.c_str());
    std::printf("selftest /stats: %s", stats.c_str());
    std::printf("selftest /ingest: %s", ingest.c_str());
    std::printf("selftest /search storm: %s", search2.c_str());
    http.Stop();
    const bool ok = search.find("\"stream\":2") != std::string::npos &&
                    stats.find("text_postings") != std::string::npos &&
                    search2.find("\"stream\":9") != std::string::npos;
    std::printf("selftest %s\n", ok ? "PASSED" : "FAILED");
    return ok ? 0 : 1;
  }

  std::printf("press Enter to stop.\n");
  (void)std::getchar();
  http.Stop();
  return 0;
}
