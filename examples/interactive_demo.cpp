// Interactive demo of the multi-modal live audio search service (the
// paper's future-work item #1: "a demonstration with a user friendly
// interface").
//
//   $ ./interactive_demo
//   rtsi> ingest 1 morning news politics economy
//   rtsi> search news
//   rtsi> voice morning economy      (synthesizes audio, decodes, searches)
//   rtsi> pop 1 5000
//   rtsi> stats
//   rtsi> quit
//
// When stdin is not a terminal a scripted session runs instead, so the
// binary is exercised by automation too.

#include <unistd.h>

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "service/search_service.h"

namespace {

using namespace rtsi;

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  ingest <id> <word> [word...]   add a 60s window of a live stream\n"
      "  finish <id>                    broadcast ended\n"
      "  delete <id>                    remove the stream\n"
      "  pop <id> <delta>               add plays to the counter\n"
      "  search <word> [word...]        keyword search (both modalities)\n"
      "  voice <word> [word...]         synthesize speech, voice-search it\n"
      "  tick [minutes]                 advance the clock (default 1)\n"
      "  stats                          index statistics\n"
      "  help | quit\n");
}

void PrintResults(const std::vector<service::SearchResult>& results) {
  if (results.empty()) {
    std::printf("  (no results)\n");
    return;
  }
  for (const auto& r : results) {
    std::printf("  stream %llu  fused %.4f (text %.4f, sound %.4f)\n",
                static_cast<unsigned long long>(r.stream), r.score,
                r.text_score, r.sound_score);
  }
}

bool HandleLine(const std::string& line, service::SearchService& service,
                SimulatedClock& clock) {
  std::istringstream in(line);
  std::string command;
  if (!(in >> command)) return true;

  if (command == "quit" || command == "exit") return false;
  if (command == "help") {
    PrintHelp();
  } else if (command == "ingest") {
    StreamId id;
    if (!(in >> id)) {
      std::printf("usage: ingest <id> <word...>\n");
      return true;
    }
    std::vector<std::string> words;
    std::string word;
    while (in >> word) words.push_back(word);
    if (words.empty()) {
      std::printf("usage: ingest <id> <word...>\n");
      return true;
    }
    service.IngestWindow(id, words, /*live=*/true);
    std::printf("  indexed %zu words into stream %llu (live)\n",
                words.size(), static_cast<unsigned long long>(id));
  } else if (command == "finish") {
    StreamId id;
    if (in >> id) {
      service.FinishStream(id);
      std::printf("  stream %llu finished\n",
                  static_cast<unsigned long long>(id));
    }
  } else if (command == "delete") {
    StreamId id;
    if (in >> id) {
      service.DeleteStream(id);
      std::printf("  stream %llu deleted\n",
                  static_cast<unsigned long long>(id));
    }
  } else if (command == "pop") {
    StreamId id;
    std::uint64_t delta;
    if (in >> id >> delta) {
      service.UpdatePopularity(id, delta);
      std::printf("  +%llu plays on stream %llu\n",
                  static_cast<unsigned long long>(delta),
                  static_cast<unsigned long long>(id));
    }
  } else if (command == "search") {
    std::string rest, word;
    while (in >> word) rest += (rest.empty() ? "" : " ") + word;
    PrintResults(service.SearchKeywords(rest, 5));
  } else if (command == "voice") {
    std::vector<std::string> words;
    std::string word;
    while (in >> word) words.push_back(word);
    const audio::PcmBuffer pcm = service.SynthesizeQuery(words);
    std::printf("  synthesized %.2fs of speech, decoding...\n",
                pcm.duration_seconds());
    PrintResults(service.SearchVoice(pcm, 5));
  } else if (command == "tick") {
    int minutes = 1;
    in >> minutes;
    clock.Advance(static_cast<Timestamp>(minutes) * kMicrosPerMinute);
    std::printf("  clock advanced %d minute(s)\n", minutes);
  } else if (command == "stats") {
    auto& text = service.text_index();
    auto& sound = service.sound_index();
    std::printf("  text tree:  %zu postings, %zu levels, %zu merges\n",
                text.tree().total_postings(), text.tree().num_levels(),
                text.GetMergeStats().merges);
    std::printf("  sound tree: %zu postings, %zu levels\n",
                sound.tree().total_postings(), sound.tree().num_levels());
    std::printf("  dictionaries: %zu words, %zu lattice units\n",
                service.text_dictionary().size(),
                service.sound_dictionary().size());
    std::printf("  memory: %.2f MB (text) + %.2f MB (sound)\n",
                text.MemoryBytes() / (1024.0 * 1024.0),
                sound.MemoryBytes() / (1024.0 * 1024.0));
  } else {
    std::printf("unknown command '%s' (try: help)\n", command.c_str());
  }
  return true;
}

}  // namespace

int main() {
  SimulatedClock clock;
  service::SearchServiceConfig config;
  config.index.lsm.delta = 16 * 1024;
  config.ingestion.acoustic_path = service::AcousticPath::kFull;
  config.ingestion.transcriber.word_error_rate = 0.05;
  service::SearchService service(config, &clock);

  if (isatty(fileno(stdin)) != 0) {
    std::printf("RTSI multi-modal live audio search — interactive demo\n");
    PrintHelp();
    std::string line;
    std::printf("rtsi> ");
    std::fflush(stdout);
    while (std::getline(std::cin, line)) {
      if (!HandleLine(line, service, clock)) break;
      std::printf("rtsi> ");
      std::fflush(stdout);
    }
    return 0;
  }

  // Scripted session (non-interactive stdin).
  const char* script[] = {
      "ingest 1 morning news politics economy weather",
      "ingest 2 jazz saxophone midnight radio session",
      "ingest 3 football match live goal stadium",
      "tick 1",
      "ingest 1 interview minister budget taxes",
      "search news budget",
      "search jazz",
      "voice football stadium",
      "pop 3 10000",
      "search live",
      "finish 1",
      "delete 2",
      "search jazz",
      "stats",
  };
  std::printf("RTSI interactive demo (scripted session)\n\n");
  for (const char* line : script) {
    std::printf("rtsi> %s\n", line);
    HandleLine(line, service, clock);
  }
  return 0;
}
