// Multi-modal voice search: the full Figure-4 pipeline.
//
// Ground-truth transcripts are ingested through the simulated ASR (noisy
// transcription + phonetic lattices) into two RTSI LSM-trees (text +
// sound). Queries arrive both as keywords and as synthesized *audio*
// which is decoded back through MFCC + the acoustic model — the complete
// voice round trip.
//
//   $ ./voice_search

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "service/search_service.h"

namespace {

void PrintResults(const char* label,
                  const std::vector<rtsi::service::SearchResult>& results) {
  std::printf("%s\n", label);
  for (const auto& r : results) {
    std::printf("  stream %llu  fused %.4f (text %.4f, sound %.4f)\n",
                static_cast<unsigned long long>(r.stream), r.score,
                r.text_score, r.sound_score);
  }
  if (results.empty()) std::printf("  (no results)\n");
}

}  // namespace

int main() {
  using namespace rtsi;
  SimulatedClock clock;

  service::SearchServiceConfig config;
  config.index.lsm.delta = 8 * 1024;
  // Full acoustic path: synthesize -> MFCC -> acoustic model -> lattice.
  config.ingestion.acoustic_path = service::AcousticPath::kFull;
  config.ingestion.transcriber.word_error_rate = 0.08;  // Realistic ASR.
  service::SearchService service(config, &clock);

  struct Show {
    StreamId id;
    const char* title;
    std::vector<std::string> words;
  };
  const std::vector<Show> shows = {
      {1, "morning news",
       {"morning", "news", "politics", "economy", "weather", "report"}},
      {2, "tech podcast",
       {"technology", "podcast", "robots", "machine", "learning", "chips"}},
      {3, "night jazz",
       {"smooth", "jazz", "saxophone", "midnight", "radio", "session"}},
      {4, "football live",
       {"football", "match", "live", "goal", "stadium", "crowd"}},
  };

  std::printf("ingesting %zu live shows through the ASR pipeline "
              "(synthesize -> MFCC -> lattice)...\n",
              shows.size());
  for (int window = 0; window < 2; ++window) {
    for (const auto& show : shows) {
      service.IngestWindow(show.id, show.words, /*live=*/true);
    }
    clock.Advance(60 * kMicrosPerSecond);
  }

  std::printf("\ntext dictionary: %zu terms, sound dictionary: %zu lattice "
              "units\n\n",
              service.text_dictionary().size(),
              service.sound_dictionary().size());

  // 1. Keyword search (converted to voice internally for the sound tree).
  PrintResults("keyword query \"machine learning\":",
               service.SearchKeywords("machine learning", 3));
  PrintResults("\nkeyword query \"jazz saxophone\":",
               service.SearchKeywords("jazz saxophone", 3));

  // 2. Voice search: the query is audio, synthesized here as a stand-in
  // for a user's microphone, then decoded by the service.
  const audio::PcmBuffer spoken =
      service.SynthesizeQuery({"football", "stadium"});
  std::printf("\nvoice query: %.2f s of audio (%d Hz)\n",
              spoken.duration_seconds(), spoken.sample_rate_hz);
  PrintResults("voice query \"football stadium\":",
               service.SearchVoice(spoken, 3));

  return 0;
}
