// IndexShardSet: the horizontal scale-out seam (DESIGN.md §6i).
//
// Partitions streams across N independent RTSI shards by a mixed hash of
// the stream id. Every shard is a full single-node index — its own
// LsmTree (own delta / L0 freeze schedule / compaction policy), its own
// journal and snapshot files in durable mode — so a window seal or merge
// cascade on one shard never stalls ingest or queries on another, and a
// disk failure degrades exactly one partition.
//
// Queries scatter-gather: the set fans the query out (each shard pins its
// own epoch-published IndexView wait-free and runs the PR 1 executor at
// its configured query_threads), then merges the per-shard top-k with the
// deterministic total order of core::TopKHeap. Results are bit-identical
// to a single unsharded index holding the same streams:
//   * every stream lives in exactly one shard, so the global top-k is a
//     subset of the union of per-shard top-k lists;
//   * per-candidate scores are computed from the corpus-global statistics
//     in core::SharedScoringState (df for idf, max popularity for the
//     PopScore normalizer), which every shard updates and reads;
//   * the merge heap applies the same (score desc, stream asc) total
//     order as every other query path in the repo.
//
// Durable mode gives each shard its own directory:
//   <dir>/shard-<i>/index.snap      — shard snapshot (storage/snapshot.h)
//   <dir>/shard-<i>/index.journal   — shard journal  (storage/journal.h)
// Recovery opens each shard independently (snapshot + journal replay, the
// PR 3 crash-consistency contract per shard) and then rebuilds the shared
// scoring aggregate by summing the recovered per-shard tables.

#ifndef RTSI_SHARD_SHARD_SET_H_
#define RTSI_SHARD_SHARD_SET_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/rtsi_index.h"
#include "storage/journal.h"

namespace rtsi::shard {

struct ShardSetConfig {
  /// Per-shard index configuration. `lsm.delta` is per shard: N shards
  /// seal after delta postings EACH, so seals (and the cascades they
  /// trigger) happen independently per partition.
  core::RtsiConfig index;
  int num_shards = 1;
  /// Non-empty = durable mode: every shard journals to its own directory
  /// under this root (created if missing).
  std::string durable_dir;
  storage::JournalOptions journal;
  /// Fan the scatter phase out over this many pool workers (the calling
  /// thread gathers). 0 = scatter sequentially on the caller — the right
  /// default on small machines; per-shard query_threads still applies.
  int scatter_threads = 0;
  /// Per-shard compaction-policy overrides: entry i applies to shard i.
  /// Shards beyond the vector's length (and all shards when it is empty)
  /// keep `index.lsm.policy`. Lets a deployment run, say, leveled
  /// compaction on a hot shard and lazy-leveled everywhere else.
  std::vector<lsm::MergePolicy> shard_policies;
};

/// The shard a stream routes to: splitmix64 finalizer over the id, mod N.
/// Raw ids are often sequential; the mix spreads them uniformly so shard
/// load stays balanced (see DESIGN.md §6i).
int ShardForStream(StreamId stream, int num_shards);

class IndexShardSet : public core::SearchIndex {
 public:
  /// In-memory shard set (`config.durable_dir` ignored).
  explicit IndexShardSet(const ShardSetConfig& config);

  /// Adopts already-built indices as the shards (snapshot-restore path;
  /// the vector's size becomes the shard count). Binds the shared scoring
  /// state and rebuilds its aggregate from the adopted tables.
  IndexShardSet(const ShardSetConfig& config,
                std::vector<std::unique_ptr<core::RtsiIndex>> shards);

  /// Durable mode: opens (or recovers) every shard under
  /// `config.durable_dir`. `recovery`, when non-null, receives one entry
  /// per shard.
  static Result<std::unique_ptr<IndexShardSet>> Open(
      const ShardSetConfig& config,
      std::vector<storage::RecoveryStats>* recovery = nullptr);

  ~IndexShardSet() override;

  // SearchIndex: mutations route to the owning shard. On a sharded set
  // (num_shards > 1) InsertWindow silently drops a window for a retired
  // stream id (see CheckInsert); callers that need the error use
  // InsertWindowChecked.
  void InsertWindow(StreamId stream, Timestamp now,
                    const std::vector<core::TermCount>& terms,
                    bool live) override;

  /// Documented precondition of the sharded deployment: a stream id must
  /// never be reused after FinishStream/DeleteStream (the scatter-gather
  /// bit-identity argument assumes each stream's history lives and dies in
  /// one shard epoch). On a sharded set this returns FailedPrecondition —
  /// instead of undefined behavior — for such an id; a single-shard set
  /// accepts everything (the classic single-index semantics, where
  /// re-insertion after finish is the documented "stream resumes" path).
  Status InsertWindowChecked(StreamId stream, Timestamp now,
                             const std::vector<core::TermCount>& terms,
                             bool live);

  /// The precondition check of InsertWindowChecked alone: Ok when
  /// inserting `stream` is allowed right now. Callers coordinating
  /// several sets (e.g. the service's two modalities) validate all of
  /// them before applying to any. Advisory under concurrency: a racing
  /// FinishStream can retire the id between check and insert.
  Status CheckInsert(StreamId stream) const;

  void FinishStream(StreamId stream) override;
  void DeleteStream(StreamId stream) override;
  void UpdatePopularity(StreamId stream, std::uint64_t delta) override;

  /// Scatter-gather top-k across all shards; bit-identical to a
  /// single-shard index on the same data (see file comment).
  std::vector<core::ScoredStream> Query(const std::vector<TermId>& terms,
                                        int k, Timestamp now,
                                        core::QueryStats* stats) override;
  using core::SearchIndex::Query;

  /// Scatter-gather with a result filter (e.g. live-only search).
  std::vector<core::ScoredStream> QueryFiltered(
      const std::vector<TermId>& terms, int k, Timestamp now,
      const core::QueryFilter& filter, core::QueryStats* stats = nullptr);

  std::size_t MemoryBytes() const override;
  std::string name() const override;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  bool durable() const { return !durables_.empty(); }

  /// The shard a stream routes to (tests, stats, per-shard tooling).
  int ShardOf(StreamId stream) const {
    return ShardForStream(stream, num_shards());
  }

  /// The underlying RTSI index of shard `s`.
  core::RtsiIndex& shard_index(int s);
  const core::RtsiIndex& shard_index(int s) const;

  /// The durable wrapper of shard `s`; null in in-memory mode.
  storage::DurableIndex* durable_shard(int s);

  /// Checkpoints every shard (durable mode). Returns the first error but
  /// attempts every shard regardless — one shard's full disk must not
  /// block the others' checkpoints.
  Status Checkpoint();
  Status CheckpointShard(int s);

  /// Blocks until no shard has a merge pending or running.
  void WaitForMerges();

  /// Per-shard compaction policy (the per-shard tuning seam).
  void SetMergePolicy(int s, lsm::MergePolicy policy);

  /// Rebuilds the shared scoring aggregate (df + max pop) from the
  /// shards' authoritative tables. Called automatically by the
  /// constructors and Open; call again after externally mutating a shard
  /// (e.g. restoring a snapshot into it). NOT safe concurrently with
  /// queries or inserts.
  void RefreshSharedScoring();

  const core::SharedScoringState& shared_scoring() const {
    return *shared_scoring_;
  }

  /// Point-in-time observability for /stats, rtsi_cli and benches.
  struct ShardStats {
    int shard = 0;
    std::uint64_t view_epoch = 0;
    std::vector<std::size_t> runs_per_level;
    std::size_t postings = 0;
    std::size_t streams = 0;
    std::size_t arena_bytes = 0;     // WindowArena in-use bytes
    std::size_t memory_bytes = 0;
    bool degraded = false;           // durable shard in fail-stop mode
  };
  ShardStats GetShardStats(int s) const;

 private:
  IndexShardSet() = default;  // Open() fills the members itself.

  /// Applies config_.shard_policies to the constructed shards.
  void ApplyShardPolicies();

  /// Records a finished/deleted id for the reuse guard (sharded sets
  /// only; a single shard keeps single-index semantics).
  void RecordRetired(StreamId stream);

  ShardSetConfig config_;
  // Exactly one of the two per slot: plain shards own the index, durable
  // shards own it through the journaling wrapper.
  std::vector<std::unique_ptr<core::RtsiIndex>> plain_;
  std::vector<std::unique_ptr<storage::DurableIndex>> durables_;
  // shards_[i] is the SearchIndex ops route through; raw_[i] the
  // underlying RtsiIndex (for stats and scoring state).
  std::vector<core::SearchIndex*> shards_;
  std::vector<core::RtsiIndex*> raw_;
  std::shared_ptr<core::SharedScoringState> shared_scoring_;
  std::unique_ptr<ThreadPool> scatter_pool_;
  // Stream ids retired by FinishStream/DeleteStream (populated only when
  // num_shards > 1): the insert-time reuse guard. Reader-heavy — every
  // checked insert takes the shared lock, retirements the exclusive one.
  mutable std::shared_mutex retired_mu_;
  std::unordered_set<StreamId> retired_;
};

}  // namespace rtsi::shard

#endif  // RTSI_SHARD_SHARD_SET_H_
