#include "shard/shard_set.h"

#include <sys/stat.h>

#include <algorithm>
#include <mutex>

#include "exec/sink.h"

namespace rtsi::shard {

int ShardForStream(StreamId stream, int num_shards) {
  if (num_shards <= 1) return 0;
  // splitmix64 finalizer: full-avalanche, so consecutive stream ids land
  // on independent shards.
  std::uint64_t x = stream;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(num_shards));
}

namespace {

std::string ShardDir(const std::string& root, int s) {
  return root + "/shard-" + std::to_string(s);
}

void MakeScatterPool(const ShardSetConfig& config,
                     std::unique_ptr<ThreadPool>& pool) {
  if (config.scatter_threads > 0 && config.num_shards > 1) {
    pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(config.scatter_threads));
  }
}

}  // namespace

IndexShardSet::IndexShardSet(const ShardSetConfig& config)
    : config_(config),
      shared_scoring_(std::make_shared<core::SharedScoringState>()) {
  const int n = std::max(1, config.num_shards);
  config_.num_shards = n;
  for (int s = 0; s < n; ++s) {
    plain_.push_back(std::make_unique<core::RtsiIndex>(config.index));
    shards_.push_back(plain_.back().get());
    raw_.push_back(plain_.back().get());
  }
  for (core::RtsiIndex* index : raw_) {
    index->BindSharedScoring(shared_scoring_);
  }
  ApplyShardPolicies();
  MakeScatterPool(config_, scatter_pool_);
}

IndexShardSet::IndexShardSet(
    const ShardSetConfig& config,
    std::vector<std::unique_ptr<core::RtsiIndex>> shards)
    : config_(config),
      plain_(std::move(shards)),
      shared_scoring_(std::make_shared<core::SharedScoringState>()) {
  config_.num_shards = static_cast<int>(plain_.size());
  for (auto& index : plain_) {
    shards_.push_back(index.get());
    raw_.push_back(index.get());
  }
  RefreshSharedScoring();
  ApplyShardPolicies();
  MakeScatterPool(config_, scatter_pool_);
}

Result<std::unique_ptr<IndexShardSet>> IndexShardSet::Open(
    const ShardSetConfig& config,
    std::vector<storage::RecoveryStats>* recovery) {
  if (config.durable_dir.empty()) {
    return Status::InvalidArgument(
        "IndexShardSet::Open needs durable_dir (use the constructor for "
        "in-memory shards)");
  }
  auto set = std::unique_ptr<IndexShardSet>(new IndexShardSet());
  set->config_ = config;
  const int n = std::max(1, config.num_shards);
  set->config_.num_shards = n;
  ::mkdir(config.durable_dir.c_str(), 0755);
  if (recovery != nullptr) recovery->clear();
  for (int s = 0; s < n; ++s) {
    const std::string dir = ShardDir(config.durable_dir, s);
    ::mkdir(dir.c_str(), 0755);
    storage::RecoveryStats stats;
    auto opened = storage::DurableIndex::Open(
        config.index, dir + "/index.snap", dir + "/index.journal",
        config.journal, &stats);
    if (!opened.ok()) {
      return Status::Internal("shard " + std::to_string(s) +
                              " failed to open: " +
                              opened.status().ToString());
    }
    if (recovery != nullptr) recovery->push_back(stats);
    set->durables_.push_back(std::move(opened.value()));
    set->shards_.push_back(set->durables_.back().get());
    set->raw_.push_back(&set->durables_.back()->index());
  }
  set->RefreshSharedScoring();
  set->ApplyShardPolicies();
  MakeScatterPool(set->config_, set->scatter_pool_);
  return set;
}

IndexShardSet::~IndexShardSet() { WaitForMerges(); }

void IndexShardSet::ApplyShardPolicies() {
  const std::size_t n = std::min(config_.shard_policies.size(), raw_.size());
  for (std::size_t s = 0; s < n; ++s) {
    raw_[s]->SetMergePolicy(config_.shard_policies[s]);
  }
}

void IndexShardSet::RefreshSharedScoring() {
  // Rebind a fresh aggregate rather than clearing the old one in place:
  // the old state may still be referenced by a query that pinned it.
  auto next = std::make_shared<core::SharedScoringState>();
  std::uint64_t documents = 0;
  for (core::RtsiIndex* index : raw_) {
    index->doc_freq().ForEach([&next](TermId term, std::uint64_t df) {
      next->df.AddCount(term, df);
    });
    documents += index->doc_freq().num_documents();
    next->BumpMaxPop(index->stream_table().max_pop_count());
  }
  next->df.SetNumDocuments(documents);
  shared_scoring_ = next;
  for (core::RtsiIndex* index : raw_) {
    index->BindSharedScoring(shared_scoring_);
  }
}

void IndexShardSet::InsertWindow(StreamId stream, Timestamp now,
                                 const std::vector<core::TermCount>& terms,
                                 bool live) {
  // The void interface cannot report the reuse guard; a rejected window
  // is dropped (on a sharded set it was undefined behavior before).
  (void)InsertWindowChecked(stream, now, terms, live);
}

Status IndexShardSet::InsertWindowChecked(
    StreamId stream, Timestamp now,
    const std::vector<core::TermCount>& terms, bool live) {
  const Status status = CheckInsert(stream);
  if (!status.ok()) return status;
  shards_[ShardOf(stream)]->InsertWindow(stream, now, terms, live);
  return Status::Ok();
}

Status IndexShardSet::CheckInsert(StreamId stream) const {
  if (num_shards() > 1) {
    std::shared_lock<std::shared_mutex> lock(retired_mu_);
    if (retired_.count(stream) > 0) {
      return Status::FailedPrecondition(
          "stream id " + std::to_string(stream) +
          " was retired by FinishStream/DeleteStream; sharded deployments "
          "must not reuse stream ids");
    }
  }
  return Status::Ok();
}

void IndexShardSet::RecordRetired(StreamId stream) {
  if (num_shards() <= 1) return;
  std::unique_lock<std::shared_mutex> lock(retired_mu_);
  retired_.insert(stream);
}

void IndexShardSet::FinishStream(StreamId stream) {
  shards_[ShardOf(stream)]->FinishStream(stream);
  RecordRetired(stream);
}

void IndexShardSet::DeleteStream(StreamId stream) {
  shards_[ShardOf(stream)]->DeleteStream(stream);
  RecordRetired(stream);
}

void IndexShardSet::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  shards_[ShardOf(stream)]->UpdatePopularity(stream, delta);
}

std::vector<core::ScoredStream> IndexShardSet::Query(
    const std::vector<TermId>& terms, int k, Timestamp now,
    core::QueryStats* stats) {
  return QueryFiltered(terms, k, now, core::QueryFilter{}, stats);
}

std::vector<core::ScoredStream> IndexShardSet::QueryFiltered(
    const std::vector<TermId>& terms, int k, Timestamp now,
    const core::QueryFilter& filter, core::QueryStats* stats) {
  const int n = num_shards();
  if (n == 1) {
    return raw_[0]->QueryFiltered(terms, k, now, filter, stats);
  }
  std::vector<std::vector<core::ScoredStream>> partials(n);
  std::vector<core::QueryStats> partial_stats(n);
  if (scatter_pool_ != nullptr) {
    // Fan out: pool workers take shards [1, n), the gathering thread runs
    // shard 0. Every shard pins its own IndexView wait-free on entry.
    TaskGroup group(scatter_pool_.get());
    for (int s = 1; s < n; ++s) {
      group.Submit([&, s] {
        partials[s] =
            raw_[s]->QueryFiltered(terms, k, now, filter, &partial_stats[s]);
      });
    }
    partials[0] =
        raw_[0]->QueryFiltered(terms, k, now, filter, &partial_stats[0]);
    group.Wait();
  } else {
    for (int s = 0; s < n; ++s) {
      partials[s] =
          raw_[s]->QueryFiltered(terms, k, now, filter, &partial_stats[s]);
    }
  }
  if (stats != nullptr) {
    core::QueryStats total;
    for (const core::QueryStats& ps : partial_stats) {
      exec::FoldStats(total, ps);
    }
    *stats = total;
  }
  // Gather through the pipeline's sink: each stream lives in exactly one
  // shard, so offering every per-shard top-k to one deterministic sink
  // yields exactly the top-k a single index over the union would return.
  return exec::GatherPartials(partials, k);
}

std::size_t IndexShardSet::MemoryBytes() const {
  std::size_t bytes = 0;
  for (core::SearchIndex* index : shards_) bytes += index->MemoryBytes();
  return bytes;
}

std::string IndexShardSet::name() const {
  return "RTSI[" + std::to_string(num_shards()) +
         (durable() ? " durable shards]" : " shards]");
}

core::RtsiIndex& IndexShardSet::shard_index(int s) { return *raw_[s]; }

const core::RtsiIndex& IndexShardSet::shard_index(int s) const {
  return *raw_[s];
}

storage::DurableIndex* IndexShardSet::durable_shard(int s) {
  return durables_.empty() ? nullptr : durables_[s].get();
}

Status IndexShardSet::Checkpoint() {
  Status first = Status::Ok();
  for (int s = 0; s < num_shards(); ++s) {
    const Status status = CheckpointShard(s);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

Status IndexShardSet::CheckpointShard(int s) {
  if (durables_.empty()) {
    return Status::InvalidArgument("in-memory shard set: no checkpoints");
  }
  return durables_[s]->Checkpoint();
}

void IndexShardSet::WaitForMerges() {
  for (core::RtsiIndex* index : raw_) index->WaitForMerges();
}

void IndexShardSet::SetMergePolicy(int s, lsm::MergePolicy policy) {
  raw_[s]->SetMergePolicy(policy);
}

IndexShardSet::ShardStats IndexShardSet::GetShardStats(int s) const {
  ShardStats stats;
  stats.shard = s;
  const core::RtsiIndex& index = *raw_[s];
  stats.view_epoch = index.tree().epoch();
  stats.runs_per_level = index.tree().RunsPerLevel();
  stats.postings = index.tree().total_postings();
  stats.streams = index.stream_table().size();
  stats.arena_bytes = index.LiveArenaStats().allocated_bytes;
  stats.memory_bytes = index.MemoryBytes();
  if (!durables_.empty()) stats.degraded = durables_[s]->degraded();
  return stats;
}

}  // namespace rtsi::shard
