// Component merging (Algorithm 2's CombineLists + lazy deletion).
//
// Merging consolidates duplicate postings: a live stream inserts one
// posting per 60-second window, so the same (term, stream) pair appears
// many times across (and within) components; the merged component keeps a
// single posting with the summed term frequency, the newest freshness and
// the largest popularity snapshot. Postings of deleted streams are purged
// here (lazy deletion). Merges are N-way: a compaction policy may fold
// any number of runs — a whole tier, or the classic two — in one pass.
// Hooks let the owning index maintain per-stream component counts and the
// live-term table.

#ifndef RTSI_LSM_MERGE_H_
#define RTSI_LSM_MERGE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/window_arena.h"
#include "index/inverted_index.h"

namespace rtsi::lsm {

struct MergeHooks {
  /// Lazy deletion predicate; postings of deleted streams are dropped.
  /// Consulted once per distinct stream per merge (memoized).
  std::function<bool(StreamId)> is_deleted;

  /// Called once per stream whose postings were purged by this merge.
  std::function<void(StreamId stream)> on_purged;

  /// Called once per distinct surviving stream seen during the merge,
  /// after all postings are combined and before the output is published.
  /// `copies` is the number of merge inputs holding postings of the
  /// stream (>= 1): the merge consolidated `copies` residencies into one,
  /// so the stream's component count drops by `copies - 1`. `merged` is
  /// the output component (already carrying its id and live-freshness
  /// ceiling cell), so the owner can transfer the stream's component
  /// residency while pinned views keep serving queries against the
  /// inputs. Leave unset to skip stream tracking entirely (the tracking
  /// itself costs one hash-set insert per posting).
  std::function<void(StreamId stream, std::uint32_t copies,
                     const index::InvertedIndex& merged)>
      on_stream;

  /// Called by the owning LSM-tree once per distinct surviving stream
  /// *after* the merge output replaced its inputs in the published view
  /// (the inputs are no longer query-visible): the owner drops the
  /// stream's residency entries for the retired input components `from`.
  /// Until this fires the input residencies must stay registered, so
  /// inserts keep bumping the inputs' live-freshness ceilings and queries
  /// still pinning a pre-swap view prune soundly for the whole merge
  /// window.
  std::function<void(StreamId stream, const std::vector<ComponentId>& from)>
      on_retired;

  /// Called inside an L0 freeze — after the frozen component is sealed
  /// and given its identity/ceiling cell, before it becomes query-visible
  /// (still under every L0 shard lock, so no insert can race). The owner
  /// registers component residency for every stream in the frozen data.
  std::function<void(const index::InvertedIndex& frozen)> on_frozen;

  /// Called by MergeCascade after every published structural step — the
  /// L0 freeze and each merge swap — with no tree locks held. The tree
  /// is fully consistent and snapshot-safe at each invocation: this is
  /// the seam checkpoint-during-compaction and the mid-cascade snapshot
  /// tests hang off. Leave unset in production ingest paths.
  std::function<void()> on_cascade_step;
};

struct MergeStats {
  std::size_t merges = 0;
  std::size_t postings_in = 0;
  std::size_t postings_out = 0;
  std::size_t purged_postings = 0;
  std::size_t consolidated_postings = 0;  // Duplicates folded together.
  double total_micros = 0.0;

  MergeStats& operator+=(const MergeStats& other) {
    merges += other.merges;
    postings_in += other.postings_in;
    postings_out += other.postings_out;
    purged_postings += other.purged_postings;
    consolidated_postings += other.consolidated_postings;
    total_micros += other.total_micros;
    return *this;
  }
};

/// Combines `inputs` (one or more sealed components) into a new sealed
/// component at `out_level`, compressing it when `compress` is set. With
/// two inputs the pass structure — input 0's terms first, each folded
/// with the later inputs' postings for that term, then the terms only
/// later inputs hold — is identical to the historical two-way merge, so
/// a two-input call produces a bit-identical component.
/// `out_id`/`out_cell` give the output its component identity and
/// live-freshness ceiling cell (allocated by the owning LsmTree); the
/// output's ceiling additionally inherits every input's ceiling. Tests
/// may omit them — the output then has no ceiling cell and queries fall
/// back to the global freshness maximum. When `surviving` is non-null
/// and stream tracking is on, it receives every distinct surviving
/// stream, so the caller can run the post-publication `on_retired` pass.
/// `scratch` (optional) backs the merge's transient state — per-term
/// consolidation maps, ordering buffers, unsealed output vectors, stream
/// sets — so the allocation churn recycles through the arena's free
/// lists instead of hitting the global heap once per node. The output
/// component never references the scratch arena: `Seal()` migrates every
/// unsealed vector to an exact-size heap buffer, so the caller may drop
/// (or reuse) the arena as soon as this returns. Null = global heap.
std::shared_ptr<index::InvertedIndex> CombineComponents(
    const std::vector<const index::InvertedIndex*>& inputs, int out_level,
    bool compress, const MergeHooks& hooks, MergeStats* stats,
    ComponentId out_id = kInvalidComponentId,
    index::FreshnessCeilingPtr out_cell = nullptr,
    std::vector<StreamId>* surviving = nullptr,
    WindowArena* scratch = nullptr);

/// Two-way convenience wrapper (the historical signature; `b` may be
/// null). Kept for tests and callers that merge exactly one pair.
std::shared_ptr<index::InvertedIndex> CombineComponents(
    const index::InvertedIndex& a, const index::InvertedIndex* b,
    int out_level, bool compress, const MergeHooks& hooks,
    MergeStats* stats, ComponentId out_id = kInvalidComponentId,
    index::FreshnessCeilingPtr out_cell = nullptr,
    std::vector<StreamId>* surviving = nullptr,
    WindowArena* scratch = nullptr);

}  // namespace rtsi::lsm

#endif  // RTSI_LSM_MERGE_H_
