#include "lsm/compaction_policy.h"

namespace rtsi::lsm {
namespace {

std::size_t LevelPostings(const LevelRuns& levels, std::size_t l) {
  std::size_t total = 0;
  if (l < levels.size()) {
    for (const auto& run : levels[l]) total += run->num_postings();
  }
  return total;
}

void CollectLevel(const LevelRuns& levels, std::size_t l,
                  CompactionStep* step) {
  if (l >= levels.size()) return;
  for (const auto& run : levels[l]) step->inputs.push_back(run);
}

// The paper's Algorithm 1 over run lists. In steady state every level
// holds at most one run, so each step is the classic two-way merge of
// the incoming run with the target level's resident — bit-identical to
// the pre-policy cascade. A restored mid-cascade state (several runs on
// one level) or a tree switched over from kTiered simply feeds more
// inputs into the same steps and self-heals to one-run-per-level.
class GeometricPolicy final : public CompactionPolicy {
 public:
  explicit GeometricPolicy(const CompactionConfig& config)
      : config_(config) {}

  const char* name() const override { return "geometric"; }

  bool PlanStep(const LevelRuns& levels, CompactionStep* step) override {
    // A frozen run is waiting at level 0: fold it (and the level-1
    // resident, if any) into level 1.
    if (!levels.empty() && !levels[0].empty()) {
      CollectLevel(levels, 0, step);
      CollectLevel(levels, 1, step);
      step->out_level = 1;
      return true;
    }
    // Cascade: the shallowest level over its delta * rho^l capacity
    // overflows into the next one.
    double capacity = static_cast<double>(config_.delta);
    for (std::size_t l = 1; l < levels.size(); ++l) {
      capacity *= config_.rho;
      if (levels[l].empty()) continue;
      if (static_cast<double>(LevelPostings(levels, l)) <= capacity) {
        continue;
      }
      CollectLevel(levels, l, step);
      CollectLevel(levels, l + 1, step);
      step->out_level = static_cast<int>(l) + 1;
      return true;
    }
    return false;
  }

 private:
  CompactionConfig config_;
};

// Size-tiered: runs pile up at a level until tier_runs of them exist,
// then exactly those runs merge into one run at the next level. The
// just-frozen run usually triggers nothing — the common freeze is
// zero-merge-work — and each posting is rewritten once per level it
// descends through instead of once per incoming run.
class TieredPolicy final : public CompactionPolicy {
 public:
  explicit TieredPolicy(const CompactionConfig& config) : config_(config) {}

  const char* name() const override { return "tiered"; }

  bool PlanStep(const LevelRuns& levels, CompactionStep* step) override {
    const std::size_t fanout = config_.tier_runs < 2 ? 2 : config_.tier_runs;
    for (std::size_t l = 0; l < levels.size(); ++l) {
      if (levels[l].size() < fanout) continue;
      CollectLevel(levels, l, step);
      step->out_level = static_cast<int>(l) + 1;
      return true;
    }
    return false;
  }

 private:
  CompactionConfig config_;
};

// Ablation baseline: one N-way merge of every run after every freeze.
class FullCompactionPolicy final : public CompactionPolicy {
 public:
  const char* name() const override { return "full"; }

  bool PlanStep(const LevelRuns& levels, CompactionStep* step) override {
    std::size_t runs = 0;
    for (const auto& level : levels) runs += level.size();
    // A single settled run at level 1 is the fixed point; anything else
    // (a fresh frozen run, several runs, or a deeper-resident restore)
    // gets folded into one component.
    if (runs == 0) return false;
    if (runs == 1 && levels.size() > 1 && levels[1].size() == 1) {
      return false;
    }
    for (std::size_t l = 0; l < levels.size(); ++l) {
      CollectLevel(levels, l, step);
    }
    step->out_level = 1;
    return true;
  }
};

}  // namespace

const char* MergePolicyName(MergePolicy policy) {
  switch (policy) {
    case MergePolicy::kGeometric:
      return "geometric";
    case MergePolicy::kFullCompaction:
      return "full";
    case MergePolicy::kTiered:
      return "tiered";
  }
  return "unknown";
}

std::unique_ptr<CompactionPolicy> MakeCompactionPolicy(
    MergePolicy policy, const CompactionConfig& config) {
  switch (policy) {
    case MergePolicy::kFullCompaction:
      return std::make_unique<FullCompactionPolicy>();
    case MergePolicy::kTiered:
      return std::make_unique<TieredPolicy>(config);
    case MergePolicy::kGeometric:
      break;
  }
  return std::make_unique<GeometricPolicy>(config);
}

}  // namespace rtsi::lsm
