#include "lsm/merge.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/latency_stats.h"

namespace rtsi::lsm {
namespace {

using index::InvertedIndex;
using index::Posting;
using index::TermPostings;

// Merge-transient containers draw from the caller's scratch arena (null
// allocator = global heap): node-based churn — one map node per distinct
// (term, stream) pair per merge — recycles through the arena free lists.
using ConsolidatedMap =
    std::unordered_map<StreamId, Posting, std::hash<StreamId>,
                       std::equal_to<StreamId>,
                       ArenaAllocator<std::pair<const StreamId, Posting>>>;
template <typename T>
using ArenaSet =
    std::unordered_set<T, std::hash<T>, std::equal_to<T>, ArenaAllocator<T>>;

// Folds `entries` of one term from one or both inputs into consolidated
// per-stream postings. Deletion is resolved per consolidated stream by
// the caller (one predicate call per stream, not per posting).
void Accumulate(const TermPostings& postings, ConsolidatedMap& consolidated,
                MergeStats* stats) {
  for (const Posting& p : postings.entries()) {
    auto [it, inserted] = consolidated.emplace(p.stream, p);
    if (!inserted) {
      Posting& merged = it->second;
      merged.tf += p.tf;
      merged.frsh = std::max(merged.frsh, p.frsh);
      merged.pop = std::max(merged.pop, p.pop);
      if (stats != nullptr) ++stats->consolidated_postings;
    }
  }
}

// Memoizes the lazy-deletion predicate: one call per distinct stream per
// merge, no matter how many terms the stream spans. Fires `on_purged` on
// the first deleted verdict for a stream.
class DeletionCache {
 public:
  DeletionCache(const std::function<bool(StreamId)>& is_deleted,
                const std::function<void(StreamId)>& on_purged)
      : is_deleted_(is_deleted), on_purged_(on_purged) {}

  bool operator()(StreamId stream) {
    if (!is_deleted_) return false;
    auto it = verdicts_.find(stream);
    if (it != verdicts_.end()) return it->second;
    const bool deleted = is_deleted_(stream);
    verdicts_.emplace(stream, deleted);
    if (deleted && on_purged_) on_purged_(stream);
    return deleted;
  }

 private:
  const std::function<bool(StreamId)>& is_deleted_;
  const std::function<void(StreamId)>& on_purged_;
  std::unordered_map<StreamId, bool> verdicts_;
};

}  // namespace

std::shared_ptr<InvertedIndex> CombineComponents(
    const InvertedIndex& a, const InvertedIndex* b, int out_level,
    bool compress, const MergeHooks& hooks, MergeStats* stats,
    ComponentId out_id, index::FreshnessCeilingPtr out_cell,
    std::vector<StreamId>* surviving, WindowArena* scratch) {
  Stopwatch watch;
  auto merged = std::make_shared<InvertedIndex>(out_level);
  merged->AdoptCeiling(out_id, std::move(out_cell));

  ArenaSet<StreamId> streams_a{ArenaAllocator<StreamId>(scratch)};
  ArenaSet<StreamId> streams_b{ArenaAllocator<StreamId>(scratch)};
  ArenaSet<TermId> terms_a{ArenaAllocator<TermId>(scratch)};
  DeletionCache deleted(hooks.is_deleted, hooks.on_purged);
  const bool track_streams = static_cast<bool>(hooks.on_stream);

  auto emit = [&](TermId term, ConsolidatedMap& consolidated) {
    std::vector<Posting, ArenaAllocator<Posting>> ordered{
        ArenaAllocator<Posting>(scratch)};
    ordered.reserve(consolidated.size());
    for (const auto& [stream, posting] : consolidated) {
      if (deleted(stream)) {
        if (stats != nullptr) ++stats->purged_postings;
        continue;
      }
      ordered.push_back(posting);
    }
    if (ordered.empty()) return;
    std::sort(ordered.begin(), ordered.end(),
              [](const Posting& x, const Posting& y) {
                return x.frsh < y.frsh;  // Append order: ascending frsh.
              });
    // Built in the scratch arena, then sealed: Seal() migrates the
    // entries to an exact-size heap buffer, so the stored component holds
    // no scratch memory and the arena can be recycled per cascade.
    TermPostings out(scratch);
    for (const Posting& p : ordered) out.Append(p);
    out.Seal();
    if (stats != nullptr) stats->postings_out += out.size();
    merged->Put(term, std::move(out));
  };

  // Pass 1: every term of `a`, combined with `b`'s postings if present.
  a.ForEachTerm([&](TermId term, const TermPostings& postings_a) {
    terms_a.insert(term);
    ConsolidatedMap consolidated{ConsolidatedMap::allocator_type(scratch)};
    if (track_streams) {
      for (const Posting& p : postings_a.entries()) {
        streams_a.insert(p.stream);
      }
    }
    Accumulate(postings_a, consolidated, stats);
    if (stats != nullptr) stats->postings_in += postings_a.size();

    if (b != nullptr) {
      const index::TermPostingsView view_b = b->View(term);
      if (view_b) {
        if (track_streams) {
          for (const Posting& p : view_b->entries()) {
            streams_b.insert(p.stream);
          }
        }
        Accumulate(*view_b, consolidated, stats);
        if (stats != nullptr) stats->postings_in += view_b->size();
      }
    }
    emit(term, consolidated);
  });

  // Pass 2: terms only present in `b`.
  if (b != nullptr) {
    b->ForEachTerm([&](TermId term, const TermPostings& postings_b) {
      if (terms_a.count(term) > 0) return;
      ConsolidatedMap consolidated{ConsolidatedMap::allocator_type(scratch)};
      if (track_streams) {
        for (const Posting& p : postings_b.entries()) {
          streams_b.insert(p.stream);
        }
      }
      Accumulate(postings_b, consolidated, stats);
      if (stats != nullptr) stats->postings_in += postings_b.size();
      emit(term, consolidated);
    });
  }

  // Stream-level bookkeeping for the owner (component counts, residency
  // registration on `merged`, live table). Each surviving stream's
  // residency gains the output's ceiling cell here, *before* the output
  // inherits the inputs' ceilings below and before the swap publishes it.
  // The input residencies are NOT dropped yet — the inputs stay
  // query-visible (published view, plus any older pinned views) until the
  // swap, and an insert in that window must keep bumping their cells or a
  // query holding such a view would prune with a ceiling below the
  // stream's live freshness.
  // The owner retires them via `on_retired` after the swap, using the
  // `surviving` list collected here.
  const ComponentId from_a = a.component_id();
  const ComponentId from_b = b != nullptr ? b->component_id()
                                          : kInvalidComponentId;
  if (track_streams) {
    const auto survive = [&](StreamId stream, bool in_both) {
      hooks.on_stream(stream, in_both, from_a, from_b, *merged);
      if (surviving != nullptr) surviving->push_back(stream);
    };
    for (const StreamId stream : streams_a) {
      if (deleted(stream)) continue;  // on_purged already fired.
      survive(stream, streams_b.count(stream) > 0);
    }
    for (const StreamId stream : streams_b) {
      if (streams_a.count(stream) > 0 || deleted(stream)) continue;
      survive(stream, /*in_both=*/false);
    }
  }
  merged->BumpCeiling(a.LiveFrshCeiling());
  if (b != nullptr) merged->BumpCeiling(b->LiveFrshCeiling());

  // Built before compression so the summaries read the plain per-stream
  // aggregates; merge output is consolidated, so the compressed maxima
  // would be identical — this just avoids a decode pass.
  merged->BuildSkipHeader();
  if (compress) merged->CompressAll();
  if (stats != nullptr) {
    ++stats->merges;
    stats->total_micros += watch.ElapsedMicros();
  }
  return merged;
}

}  // namespace rtsi::lsm
