#include "lsm/merge.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/latency_stats.h"

namespace rtsi::lsm {
namespace {

using index::InvertedIndex;
using index::Posting;
using index::TermPostings;

// Merge-transient containers draw from the caller's scratch arena (null
// allocator = global heap): node-based churn — one map node per distinct
// (term, stream) pair per merge — recycles through the arena free lists.
using ConsolidatedMap =
    std::unordered_map<StreamId, Posting, std::hash<StreamId>,
                       std::equal_to<StreamId>,
                       ArenaAllocator<std::pair<const StreamId, Posting>>>;
template <typename T>
using ArenaSet =
    std::unordered_set<T, std::hash<T>, std::equal_to<T>, ArenaAllocator<T>>;

// Folds `entries` of one term from one input into consolidated per-stream
// postings. Deletion is resolved per consolidated stream by the caller
// (one predicate call per stream, not per posting).
void Accumulate(const TermPostings& postings, ConsolidatedMap& consolidated,
                MergeStats* stats) {
  for (const Posting& p : postings.entries()) {
    auto [it, inserted] = consolidated.emplace(p.stream, p);
    if (!inserted) {
      Posting& merged = it->second;
      merged.tf += p.tf;
      merged.frsh = std::max(merged.frsh, p.frsh);
      merged.pop = std::max(merged.pop, p.pop);
      if (stats != nullptr) ++stats->consolidated_postings;
    }
  }
}

// Memoizes the lazy-deletion predicate: one call per distinct stream per
// merge, no matter how many terms the stream spans. Fires `on_purged` on
// the first deleted verdict for a stream. Owns copies of the functions:
// a cache may outlive the temporary MergeHooks it was built from.
class DeletionCache {
 public:
  DeletionCache(std::function<bool(StreamId)> is_deleted,
                std::function<void(StreamId)> on_purged)
      : is_deleted_(std::move(is_deleted)), on_purged_(std::move(on_purged)) {}

  bool operator()(StreamId stream) {
    if (!is_deleted_) return false;
    auto it = verdicts_.find(stream);
    if (it != verdicts_.end()) return it->second;
    const bool deleted = is_deleted_(stream);
    verdicts_.emplace(stream, deleted);
    if (deleted && on_purged_) on_purged_(stream);
    return deleted;
  }

 private:
  std::function<bool(StreamId)> is_deleted_;
  std::function<void(StreamId)> on_purged_;
  std::unordered_map<StreamId, bool> verdicts_;
};

}  // namespace

std::shared_ptr<InvertedIndex> CombineComponents(
    const std::vector<const InvertedIndex*>& inputs, int out_level,
    bool compress, const MergeHooks& hooks, MergeStats* stats,
    ComponentId out_id, index::FreshnessCeilingPtr out_cell,
    std::vector<StreamId>* surviving, WindowArena* scratch) {
  Stopwatch watch;
  auto merged = std::make_shared<InvertedIndex>(out_level);
  merged->AdoptCeiling(out_id, std::move(out_cell));

  // Per-input surviving-stream sets; input_streams[i] collects every
  // stream input i holds a posting for. A stream's `copies` is how many
  // of these sets contain it.
  std::vector<ArenaSet<StreamId>> input_streams;
  input_streams.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    input_streams.emplace_back(ArenaAllocator<StreamId>(scratch));
  }
  ArenaSet<TermId> seen_terms{ArenaAllocator<TermId>(scratch)};
  DeletionCache deleted(hooks.is_deleted, hooks.on_purged);
  const bool track_streams = static_cast<bool>(hooks.on_stream);

  auto emit = [&](TermId term, ConsolidatedMap& consolidated) {
    std::vector<Posting, ArenaAllocator<Posting>> ordered{
        ArenaAllocator<Posting>(scratch)};
    ordered.reserve(consolidated.size());
    for (const auto& [stream, posting] : consolidated) {
      if (deleted(stream)) {
        if (stats != nullptr) ++stats->purged_postings;
        continue;
      }
      ordered.push_back(posting);
    }
    if (ordered.empty()) return;
    std::sort(ordered.begin(), ordered.end(),
              [](const Posting& x, const Posting& y) {
                return x.frsh < y.frsh;  // Append order: ascending frsh.
              });
    // Built in the scratch arena, then sealed: Seal() migrates the
    // entries to an exact-size heap buffer, so the stored component holds
    // no scratch memory and the arena can be recycled per cascade.
    TermPostings out(scratch);
    for (const Posting& p : ordered) out.Append(p);
    out.Seal();
    if (stats != nullptr) stats->postings_out += out.size();
    merged->Put(term, std::move(out));
  };

  // One pass per input i, in order: every term first seen at input i is
  // folded with the matching postings of every later input (looked up by
  // View); terms already consolidated by an earlier pass are skipped.
  // With two inputs this is exactly the historical merge — pass 1 walks
  // input 0's terms joining input 1, pass 2 walks input 1's leftovers —
  // so the same call sequence hits the same containers and the output is
  // bit-identical.
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i]->ForEachTerm([&](TermId term, const TermPostings& postings_i) {
      if (i > 0 && seen_terms.count(term) > 0) return;
      seen_terms.insert(term);
      ConsolidatedMap consolidated{ConsolidatedMap::allocator_type(scratch)};
      if (track_streams) {
        for (const Posting& p : postings_i.entries()) {
          input_streams[i].insert(p.stream);
        }
      }
      Accumulate(postings_i, consolidated, stats);
      if (stats != nullptr) stats->postings_in += postings_i.size();

      for (std::size_t j = i + 1; j < inputs.size(); ++j) {
        const index::TermPostingsView view_j = inputs[j]->View(term);
        if (view_j) {
          if (track_streams) {
            for (const Posting& p : view_j->entries()) {
              input_streams[j].insert(p.stream);
            }
          }
          Accumulate(*view_j, consolidated, stats);
          if (stats != nullptr) stats->postings_in += view_j->size();
        }
      }
      emit(term, consolidated);
    });
  }

  // Stream-level bookkeeping for the owner (component counts, residency
  // registration on `merged`, live table). Each surviving stream's
  // residency gains the output's ceiling cell here, *before* the output
  // inherits the inputs' ceilings below and before the swap publishes it.
  // The input residencies are NOT dropped yet — the inputs stay
  // query-visible (published view, plus any older pinned views) until the
  // swap, and an insert in that window must keep bumping their cells or a
  // query holding such a view would prune with a ceiling below the
  // stream's live freshness.
  // The owner retires them via `on_retired` after the swap, using the
  // `surviving` list collected here.
  if (track_streams) {
    const auto survive = [&](StreamId stream, std::uint32_t copies) {
      hooks.on_stream(stream, copies, *merged);
      if (surviving != nullptr) surviving->push_back(stream);
    };
    // Each stream is reported once, from the first input holding it; the
    // later sets only contribute to its copy count.
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (const StreamId stream : input_streams[i]) {
        bool reported = false;
        for (std::size_t k = 0; k < i; ++k) {
          if (input_streams[k].count(stream) > 0) {
            reported = true;
            break;
          }
        }
        if (reported || deleted(stream)) continue;  // on_purged already fired.
        std::uint32_t copies = 1;
        for (std::size_t j = i + 1; j < inputs.size(); ++j) {
          if (input_streams[j].count(stream) > 0) ++copies;
        }
        survive(stream, copies);
      }
    }
  }
  for (const InvertedIndex* input : inputs) {
    merged->BumpCeiling(input->LiveFrshCeiling());
  }

  // Built before compression so the summaries read the plain per-stream
  // aggregates; merge output is consolidated, so the compressed maxima
  // would be identical — this just avoids a decode pass.
  merged->BuildSkipHeader();
  if (compress) merged->CompressAll();
  if (stats != nullptr) {
    ++stats->merges;
    stats->total_micros += watch.ElapsedMicros();
  }
  return merged;
}

std::shared_ptr<InvertedIndex> CombineComponents(
    const InvertedIndex& a, const InvertedIndex* b, int out_level,
    bool compress, const MergeHooks& hooks, MergeStats* stats,
    ComponentId out_id, index::FreshnessCeilingPtr out_cell,
    std::vector<StreamId>* surviving, WindowArena* scratch) {
  std::vector<const InvertedIndex*> inputs;
  inputs.push_back(&a);
  if (b != nullptr) inputs.push_back(b);
  return CombineComponents(inputs, out_level, compress, hooks, stats, out_id,
                           std::move(out_cell), surviving, scratch);
}

}  // namespace rtsi::lsm
