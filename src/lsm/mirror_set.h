// The mirror set of Algorithm 2.
//
// While two components are being merged, immutable references to the
// pre-merge components are registered here so concurrent queries keep
// seeing every posting; when the merged component is swapped into the
// LSM-tree the mirrors are dropped. Registration and the component-list
// swap are serialized by the LSM-tree, so a snapshot always observes a
// complete posting set.
//
// Live-freshness ceilings during a merge: a mirrored input keeps
// receiving ceiling bumps through the per-stream residency entries that
// point at it for the *entire* merge window — the output's residency is
// added before publication (lsm/merge.cc) but the inputs' entries are
// only dropped after the component swap makes them invisible
// (MergeHooks::on_retired). An insert landing anywhere in the window
// therefore raises the ceiling of every component a query could
// snapshot, which is exactly the soundness invariant of
// index/freshness_ceiling.h.

#ifndef RTSI_LSM_MIRROR_SET_H_
#define RTSI_LSM_MIRROR_SET_H_

#include <memory>
#include <mutex>
#include <vector>

#include "index/inverted_index.h"

namespace rtsi::lsm {

class MirrorSet {
 public:
  MirrorSet() = default;

  MirrorSet(const MirrorSet&) = delete;
  MirrorSet& operator=(const MirrorSet&) = delete;

  void Register(std::shared_ptr<const index::InvertedIndex> mirror);

  /// Removes the mirror identified by pointer; no-op if absent.
  void Unregister(const index::InvertedIndex* mirror);

  /// All currently registered mirrors.
  std::vector<std::shared_ptr<const index::InvertedIndex>> GetAll() const;

  std::size_t size() const;

  /// Largest live-freshness ceiling over the registered mirrors (0 when
  /// empty). Tests assert a merge output's inherited ceiling dominates
  /// the mirrors it replaces.
  Timestamp MaxLiveFrshCeiling() const;

  /// Extra bytes currently pinned by mirrors.
  std::size_t MemoryBytes() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const index::InvertedIndex>> mirrors_;
};

}  // namespace rtsi::lsm

#endif  // RTSI_LSM_MIRROR_SET_H_
