// The immutable read view of the LSM-tree's sealed structure.
//
// An IndexView is built by the LSM-tree on every structural change
// (L0 freeze, merge swap, snapshot restore) and published with a single
// atomic shared_ptr swap. Queries pin one view at entry and traverse its
// component list with no locks, no re-check loops, and no mirror
// lookups: a pre-merge component stays alive for as long as any pinned
// view references it, which is exactly the completeness guarantee
// Algorithm 2's mirror set used to provide — the refcount *is* the
// mirror. Reclamation is automatic: when the last pin of the last view
// referencing a retired component drops, the component is freed.
//
// Live-freshness ceilings survive the pin the same way: each component
// carries its FreshnessCeiling cell (a shared monotone-max atomic), and
// residency entries in the StreamInfoTable keep bumping the cells of
// merge *inputs* until the post-swap retirement hook — so a query
// holding an old view still prunes with sound ceilings (see
// index/freshness_ceiling.h and DESIGN.md §6e).

#ifndef RTSI_LSM_INDEX_VIEW_H_
#define RTSI_LSM_INDEX_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "index/inverted_index.h"

namespace rtsi::lsm {

struct IndexView {
  /// Monotone publication counter: strictly increases with every
  /// published structural change. Two equal epochs imply the identical
  /// component set, which is what tests use to certify that a pair of
  /// queries ran against the same structure.
  std::uint64_t epoch = 0;

  /// The sealed components visible to this view, shallowest level first;
  /// components detached by an in-flight merge keep their position until
  /// the merge output replaces them in one swap.
  std::vector<std::shared_ptr<const index::InvertedIndex>> components;
};

using IndexViewPtr = std::shared_ptr<const IndexView>;

}  // namespace rtsi::lsm

#endif  // RTSI_LSM_INDEX_VIEW_H_
