#include "lsm/lsm_tree.h"

#include <algorithm>

namespace rtsi::lsm {

using index::InvertedIndex;
using index::Posting;
using index::TermBounds;

LsmTree::LsmTree(const Config& config) : config_(config) {
  const std::size_t num_shards = std::max<std::size_t>(config.num_l0_shards, 1);
  l0_shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    l0_shards_.push_back(std::make_unique<L0Shard>());
  }
  stream_seen_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    stream_seen_.push_back(std::make_unique<StreamSeenShard>());
  }
}

void LsmTree::AddPosting(TermId term, const Posting& posting) {
  L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.index.Add(term, posting);
  }
  l0_postings_.fetch_add(1, std::memory_order_relaxed);
}

bool LsmTree::MarkStreamInL0(StreamId stream) {
  StreamSeenShard& shard = *stream_seen_[stream % stream_seen_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.seen.insert(stream).second;
}

bool LsmTree::StreamInL0(StreamId stream) const {
  StreamSeenShard& shard = *stream_seen_[stream % stream_seen_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.seen.count(stream) > 0;
}

TermBounds LsmTree::L0Bounds(TermId term) const {
  const L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.index.Bounds(term);
}

std::vector<std::shared_ptr<const InvertedIndex>> LsmTree::SealedSnapshot()
    const {
  std::lock_guard<std::mutex> lock(components_mu_);
  std::vector<std::shared_ptr<const InvertedIndex>> snapshot;
  snapshot.reserve(levels_.size() + mirrors_.size());
  for (const auto& level : levels_) {
    if (level != nullptr) snapshot.push_back(level);
  }
  for (auto& mirror : mirrors_.GetAll()) {
    snapshot.push_back(std::move(mirror));
  }
  return snapshot;
}

std::shared_ptr<InvertedIndex> LsmTree::FreezeL0(const MergeHooks& hooks) {
  // Take every shard lock in a fixed order, then drain.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(l0_shards_.size());
  for (auto& shard : l0_shards_) {
    locks.emplace_back(shard->mu);
  }
  auto frozen = std::make_shared<InvertedIndex>(0);
  for (auto& shard : l0_shards_) {
    for (auto& [term, postings] : shard->index.TakeTerms()) {
      frozen->Put(term, std::move(postings));
    }
  }
  frozen->SealAll();
  frozen->AdoptCeiling(AllocateComponentId(),
                       std::make_shared<index::FreshnessCeiling>());
  // Residency registration must complete before the component is
  // query-visible; the held L0 shard locks block any racing insert from
  // slipping a window between registration and visibility.
  if (hooks.on_frozen) hooks.on_frozen(*frozen);
  for (auto& seen_shard : stream_seen_) {
    std::lock_guard<std::mutex> lock(seen_shard->mu);
    seen_shard->seen.clear();
  }
  l0_postings_.store(0, std::memory_order_relaxed);
  {
    // Make the frozen component query-visible before the shard locks drop.
    std::lock_guard<std::mutex> lock(components_mu_);
    mirrors_.Register(frozen);
    structure_version_.fetch_add(1, std::memory_order_release);
  }
  return frozen;
}

void LsmTree::MergeCascade(const MergeHooks& hooks) {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  if (!NeedsMerge()) return;

  MergeStats stats;
  std::shared_ptr<const InvertedIndex> cur = FreezeL0(hooks);
  if (cur->empty()) {
    std::lock_guard<std::mutex> lock(components_mu_);
    mirrors_.Unregister(cur.get());
    structure_version_.fetch_add(1, std::memory_order_release);
    return;
  }

  if (config_.policy == MergePolicy::kFullCompaction) {
    // Fold the frozen component and every level into one component.
    while (true) {
      std::shared_ptr<const InvertedIndex> existing;
      std::size_t slot = 0;
      {
        std::lock_guard<std::mutex> lock(components_mu_);
        for (; slot < levels_.size(); ++slot) {
          if (levels_[slot] != nullptr) {
            existing = levels_[slot];
            mirrors_.Register(existing);
            levels_[slot] = nullptr;
            break;
          }
        }
      }
      std::vector<StreamId> surviving;
      const auto merged =
          CombineComponents(*cur, existing.get(), 1, config_.compress,
                            hooks, &stats, AllocateComponentId(),
                            std::make_shared<index::FreshnessCeiling>(),
                            hooks.on_retired ? &surviving : nullptr);
      {
        std::lock_guard<std::mutex> lock(components_mu_);
        mirrors_.Unregister(cur.get());
        if (existing != nullptr) mirrors_.Unregister(existing.get());
        if (existing == nullptr) {
          // Nothing left to fold: install as the single component.
          if (levels_.empty()) levels_.resize(1);
          levels_[0] = merged;
        } else {
          mirrors_.Register(merged);
        }
        structure_version_.fetch_add(1, std::memory_order_release);
      }
      // The inputs just became invisible: retire their residencies so
      // inserts stop bumping dead ceiling cells. Ordering (only after the
      // swap) is what keeps queries snapshotting the inputs sound.
      if (hooks.on_retired) {
        const ComponentId from_b = existing != nullptr
                                       ? existing->component_id()
                                       : kInvalidComponentId;
        for (const StreamId stream : surviving) {
          hooks.on_retired(stream, cur->component_id(), from_b);
        }
      }
      if (existing == nullptr) break;
      cur = merged;
    }
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    merge_stats_.merges += stats.merges;
    merge_stats_.postings_in += stats.postings_in;
    merge_stats_.postings_out += stats.postings_out;
    merge_stats_.purged_postings += stats.purged_postings;
    merge_stats_.consolidated_postings += stats.consolidated_postings;
    merge_stats_.total_micros += stats.total_micros;
    return;
  }

  std::size_t level_index = 0;
  double capacity = config_.delta * config_.rho;
  while (true) {
    // Detach the resident component of this level (if any), keeping it
    // query-visible through the mirror set.
    std::shared_ptr<const InvertedIndex> existing;
    {
      std::lock_guard<std::mutex> lock(components_mu_);
      if (levels_.size() <= level_index) levels_.resize(level_index + 1);
      existing = levels_[level_index];
      if (existing != nullptr) {
        mirrors_.Register(existing);
        levels_[level_index] = nullptr;
      }
    }

    std::vector<StreamId> surviving;
    const std::shared_ptr<const InvertedIndex> merged = CombineComponents(
        *cur, existing.get(), static_cast<int>(level_index) + 1,
        config_.compress, hooks, &stats, AllocateComponentId(),
        std::make_shared<index::FreshnessCeiling>(),
        hooks.on_retired ? &surviving : nullptr);

    const bool over_capacity = merged->num_postings() > capacity;
    {
      std::lock_guard<std::mutex> lock(components_mu_);
      mirrors_.Unregister(cur.get());
      if (existing != nullptr) mirrors_.Unregister(existing.get());
      if (over_capacity) {
        // Keep pushing down; stay visible as a mirror meanwhile.
        mirrors_.Register(merged);
      } else {
        levels_[level_index] = merged;
      }
      structure_version_.fetch_add(1, std::memory_order_release);
    }
    // The inputs just became invisible: retire their residencies so
    // inserts stop bumping dead ceiling cells. Ordering (only after the
    // swap) is what keeps queries snapshotting the inputs sound.
    if (hooks.on_retired) {
      const ComponentId from_b = existing != nullptr
                                     ? existing->component_id()
                                     : kInvalidComponentId;
      for (const StreamId stream : surviving) {
        hooks.on_retired(stream, cur->component_id(), from_b);
      }
    }
    if (!over_capacity) break;
    cur = merged;
    ++level_index;
    capacity *= config_.rho;
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  merge_stats_.merges += stats.merges;
  merge_stats_.postings_in += stats.postings_in;
  merge_stats_.postings_out += stats.postings_out;
  merge_stats_.purged_postings += stats.purged_postings;
  merge_stats_.consolidated_postings += stats.consolidated_postings;
  merge_stats_.total_micros += stats.total_micros;
}

Status LsmTree::RestoreSealedComponent(
    std::shared_ptr<index::InvertedIndex> component) {
  if (component == nullptr || component->level() < 1) {
    return Status::InvalidArgument("restored component must have level >= 1");
  }
  if (component->component_id() == kInvalidComponentId) {
    component->AdoptCeiling(AllocateComponentId(),
                            std::make_shared<index::FreshnessCeiling>());
  }
  const auto slot = static_cast<std::size_t>(component->level()) - 1;
  std::lock_guard<std::mutex> lock(components_mu_);
  if (levels_.size() <= slot) levels_.resize(slot + 1);
  if (levels_[slot] != nullptr) {
    return Status::AlreadyExists("level slot occupied");
  }
  levels_[slot] = std::move(component);
  structure_version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

std::size_t LsmTree::total_postings() const {
  std::size_t total = l0_postings();
  std::lock_guard<std::mutex> lock(components_mu_);
  for (const auto& level : levels_) {
    if (level != nullptr) total += level->num_postings();
  }
  return total;
}

std::size_t LsmTree::num_levels() const {
  std::lock_guard<std::mutex> lock(components_mu_);
  std::size_t count = 0;
  for (const auto& level : levels_) {
    if (level != nullptr) ++count;
  }
  return count;
}

std::size_t LsmTree::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : l0_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    bytes += shard->index.MemoryBytes();
  }
  std::lock_guard<std::mutex> lock(components_mu_);
  for (const auto& level : levels_) {
    if (level != nullptr) bytes += level->MemoryBytes();
  }
  bytes += mirrors_.MemoryBytes();
  return bytes;
}

MergeStats LsmTree::GetMergeStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return merge_stats_;
}

}  // namespace rtsi::lsm
