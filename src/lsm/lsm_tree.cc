#include "lsm/lsm_tree.h"

#include <algorithm>

namespace rtsi::lsm {

using index::InvertedIndex;
using index::Posting;
using index::TermBounds;

LsmTree::LsmTree(const Config& config)
    : config_(config),
      policy_(config.policy),
      view_gauge_(std::make_shared<std::atomic<std::int64_t>>(0)) {
  const std::size_t num_shards = std::max<std::size_t>(config.num_l0_shards, 1);
  l0_shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<L0Shard>();
    if (config_.use_arena) {
      shard->arena = std::make_unique<WindowArena>(
          WindowArena::kDefaultSlabBytes, mem_tracker_);
      shard->index.set_arena(shard->arena.get());
    }
    l0_shards_.push_back(std::move(shard));
  }
  stream_seen_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    stream_seen_.push_back(std::make_unique<StreamSeenShard>());
  }
  // Publish the empty epoch-0 view so PinView() never returns null.
  auto gauge = view_gauge_;
  gauge->fetch_add(1, std::memory_order_relaxed);
  view_.Store(IndexViewPtr(new IndexView{}, [gauge](const IndexView* v) {
    gauge->fetch_sub(1, std::memory_order_relaxed);
    delete v;
  }));
}

bool LsmTree::AddPosting(TermId term, const Posting& posting) {
  L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
  bool first_in_epoch = false;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.index.Add(term, posting);
    // Mark the stream while the term-shard lock is held: FreezeL0 drains
    // under *every* shard lock, so the posting and its epoch mark cannot
    // be split across a freeze (the historical mark-then-add race put the
    // posting in the new epoch with StreamInL0() false and the stream's
    // component count short by one). Lock order term-shard -> seen-shard
    // matches FreezeL0, which clears the seen sets while still holding
    // all term-shard locks.
    StreamSeenShard& seen =
        *stream_seen_[posting.stream % stream_seen_.size()];
    std::lock_guard<std::mutex> seen_lock(seen.mu);
    first_in_epoch = seen.seen.insert(posting.stream).second;
    // Counter bump inside the lock too: a freeze zeroes it under all
    // shard locks, so every bump lands on the same side as its posting.
    l0_postings_.fetch_add(1, std::memory_order_relaxed);
  }
  return first_in_epoch;
}

bool LsmTree::MarkStreamInL0(StreamId stream) {
  StreamSeenShard& shard = *stream_seen_[stream % stream_seen_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.seen.insert(stream).second;
}

bool LsmTree::StreamInL0(StreamId stream) const {
  StreamSeenShard& shard = *stream_seen_[stream % stream_seen_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.seen.count(stream) > 0;
}

TermBounds LsmTree::L0Bounds(TermId term) const {
  const L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.index.Bounds(term);
}

std::vector<std::shared_ptr<const InvertedIndex>> LsmTree::SealedSnapshot()
    const {
  return PinView()->components;
}

void LsmTree::PublishLocked() {
  const IndexViewPtr old_view = view_.Load();
  auto next = std::make_unique<IndexView>();
  next->epoch = old_view->epoch + 1;
  for (const auto& level : levels_) {
    for (const auto& run : level) next->components.push_back(run);
  }
  for (const auto& component : pending_) {
    next->components.push_back(component);
  }
  // Record components that just left the view. Weak references only: the
  // registry observes the mirror-era lifetime without extending it.
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    for (const auto& component : old_view->components) {
      const bool still_visible =
          std::any_of(next->components.begin(), next->components.end(),
                      [&](const auto& c) { return c == component; });
      if (!still_visible) retired_.push_back(component);
    }
    // Opportunistically drop entries whose component has been freed.
    retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                  [](const auto& w) { return w.expired(); }),
                   retired_.end());
  }
  auto gauge = view_gauge_;
  gauge->fetch_add(1, std::memory_order_relaxed);
  view_.Store(IndexViewPtr(next.release(), [gauge](const IndexView* v) {
    gauge->fetch_sub(1, std::memory_order_relaxed);
    delete v;
  }));
}

void LsmTree::DetachRunLocked(
    const std::shared_ptr<const InvertedIndex>& run) {
  for (auto& level : levels_) {
    auto it = std::find(level.begin(), level.end(), run);
    if (it != level.end()) {
      level.erase(it);
      pending_.push_back(run);
      return;
    }
  }
}

void LsmTree::InstallRunLocked(std::shared_ptr<const InvertedIndex> run,
                               int level) {
  const auto slot = static_cast<std::size_t>(level < 0 ? 0 : level);
  if (levels_.size() <= slot) levels_.resize(slot + 1);
  levels_[slot].push_back(std::move(run));
}

void LsmTree::ErasePendingLocked(const InvertedIndex* component) {
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const auto& c) {
                                  return c.get() == component;
                                }),
                 pending_.end());
}

std::shared_ptr<InvertedIndex> LsmTree::FreezeL0(const MergeHooks& hooks) {
  // Take every shard lock in a fixed order, then drain.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(l0_shards_.size());
  for (auto& shard : l0_shards_) {
    locks.emplace_back(shard->mu);
  }
  auto frozen = std::make_shared<InvertedIndex>(0);
  for (auto& shard : l0_shards_) {
    for (auto& [term, postings] : shard->index.TakeTerms()) {
      frozen->Put(term, std::move(postings));
    }
  }
  if (frozen->empty()) {
    // Nothing to freeze: the l0_postings_ counter drifted above delta with
    // no actual postings behind it. Reset the epoch state and publish
    // NOTHING — the historical path pushed the empty component into the
    // view and re-published to erase it, so readers pinning the
    // intermediate epoch saw a permanently empty component and the epoch
    // advanced twice for a no-op.
    for (auto& seen_shard : stream_seen_) {
      std::lock_guard<std::mutex> lock(seen_shard->mu);
      seen_shard->seen.clear();
    }
    l0_postings_.store(0, std::memory_order_relaxed);
    return nullptr;
  }
  // Consolidate + seal: a stream that emitted several windows of one
  // term inside this epoch folds to one aggregated posting, so the
  // frozen component satisfies the same one-posting-per-stream invariant
  // as merge outputs — the pruning bounds (Bounds(), Threshold()) are
  // only sound under it. Matters doubly under tiered compaction, where
  // frozen runs stay query-visible for many epochs.
  frozen->ConsolidateAndSealAll();
  // Rotate the ingest arenas while the shard locks are still held: the
  // consolidation migrated every frozen posting vector to the heap, but the
  // retired arenas are quarantined on the frozen component anyway — they
  // die with it, after the last pinned view drops, so no code path
  // (present or future) can ever observe freed slabs. Fresh arenas take
  // over the next window's ingest.
  for (auto& shard : l0_shards_) {
    if (shard->arena == nullptr) continue;
    {
      // Fold the retiring arena's counters into the rotation accumulator
      // so ArenaStats() stays monotone across freezes (benches compute
      // per-insert deltas from it). Gauges are excluded: allocated_bytes
      // is zero after the consolidate-and-seal migration above, and owned_bytes
      // belongs to the quarantined arena until it dies with the
      // component — ArenaStats() gauges track the *current* arenas only.
      WindowArena::Stats retiring = shard->arena->GetStats();
      retiring.owned_bytes = 0;
      retiring.allocated_bytes = 0;
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      rotated_arena_stats_ += retiring;
    }
    frozen->RetainArena(std::move(shard->arena));
    shard->arena = std::make_unique<WindowArena>(
        WindowArena::kDefaultSlabBytes, mem_tracker_);
    shard->index.set_arena(shard->arena.get());
  }
  frozen->AdoptCeiling(AllocateComponentId(),
                       std::make_shared<index::FreshnessCeiling>());
  frozen->BuildSkipHeader();
  frozen->AttachSkipHeaderGauge(mem_tracker_);
  // Residency registration must complete before the component is
  // query-visible; the held L0 shard locks block any racing insert from
  // slipping a window between registration and visibility.
  if (hooks.on_frozen) hooks.on_frozen(*frozen);
  for (auto& seen_shard : stream_seen_) {
    std::lock_guard<std::mutex> lock(seen_shard->mu);
    seen_shard->seen.clear();
  }
  l0_postings_.store(0, std::memory_order_relaxed);
  {
    // Publish the frozen component before the shard locks drop, so no
    // posting is ever outside both L0 and the view. It enters the level-0
    // run list: an unmerged frozen run is a first-class level resident,
    // so a snapshot cut here restores cleanly.
    std::lock_guard<std::mutex> lock(components_mu_);
    InstallRunLocked(frozen, 0);
    PublishLocked();
  }
  return frozen;
}

void LsmTree::MergeCascade(const MergeHooks& hooks) {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  if (!NeedsMerge()) return;

  MergeStats stats;
  // Scratch arena for the cascade's transient allocation churn
  // (consolidation maps, ordering buffers, unsealed outputs); free lists
  // recycle across the cascade's merges. Sealed outputs never reference
  // it (Seal() migrates to exact-size heap buffers), so it dies here. No
  // tracker: the kLiveArena gauge reports live-data arenas only.
  std::unique_ptr<WindowArena> scratch;
  if (config_.use_arena) scratch = std::make_unique<WindowArena>();
  const std::shared_ptr<const InvertedIndex> frozen = FreezeL0(hooks);
  if (frozen == nullptr) return;  // Drifted counter, nothing frozen.
  if (hooks.on_cascade_step) hooks.on_cascade_step();

  const CompactionConfig policy_config{config_.delta, config_.rho,
                                       config_.tier_runs};
  const auto plan = MakeCompactionPolicy(policy(), policy_config);
  while (true) {
    CompactionStep step;
    {
      // Plan against the current run lists, then detach the chosen
      // inputs into pending_. The visible set is unchanged (run-list
      // entry -> pending), so no publish: the current view keeps serving
      // the inputs until the swap below.
      std::lock_guard<std::mutex> lock(components_mu_);
      if (!plan->PlanStep(levels_, &step) || step.inputs.empty()) break;
      for (const auto& input : step.inputs) DetachRunLocked(input);
    }

    std::vector<const InvertedIndex*> raw_inputs;
    raw_inputs.reserve(step.inputs.size());
    for (const auto& input : step.inputs) raw_inputs.push_back(input.get());
    std::vector<StreamId> surviving;
    const std::shared_ptr<InvertedIndex> merged = CombineComponents(
        raw_inputs, step.out_level, config_.compress, hooks, &stats,
        AllocateComponentId(), std::make_shared<index::FreshnessCeiling>(),
        hooks.on_retired ? &surviving : nullptr, scratch.get());
    merged->AttachSkipHeaderGauge(mem_tracker_);

    {
      // One swap: inputs out, output in. Readers see either the old view
      // (inputs alive via their pin) or the new one, never a partial set.
      // A fully-purged (empty) output is simply dropped rather than
      // installed, so no view ever carries a permanently empty component.
      std::lock_guard<std::mutex> lock(components_mu_);
      for (const auto& input : step.inputs) ErasePendingLocked(input.get());
      if (!merged->empty()) InstallRunLocked(merged, step.out_level);
      PublishLocked();
    }
    // The inputs just left the published view: retire their residencies
    // so inserts stop bumping dead ceiling cells. Ordering (only after
    // the swap) is what keeps queries pinned to the old view sound.
    if (hooks.on_retired) {
      std::vector<ComponentId> from;
      from.reserve(step.inputs.size());
      for (const auto& input : step.inputs) {
        from.push_back(input->component_id());
      }
      for (const StreamId stream : surviving) {
        hooks.on_retired(stream, from);
      }
    }
    if (hooks.on_cascade_step) hooks.on_cascade_step();
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  merge_stats_ += stats;
}

Status LsmTree::RestoreSealedComponent(
    std::shared_ptr<index::InvertedIndex> component) {
  if (component == nullptr || component->level() < 0) {
    return Status::InvalidArgument("restored component must have level >= 0");
  }
  if (component->component_id() == kInvalidComponentId) {
    component->AdoptCeiling(AllocateComponentId(),
                            std::make_shared<index::FreshnessCeiling>());
  }
  // Pre-v4 snapshots carry no header; rebuild deterministically (the
  // result is byte-identical to what a v4 file would have persisted).
  if (component->skip_header() == nullptr) component->BuildSkipHeader();
  component->AttachSkipHeaderGauge(mem_tracker_);
  const int level = component->level();
  std::lock_guard<std::mutex> lock(components_mu_);
  InstallRunLocked(std::move(component), level);
  PublishLocked();
  return Status::Ok();
}

std::size_t LsmTree::total_postings() const {
  std::size_t total = l0_postings();
  std::lock_guard<std::mutex> lock(components_mu_);
  for (const auto& level : levels_) {
    for (const auto& run : level) total += run->num_postings();
  }
  for (const auto& component : pending_) total += component->num_postings();
  return total;
}

std::size_t LsmTree::num_levels() const {
  std::lock_guard<std::mutex> lock(components_mu_);
  std::size_t count = 0;
  for (const auto& level : levels_) {
    if (!level.empty()) ++count;
  }
  return count;
}

std::size_t LsmTree::num_runs() const {
  std::lock_guard<std::mutex> lock(components_mu_);
  std::size_t count = 0;
  for (const auto& level : levels_) count += level.size();
  return count;
}

std::vector<std::size_t> LsmTree::RunsPerLevel() const {
  std::lock_guard<std::mutex> lock(components_mu_);
  std::vector<std::size_t> runs;
  runs.reserve(levels_.size());
  for (const auto& level : levels_) runs.push_back(level.size());
  while (!runs.empty() && runs.back() == 0) runs.pop_back();
  return runs;
}

std::size_t LsmTree::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : l0_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    bytes += shard->index.MemoryBytes();
  }
  // The published view is the query-visible set (level residents plus any
  // in-flight merge's inputs/outputs); retired-but-pinned bytes are
  // reported separately via RetiredBytes().
  for (const auto& component : PinView()->components) {
    bytes += component->MemoryBytes();
  }
  return bytes;
}

std::size_t LsmTree::retired_components() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  std::size_t alive = 0;
  for (const auto& weak : retired_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

std::size_t LsmTree::RetiredBytes() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  std::size_t bytes = 0;
  for (const auto& weak : retired_) {
    if (const auto component = weak.lock()) bytes += component->MemoryBytes();
  }
  return bytes;
}

WindowArena::Stats LsmTree::ArenaStats() const {
  WindowArena::Stats total;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    total += rotated_arena_stats_;  // Counters of every retired arena.
  }
  for (const auto& shard : l0_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    if (shard->arena != nullptr) total += shard->arena->GetStats();
  }
  return total;
}

MergeStats LsmTree::GetMergeStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return merge_stats_;
}

}  // namespace rtsi::lsm
