#include "lsm/lsm_tree.h"

#include <algorithm>

namespace rtsi::lsm {

using index::InvertedIndex;
using index::Posting;
using index::TermBounds;

LsmTree::LsmTree(const Config& config)
    : config_(config),
      view_gauge_(std::make_shared<std::atomic<std::int64_t>>(0)) {
  const std::size_t num_shards = std::max<std::size_t>(config.num_l0_shards, 1);
  l0_shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<L0Shard>();
    if (config_.use_arena) {
      shard->arena = std::make_unique<WindowArena>(
          WindowArena::kDefaultSlabBytes, mem_tracker_);
      shard->index.set_arena(shard->arena.get());
    }
    l0_shards_.push_back(std::move(shard));
  }
  stream_seen_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    stream_seen_.push_back(std::make_unique<StreamSeenShard>());
  }
  // Publish the empty epoch-0 view so PinView() never returns null.
  auto gauge = view_gauge_;
  gauge->fetch_add(1, std::memory_order_relaxed);
  view_.Store(IndexViewPtr(new IndexView{}, [gauge](const IndexView* v) {
    gauge->fetch_sub(1, std::memory_order_relaxed);
    delete v;
  }));
}

void LsmTree::AddPosting(TermId term, const Posting& posting) {
  L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.index.Add(term, posting);
  }
  l0_postings_.fetch_add(1, std::memory_order_relaxed);
}

bool LsmTree::MarkStreamInL0(StreamId stream) {
  StreamSeenShard& shard = *stream_seen_[stream % stream_seen_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.seen.insert(stream).second;
}

bool LsmTree::StreamInL0(StreamId stream) const {
  StreamSeenShard& shard = *stream_seen_[stream % stream_seen_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.seen.count(stream) > 0;
}

TermBounds LsmTree::L0Bounds(TermId term) const {
  const L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  return shard.index.Bounds(term);
}

std::vector<std::shared_ptr<const InvertedIndex>> LsmTree::SealedSnapshot()
    const {
  return PinView()->components;
}

void LsmTree::PublishLocked() {
  const IndexViewPtr old_view = view_.Load();
  auto next = std::make_unique<IndexView>();
  next->epoch = old_view->epoch + 1;
  next->components.reserve(levels_.size() + pending_.size());
  for (const auto& level : levels_) {
    if (level != nullptr) next->components.push_back(level);
  }
  for (const auto& component : pending_) {
    next->components.push_back(component);
  }
  // Record components that just left the view. Weak references only: the
  // registry observes the mirror-era lifetime without extending it.
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    for (const auto& component : old_view->components) {
      const bool still_visible =
          std::any_of(next->components.begin(), next->components.end(),
                      [&](const auto& c) { return c == component; });
      if (!still_visible) retired_.push_back(component);
    }
    // Opportunistically drop entries whose component has been freed.
    retired_.erase(std::remove_if(retired_.begin(), retired_.end(),
                                  [](const auto& w) { return w.expired(); }),
                   retired_.end());
  }
  auto gauge = view_gauge_;
  gauge->fetch_add(1, std::memory_order_relaxed);
  view_.Store(IndexViewPtr(next.release(), [gauge](const IndexView* v) {
    gauge->fetch_sub(1, std::memory_order_relaxed);
    delete v;
  }));
}

void LsmTree::ErasePendingLocked(const InvertedIndex* component) {
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                [&](const auto& c) {
                                  return c.get() == component;
                                }),
                 pending_.end());
}

std::shared_ptr<InvertedIndex> LsmTree::FreezeL0(const MergeHooks& hooks) {
  // Take every shard lock in a fixed order, then drain.
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(l0_shards_.size());
  for (auto& shard : l0_shards_) {
    locks.emplace_back(shard->mu);
  }
  auto frozen = std::make_shared<InvertedIndex>(0);
  for (auto& shard : l0_shards_) {
    for (auto& [term, postings] : shard->index.TakeTerms()) {
      frozen->Put(term, std::move(postings));
    }
  }
  frozen->SealAll();
  // Rotate the ingest arenas while the shard locks are still held:
  // SealAll() migrated every frozen posting vector to the heap, but the
  // retired arenas are quarantined on the frozen component anyway — they
  // die with it, after the last pinned view drops, so no code path
  // (present or future) can ever observe freed slabs. Fresh arenas take
  // over the next window's ingest.
  for (auto& shard : l0_shards_) {
    if (shard->arena == nullptr) continue;
    {
      // Fold the retiring arena's counters into the rotation accumulator
      // so ArenaStats() stays monotone across freezes (benches compute
      // per-insert deltas from it). Gauges are excluded: allocated_bytes
      // is zero after the SealAll() migration above, and owned_bytes
      // belongs to the quarantined arena until it dies with the
      // component — ArenaStats() gauges track the *current* arenas only.
      WindowArena::Stats retiring = shard->arena->GetStats();
      retiring.owned_bytes = 0;
      retiring.allocated_bytes = 0;
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      rotated_arena_stats_ += retiring;
    }
    frozen->RetainArena(std::move(shard->arena));
    shard->arena = std::make_unique<WindowArena>(
        WindowArena::kDefaultSlabBytes, mem_tracker_);
    shard->index.set_arena(shard->arena.get());
  }
  frozen->AdoptCeiling(AllocateComponentId(),
                       std::make_shared<index::FreshnessCeiling>());
  frozen->BuildSkipHeader();
  frozen->AttachSkipHeaderGauge(mem_tracker_);
  // Residency registration must complete before the component is
  // query-visible; the held L0 shard locks block any racing insert from
  // slipping a window between registration and visibility.
  if (hooks.on_frozen) hooks.on_frozen(*frozen);
  for (auto& seen_shard : stream_seen_) {
    std::lock_guard<std::mutex> lock(seen_shard->mu);
    seen_shard->seen.clear();
  }
  l0_postings_.store(0, std::memory_order_relaxed);
  {
    // Publish the frozen component before the shard locks drop, so no
    // posting is ever outside both L0 and the view.
    std::lock_guard<std::mutex> lock(components_mu_);
    pending_.push_back(frozen);
    PublishLocked();
  }
  return frozen;
}

void LsmTree::MergeCascade(const MergeHooks& hooks) {
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  if (!NeedsMerge()) return;

  MergeStats stats;
  // Scratch arena for the cascade's transient allocation churn
  // (consolidation maps, ordering buffers, unsealed outputs); free lists
  // recycle across the cascade's merges. Sealed outputs never reference
  // it (Seal() migrates to exact-size heap buffers), so it dies here. No
  // tracker: the kLiveArena gauge reports live-data arenas only.
  std::unique_ptr<WindowArena> scratch;
  if (config_.use_arena) scratch = std::make_unique<WindowArena>();
  std::shared_ptr<const InvertedIndex> cur = FreezeL0(hooks);
  if (cur->empty()) {
    std::lock_guard<std::mutex> lock(components_mu_);
    ErasePendingLocked(cur.get());
    PublishLocked();
    return;
  }

  if (config_.policy == MergePolicy::kFullCompaction) {
    // Fold the frozen component and every level into one component.
    while (true) {
      std::shared_ptr<const InvertedIndex> existing;
      std::size_t slot = 0;
      {
        // Detach the next occupied level into pending_. The visible set
        // is unchanged (slot resident -> pending), so no publish: the
        // current view keeps serving the input until the swap below.
        std::lock_guard<std::mutex> lock(components_mu_);
        for (; slot < levels_.size(); ++slot) {
          if (levels_[slot] != nullptr) {
            existing = levels_[slot];
            pending_.push_back(existing);
            levels_[slot] = nullptr;
            break;
          }
        }
      }
      std::vector<StreamId> surviving;
      const auto merged =
          CombineComponents(*cur, existing.get(), 1, config_.compress,
                            hooks, &stats, AllocateComponentId(),
                            std::make_shared<index::FreshnessCeiling>(),
                            hooks.on_retired ? &surviving : nullptr,
                            scratch.get());
      merged->AttachSkipHeaderGauge(mem_tracker_);
      {
        // One swap: inputs out, output in. Readers see either the old
        // view (inputs alive via their pin) or the new one, never a
        // partial set.
        std::lock_guard<std::mutex> lock(components_mu_);
        ErasePendingLocked(cur.get());
        if (existing != nullptr) ErasePendingLocked(existing.get());
        if (existing == nullptr) {
          // Nothing left to fold: install as the single component.
          if (levels_.empty()) levels_.resize(1);
          levels_[0] = merged;
        } else {
          pending_.push_back(merged);
        }
        PublishLocked();
      }
      // The inputs just left the published view: retire their residencies
      // so inserts stop bumping dead ceiling cells. Ordering (only after
      // the swap) is what keeps queries pinned to the old view sound.
      if (hooks.on_retired) {
        const ComponentId from_b = existing != nullptr
                                       ? existing->component_id()
                                       : kInvalidComponentId;
        for (const StreamId stream : surviving) {
          hooks.on_retired(stream, cur->component_id(), from_b);
        }
      }
      if (existing == nullptr) break;
      cur = merged;
    }
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    merge_stats_.merges += stats.merges;
    merge_stats_.postings_in += stats.postings_in;
    merge_stats_.postings_out += stats.postings_out;
    merge_stats_.purged_postings += stats.purged_postings;
    merge_stats_.consolidated_postings += stats.consolidated_postings;
    merge_stats_.total_micros += stats.total_micros;
    return;
  }

  std::size_t level_index = 0;
  double capacity = config_.delta * config_.rho;
  while (true) {
    // Detach the resident component of this level (if any) into pending_,
    // keeping it query-visible: the published view is untouched until the
    // merge output is ready to replace both inputs in one swap.
    std::shared_ptr<const InvertedIndex> existing;
    {
      std::lock_guard<std::mutex> lock(components_mu_);
      if (levels_.size() <= level_index) levels_.resize(level_index + 1);
      existing = levels_[level_index];
      if (existing != nullptr) {
        pending_.push_back(existing);
        levels_[level_index] = nullptr;
      }
    }

    std::vector<StreamId> surviving;
    const std::shared_ptr<InvertedIndex> merged = CombineComponents(
        *cur, existing.get(), static_cast<int>(level_index) + 1,
        config_.compress, hooks, &stats, AllocateComponentId(),
        std::make_shared<index::FreshnessCeiling>(),
        hooks.on_retired ? &surviving : nullptr, scratch.get());
    merged->AttachSkipHeaderGauge(mem_tracker_);

    const bool over_capacity = merged->num_postings() > capacity;
    {
      std::lock_guard<std::mutex> lock(components_mu_);
      ErasePendingLocked(cur.get());
      if (existing != nullptr) ErasePendingLocked(existing.get());
      if (over_capacity) {
        // Keep pushing down; stay visible via pending_ meanwhile.
        pending_.push_back(merged);
      } else {
        levels_[level_index] = merged;
      }
      PublishLocked();
    }
    // The inputs just left the published view: retire their residencies
    // so inserts stop bumping dead ceiling cells. Ordering (only after
    // the swap) is what keeps queries pinned to the old view sound.
    if (hooks.on_retired) {
      const ComponentId from_b = existing != nullptr
                                     ? existing->component_id()
                                     : kInvalidComponentId;
      for (const StreamId stream : surviving) {
        hooks.on_retired(stream, cur->component_id(), from_b);
      }
    }
    if (!over_capacity) break;
    cur = merged;
    ++level_index;
    capacity *= config_.rho;
  }

  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  merge_stats_.merges += stats.merges;
  merge_stats_.postings_in += stats.postings_in;
  merge_stats_.postings_out += stats.postings_out;
  merge_stats_.purged_postings += stats.purged_postings;
  merge_stats_.consolidated_postings += stats.consolidated_postings;
  merge_stats_.total_micros += stats.total_micros;
}

Status LsmTree::RestoreSealedComponent(
    std::shared_ptr<index::InvertedIndex> component) {
  if (component == nullptr || component->level() < 1) {
    return Status::InvalidArgument("restored component must have level >= 1");
  }
  if (component->component_id() == kInvalidComponentId) {
    component->AdoptCeiling(AllocateComponentId(),
                            std::make_shared<index::FreshnessCeiling>());
  }
  // Pre-v4 snapshots carry no header; rebuild deterministically (the
  // result is byte-identical to what a v4 file would have persisted).
  if (component->skip_header() == nullptr) component->BuildSkipHeader();
  component->AttachSkipHeaderGauge(mem_tracker_);
  const auto slot = static_cast<std::size_t>(component->level()) - 1;
  std::lock_guard<std::mutex> lock(components_mu_);
  if (levels_.size() <= slot) levels_.resize(slot + 1);
  if (levels_[slot] != nullptr) {
    return Status::AlreadyExists("level slot occupied");
  }
  levels_[slot] = std::move(component);
  PublishLocked();
  return Status::Ok();
}

std::size_t LsmTree::total_postings() const {
  std::size_t total = l0_postings();
  std::lock_guard<std::mutex> lock(components_mu_);
  for (const auto& level : levels_) {
    if (level != nullptr) total += level->num_postings();
  }
  return total;
}

std::size_t LsmTree::num_levels() const {
  std::lock_guard<std::mutex> lock(components_mu_);
  std::size_t count = 0;
  for (const auto& level : levels_) {
    if (level != nullptr) ++count;
  }
  return count;
}

std::size_t LsmTree::MemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& shard : l0_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    bytes += shard->index.MemoryBytes();
  }
  // The published view is the query-visible set (level residents plus any
  // in-flight merge's inputs/outputs); retired-but-pinned bytes are
  // reported separately via RetiredBytes().
  for (const auto& component : PinView()->components) {
    bytes += component->MemoryBytes();
  }
  return bytes;
}

std::size_t LsmTree::retired_components() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  std::size_t alive = 0;
  for (const auto& weak : retired_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

std::size_t LsmTree::RetiredBytes() const {
  std::lock_guard<std::mutex> lock(retired_mu_);
  std::size_t bytes = 0;
  for (const auto& weak : retired_) {
    if (const auto component = weak.lock()) bytes += component->MemoryBytes();
  }
  return bytes;
}

WindowArena::Stats LsmTree::ArenaStats() const {
  WindowArena::Stats total;
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    total += rotated_arena_stats_;  // Counters of every retired arena.
  }
  for (const auto& shard : l0_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    if (shard->arena != nullptr) total += shard->arena->GetStats();
  }
  return total;
}

MergeStats LsmTree::GetMergeStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return merge_stats_;
}

}  // namespace rtsi::lsm
