// Pluggable compaction policies for the LSM-tree of inverted indices.
//
// A policy decides how sealed runs are folded after an L0 freeze: which
// components to merge next and the level the output lands on. The tree
// calls PlanStep in a loop (under its structural lock), executes each
// returned step with an N-way CombineComponents, and stops when the
// policy has nothing left to fold. Policies are stateless: every decision
// is a pure function of the current per-level run lists, so a cascade
// interrupted by a crash — or a snapshot restored mid-cascade, possibly
// saved under a *different* policy — always re-plans soundly from
// whatever state it finds.
//
//  * kGeometric      — the paper's Algorithm 1. Level i overflows into
//                      level i+1 while it exceeds delta * rho^i; at most
//                      one run per level in steady state. Amortized
//                      O(log) rewrites per posting, fewest components on
//                      the read path.
//  * kTiered         — size-tiered: runs accumulate at a level until
//                      tier_runs of them exist, then all of them merge
//                      into a single run one level down. Most freezes do
//                      no merge work at all (lowest write amplification);
//                      queries see up to tier_runs components per level,
//                      which the skip headers keep cheap (DESIGN.md §6h).
//  * kFullCompaction — ablation baseline: every freeze folds everything
//                      into one component. Cheapest possible queries,
//                      O(n) rewrite per freeze.

#ifndef RTSI_LSM_COMPACTION_POLICY_H_
#define RTSI_LSM_COMPACTION_POLICY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "index/inverted_index.h"

namespace rtsi::lsm {

/// How freezes of I0 are folded into the sealed levels.
enum class MergePolicy {
  kGeometric,
  kFullCompaction,
  kTiered,
};

/// Human-readable policy name ("geometric", "tiered", "full"); stable —
/// benches and rtsi_cli print it and snapshots round-trip the enum value.
const char* MergePolicyName(MergePolicy policy);

/// The per-level run lists a policy plans over: runs[l] holds every
/// sealed component whose level() == l, newest last. Index 0 is the home
/// of frozen-L0 runs that no merge has touched yet.
using LevelRuns =
    std::vector<std::vector<std::shared_ptr<const index::InvertedIndex>>>;

/// The policy knobs, decoupled from LsmTree::Config so policies never
/// depend on the tree.
struct CompactionConfig {
  std::size_t delta = 64 * 1024;  // I0 capacity, in postings.
  double rho = 4.0;               // Size ratio between adjacent levels.
  std::size_t tier_runs = 4;      // kTiered: runs per level before a
                                  // tier merges one level down.
};

/// One merge step: fold `inputs` (all currently query-visible runs) into
/// a single new component at `out_level`.
struct CompactionStep {
  std::vector<std::shared_ptr<const index::InvertedIndex>> inputs;
  int out_level = 1;
};

class CompactionPolicy {
 public:
  virtual ~CompactionPolicy() = default;

  virtual const char* name() const = 0;

  /// Plans the next merge step given the current run lists; returns false
  /// when the cascade is complete. Called under the tree's structural
  /// lock — implementations must not block or call back into the tree.
  virtual bool PlanStep(const LevelRuns& levels, CompactionStep* step) = 0;
};

/// Policy factory. The returned object is cheap and stateless; the tree
/// constructs one per cascade.
std::unique_ptr<CompactionPolicy> MakeCompactionPolicy(
    MergePolicy policy, const CompactionConfig& config);

}  // namespace rtsi::lsm

#endif  // RTSI_LSM_COMPACTION_POLICY_H_
