#include "lsm/mirror_set.h"

#include <algorithm>

namespace rtsi::lsm {

void MirrorSet::Register(
    std::shared_ptr<const index::InvertedIndex> mirror) {
  std::lock_guard<std::mutex> lock(mu_);
  mirrors_.push_back(std::move(mirror));
}

void MirrorSet::Unregister(const index::InvertedIndex* mirror) {
  std::lock_guard<std::mutex> lock(mu_);
  mirrors_.erase(
      std::remove_if(mirrors_.begin(), mirrors_.end(),
                     [mirror](const auto& m) { return m.get() == mirror; }),
      mirrors_.end());
}

std::vector<std::shared_ptr<const index::InvertedIndex>> MirrorSet::GetAll()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return mirrors_;
}

std::size_t MirrorSet::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mirrors_.size();
}

Timestamp MirrorSet::MaxLiveFrshCeiling() const {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp ceiling = 0;
  for (const auto& mirror : mirrors_) {
    ceiling = std::max(ceiling, mirror->LiveFrshCeiling());
  }
  return ceiling;
}

std::size_t MirrorSet::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = 0;
  for (const auto& mirror : mirrors_) bytes += mirror->MemoryBytes();
  return bytes;
}

}  // namespace rtsi::lsm
