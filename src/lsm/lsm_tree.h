// The LSM-tree of inverted indices (Figure 2).
//
// Level 0 is mutable and sharded by term: insertions lock only the term's
// shard (the paper's "partially locking the inverted index"), queries take
// the shard's shared lock for the duration of one term scan. Levels >= 1
// are immutable components produced by merges.
//
// Every sealed level holds a *list* of runs, not a single resident: a
// just-frozen L0 lives at levels_[0], a tiered policy accumulates several
// runs per level by design, and a snapshot restored mid-cascade may land
// a detached input next to an over-capacity intermediate on the same
// level. Any such state is valid — the compaction policy re-plans from
// whatever run lists it finds, so every pinned view is a restorable
// snapshot (the snapshot-anywhere invariant, DESIGN.md §6h).
//
// The sealed structure is epoch-published: every structural change builds
// an immutable IndexView and swaps it in with one atomic shared_ptr
// store. Queries pin the current view and traverse it lock-free;
// pre-merge components stay alive because the views that reference them
// do, which subsumes Algorithm 2's mirror set (the refcount is the
// mirror). Writer-side bookkeeping (per-level run lists, the in-flight
// merge's detached inputs) is serialized by components_mu_, which no
// reader ever takes.
//
// Merging is delegated to a pluggable CompactionPolicy (Algorithm 1's
// geometric cascade by default; see compaction_policy.h): after an L0
// freeze the tree executes policy-planned N-way merge steps until the
// policy reports a settled shape.

#ifndef RTSI_LSM_LSM_TREE_H_
#define RTSI_LSM_LSM_TREE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "common/atomic_shared_ptr.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/window_arena.h"
#include "index/inverted_index.h"
#include "lsm/compaction_policy.h"
#include "lsm/index_view.h"
#include "lsm/merge.h"

namespace rtsi::lsm {

class LsmTree {
 public:
  struct Config {
    std::size_t delta = 64 * 1024;  // I0 capacity, in postings.
    double rho = 4.0;               // Size ratio between adjacent levels.
    bool compress = false;          // Huffman-compress merged components.
    std::size_t num_l0_shards = 16;
    MergePolicy policy = MergePolicy::kGeometric;
    std::size_t tier_runs = 4;      // kTiered: runs accumulated per level
                                    // before the tier merges one level down.
    // Back unsealed L0 posting vectors with per-shard WindowArenas,
    // rotated at FreezeL0 (retired arenas are quarantined on the frozen
    // component until the last pinned view drops). Off = global heap.
    bool use_arena = true;
  };

  explicit LsmTree(const Config& config);

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  /// Appends one posting to the term's level-0 list and records the
  /// posting's stream as present in the current L0 epoch; returns true on
  /// the stream's first posting since the last freeze (the caller uses
  /// this to maintain per-stream component counts). Marking happens under
  /// the term-shard lock, so mark+add is atomic w.r.t. FreezeL0 (which
  /// holds every shard lock): the posting and its epoch mark always land
  /// on the same side of a freeze. Thread-safe.
  bool AddPosting(TermId term, const index::Posting& posting);

  /// Records that `stream` has postings in the current L0 epoch without
  /// adding a posting; returns true on the first call for this stream
  /// since the last freeze. Prefer the AddPosting return value — a freeze
  /// between this call and a later AddPosting splits mark and posting
  /// across epochs. Kept for tests.
  bool MarkStreamInL0(StreamId stream);

  /// True when `stream` has postings in the current L0 epoch.
  bool StreamInL0(StreamId stream) const;

  bool NeedsMerge() const {
    return l0_postings_.load(std::memory_order_relaxed) > config_.delta;
  }

  /// Runs the merge cascade if I0 is over capacity: freezes L0, then
  /// executes merge steps planned by the configured CompactionPolicy
  /// until the structure settles. Safe to call from any thread; merges
  /// are serialized. Queries proceed concurrently against whatever view
  /// they pinned. `hooks.on_cascade_step` (if set) fires after every
  /// published step with no tree locks held.
  void MergeCascade(const MergeHooks& hooks);

  /// Runs `fn(const index::TermPostings*)` for the term's L0 postings
  /// (nullptr when absent) under the shard's shared lock.
  template <typename Fn>
  void WithL0Term(TermId term, Fn&& fn) const {
    const L0Shard& shard = *l0_shards_[term % l0_shards_.size()];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    fn(shard.index.GetPlain(term));
  }

  /// Upper bounds of `term` inside L0.
  index::TermBounds L0Bounds(TermId term) const;

  /// Runs fn(TermId, const index::TermPostings&) for every L0 term, one
  /// shard at a time under its shared lock (snapshot save path).
  template <typename Fn>
  void ForEachL0Term(Fn&& fn) const {
    for (const auto& shard : l0_shards_) {
      std::shared_lock<std::shared_mutex> lock(shard->mu);
      shard->index.ForEachTerm(fn);
    }
  }

  /// Appends a sealed component to the run list of the level implied by
  /// its level() (snapshot restore path). Any level >= 0 is accepted and
  /// levels may receive several runs: a snapshot can be taken at any
  /// point of a merge cascade — frozen L0 at level 0, detached inputs
  /// and over-capacity intermediates sharing a level — and the next
  /// cascade re-plans from whatever shape was restored. Assigns the
  /// component a fresh id and live-freshness ceiling cell if it has none.
  Status RestoreSealedComponent(
      std::shared_ptr<index::InvertedIndex> component);

  /// Pins the currently published read view: the complete sealed
  /// component set plus its epoch, immutable for the pin's lifetime.
  /// Wait-free for readers; the one load a query performs on entry.
  IndexViewPtr PinView() const { return view_.Load(); }

  /// Convenience copy of the pinned view's component list (callers that
  /// want a vector rather than a view pin, e.g. snapshot save). Never
  /// contains duplicates.
  std::vector<std::shared_ptr<const index::InvertedIndex>> SealedSnapshot()
      const;

  /// Epoch of the currently published view (monotone; bumped on every
  /// freeze, merge swap and restore). Two equal epochs bracket an
  /// unchanged component set.
  std::uint64_t epoch() const { return PinView()->epoch; }

  std::size_t l0_postings() const {
    return l0_postings_.load(std::memory_order_relaxed);
  }

  std::size_t total_postings() const;

  /// Number of levels holding at least one run.
  std::size_t num_levels() const;

  /// Total sealed runs across all levels (a level can hold several).
  std::size_t num_runs() const;

  /// Run count per level, indexed by level (index 0 = frozen-L0 runs).
  /// Trailing empty levels are trimmed.
  std::vector<std::size_t> RunsPerLevel() const;

  std::size_t MemoryBytes() const;
  MergeStats GetMergeStats() const;
  const Config& config() const { return config_; }

  /// The active compaction policy. Defaults to Config::policy.
  MergePolicy policy() const {
    return policy_.load(std::memory_order_relaxed);
  }

  /// Switches the compaction policy. Takes effect at the next cascade
  /// (policies are stateless — each cascade re-plans from the current
  /// run lists, so switching never invalidates existing structure).
  void SetPolicy(MergePolicy policy) {
    policy_.store(policy, std::memory_order_relaxed);
  }

  // Lifecycle observability (rtsi_cli stats, leak assertions in tests).

  /// Number of IndexView objects alive: the published view plus every
  /// retired view still pinned by an in-flight reader.
  std::int64_t live_views() const {
    return view_gauge_->load(std::memory_order_relaxed);
  }

  /// Components that left the published view but are still alive because
  /// a pinned view references them (the mirror-era "extra copies").
  std::size_t retired_components() const;

  /// Bytes currently held by retired-but-still-pinned components.
  std::size_t RetiredBytes() const;

  /// The tracker skip-header bytes are charged to (kSkipHeader category).
  /// Shared so a component retired past the tree's lifetime can still
  /// release its charge.
  const std::shared_ptr<MemoryTracker>& memory_tracker() const {
    return mem_tracker_;
  }

  /// Aggregate allocation counters of the L0 ingest arenas (zeroed
  /// struct when use_arena is off). Counters (requests, upstream, free-
  /// list hits) are cumulative across arena rotations — monotone, so
  /// benches can diff them across a freeze; the gauges (owned/allocated
  /// bytes) reflect the current arenas only. Takes each shard's shared
  /// lock briefly; counters themselves are relaxed atomics.
  WindowArena::Stats ArenaStats() const;

 private:
  friend struct LsmTreeTestPeer;

  struct L0Shard {
    mutable std::shared_mutex mu;
    // Ingest arena for this shard's unsealed posting vectors; declared
    // before `index` so the index (whose vectors deallocate into the
    // arena) is destroyed first. Null when Config::use_arena is off.
    std::unique_ptr<WindowArena> arena;
    index::InvertedIndex index{0};
  };

  struct StreamSeenShard {
    std::mutex mu;
    std::unordered_set<StreamId> seen;
  };

  /// Freezes L0 into a sealed component appended to levels_[0] and
  /// published. The component receives a fresh id and ceiling cell, and
  /// `hooks.on_frozen` runs before it becomes query-visible. Returns
  /// nullptr — publishing nothing and bumping no epoch — when L0 holds no
  /// postings (a drifted l0_postings_ counter; the counter is reset so
  /// NeedsMerge() stops firing).
  std::shared_ptr<index::InvertedIndex> FreezeL0(const MergeHooks& hooks);

  /// Builds the view implied by levels_ + pending_, bumps the epoch, and
  /// publishes it; components that just left the view are recorded in the
  /// retired registry. Requires components_mu_.
  void PublishLocked();

  /// Moves one run from its level list into pending_ (detaching a merge
  /// input: still query-visible, no longer plannable). Requires
  /// components_mu_.
  void DetachRunLocked(const std::shared_ptr<const index::InvertedIndex>& run);

  /// Appends a run to its level's list. Requires components_mu_.
  void InstallRunLocked(std::shared_ptr<const index::InvertedIndex> run,
                        int level);

  /// Removes one component from pending_ by identity. Requires
  /// components_mu_.
  void ErasePendingLocked(const index::InvertedIndex* component);

  /// Never-reused component id (1-based; 0 = invalid).
  ComponentId AllocateComponentId() {
    return next_component_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  Config config_;
  std::atomic<MergePolicy> policy_;
  std::vector<std::unique_ptr<L0Shard>> l0_shards_;
  std::vector<std::unique_ptr<StreamSeenShard>> stream_seen_;
  std::atomic<std::size_t> l0_postings_{0};

  // Writer-side structural state; readers go through view_ only.
  mutable std::mutex components_mu_;  // Guards levels_/pending_/publish.
  // levels_[l] holds the sealed runs at level l, oldest first; index 0 is
  // the home of frozen-L0 runs no merge has touched yet.
  LevelRuns levels_;
  // Query-visible components without a level-list entry: merge inputs
  // detached from their run lists while the output is built.
  std::vector<std::shared_ptr<const index::InvertedIndex>> pending_;
  AtomicSharedPtr<const IndexView> view_;
  // Counts IndexView objects alive (each view's deleter decrements); the
  // gauge is shared so a view pinned past the tree's lifetime stays safe.
  std::shared_ptr<std::atomic<std::int64_t>> view_gauge_;
  // Components that left the view; weak so the registry never extends a
  // lifetime — entries expire exactly when the last pinned view drops.
  mutable std::mutex retired_mu_;
  mutable std::vector<std::weak_ptr<const index::InvertedIndex>> retired_;
  std::atomic<ComponentId> next_component_id_{0};
  // Byte accounting for per-component skip headers; shared with the
  // components so retirement-after-tree-destruction still balances.
  std::shared_ptr<MemoryTracker> mem_tracker_ =
      std::make_shared<MemoryTracker>();

  std::mutex merge_mu_;  // At most one merge cascade at a time.
  mutable std::mutex stats_mu_;
  MergeStats merge_stats_;
  // Counters of ingest arenas retired by rotation (gauge fields zeroed),
  // so ArenaStats() stays monotone across freezes. Guarded by stats_mu_.
  WindowArena::Stats rotated_arena_stats_;
};

}  // namespace rtsi::lsm

#endif  // RTSI_LSM_LSM_TREE_H_
