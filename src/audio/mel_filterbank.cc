#include "audio/mel_filterbank.h"

#include <algorithm>
#include <cmath>

namespace rtsi::audio {

double HzToMel(double hz) { return 2595.0 * std::log10(1.0 + hz / 700.0); }

double MelToHz(double mel) {
  return 700.0 * (std::pow(10.0, mel / 2595.0) - 1.0);
}

MelFilterbank::MelFilterbank(int num_filters, int fft_size,
                             int sample_rate_hz, double low_hz,
                             double high_hz)
    : num_filters_(num_filters) {
  const double low_mel = HzToMel(low_hz);
  const double high_mel = HzToMel(high_hz);
  const int num_bins = fft_size / 2 + 1;
  const double hz_per_bin =
      static_cast<double>(sample_rate_hz) / static_cast<double>(fft_size);

  // num_filters + 2 equally spaced mel points define the triangle corners.
  std::vector<double> corner_hz(num_filters + 2);
  for (int i = 0; i < num_filters + 2; ++i) {
    const double mel =
        low_mel + (high_mel - low_mel) * i / (num_filters + 1);
    corner_hz[i] = MelToHz(mel);
  }

  filters_.resize(num_filters);
  for (int f = 0; f < num_filters; ++f) {
    const double left = corner_hz[f];
    const double center = corner_hz[f + 1];
    const double right = corner_hz[f + 2];
    Filter& filter = filters_[f];
    filter.first_bin = num_bins;  // Sentinel until the first nonzero weight.
    for (int bin = 0; bin < num_bins; ++bin) {
      const double hz = bin * hz_per_bin;
      double w = 0.0;
      if (hz > left && hz < center) {
        w = (hz - left) / (center - left);
      } else if (hz >= center && hz < right) {
        w = (right - hz) / (right - center);
      }
      if (w > 0.0) {
        if (filter.first_bin == static_cast<std::size_t>(num_bins)) {
          filter.first_bin = bin;
        }
        filter.weights.push_back(w);
      } else if (filter.first_bin != static_cast<std::size_t>(num_bins)) {
        break;  // Past the right edge of the triangle.
      }
    }
    if (filter.weights.empty()) {
      // Degenerate narrow filter (very small FFT): give it the center bin.
      const auto bin = static_cast<std::size_t>(
          std::min<double>(center / hz_per_bin, num_bins - 1));
      filter.first_bin = bin;
      filter.weights.push_back(1.0);
    }
  }
}

std::vector<double> MelFilterbank::Apply(
    const std::vector<double>& power_spectrum) const {
  std::vector<double> energies(num_filters_, 0.0);
  for (int f = 0; f < num_filters_; ++f) {
    const Filter& filter = filters_[f];
    double acc = 0.0;
    for (std::size_t i = 0; i < filter.weights.size(); ++i) {
      const std::size_t bin = filter.first_bin + i;
      if (bin >= power_spectrum.size()) break;
      acc += filter.weights[i] * power_spectrum[bin];
    }
    energies[f] = acc;
  }
  return energies;
}

}  // namespace rtsi::audio
