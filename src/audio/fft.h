// Iterative radix-2 complex FFT, used by the MFCC front-end.

#ifndef RTSI_AUDIO_FFT_H_
#define RTSI_AUDIO_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace rtsi::audio {

/// In-place forward FFT. `data.size()` must be a power of two (>= 1).
void Fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/N scaling).
void InverseFft(std::vector<std::complex<double>>& data);

/// Power spectrum |X[k]|^2 for k in [0, n/2]. `frame` is zero-padded to
/// `fft_size` (a power of two, >= frame.size()).
std::vector<double> PowerSpectrum(const std::vector<double>& frame,
                                  std::size_t fft_size);

/// Smallest power of two >= n (n >= 1).
std::size_t NextPowerOfTwo(std::size_t n);

}  // namespace rtsi::audio

#endif  // RTSI_AUDIO_FFT_H_
