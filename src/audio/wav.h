// Minimal 16-bit PCM WAV reading and writing (mono).
//
// Lets the examples and tools exchange audio with the outside world:
// synthesized query audio can be saved and inspected, and recorded
// queries can be fed to the voice-search path.

#ifndef RTSI_AUDIO_WAV_H_
#define RTSI_AUDIO_WAV_H_

#include <string>

#include "audio/pcm.h"
#include "common/status.h"

namespace rtsi::audio {

/// Writes `pcm` as a mono 16-bit PCM WAV file.
Status WriteWav(const PcmBuffer& pcm, const std::string& path);

/// Reads a mono (or first-channel-of-stereo) 16-bit PCM WAV file.
Result<PcmBuffer> ReadWav(const std::string& path);

}  // namespace rtsi::audio

#endif  // RTSI_AUDIO_WAV_H_
