// Formant-style waveform synthesizer.
//
// Substitutes for real recorded speech: each phone is rendered as a sum of
// two formant sinusoids (plus a noise component for fricatives) with an
// amplitude envelope. The result is not intelligible speech, but each phone
// has a distinct, stable spectral signature, which is exactly what the
// MFCC-prototype decoder in asr/ needs to recover the phone sequence.

#ifndef RTSI_AUDIO_SYNTHESIZER_H_
#define RTSI_AUDIO_SYNTHESIZER_H_

#include <cstdint>
#include <vector>

#include "audio/pcm.h"
#include "common/rng.h"

namespace rtsi::audio {

/// Acoustic realization parameters of one phone.
struct PhoneSpec {
  double formant1_hz = 500.0;
  double formant2_hz = 1500.0;
  double noise_mix = 0.0;        // 0 = fully voiced, 1 = fully noise.
  double duration_seconds = 0.08;
  double amplitude = 0.6;
};

struct SynthesizerConfig {
  int sample_rate_hz = 16000;
  double noise_floor = 0.01;    // Additive background noise amplitude.
  double edge_taper_seconds = 0.005;  // Attack/release ramp per phone.
};

class Synthesizer {
 public:
  explicit Synthesizer(const SynthesizerConfig& config);

  /// Renders a phone sequence into a PCM buffer. `rng` drives the noise
  /// components, so rendering is deterministic given the seed.
  PcmBuffer Render(const std::vector<PhoneSpec>& phones, Rng& rng) const;

  const SynthesizerConfig& config() const { return config_; }

 private:
  void RenderPhone(const PhoneSpec& phone, Rng& rng,
                   std::vector<float>& out) const;

  SynthesizerConfig config_;
};

}  // namespace rtsi::audio

#endif  // RTSI_AUDIO_SYNTHESIZER_H_
