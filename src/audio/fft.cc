#include "audio/fft.h"

#include <cmath>

namespace rtsi::audio {
namespace {

constexpr double kPi = 3.14159265358979323846;

void FftImpl(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / len;
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

}  // namespace

void Fft(std::vector<std::complex<double>>& data) { FftImpl(data, false); }

void InverseFft(std::vector<std::complex<double>>& data) {
  FftImpl(data, true);
}

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> PowerSpectrum(const std::vector<double>& frame,
                                  std::size_t fft_size) {
  std::vector<std::complex<double>> buf(fft_size, {0.0, 0.0});
  for (std::size_t i = 0; i < frame.size() && i < fft_size; ++i) {
    buf[i] = {frame[i], 0.0};
  }
  Fft(buf);
  std::vector<double> power(fft_size / 2 + 1);
  for (std::size_t k = 0; k < power.size(); ++k) {
    power[k] = std::norm(buf[k]);
  }
  return power;
}

}  // namespace rtsi::audio
