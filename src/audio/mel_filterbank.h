// Triangular mel-scale filterbank applied to power spectra.

#ifndef RTSI_AUDIO_MEL_FILTERBANK_H_
#define RTSI_AUDIO_MEL_FILTERBANK_H_

#include <cstddef>
#include <vector>

namespace rtsi::audio {

/// Frequency (Hz) -> mel scale (O'Shaughnessy formula).
double HzToMel(double hz);

/// Mel scale -> frequency (Hz).
double MelToHz(double mel);

/// A bank of `num_filters` triangular filters spanning [low_hz, high_hz],
/// evaluated on power-spectrum bins of an `fft_size`-point FFT at
/// `sample_rate_hz`.
class MelFilterbank {
 public:
  MelFilterbank(int num_filters, int fft_size, int sample_rate_hz,
                double low_hz, double high_hz);

  /// Applies the bank to a power spectrum of size fft_size/2+1; returns
  /// `num_filters` energies.
  std::vector<double> Apply(const std::vector<double>& power_spectrum) const;

  int num_filters() const { return num_filters_; }

 private:
  int num_filters_;
  // weights_[f] holds (first_bin, per-bin weights) of filter f.
  struct Filter {
    std::size_t first_bin;
    std::vector<double> weights;
  };
  std::vector<Filter> filters_;
};

}  // namespace rtsi::audio

#endif  // RTSI_AUDIO_MEL_FILTERBANK_H_
