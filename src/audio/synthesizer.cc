#include "audio/synthesizer.h"

#include <algorithm>
#include <cmath>

namespace rtsi::audio {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Synthesizer::Synthesizer(const SynthesizerConfig& config) : config_(config) {}

void Synthesizer::RenderPhone(const PhoneSpec& phone, Rng& rng,
                              std::vector<float>& out) const {
  const int rate = config_.sample_rate_hz;
  const auto num_samples =
      static_cast<std::size_t>(phone.duration_seconds * rate);
  const auto taper =
      static_cast<std::size_t>(config_.edge_taper_seconds * rate);

  const double w1 = 2.0 * kPi * phone.formant1_hz / rate;
  const double w2 = 2.0 * kPi * phone.formant2_hz / rate;
  const double voiced_gain = (1.0 - phone.noise_mix) * phone.amplitude;
  const double noise_gain = phone.noise_mix * phone.amplitude;

  for (std::size_t i = 0; i < num_samples; ++i) {
    double envelope = 1.0;
    if (taper > 0) {
      if (i < taper) {
        envelope = static_cast<double>(i) / taper;
      } else if (num_samples - i <= taper) {
        envelope = static_cast<double>(num_samples - i) / taper;
      }
    }
    const double tone =
        0.6 * std::sin(w1 * static_cast<double>(i)) +
        0.4 * std::sin(w2 * static_cast<double>(i));
    const double noise = 2.0 * rng.NextDouble() - 1.0;
    const double background =
        config_.noise_floor * (2.0 * rng.NextDouble() - 1.0);
    const double sample =
        envelope * (voiced_gain * tone + noise_gain * noise) + background;
    out.push_back(static_cast<float>(std::clamp(sample, -1.0, 1.0)));
  }
}

PcmBuffer Synthesizer::Render(const std::vector<PhoneSpec>& phones,
                              Rng& rng) const {
  PcmBuffer pcm;
  pcm.sample_rate_hz = config_.sample_rate_hz;
  std::size_t total = 0;
  for (const auto& phone : phones) {
    total += static_cast<std::size_t>(phone.duration_seconds *
                                      config_.sample_rate_hz);
  }
  pcm.samples.reserve(total);
  for (const auto& phone : phones) RenderPhone(phone, rng, pcm.samples);
  return pcm;
}

}  // namespace rtsi::audio
