#include "audio/wav.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

namespace rtsi::audio {
namespace {

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

}  // namespace

Status WriteWav(const PcmBuffer& pcm, const std::string& path) {
  const std::uint32_t num_samples =
      static_cast<std::uint32_t>(pcm.samples.size());
  const std::uint32_t data_bytes = num_samples * 2;

  std::vector<std::uint8_t> header;
  header.reserve(44);
  header.insert(header.end(), {'R', 'I', 'F', 'F'});
  PutU32(header, 36 + data_bytes);
  header.insert(header.end(), {'W', 'A', 'V', 'E', 'f', 'm', 't', ' '});
  PutU32(header, 16);                    // fmt chunk size.
  PutU16(header, 1);                     // PCM.
  PutU16(header, 1);                     // Mono.
  PutU32(header, static_cast<std::uint32_t>(pcm.sample_rate_hz));
  PutU32(header, static_cast<std::uint32_t>(pcm.sample_rate_hz) * 2);
  PutU16(header, 2);                     // Block align.
  PutU16(header, 16);                    // Bits per sample.
  header.insert(header.end(), {'d', 'a', 't', 'a'});
  PutU32(header, data_bytes);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  for (const float sample : pcm.samples) {
    const float clamped = std::clamp(sample, -1.0f, 1.0f);
    const auto value = static_cast<std::int16_t>(clamped * 32767.0f);
    std::uint8_t bytes[2] = {static_cast<std::uint8_t>(value & 0xFF),
                             static_cast<std::uint8_t>((value >> 8) & 0xFF)};
    ok = ok && std::fwrite(bytes, 1, 2, f) == 2;
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Result<PcmBuffer> ReadWav(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(std::max(0L, size)));
  const std::size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size() || data.size() < 44) {
    return Status::InvalidArgument("truncated WAV: " + path);
  }
  if (std::memcmp(data.data(), "RIFF", 4) != 0 ||
      std::memcmp(data.data() + 8, "WAVE", 4) != 0) {
    return Status::InvalidArgument("not a WAV file: " + path);
  }

  // Walk chunks for fmt and data.
  std::size_t pos = 12;
  int sample_rate = 0;
  int num_channels = 0;
  int bits = 0;
  std::size_t data_offset = 0, data_size = 0;
  while (pos + 8 <= data.size()) {
    const std::uint32_t chunk_size = GetU32(data.data() + pos + 4);
    if (std::memcmp(data.data() + pos, "fmt ", 4) == 0 &&
        pos + 8 + 16 <= data.size()) {
      const std::uint16_t format = GetU16(data.data() + pos + 8);
      num_channels = GetU16(data.data() + pos + 10);
      sample_rate = static_cast<int>(GetU32(data.data() + pos + 12));
      bits = GetU16(data.data() + pos + 22);
      if (format != 1) {
        return Status(StatusCode::kUnimplemented, "only PCM WAV supported");
      }
    } else if (std::memcmp(data.data() + pos, "data", 4) == 0) {
      data_offset = pos + 8;
      data_size = std::min<std::size_t>(chunk_size,
                                        data.size() - data_offset);
    }
    pos += 8 + chunk_size + (chunk_size & 1);
  }
  if (sample_rate == 0 || data_offset == 0 || bits != 16 ||
      num_channels < 1) {
    return Status::InvalidArgument("unsupported WAV layout: " + path);
  }

  PcmBuffer pcm;
  pcm.sample_rate_hz = sample_rate;
  const std::size_t frame_bytes = 2 * static_cast<std::size_t>(num_channels);
  const std::size_t num_frames = data_size / frame_bytes;
  pcm.samples.reserve(num_frames);
  for (std::size_t i = 0; i < num_frames; ++i) {
    const std::uint8_t* p = data.data() + data_offset + i * frame_bytes;
    const auto value = static_cast<std::int16_t>(GetU16(p));
    pcm.samples.push_back(static_cast<float>(value) / 32767.0f);
  }
  return pcm;
}

}  // namespace rtsi::audio
