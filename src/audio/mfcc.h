// MFCC front-end: framing, pre-emphasis, Hamming window, FFT power
// spectrum, mel filterbank, log, DCT-II.
//
// The paper represents phonetic lattices "using Mel-Frequency Cepstrum
// Coefficients (MFCC)"; our simulated ASR decodes synthetic waveforms into
// lattices by matching MFCC frames against per-phoneme prototypes, so this
// front-end is exercised on the real code path.

#ifndef RTSI_AUDIO_MFCC_H_
#define RTSI_AUDIO_MFCC_H_

#include <cstddef>
#include <vector>

#include "audio/mel_filterbank.h"
#include "audio/pcm.h"

namespace rtsi::audio {

struct MfccConfig {
  int sample_rate_hz = 16000;
  double frame_length_seconds = 0.025;
  double frame_shift_seconds = 0.010;
  int num_mel_filters = 26;
  int num_coefficients = 13;
  double pre_emphasis = 0.97;
  double low_freq_hz = 20.0;
  double high_freq_hz = 8000.0;  // Clamped to Nyquist.

  /// Delta feature orders appended to each frame: 0 = static only,
  /// 1 = +delta, 2 = +delta+delta-delta. Frame dimension becomes
  /// num_coefficients * (num_delta_orders + 1).
  int num_delta_orders = 0;
  int delta_window = 2;  // Regression half-window for deltas.

  /// Per-utterance cepstral mean (and variance) normalization applied
  /// after delta computation.
  bool apply_cmvn = false;
};

/// One MFCC feature vector per frame.
using MfccFrame = std::vector<double>;

class MfccExtractor {
 public:
  explicit MfccExtractor(const MfccConfig& config);

  /// Extracts one MfccFrame per 10 ms (frame_shift) of audio. Returns an
  /// empty vector when the buffer is shorter than one frame.
  std::vector<MfccFrame> Extract(const PcmBuffer& pcm) const;

  const MfccConfig& config() const { return config_; }
  std::size_t frame_length_samples() const { return frame_length_; }
  std::size_t frame_shift_samples() const { return frame_shift_; }

  /// Output feature dimension per frame (static + delta blocks).
  int feature_dimension() const {
    return config_.num_coefficients * (config_.num_delta_orders + 1);
  }

 private:
  MfccConfig config_;
  std::size_t frame_length_;
  std::size_t frame_shift_;
  std::size_t fft_size_;
  MelFilterbank filterbank_;
  std::vector<double> window_;       // Hamming coefficients.
  std::vector<double> dct_matrix_;   // num_coefficients x num_mel_filters.
};

/// DCT-II of `input`, keeping the first `num_outputs` coefficients
/// (orthonormal scaling). Standalone helper, also used in tests.
std::vector<double> DctII(const std::vector<double>& input,
                          std::size_t num_outputs);

/// Regression-based delta features: out[t] = sum_{d=1..w} d*(x[t+d]-x[t-d])
/// / (2 * sum d^2), with edge frames clamped. Exposed for tests.
std::vector<MfccFrame> ComputeDeltas(const std::vector<MfccFrame>& frames,
                                     int half_window);

/// Per-utterance cepstral mean-variance normalization, in place.
void ApplyCmvn(std::vector<MfccFrame>& frames);

}  // namespace rtsi::audio

#endif  // RTSI_AUDIO_MFCC_H_
