// In-memory PCM audio buffer.
//
// The synthetic pipeline works on mono float samples; the paper's real
// pipeline consumed compressed audio from Ximalaya, but every downstream
// consumer (the MFCC front-end, the simulated ASR) only needs raw samples.

#ifndef RTSI_AUDIO_PCM_H_
#define RTSI_AUDIO_PCM_H_

#include <cstddef>
#include <vector>

namespace rtsi::audio {

struct PcmBuffer {
  int sample_rate_hz = 16000;
  std::vector<float> samples;  // Mono, nominally in [-1, 1].

  double duration_seconds() const {
    return sample_rate_hz == 0
               ? 0.0
               : static_cast<double>(samples.size()) / sample_rate_hz;
  }
};

}  // namespace rtsi::audio

#endif  // RTSI_AUDIO_PCM_H_
