#include "audio/mfcc.h"

#include <algorithm>
#include <cmath>

#include "audio/fft.h"

namespace rtsi::audio {
namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kLogFloor = 1e-10;
// Mel energies are floored relative to the frame's strongest filter
// (-25 dB): near-silent bins then measure the same whether they hold
// true silence or a low noise floor, which keeps cepstral distances
// stable under additive noise.
constexpr double kRelativeFloor = 3e-3;

}  // namespace

std::vector<double> DctII(const std::vector<double>& input,
                          std::size_t num_outputs) {
  const std::size_t n = input.size();
  std::vector<double> out(std::min(num_outputs, n == 0 ? 0 : num_outputs),
                          0.0);
  if (n == 0) return out;
  const double scale0 = std::sqrt(1.0 / n);
  const double scale = std::sqrt(2.0 / n);
  for (std::size_t k = 0; k < out.size(); ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += input[i] * std::cos(kPi * (i + 0.5) * k / n);
    }
    out[k] = acc * (k == 0 ? scale0 : scale);
  }
  return out;
}

MfccExtractor::MfccExtractor(const MfccConfig& config)
    : config_(config),
      frame_length_(static_cast<std::size_t>(config.frame_length_seconds *
                                             config.sample_rate_hz)),
      frame_shift_(static_cast<std::size_t>(config.frame_shift_seconds *
                                            config.sample_rate_hz)),
      fft_size_(NextPowerOfTwo(std::max<std::size_t>(frame_length_, 2))),
      filterbank_(config.num_mel_filters, static_cast<int>(fft_size_),
                  config.sample_rate_hz, config.low_freq_hz,
                  std::min(config.high_freq_hz,
                           config.sample_rate_hz / 2.0)) {
  window_.resize(frame_length_);
  for (std::size_t i = 0; i < frame_length_; ++i) {
    window_[i] =
        0.54 - 0.46 * std::cos(2.0 * kPi * i /
                               std::max<std::size_t>(frame_length_ - 1, 1));
  }
  // Precompute the DCT rows used for every frame.
  const int m = config_.num_mel_filters;
  dct_matrix_.resize(static_cast<std::size_t>(config_.num_coefficients) * m);
  for (int k = 0; k < config_.num_coefficients; ++k) {
    const double scale =
        k == 0 ? std::sqrt(1.0 / m) : std::sqrt(2.0 / m);
    for (int i = 0; i < m; ++i) {
      dct_matrix_[static_cast<std::size_t>(k) * m + i] =
          scale * std::cos(kPi * (i + 0.5) * k / m);
    }
  }
}

std::vector<MfccFrame> ComputeDeltas(const std::vector<MfccFrame>& frames,
                                     int half_window) {
  std::vector<MfccFrame> deltas(frames.size());
  if (frames.empty()) return deltas;
  const int n = static_cast<int>(frames.size());
  const int w = std::max(half_window, 1);
  double denom = 0.0;
  for (int d = 1; d <= w; ++d) denom += 2.0 * d * d;

  const std::size_t dim = frames[0].size();
  for (int t = 0; t < n; ++t) {
    deltas[t].assign(dim, 0.0);
    for (int d = 1; d <= w; ++d) {
      const MfccFrame& ahead = frames[std::min(t + d, n - 1)];
      const MfccFrame& behind = frames[std::max(t - d, 0)];
      for (std::size_t i = 0; i < dim; ++i) {
        deltas[t][i] += d * (ahead[i] - behind[i]);
      }
    }
    for (double& v : deltas[t]) v /= denom;
  }
  return deltas;
}

void ApplyCmvn(std::vector<MfccFrame>& frames) {
  if (frames.empty()) return;
  const std::size_t dim = frames[0].size();
  std::vector<double> mean(dim, 0.0);
  std::vector<double> var(dim, 0.0);
  for (const MfccFrame& frame : frames) {
    for (std::size_t i = 0; i < dim; ++i) mean[i] += frame[i];
  }
  for (double& m : mean) m /= static_cast<double>(frames.size());
  for (const MfccFrame& frame : frames) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = frame[i] - mean[i];
      var[i] += d * d;
    }
  }
  for (double& v : var) {
    v = std::sqrt(v / static_cast<double>(frames.size()));
    if (v < 1e-8) v = 1.0;  // Constant dimension: center only.
  }
  for (MfccFrame& frame : frames) {
    for (std::size_t i = 0; i < dim; ++i) {
      frame[i] = (frame[i] - mean[i]) / var[i];
    }
  }
}

std::vector<MfccFrame> MfccExtractor::Extract(const PcmBuffer& pcm) const {
  std::vector<MfccFrame> frames;
  if (pcm.samples.size() < frame_length_ || frame_shift_ == 0) return frames;

  const std::size_t num_frames =
      (pcm.samples.size() - frame_length_) / frame_shift_ + 1;
  frames.reserve(num_frames);

  std::vector<double> frame(frame_length_);
  for (std::size_t f = 0; f < num_frames; ++f) {
    const std::size_t start = f * frame_shift_;
    // Pre-emphasis + window.
    for (std::size_t i = 0; i < frame_length_; ++i) {
      const double sample = pcm.samples[start + i];
      const double prev =
          (start + i) == 0 ? 0.0 : pcm.samples[start + i - 1];
      frame[i] = (sample - config_.pre_emphasis * prev) * window_[i];
    }
    const std::vector<double> power = PowerSpectrum(frame, fft_size_);
    std::vector<double> mel = filterbank_.Apply(power);
    double peak = 0.0;
    for (const double e : mel) peak = std::max(peak, e);
    const double floor = std::max(peak * kRelativeFloor, kLogFloor);
    for (double& e : mel) e = std::log(std::max(e, floor));

    MfccFrame coeffs(config_.num_coefficients, 0.0);
    const int m = config_.num_mel_filters;
    for (int k = 0; k < config_.num_coefficients; ++k) {
      double acc = 0.0;
      const double* row = &dct_matrix_[static_cast<std::size_t>(k) * m];
      for (int i = 0; i < m; ++i) acc += row[i] * mel[i];
      coeffs[k] = acc;
    }
    frames.push_back(std::move(coeffs));
  }

  // Optional dynamic features: append delta blocks of increasing order.
  if (config_.num_delta_orders > 0) {
    std::vector<MfccFrame> block = frames;  // Static block (copy).
    std::vector<std::vector<MfccFrame>> delta_blocks;
    for (int order = 0; order < config_.num_delta_orders; ++order) {
      block = ComputeDeltas(block, config_.delta_window);
      delta_blocks.push_back(block);
    }
    for (std::size_t t = 0; t < frames.size(); ++t) {
      for (const auto& deltas : delta_blocks) {
        frames[t].insert(frames[t].end(), deltas[t].begin(),
                         deltas[t].end());
      }
    }
  }
  if (config_.apply_cmvn) ApplyCmvn(frames);
  return frames;
}

}  // namespace rtsi::audio
