#include "baseline/metadata_index.h"

#include <algorithm>

#include "core/top_k.h"

namespace rtsi::baseline {

MetadataIndex::MetadataIndex(const core::RtsiConfig& config,
                             int metadata_terms)
    : config_(config),
      scorer_(config.weights, config.freshness_tau_seconds),
      metadata_terms_(std::max(metadata_terms, 1)) {}

void MetadataIndex::InsertWindow(StreamId stream, Timestamp now,
                                 const std::vector<core::TermCount>& terms,
                                 bool live) {
  const bool new_stream = streams_.OnInsert(stream, now, live);
  if (new_stream) df_.AddDocument();

  std::lock_guard<std::mutex> lock(mu_);
  if (!seen_.insert(stream).second) {
    return;  // Only the first window's leading terms ("title/tags").
  }
  int kept = 0;
  for (const core::TermCount& tc : terms) {
    if (tc.tf == 0) continue;
    if (kept++ >= metadata_terms_) break;
    postings_[tc.term][stream] += tc.tf;
    df_.AddOccurrence(tc.term);
  }
}

void MetadataIndex::FinishStream(StreamId stream) {
  streams_.MarkFinished(stream);
}

void MetadataIndex::DeleteStream(StreamId stream) {
  streams_.MarkDeleted(stream);
}

void MetadataIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  streams_.AddPopularity(stream, delta);
}

std::vector<core::ScoredStream> MetadataIndex::Query(
    const std::vector<TermId>& terms, int k, Timestamp now,
    core::QueryStats* stats) {
  if (stats != nullptr) *stats = core::QueryStats{};
  if (terms.empty() || k <= 0) return {};

  const std::uint64_t max_pop = streams_.max_pop_count();
  std::unordered_map<StreamId, double> tfidf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TermId term : terms) {
      auto it = postings_.find(term);
      if (it == postings_.end()) continue;
      const double idf = df_.Idf(term);
      for (const auto& [stream, tf] : it->second) {
        tfidf[stream] += scorer_.TermTfIdf(tf, idf);
        if (stats != nullptr) ++stats->postings_scanned;
      }
    }
  }

  core::TopKHeap heap(k);
  for (const auto& [stream, sum] : tfidf) {
    index::StreamInfo info;
    if (!streams_.Get(stream, info)) continue;
    heap.Offer(stream,
               scorer_.Combine(
                   scorer_.PopScore(info.pop_count, max_pop),
                   scorer_.RelScore(sum, static_cast<int>(terms.size())),
                   scorer_.FrshScore(info.frsh, now)));
    if (stats != nullptr) ++stats->candidates_scored;
  }
  return heap.SortedResults();
}

std::size_t MetadataIndex::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = sizeof(*this) + streams_.MemoryBytes() +
                      df_.MemoryBytes() +
                      postings_.bucket_count() * sizeof(void*);
  for (const auto& [term, streams] : postings_) {
    bytes += sizeof(term) + 2 * sizeof(void*) +
             streams.bucket_count() * sizeof(void*) +
             streams.size() *
                 (sizeof(StreamId) + sizeof(TermFreq) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace rtsi::baseline
