// The extended LSII baseline (Section V-A).
//
// Same LSM-tree of inverted indices as RTSI, but every score ingredient
// lives in the big hash table: queries fetch popularity, freshness and the
// per-term totals of each candidate from BigTable; inserts must update the
// big table for *every* stream; popularity updates hit the big table too.
// Level 0 keeps a single freshness-ordered list per term (the unsealed
// TermPostings state); the two extra sorted lists are created when I0 is
// merged, exactly as the paper describes.

#ifndef RTSI_BASELINE_LSII_INDEX_H_
#define RTSI_BASELINE_LSII_INDEX_H_

#include <string>
#include <vector>

#include "baseline/big_table.h"
#include "core/config.h"
#include "core/doc_freq.h"
#include "core/scorer.h"
#include "core/search_index.h"
#include "lsm/lsm_tree.h"

namespace rtsi::baseline {

class LsiiIndex : public core::SearchIndex {
 public:
  explicit LsiiIndex(const core::RtsiConfig& config);

  void InsertWindow(StreamId stream, Timestamp now,
                    const std::vector<core::TermCount>& terms,
                    bool live) override;
  void FinishStream(StreamId stream) override;
  void DeleteStream(StreamId stream) override;
  void UpdatePopularity(StreamId stream, std::uint64_t delta) override;
  std::vector<core::ScoredStream> Query(const std::vector<TermId>& terms,
                                        int k, Timestamp now,
                                        core::QueryStats* stats) override;
  using core::SearchIndex::Query;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "LSII"; }

  const lsm::LsmTree& tree() const { return tree_; }
  const BigTable& big_table() const { return big_; }
  lsm::MergeStats GetMergeStats() const { return tree_.GetMergeStats(); }

 private:
  lsm::MergeHooks MakeMergeHooks();

  core::RtsiConfig config_;
  core::Scorer scorer_;
  lsm::LsmTree tree_;
  BigTable big_;
  core::DocumentFrequencyTable df_;
};

}  // namespace rtsi::baseline

#endif  // RTSI_BASELINE_LSII_INDEX_H_
