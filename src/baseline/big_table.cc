#include "baseline/big_table.h"

#include <algorithm>

namespace rtsi::baseline {

bool BigTable::OnInsertWindow(StreamId stream, Timestamp now, bool live,
                              const std::vector<core::TermCount>& terms,
                              std::vector<TermId>& first_seen_terms) {
  bool created;
  {
    const std::uint64_t key = Pack(stream, kFlagsField);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    std::uint64_t& flags = shard.map[key];
    // First *content* window: a popularity update may have created the
    // entry earlier, but only indexed content makes it a document.
    created = (flags & kFlagContent) == 0;
    flags |= kFlagExists | kFlagContent;
    if (live) {
      flags |= kFlagLive;
    } else {
      flags &= ~kFlagLive;
    }
  }
  {
    const std::uint64_t key = Pack(stream, kFrshField);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    std::uint64_t& frsh = shard.map[key];
    frsh = std::max(frsh, static_cast<std::uint64_t>(now));
  }

  // Per-term frequency accumulation: one probe into the big table per
  // term — the LSII insertion cost the paper measures.
  std::vector<std::pair<TermId, TermFreq>> new_totals;
  new_totals.reserve(terms.size());
  for (const core::TermCount& tc : terms) {
    if (tc.tf == 0) continue;
    assert(tc.term < kFirstReservedField);
    const std::uint64_t key = Pack(stream, tc.term);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    std::uint64_t& total = shard.map[key];
    if (total == 0) first_seen_terms.push_back(tc.term);
    total += tc.tf;
    new_totals.emplace_back(tc.term, static_cast<TermFreq>(total));
  }

  if (!first_seen_terms.empty()) {
    PurgeShard& shard = purge_shards_[stream % kNumShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto& list = shard.terms[stream];
    list.insert(list.end(), first_seen_terms.begin(),
                first_seen_terms.end());
  }
  {
    std::lock_guard<std::mutex> lock(max_mu_);
    for (const auto& [term, total] : new_totals) {
      TermFreq& current = max_total_[term];
      if (total > current) current = total;
    }
  }
  return created;
}

std::uint64_t BigTable::AddPopularity(StreamId stream, std::uint64_t delta) {
  std::uint64_t count;
  {
    const std::uint64_t key = Pack(stream, kPopField);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    std::uint64_t& pop = shard.map[key];
    pop += delta;
    count = pop;
  }
  {
    const std::uint64_t key = Pack(stream, kFlagsField);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[key] |= kFlagExists;
  }
  std::uint64_t prev = max_pop_count_.load(std::memory_order_relaxed);
  while (count > prev && !max_pop_count_.compare_exchange_weak(
                             prev, count, std::memory_order_relaxed)) {
  }
  return count;
}

void BigTable::MarkFinished(StreamId stream) {
  const std::uint64_t key = Pack(stream, kFlagsField);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) it->second &= ~kFlagLive;
}

void BigTable::MarkDeleted(StreamId stream) {
  const std::uint64_t key = Pack(stream, kFlagsField);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::uint64_t& flags = shard.map[key];
  flags |= kFlagExists | kFlagDeleted;
  flags &= ~kFlagLive;
}

bool BigTable::GetMeta(StreamId stream, std::uint64_t& pop_count,
                       Timestamp& frsh) const {
  const std::uint64_t flags = Load(Pack(stream, kFlagsField));
  if ((flags & kFlagExists) == 0 || (flags & kFlagDeleted) != 0) {
    return false;
  }
  pop_count = Load(Pack(stream, kPopField));
  frsh = static_cast<Timestamp>(Load(Pack(stream, kFrshField)));
  return true;
}

TermFreq BigTable::GetTf(StreamId stream, TermId term) const {
  return static_cast<TermFreq>(Load(Pack(stream, term)));
}

bool BigTable::IsDeleted(StreamId stream) const {
  return (Load(Pack(stream, kFlagsField)) & kFlagDeleted) != 0;
}

void BigTable::PurgeTerms(StreamId stream) {
  if (!IsDeleted(stream)) return;
  std::vector<TermId> terms;
  {
    PurgeShard& shard = purge_shards_[stream % kNumShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.terms.find(stream);
    if (it == shard.terms.end()) return;
    terms.swap(it->second);
    shard.terms.erase(it);
  }
  for (const TermId term : terms) {
    const std::uint64_t key = Pack(stream, term);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.erase(key);
  }
}

TermFreq BigTable::GetMaxTotal(TermId term) const {
  std::lock_guard<std::mutex> lock(max_mu_);
  auto it = max_total_.find(term);
  return it == max_total_.end() ? 0 : it->second;
}

std::size_t BigTable::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, value] : shard.map) {
      if (static_cast<TermId>(key) == kFlagsField &&
          (value & kFlagExists) != 0) {
        ++total;
      }
    }
  }
  return total;
}

std::size_t BigTable::num_tf_entries() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, value] : shard.map) {
      if (static_cast<TermId>(key) < kFirstReservedField) ++total;
    }
  }
  return total;
}

std::size_t BigTable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.map.bucket_count() * sizeof(void*) +
             shard.map.size() * (2 * sizeof(std::uint64_t) +
                                 2 * sizeof(void*));
  }
  for (const PurgeShard& shard : purge_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.terms.bucket_count() * sizeof(void*);
    for (const auto& [stream, terms] : shard.terms) {
      bytes += sizeof(stream) + 2 * sizeof(void*) +
               terms.capacity() * sizeof(TermId);
    }
  }
  {
    std::lock_guard<std::mutex> lock(max_mu_);
    bytes += max_total_.bucket_count() * sizeof(void*) +
             max_total_.size() *
                 (sizeof(TermId) + sizeof(TermFreq) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace rtsi::baseline
