// The extended-LSII "big hash table" (Section V-A).
//
// LSII keeps *all* audio information in one hash table: for every stream
// — live or not — the popularity counter, the freshness timestamp, the
// liveness/deletion flags, and the total term frequency of every
// (stream, term) pair. This reproduction stores all of it in a single
// flat table keyed by the packed (stream, field) pair: term frequencies
// under (stream, term), metadata under (stream, reserved-key). Every
// operation — per-term inserts, popularity updates, per-candidate query
// lookups — therefore probes one structure that grows with the whole
// corpus (~400 unique terms per 16-minute stream), which is exactly the
// cost profile the paper's experiments measure against RTSI's two small
// tables.

#ifndef RTSI_BASELINE_BIG_TABLE_H_
#define RTSI_BASELINE_BIG_TABLE_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/search_index.h"

namespace rtsi::baseline {

class BigTable {
 public:
  BigTable() = default;

  BigTable(const BigTable&) = delete;
  BigTable& operator=(const BigTable&) = delete;

  /// Registers a window: refreshes metadata and accumulates term totals.
  /// Returns true when the stream is new; appends each term whose total
  /// was previously zero to `first_seen_terms` (for document frequencies).
  bool OnInsertWindow(StreamId stream, Timestamp now, bool live,
                      const std::vector<core::TermCount>& terms,
                      std::vector<TermId>& first_seen_terms);

  std::uint64_t AddPopularity(StreamId stream, std::uint64_t delta);
  void MarkFinished(StreamId stream);
  void MarkDeleted(StreamId stream);

  /// Copies pop/frsh into the outputs; false when unknown or deleted.
  bool GetMeta(StreamId stream, std::uint64_t& pop_count,
               Timestamp& frsh) const;

  /// Total tf of (stream, term); 0 when untracked.
  TermFreq GetTf(StreamId stream, TermId term) const;

  bool IsDeleted(StreamId stream) const;

  /// Frees a deleted stream's term entries (called when a merge purges
  /// its postings); the metadata tombstone stays.
  void PurgeTerms(StreamId stream);

  /// Monotone per-term maximum total tf, for query bounds.
  TermFreq GetMaxTotal(TermId term) const;

  std::uint64_t max_pop_count() const {
    return max_pop_count_.load(std::memory_order_relaxed);
  }

  /// Number of streams with metadata entries.
  std::size_t size() const;

  /// Number of (stream, term) frequency entries.
  std::size_t num_tf_entries() const;

  std::size_t MemoryBytes() const;

 private:
  static constexpr std::size_t kNumShards = 64;

  // Reserved field ids in the term slot of the packed key; real TermIds
  // must stay below kFirstReservedField (checked in debug builds).
  static constexpr TermId kPopField = 0xFFFFFFFFu;
  static constexpr TermId kFrshField = 0xFFFFFFFEu;
  static constexpr TermId kFlagsField = 0xFFFFFFFDu;
  static constexpr TermId kFirstReservedField = kFlagsField;

  static constexpr std::uint64_t kFlagLive = 1;
  static constexpr std::uint64_t kFlagDeleted = 2;
  static constexpr std::uint64_t kFlagExists = 4;
  static constexpr std::uint64_t kFlagContent = 8;  // Had a real window.

  // Stream ids must fit in 32 bits to pack with the 32-bit field id.
  static std::uint64_t Pack(StreamId stream, TermId field) {
    assert(stream < (1ULL << 32));
    return (stream << 32) | field;
  }

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::uint64_t> map;
  };

  // Shard by the packed key's hash: every probe — term frequency or
  // metadata field — locks one shard of the single big table, the way a
  // sharded concurrent hash map behaves.
  Shard& ShardFor(std::uint64_t key) {
    return shards_[(key ^ (key >> 32) ^ (key >> 13)) % kNumShards];
  }
  const Shard& ShardFor(std::uint64_t key) const {
    return shards_[(key ^ (key >> 32) ^ (key >> 13)) % kNumShards];
  }

  /// Reads the value at `key`, or 0 when absent.
  std::uint64_t Load(std::uint64_t key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? 0 : it->second;
  }

  Shard shards_[kNumShards];

  struct PurgeShard {
    mutable std::mutex mu;
    std::unordered_map<StreamId, std::vector<TermId>> terms;
  };
  PurgeShard purge_shards_[kNumShards];  // Bookkeeping for lazy deletion.

  mutable std::mutex max_mu_;
  std::unordered_map<TermId, TermFreq> max_total_;
  std::atomic<std::uint64_t> max_pop_count_{0};
};

}  // namespace rtsi::baseline

#endif  // RTSI_BASELINE_BIG_TABLE_H_
