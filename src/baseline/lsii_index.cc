#include "baseline/lsii_index.h"

#include <algorithm>
#include <unordered_set>

#include "core/query_util.h"
#include "core/top_k.h"

namespace rtsi::baseline {

using core::PerTermBound;
using core::QueryStats;
using core::ScoredStream;
using core::TermCount;
using core::TopKHeap;
using index::Posting;
using index::TermPostings;

LsiiIndex::LsiiIndex(const core::RtsiConfig& config)
    : config_(config),
      scorer_(config.weights, config.freshness_tau_seconds),
      tree_(config.lsm) {}

lsm::MergeHooks LsiiIndex::MakeMergeHooks() {
  lsm::MergeHooks hooks;
  hooks.is_deleted = [this](StreamId stream) {
    return big_.IsDeleted(stream);
  };
  hooks.on_purged = [this](StreamId stream) { big_.PurgeTerms(stream); };
  // No on_stream: LSII keeps no per-stream residency bookkeeping.
  return hooks;
}

void LsiiIndex::InsertWindow(StreamId stream, Timestamp now,
                             const std::vector<TermCount>& terms, bool live) {
  // LSII keeps all audio information in the big hash table; the inverted
  // lists only position the stream in the three sort orders.
  std::vector<TermId> first_seen;
  const bool new_stream =
      big_.OnInsertWindow(stream, now, live, terms, first_seen);
  if (new_stream) df_.AddDocument();
  for (const TermId term : first_seen) df_.AddOccurrence(term);

  std::uint64_t pop_count = 0;
  Timestamp frsh = 0;
  big_.GetMeta(stream, pop_count, frsh);
  const float pop_snapshot = static_cast<float>(pop_count);

  tree_.MarkStreamInL0(stream);
  for (const TermCount& tc : terms) {
    if (tc.tf == 0) continue;
    tree_.AddPosting(tc.term, Posting{stream, pop_snapshot, now, tc.tf});
  }
  if (tree_.NeedsMerge()) tree_.MergeCascade(MakeMergeHooks());
}

void LsiiIndex::FinishStream(StreamId stream) { big_.MarkFinished(stream); }

void LsiiIndex::DeleteStream(StreamId stream) { big_.MarkDeleted(stream); }

void LsiiIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  big_.AddPopularity(stream, delta);
}

std::vector<ScoredStream> LsiiIndex::Query(const std::vector<TermId>& terms,
                                           int k, Timestamp now,
                                           QueryStats* stats) {
  QueryStats local_stats;
  QueryStats& qs = stats != nullptr ? *stats : local_stats;
  qs = QueryStats{};

  std::vector<TermId> q;
  for (const TermId term : terms) {
    if (std::find(q.begin(), q.end(), term) == q.end()) q.push_back(term);
  }
  if (q.empty() || k <= 0) return {};
  const int num_terms = static_cast<int>(q.size());

  std::vector<double> idfs(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) idfs[i] = df_.Idf(q[i]);
  const std::uint64_t max_pop = big_.max_pop_count();

  TopKHeap heap(k);
  std::unordered_set<StreamId> scored;

  // All score information comes from the big hash table — the measured
  // difference to RTSI.
  auto score_candidate = [&](StreamId stream) {
    std::uint64_t pop_count = 0;
    Timestamp frsh = 0;
    if (!big_.GetMeta(stream, pop_count, frsh)) return;  // Deleted.
    double tfidf_sum = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      tfidf_sum += scorer_.TermTfIdf(big_.GetTf(stream, q[i]), idfs[i]);
    }
    const double score =
        scorer_.Combine(scorer_.PopScore(pop_count, max_pop),
                        scorer_.RelScore(tfidf_sum, num_terms),
                        scorer_.FrshScore(frsh, now));
    heap.Offer(stream, score);
    ++qs.candidates_scored;
  };

  // I0: single freshness-ordered list per term; scan it.
  std::unordered_set<StreamId> l0_streams;
  for (const TermId term : q) {
    tree_.WithL0Term(term, [&](const TermPostings* postings) {
      if (postings == nullptr) return;
      qs.postings_scanned += postings->size();
      for (const Posting& p : postings->entries()) {
        l0_streams.insert(p.stream);
      }
    });
  }
  for (const StreamId stream : l0_streams) {
    if (!scored.insert(stream).second) continue;
    score_candidate(stream);
  }

  // Sealed components, best bound first. The tf headroom uses the global
  // per-term maximum total (a stream's postings may span components and
  // LSII has no consolidation invariant to tighten this).
  const auto snapshot = tree_.SealedSnapshot();
  struct RankedComponent {
    const index::InvertedIndex* component;
    double bound;
  };
  std::vector<RankedComponent> ranked;
  ranked.reserve(snapshot.size());
  for (const auto& component : snapshot) {
    std::vector<PerTermBound> per_term(q.size());
    bool any = false;
    for (std::size_t i = 0; i < q.size(); ++i) {
      per_term[i].bounds = component->Bounds(q[i]);
      per_term[i].idf = idfs[i];
      per_term[i].tf_correction = big_.GetMaxTotal(q[i]);
      any = any || per_term[i].bounds.present;
    }
    if (!any) continue;
    // `now` is a valid live-freshness ceiling here: the workload clock is
    // monotone, so no stream's freshness can exceed the query timestamp.
    const double bound = core::ComponentBound(
        scorer_, per_term, now, max_pop, now, config_.bound_mode);
    ranked.push_back({component.get(), bound});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedComponent& a, const RankedComponent& b) {
              return a.bound > b.bound;
            });

  std::vector<Posting> round;
  for (std::size_t c = 0; c < ranked.size(); ++c) {
    if (config_.use_bound && heap.full() &&
        heap.KthScore() >= ranked[c].bound) {
      qs.components_pruned += ranked.size() - c;
      qs.terminated_early = true;
      break;
    }
    ++qs.components_visited;
    core::ComponentTraversal traversal(*ranked[c].component, q);
    while (traversal.NextRound(round)) {
      for (const Posting& p : round) {
        if (!scored.insert(p.stream).second) continue;
        score_candidate(p.stream);
      }
      qs.postings_scanned += round.size();
      round.clear();
      if (config_.use_bound && heap.full()) {
        const double tau = traversal.Threshold(scorer_, idfs, now, max_pop,
                                               now, config_.bound_mode);
        if (heap.KthScore() >= tau) {
          qs.terminated_early = true;
          break;
        }
      }
    }
  }

  return heap.SortedResults();
}

std::size_t LsiiIndex::MemoryBytes() const {
  return tree_.MemoryBytes() + big_.MemoryBytes() + df_.MemoryBytes();
}

}  // namespace rtsi::baseline
