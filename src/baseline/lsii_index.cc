#include "baseline/lsii_index.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "exec/pipeline.h"
#include "exec/query_plan.h"
#include "exec/selector.h"
#include "exec/sink.h"
#include "exec/traversal.h"

namespace rtsi::baseline {

using core::QueryStats;
using core::ScoredStream;
using core::TermCount;
using index::Posting;
using index::TermPostings;

LsiiIndex::LsiiIndex(const core::RtsiConfig& config)
    : config_(config),
      scorer_(config.weights, config.freshness_tau_seconds),
      tree_(config.lsm) {}

lsm::MergeHooks LsiiIndex::MakeMergeHooks() {
  lsm::MergeHooks hooks;
  hooks.is_deleted = [this](StreamId stream) {
    return big_.IsDeleted(stream);
  };
  hooks.on_purged = [this](StreamId stream) { big_.PurgeTerms(stream); };
  // No on_stream: LSII keeps no per-stream residency bookkeeping.
  return hooks;
}

void LsiiIndex::InsertWindow(StreamId stream, Timestamp now,
                             const std::vector<TermCount>& terms, bool live) {
  // LSII keeps all audio information in the big hash table; the inverted
  // lists only position the stream in the three sort orders.
  std::vector<TermId> first_seen;
  const bool new_stream =
      big_.OnInsertWindow(stream, now, live, terms, first_seen);
  if (new_stream) df_.AddDocument();
  for (const TermId term : first_seen) df_.AddOccurrence(term);

  std::uint64_t pop_count = 0;
  Timestamp frsh = 0;
  big_.GetMeta(stream, pop_count, frsh);
  const float pop_snapshot = static_cast<float>(pop_count);

  tree_.MarkStreamInL0(stream);
  for (const TermCount& tc : terms) {
    if (tc.tf == 0) continue;
    tree_.AddPosting(tc.term, Posting{stream, pop_snapshot, now, tc.tf});
  }
  if (tree_.NeedsMerge()) tree_.MergeCascade(MakeMergeHooks());
}

void LsiiIndex::FinishStream(StreamId stream) { big_.MarkFinished(stream); }

void LsiiIndex::DeleteStream(StreamId stream) { big_.MarkDeleted(stream); }

void LsiiIndex::UpdatePopularity(StreamId stream, std::uint64_t delta) {
  big_.AddPopularity(stream, delta);
}

std::vector<ScoredStream> LsiiIndex::Query(const std::vector<TermId>& terms,
                                           int k, Timestamp now,
                                           QueryStats* stats) {
  QueryStats local_stats;
  QueryStats& qs = stats != nullptr ? *stats : local_stats;
  qs = QueryStats{};

  // The baseline executes through the same pipeline operators as RTSI
  // (plan -> selector -> traversal -> sink) with its own soundness knobs:
  // the >= prune cut, no skip headers, no component freshness ceilings,
  // and the global per-term tf headroom (its streams may span components
  // with no consolidation invariant to tighten that).
  exec::QueryPlan plan;
  std::vector<TermId> term_set;
  exec::BuildQueryPlan(terms, df_, k, now, core::QueryFilter{},
                       big_.max_pop_count(), config_.bound_mode,
                       config_.use_bound, /*prune_if_equal=*/true, term_set,
                       plan);
  if (plan.empty()) return {};
  const std::vector<TermId>& q = plan.terms;
  const std::size_t nq = plan.num_terms();
  const int num_terms = static_cast<int>(nq);

  exec::TopKSink sink(k);
  std::unordered_set<StreamId> scored;

  // All score information comes from the big hash table — the measured
  // difference to RTSI.
  auto score_candidate = [&](StreamId stream) {
    std::uint64_t pop_count = 0;
    Timestamp frsh = 0;
    if (!big_.GetMeta(stream, pop_count, frsh)) return;  // Deleted.
    double tfidf_sum = 0.0;
    for (std::size_t i = 0; i < nq; ++i) {
      tfidf_sum += scorer_.TermTfIdf(big_.GetTf(stream, q[i]), plan.idfs[i]);
    }
    const double score =
        scorer_.Combine(scorer_.PopScore(pop_count, plan.max_pop),
                        scorer_.RelScore(tfidf_sum, num_terms),
                        scorer_.FrshScore(frsh, plan.now));
    sink.Offer(stream, score);
    ++qs.candidates_scored;
  };

  // I0: single freshness-ordered list per term; scan it. (Not the
  // pipeline's L0 phase: LSII totals come from the big table, not from
  // accumulated L0 tfs, and this unordered-set iteration order is part of
  // the baseline's historical behavior.)
  std::unordered_set<StreamId> l0_streams;
  for (const TermId term : q) {
    tree_.WithL0Term(term, [&](const TermPostings* postings) {
      if (postings == nullptr) return;
      qs.postings_scanned += postings->size();
      for (const Posting& p : postings->entries()) {
        l0_streams.insert(p.stream);
      }
    });
  }
  for (const StreamId stream : l0_streams) {
    if (!scored.insert(stream).second) continue;
    score_candidate(stream);
  }

  // Sealed components through the shared selector + traversal driver.
  const auto snapshot = tree_.SealedSnapshot();
  std::vector<TermFreq> tf_corrections(nq, 0);
  for (std::size_t i = 0; i < nq; ++i) {
    tf_corrections[i] = big_.GetMaxTotal(q[i]);
  }
  std::vector<exec::PerTermBound> per_term;
  std::vector<double> screen_own;
  std::vector<double> screen_tfidf;
  exec::SelectorOptions options;
  options.consult_headers = false;
  // LSII components carry no residency bookkeeping, so only the fallback
  // ceiling is sound; `now` is valid because the workload clock is
  // monotone — no stream's freshness can exceed the query timestamp.
  options.use_component_ceiling = false;
  options.fallback_ceiling = now;
  options.require_positive_bound = false;
  options.order_tie_break = false;
  options.tf_corrections = &tf_corrections;
  const std::vector<exec::SelectedComponent> selected =
      exec::SelectComponents(plan, scorer_, snapshot, options,
                             {per_term, screen_own, screen_tfidf}, qs,
                             nullptr);

  struct Policy {
    std::vector<Posting>& round_buf;
    std::vector<std::uint32_t>& round_terms_buf;
    std::unordered_set<StreamId>& scored;
    decltype(score_candidate)& score;

    std::vector<Posting>& round() { return round_buf; }
    std::vector<std::uint32_t>& round_terms() { return round_terms_buf; }
    void BeginComponent(const exec::SelectedComponent&) {}
    bool Admit(StreamId stream) { return scored.insert(stream).second; }
    void Candidate(const exec::Traversal&, StreamId stream, std::size_t,
                   QueryStats&) {
      score(stream);
    }
  };
  std::vector<Posting> round;
  std::vector<std::uint32_t> round_terms;
  Policy policy{round, round_terms, scored, score_candidate};
  exec::RunSealedSequential(plan, scorer_, selected, policy, sink, qs,
                            nullptr);

  return sink.SortedResults();
}

std::size_t LsiiIndex::MemoryBytes() const {
  return tree_.MemoryBytes() + big_.MemoryBytes() + df_.MemoryBytes();
}

}  // namespace rtsi::baseline
