// Metadata-only search baseline (Section I / II-A related work).
//
// The paper motivates full-content indexing by observing that existing
// services "mainly compare query keywords with titles/categories/tags of
// the audio streams ... hence many related audio streams are not
// retrieved". This baseline models that approach: it indexes only the
// first few terms of a stream's first window (its "title/tags") into a
// flat inverted index, ignores everything said later, and scores with
// the same Equation-1 model. bench_quality_metadata quantifies the
// recall gap against RTSI's full-content index.

#ifndef RTSI_BASELINE_METADATA_INDEX_H_
#define RTSI_BASELINE_METADATA_INDEX_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/doc_freq.h"
#include "core/scorer.h"
#include "core/search_index.h"
#include "index/stream_info_table.h"

namespace rtsi::baseline {

class MetadataIndex : public core::SearchIndex {
 public:
  /// Indexes at most `metadata_terms` distinct terms from each stream's
  /// first window.
  MetadataIndex(const core::RtsiConfig& config, int metadata_terms = 8);

  void InsertWindow(StreamId stream, Timestamp now,
                    const std::vector<core::TermCount>& terms,
                    bool live) override;
  void FinishStream(StreamId stream) override;
  void DeleteStream(StreamId stream) override;
  void UpdatePopularity(StreamId stream, std::uint64_t delta) override;
  std::vector<core::ScoredStream> Query(const std::vector<TermId>& terms,
                                        int k, Timestamp now,
                                        core::QueryStats* stats) override;
  using core::SearchIndex::Query;
  std::size_t MemoryBytes() const override;
  std::string name() const override { return "metadata-only"; }

 private:
  core::RtsiConfig config_;
  core::Scorer scorer_;
  int metadata_terms_;

  mutable std::mutex mu_;
  // term -> (stream -> tf). Flat; metadata is tiny.
  std::unordered_map<TermId, std::unordered_map<StreamId, TermFreq>>
      postings_;
  std::unordered_set<StreamId> seen_;  // Streams whose metadata is stored.
  index::StreamInfoTable streams_;
  core::DocumentFrequencyTable df_;
};

}  // namespace rtsi::baseline

#endif  // RTSI_BASELINE_METADATA_INDEX_H_
