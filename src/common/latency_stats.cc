#include "common/latency_stats.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace rtsi {

LatencyStats::LatencyStats()
    : count_(0), sum_(0), min_(0), max_(0), buckets_(kNumBuckets, 0) {}

int LatencyStats::BucketFor(double micros) {
  if (micros < 1.0) return 0;
  const double log = std::log10(micros);
  int bucket = static_cast<int>(log * kBucketsPerDecade);
  return std::clamp(bucket, 0, kNumBuckets - 1);
}

double LatencyStats::BucketUpperBound(int bucket) {
  return std::pow(10.0, static_cast<double>(bucket + 1) / kBucketsPerDecade);
}

void LatencyStats::Record(double micros) {
  if (count_ == 0) {
    min_ = max_ = micros;
  } else {
    min_ = std::min(min_, micros);
    max_ = std::max(max_, micros);
  }
  ++count_;
  sum_ += micros;
  ++buckets_[BucketFor(micros)];
}

void LatencyStats::Merge(const LatencyStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double LatencyStats::PercentileMicros(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * (count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string LatencyStats::Summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.2fus p50=%.1fus p99=%.1fus max=%.1fus", count_,
                mean_micros(), PercentileMicros(0.50), PercentileMicros(0.99),
                max_micros());
  return buf;
}

void LatencyStats::Reset() {
  count_ = 0;
  sum_ = min_ = max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

Stopwatch::Stopwatch() { Restart(); }

void Stopwatch::Restart() {
  start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
}

double Stopwatch::ElapsedMicros() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<double>(now_ns - start_ns_) / 1000.0;
}

}  // namespace rtsi
