// CRC-32 (IEEE 802.3 polynomial), used to checksum snapshot files.

#ifndef RTSI_COMMON_CRC32_H_
#define RTSI_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rtsi {

/// Incrementally extends a CRC-32. Start with crc = 0.
std::uint32_t Crc32(std::uint32_t crc, const void* data, std::size_t size);

}  // namespace rtsi

#endif  // RTSI_COMMON_CRC32_H_
