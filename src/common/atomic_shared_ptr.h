// Atomically published shared_ptr (the reader side of epoch publication).
//
// Writers build a new immutable object and Store() it; readers Load() to
// pin the currently published object for the duration of their work. The
// swap uses the C++17 std::atomic_load/atomic_store free-function
// overloads for shared_ptr with acquire/release ordering, so a reader
// that observes the new pointer also observes every write that built the
// object behind it — the std::atomic<std::shared_ptr>-style primitive
// without requiring the C++20 specialization. Readers never block
// writers and vice versa; the pinned object stays alive until the last
// pin drops, whatever the writer publishes afterwards.

#ifndef RTSI_COMMON_ATOMIC_SHARED_PTR_H_
#define RTSI_COMMON_ATOMIC_SHARED_PTR_H_

#include <atomic>
#include <memory>
#include <utility>

namespace rtsi {

template <typename T>
class AtomicSharedPtr {
 public:
  AtomicSharedPtr() = default;
  explicit AtomicSharedPtr(std::shared_ptr<T> initial)
      : ptr_(std::move(initial)) {}

  AtomicSharedPtr(const AtomicSharedPtr&) = delete;
  AtomicSharedPtr& operator=(const AtomicSharedPtr&) = delete;

  /// Pins the currently published object (acquire).
  std::shared_ptr<T> Load() const {
    return std::atomic_load_explicit(&ptr_, std::memory_order_acquire);
  }

  /// Publishes `next` (release). Existing pins keep the old object alive.
  void Store(std::shared_ptr<T> next) {
    std::atomic_store_explicit(&ptr_, std::move(next),
                               std::memory_order_release);
  }

 private:
  std::shared_ptr<T> ptr_;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_ATOMIC_SHARED_PTR_H_
