// Core identifier and scalar types shared by every RTSI module.
//
// The index layers deal exclusively in integer ids: audio streams are
// identified by StreamId, dictionary terms (text words or phonetic lattice
// units) by TermId, and time by microsecond Timestamps from a Clock.

#ifndef RTSI_COMMON_TYPES_H_
#define RTSI_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace rtsi {

/// Identifier of an audio stream. Assigned by the ingestion layer, dense
/// from 0 for synthetic corpora.
using StreamId = std::uint64_t;

/// Identifier of an indexable term (a text word or a phonetic lattice unit).
using TermId = std::uint32_t;

/// Microseconds since an arbitrary epoch (the simulated clock's origin).
using Timestamp = std::int64_t;

/// Term frequency of a term within (a window of) one audio stream.
using TermFreq = std::uint32_t;

inline constexpr StreamId kInvalidStreamId =
    std::numeric_limits<StreamId>::max();
inline constexpr TermId kInvalidTermId = std::numeric_limits<TermId>::max();

/// Identity of one sealed LSM component, unique within an index for its
/// whole lifetime (ids are never reused, so a stream's component-residency
/// entries stay unambiguous across merges). 0 = unassigned.
using ComponentId = std::uint64_t;
inline constexpr ComponentId kInvalidComponentId = 0;

/// One term of an audio window with its in-window frequency. Defined here
/// (rather than in core/) because the index-layer hash tables batch whole
/// windows.
struct TermCount {
  TermId term = 0;
  TermFreq tf = 0;
};

inline constexpr Timestamp kMicrosPerSecond = 1'000'000;
inline constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr Timestamp kMicrosPerHour = 60 * kMicrosPerMinute;

}  // namespace rtsi

#endif  // RTSI_COMMON_TYPES_H_
