#include "common/window_arena.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace rtsi {

WindowArena::WindowArena(std::size_t slab_bytes,
                         std::shared_ptr<MemoryTracker> tracker)
    : slab_bytes_(slab_bytes < kMinClassBytes ? kMinClassBytes : slab_bytes),
      tracker_(std::move(tracker)) {}

WindowArena::~WindowArena() {
  // Wholesale free: every slab and oversized block, regardless of what the
  // containers carved out of them, goes back in one sweep. Callers
  // guarantee nothing references the arena by now (seal migrated the
  // survivors to the heap, or the owning component is being destroyed).
  std::size_t owned = owned_bytes_.load(std::memory_order_relaxed);
  for (void* block : blocks_) {
    ::operator delete(block);
  }
  if (tracker_ != nullptr && owned != 0) {
    tracker_->Sub(MemCategory::kLiveArena, owned);
  }
}

std::size_t WindowArena::ClassIndex(std::size_t bytes) {
  if (bytes <= kMinClassBytes) return 0;
  // ceil(log2(bytes)) - log2(kMinClassBytes)
  return static_cast<std::size_t>(std::bit_width(bytes - 1) -
                                  std::bit_width(kMinClassBytes - 1));
}

void* WindowArena::NewBlock(std::size_t bytes) {
  void* block = ::operator new(bytes);
  blocks_.push_back(block);
  owned_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  upstream_allocations_.fetch_add(1, std::memory_order_relaxed);
  if (tracker_ != nullptr) {
    tracker_->Add(MemCategory::kLiveArena, bytes);
  }
  return block;
}

void* WindowArena::Allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t cls = ClassIndex(bytes);
  assert(cls < kNumClasses && "allocation beyond the largest size class");
  const std::size_t rounded = ClassBytes(cls);
  allocated_bytes_.fetch_add(rounded, std::memory_order_relaxed);

  // 1. A previously freed block of this class.
  if (FreeNode* node = free_lists_[cls]) {
    free_lists_[cls] = node->next;
    freelist_hits_.fetch_add(1, std::memory_order_relaxed);
    return node;
  }

  // 2. Oversized classes get dedicated blocks: carving a multi-slab chunk
  // from the bump region would waste the remainder of the open slab.
  if (rounded >= slab_bytes_) {
    return NewBlock(rounded);
  }

  // 3. Bump-allocate from the open slab (classes are pow2 and slabs are
  // class-aligned multiples, so the cursor stays aligned).
  if (slab_remaining_ < rounded) {
    slab_cursor_ = static_cast<std::byte*>(NewBlock(slab_bytes_));
    slab_remaining_ = slab_bytes_;
  }
  void* out = slab_cursor_;
  slab_cursor_ += rounded;
  slab_remaining_ -= rounded;
  return out;
}

void WindowArena::Deallocate(void* ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  const std::size_t cls = ClassIndex(bytes);
  assert(cls < kNumClasses);
  allocated_bytes_.fetch_sub(ClassBytes(cls), std::memory_order_relaxed);
  auto* node = static_cast<FreeNode*>(ptr);
  node->next = free_lists_[cls];
  free_lists_[cls] = node;
}

WindowArena::Stats WindowArena::GetStats() const {
  Stats s;
  s.owned_bytes = owned_bytes_.load(std::memory_order_relaxed);
  s.allocated_bytes = allocated_bytes_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.upstream_allocations =
      upstream_allocations_.load(std::memory_order_relaxed);
  s.freelist_hits = freelist_hits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rtsi
