// Clock abstraction used for freshness scores and live-arrival scheduling.
//
// All index code reads time through a Clock* so experiments can drive a
// SimulatedClock deterministically (e.g., advance 60 simulated seconds per
// live audio window) while examples may use the wall clock.

#ifndef RTSI_COMMON_CLOCK_H_
#define RTSI_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/types.h"

namespace rtsi {

/// Interface: microseconds since an arbitrary epoch, monotone non-decreasing.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Timestamp Now() const = 0;
};

/// Deterministic, manually advanced clock. Thread-safe.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override {
    return now_.load(std::memory_order_relaxed);
  }

  /// Moves time forward by `delta` microseconds; returns the new time.
  Timestamp Advance(Timestamp delta) {
    return now_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }

  /// Jumps to an absolute time (must not move backwards in normal use).
  void SetTime(Timestamp t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

/// Monotonic wall clock (CLOCK_MONOTONIC), for examples and benches.
class WallClock : public Clock {
 public:
  Timestamp Now() const override;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_CLOCK_H_
