#include "common/crc32.h"

namespace rtsi {
namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;

const std::uint32_t* Table() {
  static const auto* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const std::uint32_t* table = Table();
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace rtsi
