// Fixed-size thread pool used for concurrent insert/query experiments and
// the background merge executor.

#ifndef RTSI_COMMON_THREAD_POOL_H_
#define RTSI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtsi {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: new task or stop.
  std::condition_variable idle_cv_;   // Signals Wait(): all drained.
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Completion tracking for one batch of tasks on a *shared* ThreadPool.
/// ThreadPool::Wait() drains the whole pool — useless when several callers
/// (e.g. concurrent queries) share it. A TaskGroup waits for exactly the
/// tasks it submitted.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Wait() must have returned (or nothing submitted) before destruction.
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool and tracks its completion.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted through this group has finished.
  void Wait();

 private:
  ThreadPool* pool_;  // Not owned.
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_THREAD_POOL_H_
