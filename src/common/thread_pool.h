// Fixed-size thread pool used for concurrent insert/query experiments and
// the background merge executor.

#ifndef RTSI_COMMON_THREAD_POOL_H_
#define RTSI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rtsi {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: new task or stop.
  std::condition_variable idle_cv_;   // Signals Wait(): all drained.
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_THREAD_POOL_H_
