// LEB128 variable-length integer coding and ZigZag transform.
//
// The compressed posting-list representation stores deltas of stream ids,
// timestamps and term frequencies as varint byte streams which are then
// entropy-coded with the canonical Huffman codec (see index/huffman.h).

#ifndef RTSI_COMMON_VARINT_H_
#define RTSI_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rtsi {

/// Appends `value` to `out` as unsigned LEB128 (1-10 bytes).
void PutVarint64(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decodes an unsigned LEB128 value from data[pos...]. Advances `pos`.
/// Returns false on truncated or overlong (>10 byte) input.
bool GetVarint64(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                 std::uint64_t& value);

/// Bytes PutVarint64 would append for `value`.
std::size_t VarintLength(std::uint64_t value);

/// ZigZag: maps signed to unsigned so small-magnitude values stay small.
inline std::uint64_t ZigZagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t ZigZagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace rtsi

#endif  // RTSI_COMMON_VARINT_H_
