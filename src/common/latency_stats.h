// Latency/throughput statistics used by the workload driver and benches.
//
// Records microsecond samples into a log-scaled histogram; reports count,
// mean, min/max and approximate percentiles. Thread-compatible: one writer,
// or external synchronization.

#ifndef RTSI_COMMON_LATENCY_STATS_H_
#define RTSI_COMMON_LATENCY_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rtsi {

class LatencyStats {
 public:
  LatencyStats();

  /// Records one sample, in microseconds.
  void Record(double micros);

  /// Merges another stats object into this one.
  void Merge(const LatencyStats& other);

  std::size_t count() const { return count_; }
  double sum_micros() const { return sum_; }
  double mean_micros() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min_micros() const { return count_ == 0 ? 0.0 : min_; }
  double max_micros() const { return count_ == 0 ? 0.0 : max_; }

  /// Approximate percentile (q in [0,1]) from the histogram buckets.
  double PercentileMicros(double q) const;

  /// One-line summary: "n=... mean=...us p50=... p99=... max=...".
  std::string Summary() const;

  void Reset();

 private:
  static constexpr int kBucketsPerDecade = 20;
  static constexpr int kNumBuckets = 8 * kBucketsPerDecade;  // up to 1e8 us

  static int BucketFor(double micros);
  static double BucketUpperBound(int bucket);

  std::size_t count_;
  double sum_;
  double min_;
  double max_;
  std::vector<std::uint64_t> buckets_;
};

/// Simple stopwatch over the wall clock, returning elapsed microseconds.
class Stopwatch {
 public:
  Stopwatch();
  void Restart();
  double ElapsedMicros() const;

 private:
  std::int64_t start_ns_;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_LATENCY_STATS_H_
