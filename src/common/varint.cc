#include "common/varint.h"

namespace rtsi {

void PutVarint64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

bool GetVarint64(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                 std::uint64_t& value) {
  std::uint64_t result = 0;
  for (int shift = 0; shift <= 63 && pos < size; shift += 7) {
    const std::uint8_t byte = data[pos++];
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      value = result;
      return true;
    }
  }
  return false;
}

std::size_t VarintLength(std::uint64_t value) {
  std::size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace rtsi
