#include "common/zipf.h"

#include <cmath>

namespace rtsi {
namespace {

// pow((1+x), 1-s) / (1-s) with the s == 1 limit handled as log1p.
double HIntegral(double x, double s) {
  const double log1px = std::log1p(x);
  if (std::abs(1.0 - s) < 1e-12) return log1px;
  return std::expm1((1.0 - s) * log1px) / (1.0 - s);
}

double HIntegralInverse(double x, double s) {
  if (std::abs(1.0 - s) < 1e-12) return std::expm1(x);
  double t = x * (1.0 - s);
  if (t < -1.0) t = -1.0;  // Numerical guard near the lower tail.
  return std::expm1(std::log1p(t) / (1.0 - s));
}

}  // namespace

ZipfDistribution::ZipfDistribution(std::uint64_t n, double s)
    : n_(n == 0 ? 1 : n), s_(s) {
  // Hörmann & Derflinger sample k in [1, n]; we shift to [0, n-1] on return.
  h_x1_ = HIntegral(1.5, s_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, s_);
  eta_ = 2.0 - HIntegralInverse(HIntegral(2.5, s_) - std::pow(2.0, -s_), s_);
}

double ZipfDistribution::H(double x) const { return HIntegral(x, s_); }

double ZipfDistribution::HInverse(double x) const {
  return HIntegralInverse(x, s_);
}

std::uint64_t ZipfDistribution::operator()(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    // Accept k if u lies under the hat at k.
    if (k - x <= eta_ || u >= H(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<std::uint64_t>(k) - 1;
    }
  }
}

}  // namespace rtsi
