// Lightweight error propagation without exceptions.
//
// Library code returns Status (or Result<T>) from fallible operations and
// never throws. Modeled loosely on absl::Status but self-contained.

#ifndef RTSI_COMMON_STATUS_H_
#define RTSI_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rtsi {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. The value is only accessible when status().ok().
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_STATUS_H_
