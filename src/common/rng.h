// Deterministic pseudo-random number generation for workloads and tests.
//
// SplitMix64 (seed expansion) feeding xoshiro256**; small, fast, and
// reproducible across platforms, unlike std::default_random_engine.

#ifndef RTSI_COMMON_RNG_H_
#define RTSI_COMMON_RNG_H_

#include <cstdint>

namespace rtsi {

/// xoshiro256** seeded via SplitMix64. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextUint64(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free-enough reduction.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace rtsi

#endif  // RTSI_COMMON_RNG_H_
