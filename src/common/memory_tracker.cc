#include "common/memory_tracker.h"

#include <cstdio>
#include <cstring>

namespace rtsi {
namespace {

// Reads a "Vm...: <kB> kB" line from /proc/self/status.
std::size_t ReadProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + key_len, ": %llu", &value) == 1) {
        kb = static_cast<std::size_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::size_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS") * 1024; }

std::size_t PeakRssBytes() { return ReadProcStatusKb("VmHWM") * 1024; }

}  // namespace rtsi
