// Byte accounting for index structures plus process-level RSS probing.
//
// The paper reports "maximal resident memory"; benches report both the
// logical bytes tracked by each index (exact, comparable between RTSI and
// LSII) and the process peak RSS from /proc/self/status (VmHWM).

#ifndef RTSI_COMMON_MEMORY_TRACKER_H_
#define RTSI_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rtsi {

/// A thread-safe byte counter owned by one index instance.
class MemoryTracker {
 public:
  MemoryTracker() : bytes_(0), peak_(0) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void Add(std::size_t bytes) {
    const std::size_t now =
        bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Racy max update: fine for statistics.
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Sub(std::size_t bytes) {
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> bytes_;
  std::atomic<std::size_t> peak_;
};

/// Current resident set size of the process in bytes (VmRSS), 0 on failure.
std::size_t CurrentRssBytes();

/// Peak resident set size of the process in bytes (VmHWM), 0 on failure.
std::size_t PeakRssBytes();

}  // namespace rtsi

#endif  // RTSI_COMMON_MEMORY_TRACKER_H_
