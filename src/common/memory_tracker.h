// Byte accounting for index structures plus process-level RSS probing.
//
// The paper reports "maximal resident memory"; benches report both the
// logical bytes tracked by each index (exact, comparable between RTSI and
// LSII) and the process peak RSS from /proc/self/status (VmHWM).
//
// Bytes are charged per category so auxiliary structures (the sealed
// components' skip headers) are observable separately from general index
// storage; the category-less Add/Sub/bytes() overloads keep the original
// single-counter behavior for existing callers.

#ifndef RTSI_COMMON_MEMORY_TRACKER_H_
#define RTSI_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rtsi {

/// What a tracked allocation pays for.
enum class MemCategory : std::size_t {
  kGeneral = 0,     // Postings, hash tables, everything uncategorized.
  kSkipHeader = 1,  // Per-component term Bloom filters + bound summaries.
  kLiveArena = 2,   // WindowArena slabs backing live-window ingest state.
};

inline constexpr std::size_t kNumMemCategories = 3;

/// A thread-safe byte counter owned by one index instance.
class MemoryTracker {
 public:
  MemoryTracker() : total_(0), peak_(0) {
    for (auto& c : by_category_) c.store(0, std::memory_order_relaxed);
  }

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void Add(std::size_t bytes) { Add(MemCategory::kGeneral, bytes); }
  void Sub(std::size_t bytes) { Sub(MemCategory::kGeneral, bytes); }

  void Add(MemCategory category, std::size_t bytes) {
    by_category_[static_cast<std::size_t>(category)].fetch_add(
        bytes, std::memory_order_relaxed);
    const std::size_t now =
        total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Racy max update: fine for statistics.
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now,
                                        std::memory_order_relaxed)) {
    }
  }

  void Sub(MemCategory category, std::size_t bytes) {
    by_category_[static_cast<std::size_t>(category)].fetch_sub(
        bytes, std::memory_order_relaxed);
    total_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Total bytes across all categories.
  std::size_t bytes() const {
    return total_.load(std::memory_order_relaxed);
  }

  std::size_t bytes(MemCategory category) const {
    return by_category_[static_cast<std::size_t>(category)].load(
        std::memory_order_relaxed);
  }

  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> by_category_[kNumMemCategories];
  std::atomic<std::size_t> total_;
  std::atomic<std::size_t> peak_;
};

/// Current resident set size of the process in bytes (VmRSS), 0 on failure.
std::size_t CurrentRssBytes();

/// Peak resident set size of the process in bytes (VmHWM), 0 on failure.
std::size_t PeakRssBytes();

}  // namespace rtsi

#endif  // RTSI_COMMON_MEMORY_TRACKER_H_
