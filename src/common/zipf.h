// Zipf-distributed sampling over {0, ..., n-1}.
//
// Term occurrences in transcribed speech are heavily skewed; the corpus
// generator draws words from this distribution (the paper's Ximalaya corpus
// has ~400 unique words per 16-minute stream out of a large vocabulary,
// which a Zipf(~1.0) vocabulary reproduces).

#ifndef RTSI_COMMON_ZIPF_H_
#define RTSI_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rtsi {

/// Samples rank r in {0..n-1} with probability proportional to 1/(r+1)^s.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger (1996), which
/// needs O(1) memory and no per-instance precomputation proportional to n.
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `s` (skew) must be > 0 and != 1 is handled too.
  ZipfDistribution(std::uint64_t n, double s);

  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double eta_;  // Hörmann's s-dependent constant (their name: s).
};

}  // namespace rtsi

#endif  // RTSI_COMMON_ZIPF_H_
