#include "common/clock.h"

#include <chrono>

namespace rtsi {

Timestamp WallClock::Now() const {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

}  // namespace rtsi
