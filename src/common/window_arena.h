// Slab arena for the mutable live-window ingest structures.
//
// Live-window ingest is allocation-bound: every term's unsealed posting
// vector grows through the global allocator, and the live-term table
// churns one hash-map node per (stream, term) pair. "Dynamic Memory
// Allocation Policies for Postings in Real-Time Twitter Search" solves
// exactly this with slab allocation and size-class promotion; WindowArena
// is that design specialized to the two RTSI call sites:
//
//  - L0 posting vectors: one arena per L0 shard, rotated at FreezeL0.
//    Seal() migrates the surviving postings to the global heap, and the
//    retired arena is *quarantined* on the frozen component (freed when
//    the component itself dies, i.e. after every pinned IndexView that
//    could reach it has dropped) rather than recycled in place.
//  - LiveTermTable inner maps: one arena per term shard, living as long
//    as the table; erased nodes return to the size-class free lists and
//    are reused by later inserts, so steady-state ingest never touches
//    the global allocator.
//
// Allocation sizes round up to power-of-two size classes (min 16 bytes,
// so every carve is max_align aligned). A freed block goes on its class's
// free list; a vector growing 16 -> 32 -> 64 bytes therefore promotes
// through classes while its abandoned blocks are immediately reusable by
// other terms — the paper's size-class promotion. Slabs and oversized
// blocks all come from operator new and are released wholesale by the
// destructor.
//
// Thread safety: Allocate/Deallocate are NOT synchronized — each arena is
// owned by exactly one shard and called under that shard's lock. The
// statistics counters are relaxed atomics so gauges (rtsi_cli stats,
// MemoryBytes walks) can read them without taking shard locks. Byte
// ownership is charged to MemCategory::kLiveArena of the tracker passed
// at construction, released on destruction — the same RAII-gauge pattern
// the skip headers use, so a quarantined arena is visible in the tracker
// until the last pinned view lets it go.

#ifndef RTSI_COMMON_WINDOW_ARENA_H_
#define RTSI_COMMON_WINDOW_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/memory_tracker.h"

namespace rtsi {

class WindowArena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  /// Aggregate counters; Stats() of several arenas add member-wise.
  struct Stats {
    std::size_t owned_bytes = 0;      // operator-new bytes held.
    std::size_t allocated_bytes = 0;  // Outstanding class-rounded bytes.
    std::uint64_t requests = 0;       // Allocate() calls.
    std::uint64_t upstream_allocations = 0;  // operator new calls.
    std::uint64_t freelist_hits = 0;  // Requests served by a freed block.

    Stats& operator+=(const Stats& o) {
      owned_bytes += o.owned_bytes;
      allocated_bytes += o.allocated_bytes;
      requests += o.requests;
      upstream_allocations += o.upstream_allocations;
      freelist_hits += o.freelist_hits;
      return *this;
    }
  };

  explicit WindowArena(std::size_t slab_bytes = kDefaultSlabBytes,
                       std::shared_ptr<MemoryTracker> tracker = nullptr);
  ~WindowArena();

  WindowArena(const WindowArena&) = delete;
  WindowArena& operator=(const WindowArena&) = delete;

  /// Returns a block of at least `bytes` bytes, max_align aligned.
  /// Never fails softly (throws std::bad_alloc like operator new).
  void* Allocate(std::size_t bytes);

  /// Returns the block to its size class's free list for reuse. `bytes`
  /// must be the size passed to the matching Allocate().
  void Deallocate(void* ptr, std::size_t bytes) noexcept;

  /// Bytes currently held from the global allocator (slabs + oversized
  /// blocks). This is what kLiveArena is charged with.
  std::size_t owned_bytes() const {
    return owned_bytes_.load(std::memory_order_relaxed);
  }

  /// Outstanding handed-out bytes (class-rounded). <= owned_bytes().
  std::size_t allocated_bytes() const {
    return allocated_bytes_.load(std::memory_order_relaxed);
  }

  Stats GetStats() const;

 private:
  static constexpr std::size_t kMinClassBytes = 16;  // >= max_align.
  static constexpr std::size_t kNumClasses = 48;

  // A freed block is reused as its own free-list link.
  struct FreeNode {
    FreeNode* next;
  };

  static std::size_t ClassIndex(std::size_t bytes);
  static std::size_t ClassBytes(std::size_t index) {
    return kMinClassBytes << index;
  }

  /// operator new with tracker charge + counters.
  void* NewBlock(std::size_t bytes);

  const std::size_t slab_bytes_;
  std::shared_ptr<MemoryTracker> tracker_;

  std::vector<void*> blocks_;  // Every operator-new allocation we own.
  FreeNode* free_lists_[kNumClasses] = {};
  std::byte* slab_cursor_ = nullptr;  // Bump pointer into the open slab.
  std::size_t slab_remaining_ = 0;

  // Relaxed atomics: written under the owner's shard lock, read by
  // lock-free gauges.
  std::atomic<std::size_t> owned_bytes_{0};
  std::atomic<std::size_t> allocated_bytes_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> upstream_allocations_{0};
  std::atomic<std::uint64_t> freelist_hits_{0};
};

/// STL-compatible adapter. A default-constructed (or nullptr) allocator
/// falls back to the global heap, so one container type serves both the
/// arena-on and arena-off configurations and empty containers need no
/// arena. Propagation is enabled on move/copy/swap: the buffer and the
/// arena that owns it always travel together, which is what lets Seal()
/// migrate a vector to the heap with one move-assignment.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(WindowArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "WindowArena carves are max_align aligned");
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(bytes));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* ptr, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->Deallocate(ptr, n * sizeof(T));
    } else {
      ::operator delete(ptr);
    }
  }

  WindowArena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a,
                         const ArenaAllocator& b) noexcept {
    return !(a == b);
  }

 private:
  WindowArena* arena_ = nullptr;
};

}  // namespace rtsi

#endif  // RTSI_COMMON_WINDOW_ARENA_H_
