#include "workload/query_gen.h"

#include <algorithm>

namespace rtsi::workload {

QueryGenerator::QueryGenerator(const QueryGenConfig& config)
    : config_(config),
      dist_(config.vocab_size, config.zipf_skew),
      rng_(config.seed) {}

std::vector<TermId> QueryGenerator::Next() {
  const int span = config_.max_terms - config_.min_terms;
  const int num_terms =
      config_.min_terms +
      (span > 0 ? static_cast<int>(rng_.NextUint64(span + 1)) : 0);
  std::vector<TermId> terms;
  terms.reserve(num_terms);
  int guard = 0;
  while (static_cast<int>(terms.size()) < num_terms && guard < 100) {
    const auto term = static_cast<TermId>(dist_(rng_));
    if (std::find(terms.begin(), terms.end(), term) == terms.end()) {
      terms.push_back(term);
    }
    ++guard;
  }
  return terms;
}

}  // namespace rtsi::workload
