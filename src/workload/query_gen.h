// Query generator: 1-3 term queries, Zipf-biased toward frequent words
// (users query head terms more often than tail terms).

#ifndef RTSI_WORKLOAD_QUERY_GEN_H_
#define RTSI_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "common/types.h"

namespace rtsi::workload {

struct QueryGenConfig {
  std::size_t vocab_size = 60'000;
  double zipf_skew = 0.8;
  int min_terms = 2;  // The paper presents 2-term queries.
  int max_terms = 2;
  std::uint64_t seed = 777;
};

class QueryGenerator {
 public:
  explicit QueryGenerator(const QueryGenConfig& config);

  /// Next query's term ids (distinct within the query).
  std::vector<TermId> Next();

 private:
  QueryGenConfig config_;
  ZipfDistribution dist_;
  Rng rng_;
};

}  // namespace rtsi::workload

#endif  // RTSI_WORKLOAD_QUERY_GEN_H_
