// Workload traces: record a sequence of index operations to a text file
// and replay it against any SearchIndex. This is the paper's future-work
// item "develop a benchmark of the audio streams for other researchers":
// a trace pins down the exact operation mix, so different index
// implementations can be compared on identical input.
//
// Trace format (one op per line, '#' comments allowed):
//   I <stream> <now> <live:0|1> <term:tf> [term:tf ...]   insert window
//   F <stream>                                            finish
//   D <stream>                                            delete
//   U <stream> <delta>                                    popularity update
//   Q <k> <now> <term> [term ...]                         query
//
// A line may additionally carry a ` *xxxxxxxx` suffix: the CRC-32 of the
// op text before it, in lowercase hex. The journal writer appends one to
// every record so replay can distinguish a torn/corrupt record from a
// well-formed one; plain traces omit it and both forms parse.

#ifndef RTSI_WORKLOAD_TRACE_H_
#define RTSI_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/latency_stats.h"
#include "common/status.h"
#include "core/search_index.h"

namespace rtsi::workload {

struct TraceOp {
  enum class Kind : std::uint8_t {
    kInsert,
    kFinish,
    kDelete,
    kUpdate,
    kQuery,
  };

  Kind kind = Kind::kInsert;
  StreamId stream = 0;       // kInsert/kFinish/kDelete/kUpdate.
  Timestamp now = 0;         // kInsert/kQuery.
  bool live = false;         // kInsert.
  std::uint64_t delta = 0;   // kUpdate.
  int k = 10;                // kQuery.
  std::vector<core::TermCount> terms;  // kInsert (tf) / kQuery (tf unused).
};

struct TraceLoadOptions {
  /// Journal-replay mode: a torn or corrupt FINAL record (short write at
  /// a crash) is dropped and reported via TraceLoadInfo instead of
  /// failing the load. Corruption anywhere before the final record still
  /// fails hard.
  bool tolerate_torn_tail = false;
};

struct TraceLoadInfo {
  std::size_t ops = 0;
  std::size_t lines = 0;
  std::uint64_t bytes = 0;
  bool torn_tail_dropped = false;
  std::uint64_t torn_tail_offset = 0;  // byte offset of the dropped record
  std::string torn_tail_reason;
};

/// In-memory trace with text-file (de)serialization.
class Trace {
 public:
  void Add(TraceOp op) { ops_.push_back(std::move(op)); }

  const std::vector<TraceOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  Status SaveToFile(const std::string& path) const;
  /// Strict load: any malformed line fails with its line number and byte
  /// offset. Lines may be arbitrarily long.
  static Result<Trace> LoadFromFile(const std::string& path);
  static Result<Trace> LoadFromFile(const std::string& path,
                                    const TraceLoadOptions& options,
                                    TraceLoadInfo* info);

  /// Serializes one op to its trace line (no newline, no checksum).
  static std::string FormatOp(const TraceOp& op);

  /// FormatOp plus the ` *xxxxxxxx` CRC-32 suffix (journal record form).
  static std::string FormatOpChecked(const TraceOp& op);

  enum class LineParse : std::uint8_t {
    kOk,
    kCommentOrBlank,
    kMalformed,
    kBadChecksum,  // has a CRC suffix and it does not match
  };

  /// Parses one line, verifying the CRC suffix when present.
  static LineParse ParseLineChecked(const std::string& line, TraceOp& op);

  /// True when `line` carries a syntactically valid CRC suffix.
  static bool HasChecksumSuffix(const std::string& line);

  /// Parses the op text of one line without checksum verification (use
  /// ParseLineChecked for that); returns false for malformed input.
  /// Blank lines and '#' comments yield false with *is_comment set.
  static bool ParseLine(const std::string& line, TraceOp& op,
                        bool* is_comment);

 private:
  std::vector<TraceOp> ops_;
};

struct ReplayResult {
  LatencyStats insertions;
  LatencyStats queries;
  LatencyStats updates;
  std::size_t finishes = 0;
  std::size_t deletions = 0;
};

/// Applies every op of `trace` to `index`, in order, timing each class.
ReplayResult ReplayTrace(const Trace& trace, core::SearchIndex& index);

/// Records a synthetic mixed workload as a trace (initialization windows
/// followed by `total_ops` mixed operations with `query_percent` queries).
class SyntheticCorpus;
class QueryGenerator;
Trace RecordMixedTrace(const SyntheticCorpus& corpus, QueryGenerator& gen,
                       std::size_t init_streams, std::size_t total_ops,
                       int query_percent, int k, std::uint64_t seed = 31);

}  // namespace rtsi::workload

#endif  // RTSI_WORKLOAD_TRACE_H_
