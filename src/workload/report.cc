#include "workload/report.h"

#include <algorithm>
#include <cstdio>

namespace rtsi::workload {

ReportTable::ReportTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void ReportTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void ReportTable::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), headers_[c].c_str());
  }
  std::printf("\n");
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(std::size_t bytes) {
  char buf[64];
  if (bytes >= 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

std::string FormatMicros(double micros) {
  char buf[64];
  if (micros >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", micros / 1e6);
  } else if (micros >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", micros / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", micros);
  }
  return buf;
}

}  // namespace rtsi::workload
