#include "workload/corpus.h"

#include <unordered_map>

namespace rtsi::workload {
namespace {

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  // SplitMix-style mixing.
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

}  // namespace

SyntheticCorpus::SyntheticCorpus(const CorpusConfig& config)
    : config_(config),
      word_dist_(config.vocab_size, config.zipf_skew),
      popularity_dist_(config.max_initial_popularity + 1, 1.2) {}

Rng SyntheticCorpus::WindowRng(StreamId stream, int window) const {
  return Rng(HashCombine(HashCombine(config_.seed, stream),
                         static_cast<std::uint64_t>(window) + 1));
}

int SyntheticCorpus::NumWindows(StreamId stream) const {
  Rng rng(HashCombine(config_.seed ^ 0xabcdefULL, stream));
  const int span =
      2 * (config_.avg_windows_per_stream - config_.min_windows_per_stream);
  if (span <= 0) return config_.min_windows_per_stream;
  return config_.min_windows_per_stream +
         static_cast<int>(rng.NextUint64(static_cast<std::uint64_t>(span) + 1));
}

std::vector<core::TermCount> SyntheticCorpus::WindowTerms(StreamId stream,
                                                          int window) const {
  Rng rng = WindowRng(stream, window);
  std::unordered_map<TermId, TermFreq> counts;
  counts.reserve(config_.words_per_window);
  for (int i = 0; i < config_.words_per_window; ++i) {
    ++counts[static_cast<TermId>(word_dist_(rng))];
  }
  std::vector<core::TermCount> out;
  out.reserve(counts.size());
  for (const auto& [term, tf] : counts) out.push_back({term, tf});
  return out;
}

std::vector<std::string> SyntheticCorpus::WindowWords(StreamId stream,
                                                      int window) const {
  Rng rng = WindowRng(stream, window);
  std::vector<std::string> words;
  words.reserve(config_.words_per_window);
  for (int i = 0; i < config_.words_per_window; ++i) {
    words.push_back("w" + std::to_string(word_dist_(rng)));
  }
  return words;
}

std::uint64_t SyntheticCorpus::InitialPopularity(StreamId stream) const {
  Rng rng(HashCombine(config_.seed ^ 0x5eedULL, stream));
  return config_.max_initial_popularity / (1 + popularity_dist_(rng));
}

}  // namespace rtsi::workload
