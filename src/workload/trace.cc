#include "workload/trace.h"

#include <cstdio>
#include <sstream>
#include <string_view>

#include "common/crc32.h"
#include "common/rng.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"

namespace rtsi::workload {
namespace {

// Length of the ` *xxxxxxxx` record-checksum suffix.
constexpr std::size_t kChecksumSuffixLen = 10;

std::string ChecksumSuffix(const std::string& body) {
  const std::uint32_t crc = Crc32(0, body.data(), body.size());
  char buf[16];
  std::snprintf(buf, sizeof(buf), " *%08x", crc);
  return buf;
}

std::string_view TrimmedLine(const std::string& line) {
  std::size_t end = line.size();
  while (end > 0 && (line[end - 1] == '\n' || line[end - 1] == '\r')) --end;
  return {line.data(), end};
}

bool IsHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

// Splits a trimmed line into op body and whether a valid-looking CRC
// suffix was present; verification happens in ParseLineChecked.
bool SplitChecksumSuffix(std::string_view line, std::string_view& body,
                         std::uint32_t& stored_crc) {
  if (line.size() < kChecksumSuffixLen + 1) return false;
  const std::size_t at = line.size() - kChecksumSuffixLen;
  if (line[at] != ' ' || line[at + 1] != '*') return false;
  std::uint32_t crc = 0;
  for (std::size_t i = at + 2; i < line.size(); ++i) {
    const char c = line[i];
    if (!IsHex(c)) return false;
    crc = crc * 16 +
          static_cast<std::uint32_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  body = line.substr(0, at);
  stored_crc = crc;
  return true;
}

}  // namespace

std::string Trace::FormatOp(const TraceOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case TraceOp::Kind::kInsert:
      out << "I " << op.stream << ' ' << op.now << ' ' << (op.live ? 1 : 0);
      for (const auto& tc : op.terms) {
        out << ' ' << tc.term << ':' << tc.tf;
      }
      break;
    case TraceOp::Kind::kFinish:
      out << "F " << op.stream;
      break;
    case TraceOp::Kind::kDelete:
      out << "D " << op.stream;
      break;
    case TraceOp::Kind::kUpdate:
      out << "U " << op.stream << ' ' << op.delta;
      break;
    case TraceOp::Kind::kQuery:
      out << "Q " << op.k << ' ' << op.now;
      for (const auto& tc : op.terms) {
        out << ' ' << tc.term;
      }
      break;
  }
  return out.str();
}

std::string Trace::FormatOpChecked(const TraceOp& op) {
  std::string line = FormatOp(op);
  line += ChecksumSuffix(line);
  return line;
}

bool Trace::HasChecksumSuffix(const std::string& line) {
  std::string_view body;
  std::uint32_t crc = 0;
  return SplitChecksumSuffix(TrimmedLine(line), body, crc);
}

Trace::LineParse Trace::ParseLineChecked(const std::string& line,
                                         TraceOp& op) {
  const std::string_view trimmed = TrimmedLine(line);
  std::string_view body = trimmed;
  std::uint32_t stored_crc = 0;
  if (SplitChecksumSuffix(trimmed, body, stored_crc)) {
    const std::uint32_t actual = Crc32(0, body.data(), body.size());
    if (actual != stored_crc) return LineParse::kBadChecksum;
  }
  bool is_comment = false;
  if (ParseLine(std::string(body), op, &is_comment)) return LineParse::kOk;
  return is_comment ? LineParse::kCommentOrBlank : LineParse::kMalformed;
}

bool Trace::ParseLine(const std::string& line, TraceOp& op,
                      bool* is_comment) {
  if (is_comment != nullptr) *is_comment = false;
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag) || tag[0] == '#') {
    if (is_comment != nullptr) *is_comment = true;
    return false;
  }
  op = TraceOp{};
  if (tag == "I") {
    int live = 0;
    if (!(in >> op.stream >> op.now >> live)) return false;
    op.kind = TraceOp::Kind::kInsert;
    op.live = live != 0;
    std::string pair;
    while (in >> pair) {
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) return false;
      core::TermCount tc;
      tc.term = static_cast<TermId>(std::stoul(pair.substr(0, colon)));
      tc.tf = static_cast<TermFreq>(std::stoul(pair.substr(colon + 1)));
      op.terms.push_back(tc);
    }
    return true;
  }
  if (tag == "F" || tag == "D") {
    if (!(in >> op.stream)) return false;
    op.kind = tag == "F" ? TraceOp::Kind::kFinish : TraceOp::Kind::kDelete;
    return true;
  }
  if (tag == "U") {
    if (!(in >> op.stream >> op.delta)) return false;
    op.kind = TraceOp::Kind::kUpdate;
    return true;
  }
  if (tag == "Q") {
    if (!(in >> op.k >> op.now)) return false;
    op.kind = TraceOp::Kind::kQuery;
    std::uint64_t term = 0;
    while (in >> term) {
      op.terms.push_back({static_cast<TermId>(term), 1});
    }
    return !op.terms.empty();
  }
  return false;
}

Status Trace::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  bool ok =
      std::fputs("# RTSI workload trace v1\n", f) >= 0;
  for (const TraceOp& op : ops_) {
    const std::string line = FormatOp(op);
    ok = ok && std::fputs(line.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::Internal("trace write failed: " + path);
  return Status::Ok();
}

Result<Trace> Trace::LoadFromFile(const std::string& path) {
  return LoadFromFile(path, TraceLoadOptions{}, nullptr);
}

Result<Trace> Trace::LoadFromFile(const std::string& path,
                                  const TraceLoadOptions& options,
                                  TraceLoadInfo* info) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data;
  data.resize(file_size > 0 ? static_cast<std::size_t>(file_size) : 0);
  const std::size_t read =
      data.empty() ? 0 : std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) {
    return Status::Internal("short read: " + path);
  }

  Trace trace;
  TraceLoadInfo local_info;
  TraceLoadInfo& out = info != nullptr ? *info : local_info;
  out = TraceLoadInfo{};
  out.bytes = data.size();

  // Whether any accepted record so far carried a CRC suffix: once a
  // journal is known to be checksummed, a CRC-less final record is a torn
  // write, not a legacy record.
  bool saw_checksummed = false;
  std::size_t line_number = 0;
  std::size_t offset = 0;
  while (offset < data.size()) {
    std::size_t end = data.find('\n', offset);
    const bool has_newline = end != std::string::npos;
    if (!has_newline) end = data.size();
    const std::string line = data.substr(offset, end - offset);
    const bool is_last = (has_newline ? end + 1 : end) >= data.size();
    ++line_number;

    TraceOp op;
    const LineParse parse = ParseLineChecked(line, op);
    std::string torn_reason;
    switch (parse) {
      case LineParse::kCommentOrBlank:
        if (options.tolerate_torn_tail && is_last && !has_newline &&
            !line.empty()) {
          // A torn header/comment line must be truncated away like any
          // other torn record: a subsequent append would otherwise
          // concatenate onto it and corrupt the first real record.
          torn_reason = "comment missing trailing newline";
        }
        break;
      case LineParse::kOk:
        if (options.tolerate_torn_tail && is_last && !has_newline) {
          // A record is only complete once its newline is on disk; a
          // missing one means the final write was cut short.
          torn_reason = "record missing trailing newline";
        } else if (options.tolerate_torn_tail && is_last &&
                   saw_checksummed && !HasChecksumSuffix(line)) {
          torn_reason = "checksummed journal record lost its checksum";
        } else {
          saw_checksummed = saw_checksummed || HasChecksumSuffix(line);
          trace.Add(std::move(op));
          ++out.ops;
        }
        break;
      case LineParse::kMalformed:
      case LineParse::kBadChecksum: {
        const char* what = parse == LineParse::kBadChecksum
                               ? "checksum mismatch"
                               : "malformed record";
        if (options.tolerate_torn_tail && is_last) {
          torn_reason = what;
          break;
        }
        std::string snippet = line.substr(0, 60);
        return Status::InvalidArgument(
            "bad trace line " + std::to_string(line_number) +
            " (byte offset " + std::to_string(offset) + ") in " + path +
            ": " + std::string(what) + ": " + snippet);
      }
    }
    if (!torn_reason.empty()) {
      out.torn_tail_dropped = true;
      out.torn_tail_offset = offset;
      out.torn_tail_reason = std::move(torn_reason);
    }
    offset = has_newline ? end + 1 : end;
  }
  out.lines = line_number;
  return trace;
}

ReplayResult ReplayTrace(const Trace& trace, core::SearchIndex& index) {
  ReplayResult result;
  Stopwatch watch;
  std::vector<TermId> query_terms;
  for (const TraceOp& op : trace.ops()) {
    switch (op.kind) {
      case TraceOp::Kind::kInsert:
        watch.Restart();
        index.InsertWindow(op.stream, op.now, op.terms, op.live);
        result.insertions.Record(watch.ElapsedMicros());
        break;
      case TraceOp::Kind::kFinish:
        index.FinishStream(op.stream);
        ++result.finishes;
        break;
      case TraceOp::Kind::kDelete:
        index.DeleteStream(op.stream);
        ++result.deletions;
        break;
      case TraceOp::Kind::kUpdate:
        watch.Restart();
        index.UpdatePopularity(op.stream, op.delta);
        result.updates.Record(watch.ElapsedMicros());
        break;
      case TraceOp::Kind::kQuery: {
        query_terms.clear();
        for (const auto& tc : op.terms) query_terms.push_back(tc.term);
        watch.Restart();
        index.Query(query_terms, op.k, op.now);
        result.queries.Record(watch.ElapsedMicros());
        break;
      }
    }
  }
  return result;
}

Trace RecordMixedTrace(const SyntheticCorpus& corpus, QueryGenerator& gen,
                       std::size_t init_streams, std::size_t total_ops,
                       int query_percent, int k, std::uint64_t seed) {
  Trace trace;
  Timestamp now = 0;

  // Initialization phase: every window of the initial streams.
  for (StreamId s = 0; s < init_streams; ++s) {
    const int windows = corpus.NumWindows(s);
    for (int w = 0; w < windows; ++w) {
      now += kMicrosPerSecond;
      TraceOp op;
      op.kind = TraceOp::Kind::kInsert;
      op.stream = s;
      op.now = now;
      op.live = w + 1 < windows;
      op.terms = corpus.WindowTerms(s, w);
      trace.Add(std::move(op));
    }
    TraceOp finish;
    finish.kind = TraceOp::Kind::kFinish;
    finish.stream = s;
    trace.Add(std::move(finish));
  }

  // Mixed phase.
  Rng rng(seed);
  StreamId stream = init_streams;
  int window = 0;
  int windows_in_stream = corpus.NumWindows(stream);
  for (std::size_t i = 0; i < total_ops; ++i) {
    now += 100'000;
    if (rng.NextBool(query_percent / 100.0)) {
      TraceOp op;
      op.kind = TraceOp::Kind::kQuery;
      op.k = k;
      op.now = now;
      for (const TermId term : gen.Next()) op.terms.push_back({term, 1});
      trace.Add(std::move(op));
    } else if (rng.NextBool(0.1)) {
      TraceOp op;
      op.kind = TraceOp::Kind::kUpdate;
      op.stream = rng.NextUint64(stream + 1);
      op.delta = 1 + rng.NextUint64(20);
      trace.Add(std::move(op));
    } else {
      TraceOp op;
      op.kind = TraceOp::Kind::kInsert;
      op.stream = stream;
      op.now = now;
      op.live = window + 1 < windows_in_stream;
      op.terms = corpus.WindowTerms(stream, window);
      const bool last = !op.live;
      trace.Add(std::move(op));
      if (last) {
        TraceOp finish;
        finish.kind = TraceOp::Kind::kFinish;
        finish.stream = stream;
        trace.Add(std::move(finish));
        ++stream;
        window = 0;
        windows_in_stream = corpus.NumWindows(stream);
      } else {
        ++window;
      }
    }
  }
  return trace;
}

}  // namespace rtsi::workload
