#include "workload/trace.h"

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"

namespace rtsi::workload {

std::string Trace::FormatOp(const TraceOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case TraceOp::Kind::kInsert:
      out << "I " << op.stream << ' ' << op.now << ' ' << (op.live ? 1 : 0);
      for (const auto& tc : op.terms) {
        out << ' ' << tc.term << ':' << tc.tf;
      }
      break;
    case TraceOp::Kind::kFinish:
      out << "F " << op.stream;
      break;
    case TraceOp::Kind::kDelete:
      out << "D " << op.stream;
      break;
    case TraceOp::Kind::kUpdate:
      out << "U " << op.stream << ' ' << op.delta;
      break;
    case TraceOp::Kind::kQuery:
      out << "Q " << op.k << ' ' << op.now;
      for (const auto& tc : op.terms) {
        out << ' ' << tc.term;
      }
      break;
  }
  return out.str();
}

bool Trace::ParseLine(const std::string& line, TraceOp& op,
                      bool* is_comment) {
  if (is_comment != nullptr) *is_comment = false;
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag) || tag[0] == '#') {
    if (is_comment != nullptr) *is_comment = true;
    return false;
  }
  op = TraceOp{};
  if (tag == "I") {
    int live = 0;
    if (!(in >> op.stream >> op.now >> live)) return false;
    op.kind = TraceOp::Kind::kInsert;
    op.live = live != 0;
    std::string pair;
    while (in >> pair) {
      const std::size_t colon = pair.find(':');
      if (colon == std::string::npos) return false;
      core::TermCount tc;
      tc.term = static_cast<TermId>(std::stoul(pair.substr(0, colon)));
      tc.tf = static_cast<TermFreq>(std::stoul(pair.substr(colon + 1)));
      op.terms.push_back(tc);
    }
    return true;
  }
  if (tag == "F" || tag == "D") {
    if (!(in >> op.stream)) return false;
    op.kind = tag == "F" ? TraceOp::Kind::kFinish : TraceOp::Kind::kDelete;
    return true;
  }
  if (tag == "U") {
    if (!(in >> op.stream >> op.delta)) return false;
    op.kind = TraceOp::Kind::kUpdate;
    return true;
  }
  if (tag == "Q") {
    if (!(in >> op.k >> op.now)) return false;
    op.kind = TraceOp::Kind::kQuery;
    std::uint64_t term = 0;
    while (in >> term) {
      op.terms.push_back({static_cast<TermId>(term), 1});
    }
    return !op.terms.empty();
  }
  return false;
}

Status Trace::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  bool ok =
      std::fputs("# RTSI workload trace v1\n", f) >= 0;
  for (const TraceOp& op : ops_) {
    const std::string line = FormatOp(op);
    ok = ok && std::fputs(line.c_str(), f) >= 0 && std::fputc('\n', f) >= 0;
  }
  if (std::fclose(f) != 0) ok = false;
  if (!ok) return Status::Internal("trace write failed: " + path);
  return Status::Ok();
}

Result<Trace> Trace::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  Trace trace;
  char buf[1 << 16];
  int line_number = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_number;
    TraceOp op;
    bool is_comment = false;
    if (ParseLine(buf, op, &is_comment)) {
      trace.Add(std::move(op));
    } else if (!is_comment) {
      std::fclose(f);
      return Status::InvalidArgument("bad trace line " +
                                     std::to_string(line_number));
    }
  }
  std::fclose(f);
  return trace;
}

ReplayResult ReplayTrace(const Trace& trace, core::SearchIndex& index) {
  ReplayResult result;
  Stopwatch watch;
  std::vector<TermId> query_terms;
  for (const TraceOp& op : trace.ops()) {
    switch (op.kind) {
      case TraceOp::Kind::kInsert:
        watch.Restart();
        index.InsertWindow(op.stream, op.now, op.terms, op.live);
        result.insertions.Record(watch.ElapsedMicros());
        break;
      case TraceOp::Kind::kFinish:
        index.FinishStream(op.stream);
        ++result.finishes;
        break;
      case TraceOp::Kind::kDelete:
        index.DeleteStream(op.stream);
        ++result.deletions;
        break;
      case TraceOp::Kind::kUpdate:
        watch.Restart();
        index.UpdatePopularity(op.stream, op.delta);
        result.updates.Record(watch.ElapsedMicros());
        break;
      case TraceOp::Kind::kQuery: {
        query_terms.clear();
        for (const auto& tc : op.terms) query_terms.push_back(tc.term);
        watch.Restart();
        index.Query(query_terms, op.k, op.now);
        result.queries.Record(watch.ElapsedMicros());
        break;
      }
    }
  }
  return result;
}

Trace RecordMixedTrace(const SyntheticCorpus& corpus, QueryGenerator& gen,
                       std::size_t init_streams, std::size_t total_ops,
                       int query_percent, int k, std::uint64_t seed) {
  Trace trace;
  Timestamp now = 0;

  // Initialization phase: every window of the initial streams.
  for (StreamId s = 0; s < init_streams; ++s) {
    const int windows = corpus.NumWindows(s);
    for (int w = 0; w < windows; ++w) {
      now += kMicrosPerSecond;
      TraceOp op;
      op.kind = TraceOp::Kind::kInsert;
      op.stream = s;
      op.now = now;
      op.live = w + 1 < windows;
      op.terms = corpus.WindowTerms(s, w);
      trace.Add(std::move(op));
    }
    TraceOp finish;
    finish.kind = TraceOp::Kind::kFinish;
    finish.stream = s;
    trace.Add(std::move(finish));
  }

  // Mixed phase.
  Rng rng(seed);
  StreamId stream = init_streams;
  int window = 0;
  int windows_in_stream = corpus.NumWindows(stream);
  for (std::size_t i = 0; i < total_ops; ++i) {
    now += 100'000;
    if (rng.NextBool(query_percent / 100.0)) {
      TraceOp op;
      op.kind = TraceOp::Kind::kQuery;
      op.k = k;
      op.now = now;
      for (const TermId term : gen.Next()) op.terms.push_back({term, 1});
      trace.Add(std::move(op));
    } else if (rng.NextBool(0.1)) {
      TraceOp op;
      op.kind = TraceOp::Kind::kUpdate;
      op.stream = rng.NextUint64(stream + 1);
      op.delta = 1 + rng.NextUint64(20);
      trace.Add(std::move(op));
    } else {
      TraceOp op;
      op.kind = TraceOp::Kind::kInsert;
      op.stream = stream;
      op.now = now;
      op.live = window + 1 < windows_in_stream;
      op.terms = corpus.WindowTerms(stream, window);
      const bool last = !op.live;
      trace.Add(std::move(op));
      if (last) {
        TraceOp finish;
        finish.kind = TraceOp::Kind::kFinish;
        finish.stream = stream;
        trace.Add(std::move(finish));
        ++stream;
        window = 0;
        windows_in_stream = corpus.NumWindows(stream);
      } else {
        ++window;
      }
    }
  }
  return trace;
}

}  // namespace rtsi::workload
