// Synthetic Ximalaya-like corpus (DESIGN.md substitution table).
//
// The paper's dataset: 80k streams, ~16 minutes each, 32M words total,
// ~400 unique words per stream, transcripts with stop words removed.
// This generator reproduces those statistics: every stream is a sequence
// of 60-second windows; each window draws ~130 tokens from a Zipf(1.0)
// vocabulary. Generation is deterministic per (seed, stream, window), so
// benches can re-derive any window without storing the corpus.

#ifndef RTSI_WORKLOAD_CORPUS_H_
#define RTSI_WORKLOAD_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/search_index.h"

namespace rtsi::workload {

struct CorpusConfig {
  std::size_t num_streams = 80'000;
  std::size_t vocab_size = 60'000;
  double zipf_skew = 1.0;
  int avg_windows_per_stream = 16;  // 16 windows x 60 s = 16 minutes.
  int min_windows_per_stream = 4;
  int words_per_window = 130;       // ~2000 tokens per 16-minute stream.
  std::uint64_t max_initial_popularity = 100'000;
  std::uint64_t seed = 12345;
};

class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(const CorpusConfig& config);

  std::size_t num_streams() const { return config_.num_streams; }
  std::size_t vocab_size() const { return config_.vocab_size; }
  const CorpusConfig& config() const { return config_; }

  /// Number of 60 s windows of `stream` (deterministic, in
  /// [min_windows, 2*avg - min_windows]).
  int NumWindows(StreamId stream) const;

  /// Term counts of one window. TermIds are the Zipf ranks themselves
  /// (0 = most frequent word).
  std::vector<core::TermCount> WindowTerms(StreamId stream,
                                           int window) const;

  /// The same window as word strings ("w<id>"), for the service pipeline.
  std::vector<std::string> WindowWords(StreamId stream, int window) const;

  /// Initial play counter of the stream (Zipf-skewed: few hits, long tail).
  std::uint64_t InitialPopularity(StreamId stream) const;

 private:
  Rng WindowRng(StreamId stream, int window) const;

  CorpusConfig config_;
  ZipfDistribution word_dist_;
  ZipfDistribution popularity_dist_;
};

}  // namespace rtsi::workload

#endif  // RTSI_WORKLOAD_CORPUS_H_
