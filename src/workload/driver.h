// Workload driver: runs the paper's experiment phases (initialization,
// insertion, query, update, mixed) against any SearchIndex and reports
// latency statistics.

#ifndef RTSI_WORKLOAD_DRIVER_H_
#define RTSI_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/latency_stats.h"
#include "core/search_index.h"
#include "workload/corpus.h"
#include "workload/query_gen.h"

namespace rtsi::workload {

struct InitResult {
  double elapsed_micros = 0.0;
  std::size_t index_bytes = 0;   // Logical index memory after init.
  std::size_t windows_inserted = 0;
};

/// Builds the index from streams [first, first+count): inserts every
/// window (advancing the simulated clock by 60 s per round) and finishes
/// each stream. Windows are interleaved round-robin within a cohort of
/// `live_cohort` concurrently-live streams — platforms host many archived
/// streams but only a bounded number of live broadcasts at any instant.
InitResult InitializeIndex(core::SearchIndex& index,
                           const SyntheticCorpus& corpus, StreamId first,
                           std::size_t count, SimulatedClock& clock,
                           bool set_initial_popularity = true,
                           std::size_t live_cohort = 64);

/// Inserts the windows of streams [first, first+count) one window per op,
/// recording per-insertion latency.
LatencyStats MeasureInsertions(core::SearchIndex& index,
                               const SyntheticCorpus& corpus, StreamId first,
                               std::size_t count, SimulatedClock& clock);

/// Runs `num_queries` top-k queries, recording per-query latency.
LatencyStats MeasureQueries(core::SearchIndex& index, QueryGenerator& gen,
                            std::size_t num_queries, int k,
                            const Clock& clock);

/// Applies `num_updates` popularity increments to random streams in
/// [0, num_streams).
LatencyStats MeasureUpdates(core::SearchIndex& index,
                            std::size_t num_updates,
                            std::size_t num_streams, const Clock& clock,
                            std::uint64_t seed = 99);

struct MixedResult {
  LatencyStats queries;
  LatencyStats insertions;
};

/// Interleaves queries and window insertions: `query_percent` of
/// `total_ops` are queries, the rest are insertions of fresh streams
/// starting at `first_new_stream` (Figure 6).
MixedResult RunMixedWorkload(core::SearchIndex& index,
                             const SyntheticCorpus& corpus,
                             QueryGenerator& gen, std::size_t total_ops,
                             int query_percent, int k,
                             StreamId first_new_stream,
                             SimulatedClock& clock);

}  // namespace rtsi::workload

#endif  // RTSI_WORKLOAD_DRIVER_H_
