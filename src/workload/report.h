// Aligned-table reporting for the bench binaries: every bench prints the
// rows/series of the corresponding paper table or figure.

#ifndef RTSI_WORKLOAD_REPORT_H_
#define RTSI_WORKLOAD_REPORT_H_

#include <string>
#include <vector>

namespace rtsi::workload {

class ReportTable {
 public:
  ReportTable(std::string title, std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Prints title, headers and rows with aligned columns to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers: fixed precision, thousands-free plain formats.
std::string FormatDouble(double value, int precision = 2);
std::string FormatBytes(std::size_t bytes);
std::string FormatMicros(double micros);

}  // namespace rtsi::workload

#endif  // RTSI_WORKLOAD_REPORT_H_
