#include "workload/driver.h"

#include <algorithm>

#include "common/rng.h"

namespace rtsi::workload {

InitResult InitializeIndex(core::SearchIndex& index,
                           const SyntheticCorpus& corpus, StreamId first,
                           std::size_t count, SimulatedClock& clock,
                           bool set_initial_popularity,
                           std::size_t live_cohort) {
  InitResult result;
  Stopwatch watch;
  if (live_cohort == 0) live_cohort = 1;

  if (set_initial_popularity) {
    for (std::size_t i = 0; i < count; ++i) {
      index.UpdatePopularity(first + i, corpus.InitialPopularity(first + i));
    }
  }

  // Cohorts of `live_cohort` streams broadcast concurrently; within a
  // cohort every live stream delivers one window per simulated minute.
  for (std::size_t cohort_start = 0; cohort_start < count;
       cohort_start += live_cohort) {
    const std::size_t cohort_size =
        std::min(live_cohort, count - cohort_start);
    std::vector<int> windows_left(cohort_size);
    int max_windows = 0;
    for (std::size_t i = 0; i < cohort_size; ++i) {
      windows_left[i] = corpus.NumWindows(first + cohort_start + i);
      max_windows = std::max(max_windows, windows_left[i]);
    }
    for (int w = 0; w < max_windows; ++w) {
      for (std::size_t i = 0; i < cohort_size; ++i) {
        if (w >= windows_left[i]) continue;
        const StreamId stream = first + cohort_start + i;
        const bool last_window = (w + 1 == windows_left[i]);
        index.InsertWindow(stream, clock.Now(),
                           corpus.WindowTerms(stream, w), !last_window);
        if (last_window) index.FinishStream(stream);
        ++result.windows_inserted;
      }
      clock.Advance(60 * kMicrosPerSecond);
    }
  }

  result.elapsed_micros = watch.ElapsedMicros();
  result.index_bytes = index.MemoryBytes();
  return result;
}

LatencyStats MeasureInsertions(core::SearchIndex& index,
                               const SyntheticCorpus& corpus, StreamId first,
                               std::size_t count, SimulatedClock& clock) {
  LatencyStats stats;
  Stopwatch watch;
  for (std::size_t i = 0; i < count; ++i) {
    const StreamId stream = first + i;
    const int windows = corpus.NumWindows(stream);
    for (int w = 0; w < windows; ++w) {
      const auto terms = corpus.WindowTerms(stream, w);
      clock.Advance(kMicrosPerSecond);
      watch.Restart();
      index.InsertWindow(stream, clock.Now(), terms, w + 1 < windows);
      stats.Record(watch.ElapsedMicros());
    }
    index.FinishStream(stream);
  }
  return stats;
}

LatencyStats MeasureQueries(core::SearchIndex& index, QueryGenerator& gen,
                            std::size_t num_queries, int k,
                            const Clock& clock) {
  LatencyStats stats;
  Stopwatch watch;
  for (std::size_t i = 0; i < num_queries; ++i) {
    const std::vector<TermId> terms = gen.Next();
    watch.Restart();
    const auto results = index.Query(terms, k, clock.Now());
    stats.Record(watch.ElapsedMicros());
    (void)results;
  }
  return stats;
}

LatencyStats MeasureUpdates(core::SearchIndex& index,
                            std::size_t num_updates,
                            std::size_t num_streams, const Clock& clock,
                            std::uint64_t seed) {
  (void)clock;
  LatencyStats stats;
  Rng rng(seed);
  Stopwatch watch;
  for (std::size_t i = 0; i < num_updates; ++i) {
    const StreamId stream = rng.NextUint64(std::max<std::size_t>(1,
                                                                 num_streams));
    const std::uint64_t delta = 1 + rng.NextUint64(10);
    watch.Restart();
    index.UpdatePopularity(stream, delta);
    stats.Record(watch.ElapsedMicros());
  }
  return stats;
}

MixedResult RunMixedWorkload(core::SearchIndex& index,
                             const SyntheticCorpus& corpus,
                             QueryGenerator& gen, std::size_t total_ops,
                             int query_percent, int k,
                             StreamId first_new_stream,
                             SimulatedClock& clock) {
  MixedResult result;
  Rng rng(0xC0FFEE ^ total_ops ^ query_percent);
  Stopwatch watch;

  StreamId stream = first_new_stream;
  int window = 0;
  int windows_in_stream = corpus.NumWindows(stream);

  for (std::size_t op = 0; op < total_ops; ++op) {
    clock.Advance(100'000);  // 100 ms between operations.
    if (rng.NextBool(query_percent / 100.0)) {
      const std::vector<TermId> terms = gen.Next();
      watch.Restart();
      index.Query(terms, k, clock.Now());
      result.queries.Record(watch.ElapsedMicros());
    } else {
      const auto terms = corpus.WindowTerms(stream, window);
      const bool last = (window + 1 >= windows_in_stream);
      watch.Restart();
      index.InsertWindow(stream, clock.Now(), terms, !last);
      result.insertions.Record(watch.ElapsedMicros());
      if (last) {
        index.FinishStream(stream);
        ++stream;
        window = 0;
        windows_in_stream = corpus.NumWindows(stream);
      } else {
        ++window;
      }
    }
  }
  return result;
}

}  // namespace rtsi::workload
