// Shared live-freshness ceiling cell of one sealed LSM component.
//
// Candidates found in a sealed component are scored with their *live*
// freshness from the stream-info table, which can exceed every freshness
// the component stored (the stream stayed active after sealing). A sound
// pruning bound therefore needs a ceiling over the live freshness of the
// streams resident in the component — not over what the component stored.
//
// The cell is heap-allocated and shared (std::shared_ptr) between the
// component itself and the per-stream residency entries in the
// StreamInfoTable: inserts bump the cells of every component the stream
// resides in, queries read the cell through the component snapshot.
// Monotone max semantics make relaxed atomics sufficient — a reader can
// only ever observe a value that was valid at some earlier instant, and
// the ceiling only grows, so a stale read still upper-bounds every live
// freshness that existed when the query captured its snapshot.

#ifndef RTSI_INDEX_FRESHNESS_CEILING_H_
#define RTSI_INDEX_FRESHNESS_CEILING_H_

#include <atomic>
#include <memory>

#include "common/types.h"

namespace rtsi::index {

class FreshnessCeiling {
 public:
  FreshnessCeiling() = default;

  FreshnessCeiling(const FreshnessCeiling&) = delete;
  FreshnessCeiling& operator=(const FreshnessCeiling&) = delete;

  /// Raises the ceiling to at least `frsh` (monotone max).
  void Bump(Timestamp frsh) {
    Timestamp prev = value_.load(std::memory_order_relaxed);
    while (frsh > prev && !value_.compare_exchange_weak(
                              prev, frsh, std::memory_order_relaxed)) {
    }
  }

  Timestamp Get() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> value_{0};
};

using FreshnessCeilingPtr = std::shared_ptr<FreshnessCeiling>;

}  // namespace rtsi::index

#endif  // RTSI_INDEX_FRESHNESS_CEILING_H_
