#include "index/stream_info_table.h"

#include <algorithm>

namespace rtsi::index {

bool StreamInfoTable::OnInsert(StreamId stream, Timestamp frsh, bool live,
                               std::uint64_t* pop_count) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, created] = shard.map.try_emplace(stream);
  (void)created;
  StreamInfo& info = it->second;
  const bool first_content = !info.content_seen;
  info.content_seen = true;
  info.frsh = std::max(info.frsh, frsh);
  info.live = live;
  if (pop_count != nullptr) *pop_count = info.pop_count;
  BumpMaxFrsh(frsh);
  BumpMaxStream(stream);
  return first_content;
}

void StreamInfoTable::IncrementComponentCount(StreamId stream) {
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.map[stream].component_count;
  }
  BumpMaxStream(stream);
}

std::pair<std::uint32_t, bool> StreamInfoTable::DecrementComponentCount(
    StreamId stream) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  if (it == shard.map.end()) return {0, false};
  StreamInfo& info = it->second;
  if (info.component_count > 0) --info.component_count;
  return {info.component_count, info.live};
}

std::uint32_t StreamInfoTable::GetComponentCount(StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  return it == shard.map.end() ? 0 : it->second.component_count;
}

bool StreamInfoTable::IsLive(StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  return it != shard.map.end() && it->second.live && !it->second.deleted;
}

std::uint64_t StreamInfoTable::AddPopularity(StreamId stream,
                                             std::uint64_t delta) {
  std::uint64_t count;
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    StreamInfo& info = shard.map[stream];
    info.pop_count += delta;
    count = info.pop_count;
  }
  BumpMaxPop(count);
  BumpMaxStream(stream);
  return count;
}

void StreamInfoTable::MarkFinished(StreamId stream) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  if (it != shard.map.end()) it->second.live = false;
}

void StreamInfoTable::MarkDeleted(StreamId stream) {
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    StreamInfo& info = shard.map[stream];
    info.deleted = true;
    info.live = false;
  }
  BumpMaxStream(stream);
}

bool StreamInfoTable::Get(StreamId stream, StreamInfo& info) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  if (it == shard.map.end() || it->second.deleted) return false;
  info = it->second;
  return true;
}

bool StreamInfoTable::IsDeleted(StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  return it != shard.map.end() && it->second.deleted;
}

void StreamInfoTable::RestoreEntry(StreamId stream, const StreamInfo& info) {
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[stream] = info;
  }
  BumpMaxPop(info.pop_count);
  BumpMaxFrsh(info.frsh);
  BumpMaxStream(stream);
}

std::size_t StreamInfoTable::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

std::size_t StreamInfoTable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.map.bucket_count() * sizeof(void*) +
             shard.map.size() *
                 (sizeof(StreamId) + sizeof(StreamInfo) + 2 * sizeof(void*));
  }
  return bytes;
}

}  // namespace rtsi::index
