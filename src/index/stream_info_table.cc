#include "index/stream_info_table.h"

#include <algorithm>

namespace rtsi::index {

bool StreamInfoTable::OnInsert(StreamId stream, Timestamp frsh, bool live,
                               std::uint64_t* pop_count) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, created] = shard.map.try_emplace(stream);
  (void)created;
  StreamInfo& info = it->second;
  const bool first_content = !info.content_seen;
  info.content_seen = true;
  info.frsh = std::max(info.frsh, frsh);
  // Liveness is monotone downward: a late window arriving out of order
  // after MarkFinished (or a deletion) must not resurrect the stream into
  // the live set — it would never be evicted again.
  if (!info.finished && !info.deleted) info.live = live;
  if (pop_count != nullptr) *pop_count = info.pop_count;
  // Raise the live-freshness ceiling of every sealed component the stream
  // resides in: their older postings of this stream will now be scored
  // with this (newer) live freshness.
  auto res = shard.residency.find(stream);
  if (res != shard.residency.end()) {
    for (const Residency& r : res->second) r.ceiling->Bump(frsh);
  }
  BumpMaxFrsh(frsh);
  BumpMaxStream(stream);
  return first_content;
}

void StreamInfoTable::IncrementComponentCount(StreamId stream) {
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.map[stream].component_count;
  }
  BumpMaxStream(stream);
}

void StreamInfoTable::AddSealedResidency(StreamId stream,
                                         ComponentId component,
                                         const FreshnessCeilingPtr& cell) {
  if (cell == nullptr || component == kInvalidComponentId) return;
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  // A deleted stream is never scored again, and MarkDeleted already
  // erased its residency: registering it would leak an orphan entry
  // (merges purge its postings without a de-registration hook).
  auto [map_it, created] = shard.map.try_emplace(stream);
  (void)created;
  if (map_it->second.deleted) return;
  // Fold the stream's current live freshness into the cell under the same
  // lock OnInsert bumps under: an insert serialized before this
  // registration contributed to info.frsh and is covered here; one
  // serialized after sees the entry and bumps the cell itself.
  cell->Bump(map_it->second.frsh);
  std::vector<Residency>& entries = shard.residency[stream];
  for (const Residency& r : entries) {
    if (r.component == component) return;
  }
  entries.push_back({component, cell});
}

std::pair<std::uint32_t, bool> StreamInfoTable::MergeResidency(
    StreamId stream, std::uint32_t copies, ComponentId to,
    const FreshnessCeilingPtr& to_cell) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  if (it == shard.map.end()) return {0, false};
  StreamInfo& info = it->second;
  // `copies` residencies became one in the merge output.
  for (std::uint32_t c = 1; c < copies && info.component_count > 0; ++c) {
    --info.component_count;
  }
  // A deleted stream is never scored again; MarkDeleted erased its
  // residency and re-registering here would leak an orphan entry (later
  // merges purge its postings without calling the hook again).
  if (info.deleted) return {info.component_count, false};

  // Register the (unpublished) merge output so inserts from here on bump
  // its ceiling cell too. The input residencies stay: the inputs remain
  // query-visible until the component swap, so they must keep receiving
  // bumps — DropResidency retires them once the swap is done.
  if (to != kInvalidComponentId && to_cell != nullptr) {
    to_cell->Bump(info.frsh);
    std::vector<Residency>& entries = shard.residency[stream];
    bool have_to = false;
    for (const Residency& r : entries) {
      have_to = have_to || r.component == to;
    }
    if (!have_to) entries.push_back({to, to_cell});
  }
  return {info.component_count, info.live};
}

void StreamInfoTable::DropResidency(StreamId stream,
                                    const std::vector<ComponentId>& from) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.residency.find(stream);
  if (it == shard.residency.end()) return;
  std::vector<Residency>& entries = it->second;
  std::size_t n = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const bool retired =
        std::find(from.begin(), from.end(), entries[i].component) !=
        from.end();
    if (retired) continue;  // Retired merge input.
    if (n != i) entries[n] = std::move(entries[i]);
    ++n;
  }
  entries.resize(n);
  if (entries.empty()) shard.residency.erase(it);
}

std::vector<ComponentId> StreamInfoTable::GetResidency(
    StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<ComponentId> out;
  auto it = shard.residency.find(stream);
  if (it == shard.residency.end()) return out;
  out.reserve(it->second.size());
  for (const Residency& r : it->second) out.push_back(r.component);
  return out;
}

std::uint32_t StreamInfoTable::GetComponentCount(StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  return it == shard.map.end() ? 0 : it->second.component_count;
}

bool StreamInfoTable::IsLive(StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  return it != shard.map.end() && it->second.live && !it->second.deleted;
}

std::uint64_t StreamInfoTable::AddPopularity(StreamId stream,
                                             std::uint64_t delta) {
  std::uint64_t count;
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    StreamInfo& info = shard.map[stream];
    info.pop_count += delta;
    count = info.pop_count;
  }
  BumpMaxPop(count);
  BumpMaxStream(stream);
  return count;
}

void StreamInfoTable::MarkFinished(StreamId stream) {
  Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  if (it != shard.map.end()) {
    it->second.live = false;
    it->second.finished = true;
  }
}

void StreamInfoTable::MarkDeleted(StreamId stream) {
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    StreamInfo& info = shard.map[stream];
    info.deleted = true;
    info.live = false;
    // A deleted stream is never scored again: its live freshness cannot
    // reach a query, so its residency cells need no further bumps.
    shard.residency.erase(stream);
  }
  BumpMaxStream(stream);
}

bool StreamInfoTable::Get(StreamId stream, StreamInfo& info) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  if (it == shard.map.end() || it->second.deleted) return false;
  info = it->second;
  return true;
}

bool StreamInfoTable::IsDeleted(StreamId stream) const {
  const Shard& shard = ShardFor(stream);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(stream);
  return it != shard.map.end() && it->second.deleted;
}

void StreamInfoTable::RestoreEntry(StreamId stream, const StreamInfo& info) {
  {
    Shard& shard = ShardFor(stream);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[stream] = info;
  }
  BumpMaxPop(info.pop_count);
  BumpMaxFrsh(info.frsh);
  BumpMaxStream(stream);
}

std::size_t StreamInfoTable::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

std::size_t StreamInfoTable::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    bytes += shard.map.bucket_count() * sizeof(void*) +
             shard.map.size() *
                 (sizeof(StreamId) + sizeof(StreamInfo) + 2 * sizeof(void*));
    bytes += shard.residency.bucket_count() * sizeof(void*);
    for (const auto& [stream, entries] : shard.residency) {
      bytes += sizeof(StreamId) + 2 * sizeof(void*) +
               entries.capacity() * sizeof(Residency);
    }
  }
  return bytes;
}

}  // namespace rtsi::index
