#include "index/inverted_index.h"

#include <cassert>

namespace rtsi::index {

void InvertedIndex::Add(TermId term, const Posting& posting) {
  assert(!compressed_);
  auto it = terms_.find(term);
  if (it == terms_.end()) {
    it = terms_.emplace(term, TermPostings(arena_)).first;
  }
  it->second.Append(posting);
  ++num_postings_;
  if (posting.frsh > max_stored_frsh_) max_stored_frsh_ = posting.frsh;
}

void InvertedIndex::Put(TermId term, TermPostings postings) {
  assert(!compressed_);
  num_postings_ += postings.size();
  if (postings.max_frsh() > max_stored_frsh_) {
    max_stored_frsh_ = postings.max_frsh();
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) {
    terms_.emplace(term, std::move(postings));
  } else {
    num_postings_ -= it->second.size();
    it->second = std::move(postings);
  }
}

const TermPostings* InvertedIndex::GetPlain(TermId term) const {
  if (compressed_) return nullptr;
  auto it = terms_.find(term);
  return it == terms_.end() ? nullptr : &it->second;
}

TermPostingsView InvertedIndex::View(TermId term) const {
  if (compressed_) {
    auto it = compressed_terms_.find(term);
    if (it == compressed_terms_.end()) return TermPostingsView();
    return TermPostingsView(it->second.Decode());
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) return TermPostingsView();
  return TermPostingsView(&it->second);
}

TermBounds InvertedIndex::Bounds(TermId term) const {
  TermBounds bounds;
  if (compressed_) {
    auto it = compressed_terms_.find(term);
    if (it == compressed_terms_.end()) return bounds;
    bounds = {it->second.max_pop(), it->second.max_frsh(),
              it->second.max_tf(), true};
    return bounds;
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) return bounds;
  bounds = {it->second.max_pop(), it->second.max_frsh(),
            it->second.max_tf(), true};
  return bounds;
}

void InvertedIndex::SealAll() {
  for (auto& [term, postings] : terms_) postings.Seal();
}

void InvertedIndex::ConsolidateAndSealAll() {
  for (auto& [term, postings] : terms_) postings.ConsolidateAndSeal();
}

void InvertedIndex::CompressAll() {
  if (compressed_) return;
  compressed_terms_.reserve(terms_.size());
  for (auto& [term, postings] : terms_) {
    compressed_terms_.emplace(term,
                              CompressedTermPostings::FromPostings(postings));
  }
  terms_.clear();
  compressed_ = true;
}

void InvertedIndex::BuildSkipHeader() {
  std::vector<TermSummary> summaries;
  summaries.reserve(num_terms());
  if (compressed_) {
    // Compressed storage keeps exact per-term maxima uncompressed. Merge
    // outputs are consolidated (one aggregated posting per stream), so
    // df == postings and the stored max_tf already is the aggregated
    // per-stream maximum.
    for (const auto& [term, compressed] : compressed_terms_) {
      TermSummary s;
      s.term = term;
      s.max_pop = compressed.max_pop();
      s.max_frsh = compressed.max_frsh();
      s.max_tf = compressed.max_tf();
      s.df = static_cast<std::uint32_t>(compressed.size());
      s.postings = static_cast<std::uint32_t>(compressed.size());
      summaries.push_back(s);
    }
  } else {
    SealAll();  // Frozen-L0 path; idempotent when already sealed.
    for (const auto& [term, postings] : terms_) {
      TermSummary s;
      s.term = term;
      s.max_pop = postings.max_pop();
      s.max_frsh = postings.max_frsh();
      // The aggregated per-stream tf maximum, not the per-posting one: a
      // frozen L0 component may store several windows of one stream, and
      // the traversal scores their folded sum.
      TermFreq max_agg_tf = 0;
      const auto& aggregates = postings.stream_aggregates();
      for (const auto& p : aggregates) {
        if (p.tf > max_agg_tf) max_agg_tf = p.tf;
      }
      s.max_tf = max_agg_tf;
      s.df = static_cast<std::uint32_t>(aggregates.size());
      s.postings = static_cast<std::uint32_t>(postings.size());
      summaries.push_back(s);
    }
  }
  skip_header_ =
      std::make_unique<SkipHeader>(SkipHeader::Build(std::move(summaries)));
}

void InvertedIndex::AdoptSkipHeader(SkipHeader header) {
  skip_header_ = std::make_unique<SkipHeader>(std::move(header));
}

void InvertedIndex::AttachSkipHeaderGauge(
    std::shared_ptr<MemoryTracker> tracker) {
  skip_charge_.reset();  // Release any previous charge first.
  if (tracker == nullptr || skip_header_ == nullptr) return;
  auto charge = std::make_unique<SkipHeaderCharge>();
  charge->tracker = std::move(tracker);
  charge->bytes = skip_header_->MemoryBytes();
  charge->tracker->Add(MemCategory::kSkipHeader, charge->bytes);
  skip_charge_ = std::move(charge);
}

std::unordered_map<TermId, TermPostings> InvertedIndex::TakeTerms() {
  assert(!compressed_);
  std::unordered_map<TermId, TermPostings> out;
  out.swap(terms_);
  num_postings_ = 0;
  max_stored_frsh_ = 0;
  return out;
}

std::size_t InvertedIndex::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  if (compressed_) {
    // Bucket overhead of the hash map plus per-term blobs.
    bytes += compressed_terms_.bucket_count() * sizeof(void*);
    for (const auto& [term, compressed] : compressed_terms_) {
      bytes += sizeof(term) + compressed.MemoryBytes();
    }
  } else {
    bytes += terms_.bucket_count() * sizeof(void*);
    for (const auto& [term, postings] : terms_) {
      bytes += sizeof(term) + postings.MemoryBytes();
    }
  }
  if (skip_header_ != nullptr) bytes += skip_header_->MemoryBytes();
  return bytes;
}

}  // namespace rtsi::index
