#include "index/inverted_index.h"

#include <cassert>

namespace rtsi::index {

void InvertedIndex::Add(TermId term, const Posting& posting) {
  assert(!compressed_);
  terms_[term].Append(posting);
  ++num_postings_;
  if (posting.frsh > max_stored_frsh_) max_stored_frsh_ = posting.frsh;
}

void InvertedIndex::Put(TermId term, TermPostings postings) {
  assert(!compressed_);
  num_postings_ += postings.size();
  if (postings.max_frsh() > max_stored_frsh_) {
    max_stored_frsh_ = postings.max_frsh();
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) {
    terms_.emplace(term, std::move(postings));
  } else {
    num_postings_ -= it->second.size();
    it->second = std::move(postings);
  }
}

const TermPostings* InvertedIndex::GetPlain(TermId term) const {
  if (compressed_) return nullptr;
  auto it = terms_.find(term);
  return it == terms_.end() ? nullptr : &it->second;
}

TermPostingsView InvertedIndex::View(TermId term) const {
  if (compressed_) {
    auto it = compressed_terms_.find(term);
    if (it == compressed_terms_.end()) return TermPostingsView();
    return TermPostingsView(it->second.Decode());
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) return TermPostingsView();
  return TermPostingsView(&it->second);
}

TermBounds InvertedIndex::Bounds(TermId term) const {
  TermBounds bounds;
  if (compressed_) {
    auto it = compressed_terms_.find(term);
    if (it == compressed_terms_.end()) return bounds;
    bounds = {it->second.max_pop(), it->second.max_frsh(),
              it->second.max_tf(), true};
    return bounds;
  }
  auto it = terms_.find(term);
  if (it == terms_.end()) return bounds;
  bounds = {it->second.max_pop(), it->second.max_frsh(),
            it->second.max_tf(), true};
  return bounds;
}

void InvertedIndex::SealAll() {
  for (auto& [term, postings] : terms_) postings.Seal();
}

void InvertedIndex::CompressAll() {
  if (compressed_) return;
  compressed_terms_.reserve(terms_.size());
  for (auto& [term, postings] : terms_) {
    compressed_terms_.emplace(term,
                              CompressedTermPostings::FromPostings(postings));
  }
  terms_.clear();
  compressed_ = true;
}

std::unordered_map<TermId, TermPostings> InvertedIndex::TakeTerms() {
  assert(!compressed_);
  std::unordered_map<TermId, TermPostings> out;
  out.swap(terms_);
  num_postings_ = 0;
  max_stored_frsh_ = 0;
  return out;
}

std::size_t InvertedIndex::MemoryBytes() const {
  std::size_t bytes = sizeof(*this);
  if (compressed_) {
    // Bucket overhead of the hash map plus per-term blobs.
    bytes += compressed_terms_.bucket_count() * sizeof(void*);
    for (const auto& [term, compressed] : compressed_terms_) {
      bytes += sizeof(term) + compressed.MemoryBytes();
    }
  } else {
    bytes += terms_.bucket_count() * sizeof(void*);
    for (const auto& [term, postings] : terms_) {
      bytes += sizeof(term) + postings.MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace rtsi::index
