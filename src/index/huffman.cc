#include "index/huffman.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <queue>

namespace rtsi::index {
namespace {

constexpr int kNumSymbols = 256;
constexpr int kMaxCodeLength = 32;

// Blob layout:
//   u32  original size (little endian)
//   256  code lengths (one byte each; 0 = symbol absent)
//   ...  bit stream, MSB first
//
// Single-symbol inputs get code length 1 for that symbol.

struct Node {
  std::uint64_t freq;
  int symbol;       // -1 for internal nodes.
  int left, right;  // Indices into the node pool.
};

void ComputeCodeLengths(const std::array<std::uint64_t, kNumSymbols>& freq,
                        std::array<std::uint8_t, kNumSymbols>& lengths) {
  lengths.fill(0);
  std::vector<Node> pool;
  using HeapItem = std::pair<std::uint64_t, int>;  // (freq, pool index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (int s = 0; s < kNumSymbols; ++s) {
    if (freq[s] > 0) {
      pool.push_back({freq[s], s, -1, -1});
      heap.emplace(freq[s], static_cast<int>(pool.size()) - 1);
    }
  }
  if (heap.empty()) return;
  if (heap.size() == 1) {
    lengths[pool[heap.top().second].symbol] = 1;
    return;
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    pool.push_back({fa + fb, -1, a, b});
    heap.emplace(fa + fb, static_cast<int>(pool.size()) - 1);
  }
  // Depth-first traversal assigning depths as code lengths.
  std::vector<std::pair<int, int>> stack = {{heap.top().second, 0}};
  while (!stack.empty()) {
    const auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& node = pool[idx];
    if (node.symbol >= 0) {
      lengths[node.symbol] =
          static_cast<std::uint8_t>(std::max(depth, 1));
    } else {
      stack.emplace_back(node.left, depth + 1);
      stack.emplace_back(node.right, depth + 1);
    }
  }
}

// Canonical code assignment: symbols ordered by (length, symbol value).
void AssignCanonicalCodes(const std::array<std::uint8_t, kNumSymbols>& lengths,
                          std::array<std::uint32_t, kNumSymbols>& codes) {
  std::vector<int> symbols;
  for (int s = 0; s < kNumSymbols; ++s) {
    if (lengths[s] > 0) symbols.push_back(s);
  }
  std::sort(symbols.begin(), symbols.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  std::uint32_t code = 0;
  int prev_len = 0;
  for (const int s : symbols) {
    code <<= (lengths[s] - prev_len);
    codes[s] = code;
    ++code;
    prev_len = lengths[s];
  }
}

class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void Write(std::uint32_t code, int num_bits) {
    for (int i = num_bits - 1; i >= 0; --i) {
      acc_ = (acc_ << 1) | ((code >> i) & 1u);
      if (++filled_ == 8) {
        out_.push_back(static_cast<std::uint8_t>(acc_));
        acc_ = 0;
        filled_ = 0;
      }
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - filled_)));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  std::vector<std::uint8_t>& out_;
  std::uint32_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace

std::vector<std::uint8_t> HuffmanEncode(
    const std::vector<std::uint8_t>& input) {
  std::vector<std::uint8_t> blob;
  if (input.empty()) return blob;

  std::array<std::uint64_t, kNumSymbols> freq{};
  for (const std::uint8_t byte : input) ++freq[byte];

  std::array<std::uint8_t, kNumSymbols> lengths;
  ComputeCodeLengths(freq, lengths);
  // Length-limit: flatten the distribution until every code fits in 32
  // bits (only reachable with near-Fibonacci frequency profiles).
  while (*std::max_element(lengths.begin(), lengths.end()) > kMaxCodeLength) {
    for (auto& f : freq) {
      if (f > 0) f = (f >> 1) + 1;
    }
    ComputeCodeLengths(freq, lengths);
  }
  std::array<std::uint32_t, kNumSymbols> codes{};
  AssignCanonicalCodes(lengths, codes);

  blob.reserve(4 + kNumSymbols + input.size() / 2);
  const auto size32 = static_cast<std::uint32_t>(input.size());
  blob.push_back(static_cast<std::uint8_t>(size32));
  blob.push_back(static_cast<std::uint8_t>(size32 >> 8));
  blob.push_back(static_cast<std::uint8_t>(size32 >> 16));
  blob.push_back(static_cast<std::uint8_t>(size32 >> 24));
  blob.insert(blob.end(), lengths.begin(), lengths.end());

  BitWriter writer(blob);
  for (const std::uint8_t byte : input) {
    writer.Write(codes[byte], lengths[byte]);
  }
  writer.Flush();
  return blob;
}

bool HuffmanDecode(const std::vector<std::uint8_t>& blob,
                   std::vector<std::uint8_t>& output) {
  output.clear();
  if (blob.empty()) return true;
  if (blob.size() < 4 + kNumSymbols) return false;

  const std::uint32_t original_size =
      static_cast<std::uint32_t>(blob[0]) |
      (static_cast<std::uint32_t>(blob[1]) << 8) |
      (static_cast<std::uint32_t>(blob[2]) << 16) |
      (static_cast<std::uint32_t>(blob[3]) << 24);

  std::array<std::uint8_t, kNumSymbols> lengths;
  std::memcpy(lengths.data(), blob.data() + 4, kNumSymbols);
  for (const std::uint8_t len : lengths) {
    if (len > kMaxCodeLength) return false;
  }
  std::array<std::uint32_t, kNumSymbols> codes{};
  AssignCanonicalCodes(lengths, codes);

  // Canonical decode tables per length: first code and symbol list.
  std::array<std::vector<int>, kMaxCodeLength + 1> symbols_by_length;
  for (int s = 0; s < kNumSymbols; ++s) {
    if (lengths[s] > 0) symbols_by_length[lengths[s]].push_back(s);
  }
  std::array<std::uint32_t, kMaxCodeLength + 1> first_code{};
  {
    std::uint32_t code = 0;
    for (int len = 1; len <= kMaxCodeLength; ++len) {
      first_code[len] = code;
      code = (code + static_cast<std::uint32_t>(
                         symbols_by_length[len].size()))
             << 1;
    }
  }

  output.reserve(original_size);
  std::uint32_t acc = 0;
  int acc_bits = 0;
  std::size_t pos = 4 + kNumSymbols;
  std::size_t bit_in_byte = 0;
  while (output.size() < original_size) {
    if (pos >= blob.size()) return false;  // Truncated stream.
    acc = (acc << 1) |
          ((blob[pos] >> (7 - bit_in_byte)) & 1u);
    ++acc_bits;
    if (++bit_in_byte == 8) {
      bit_in_byte = 0;
      ++pos;
    }
    if (acc_bits > kMaxCodeLength) return false;
    const auto& bucket = symbols_by_length[acc_bits];
    if (!bucket.empty()) {
      const std::uint32_t offset = acc - first_code[acc_bits];
      if (acc >= first_code[acc_bits] && offset < bucket.size()) {
        output.push_back(static_cast<std::uint8_t>(bucket[offset]));
        acc = 0;
        acc_bits = 0;
      }
    }
  }
  return true;
}

}  // namespace rtsi::index
