#include "index/skip_header.h"

#include <algorithm>
#include <cstring>

#include "common/varint.h"

namespace rtsi::index {
namespace {

// Finalizer from splitmix64: full-avalanche 64-bit mix, so the high bits
// (block selection) and low bits (in-block probes) are independent.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One odd salt per block word; (h * salt) >> 58 yields the bit index.
constexpr std::uint64_t kSalts[SplitBlockBloom::kWordsPerBlock] = {
    0x47b6137b44974d91ull, 0x8824ad5ba2b7289dull,
    0x705495c72df1424bull, 0x9efc49475c6bfb31ull,
    0x5c6bfb31705495c7ull, 0x2df1424b9efc4947ull,
    0x44974d918824ad5bull, 0xa2b7289d47b6137bull,
};

constexpr std::size_t kBitsPerKey = 10;

}  // namespace

void SplitBlockBloom::Reset(std::size_t num_keys) {
  const std::size_t bits = num_keys * kBitsPerKey;
  std::size_t blocks = (bits + kWordsPerBlock * 64 - 1) / (kWordsPerBlock * 64);
  if (blocks == 0) blocks = 1;
  words_.assign(blocks * kWordsPerBlock, 0);
}

bool SplitBlockBloom::MayContain(TermId key) const {
  if (words_.empty()) return false;
  const std::uint64_t h = Mix64(key);
  // Multiplicative range reduction of the high half onto [0, num_blocks).
  const std::size_t block = ((h >> 32) * num_blocks()) >> 32;
  const std::uint64_t* w = words_.data() + block * kWordsPerBlock;
  for (std::size_t i = 0; i < kWordsPerBlock; ++i) {
    const std::uint64_t bit = (h * kSalts[i]) >> 58;
    if ((w[i] & (1ull << bit)) == 0) return false;
  }
  return true;
}

void SplitBlockBloom::Insert(TermId key) {
  const std::uint64_t h = Mix64(key);
  const std::size_t block = ((h >> 32) * num_blocks()) >> 32;
  std::uint64_t* w = words_.data() + block * kWordsPerBlock;
  for (std::size_t i = 0; i < kWordsPerBlock; ++i) {
    const std::uint64_t bit = (h * kSalts[i]) >> 58;
    w[i] |= 1ull << bit;
  }
}

SkipHeader SkipHeader::Build(std::vector<TermSummary> summaries) {
  SkipHeader header;
  std::sort(summaries.begin(), summaries.end(),
            [](const TermSummary& a, const TermSummary& b) {
              return a.term < b.term;
            });
  header.bloom_.Reset(summaries.size());
  for (const auto& s : summaries) header.bloom_.Insert(s.term);
  header.summaries_ = std::move(summaries);
  header.summaries_.shrink_to_fit();
  return header;
}

const TermSummary* SkipHeader::Find(TermId term) const {
  const auto it = std::lower_bound(
      summaries_.begin(), summaries_.end(), term,
      [](const TermSummary& s, TermId t) { return s.term < t; });
  if (it == summaries_.end() || it->term != term) return nullptr;
  return &*it;
}

std::size_t SkipHeader::MemoryBytes() const {
  return summaries_.capacity() * sizeof(TermSummary) +
         bloom_.words().capacity() * sizeof(std::uint64_t);
}

std::vector<std::uint8_t> SkipHeader::Serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(16 + summaries_.size() * 12 +
              bloom_.words().size() * sizeof(std::uint64_t));
  PutVarint64(out, summaries_.size());
  for (const auto& s : summaries_) {
    PutVarint64(out, s.term);
    // Popularity is a float snapshot: raw little-endian bits, 4 bytes.
    std::uint32_t pop_bits;
    static_assert(sizeof(pop_bits) == sizeof(s.max_pop));
    std::memcpy(&pop_bits, &s.max_pop, sizeof(pop_bits));
    for (int b = 0; b < 4; ++b) {
      out.push_back(static_cast<std::uint8_t>(pop_bits >> (8 * b)));
    }
    PutVarint64(out, static_cast<std::uint64_t>(s.max_frsh));
    PutVarint64(out, s.max_tf);
    PutVarint64(out, s.df);
    PutVarint64(out, s.postings);
  }
  PutVarint64(out, bloom_.num_blocks());
  for (const std::uint64_t word : bloom_.words()) {
    for (int b = 0; b < 8; ++b) {
      out.push_back(static_cast<std::uint8_t>(word >> (8 * b)));
    }
  }
  return out;
}

bool SkipHeader::Deserialize(const std::uint8_t* data, std::size_t size,
                             SkipHeader& out) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  const auto get_varint = [&](std::uint64_t& v) {
    return GetVarint64(data, size, pos, v);
  };

  if (!get_varint(value)) return false;
  const std::uint64_t num_terms = value;
  // Each summary takes at least 8 bytes; cheap sanity cap on allocation.
  if (num_terms > size) return false;

  std::vector<TermSummary> summaries;
  summaries.reserve(num_terms);
  TermId prev_term = 0;
  for (std::uint64_t i = 0; i < num_terms; ++i) {
    TermSummary s;
    if (!get_varint(value)) return false;
    s.term = static_cast<TermId>(value);
    if (i > 0 && s.term <= prev_term) return false;  // Must be sorted.
    prev_term = s.term;
    if (pos + 4 > size) return false;
    std::uint32_t pop_bits = 0;
    for (int b = 0; b < 4; ++b) {
      pop_bits |= static_cast<std::uint32_t>(data[pos + b]) << (8 * b);
    }
    pos += 4;
    std::memcpy(&s.max_pop, &pop_bits, sizeof(s.max_pop));
    if (!get_varint(value)) return false;
    s.max_frsh = static_cast<Timestamp>(value);
    if (!get_varint(value)) return false;
    s.max_tf = static_cast<TermFreq>(value);
    if (!get_varint(value)) return false;
    s.df = static_cast<std::uint32_t>(value);
    if (!get_varint(value)) return false;
    s.postings = static_cast<std::uint32_t>(value);
    summaries.push_back(s);
  }

  if (!get_varint(value)) return false;
  const std::uint64_t num_blocks = value;
  const std::uint64_t num_words = num_blocks * SplitBlockBloom::kWordsPerBlock;
  if (pos + num_words * 8 > size) return false;
  std::vector<std::uint64_t> words;
  words.reserve(num_words);
  for (std::uint64_t i = 0; i < num_words; ++i) {
    std::uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(data[pos + b]) << (8 * b);
    }
    pos += 8;
    words.push_back(word);
  }
  if (pos != size) return false;

  out.summaries_ = std::move(summaries);
  out.bloom_.Adopt(std::move(words));
  return true;
}

}  // namespace rtsi::index
