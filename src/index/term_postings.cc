#include "index/term_postings.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rtsi::index {

void TermPostings::Append(const Posting& posting) {
  assert(!sealed_ && "cannot append to a sealed posting list");
  entries_.push_back(posting);
  max_pop_ = std::max(max_pop_, posting.pop);
  max_frsh_ = std::max(max_frsh_, posting.frsh);
  max_tf_ = std::max(max_tf_, posting.tf);
}

void TermPostings::Seal() {
  if (sealed_) return;
  // Sealed state outlives the live window, so the entries must leave the
  // window's arena before anything below takes a dependency on them.
  // POCMA is enabled on ArenaAllocator, so the move-assignment carries the
  // heap buffer and the heap allocator into entries_ in O(1).
  if (entries_.get_allocator().arena() != nullptr) {
    PostingVec heap(entries_.begin(), entries_.end(),
                    ArenaAllocator<Posting>());
    entries_ = std::move(heap);
  }
  by_pop_.resize(entries_.size());
  by_tf_.resize(entries_.size());
  std::iota(by_pop_.begin(), by_pop_.end(), 0);
  std::iota(by_tf_.begin(), by_tf_.end(), 0);
  // Contiguous by-stream-sorted copy with duplicates pre-folded, so
  // AggregateForStream is a cache-friendly binary search with no
  // indirection and no per-lookup fold loop.
  by_stream_.assign(entries_.begin(), entries_.end());
  std::stable_sort(by_stream_.begin(), by_stream_.end(),
                   [](const Posting& a, const Posting& b) {
                     return a.stream < b.stream;
                   });
  std::size_t n = 0;
  for (std::size_t i = 0; i < by_stream_.size(); ++i) {
    if (n > 0 && by_stream_[n - 1].stream == by_stream_[i].stream) {
      Posting& merged = by_stream_[n - 1];
      merged.tf += by_stream_[i].tf;
      merged.frsh = std::max(merged.frsh, by_stream_[i].frsh);
      merged.pop = std::max(merged.pop, by_stream_[i].pop);
    } else {
      by_stream_[n++] = by_stream_[i];
    }
  }
  by_stream_.resize(n);
  by_stream_.shrink_to_fit();
  std::stable_sort(by_pop_.begin(), by_pop_.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return entries_[a].pop > entries_[b].pop;
                   });
  std::stable_sort(by_tf_.begin(), by_tf_.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return entries_[a].tf > entries_[b].tf;
                   });
  sealed_ = true;
}

void TermPostings::ConsolidateAndSeal() {
  if (sealed_) return;
  // Fold duplicates stream-wise (the by_stream_ / merge rule), then
  // restore the ascending-frsh arrival invariant Seal() relies on. The
  // folded vector is heap-backed, so this also serves as the off-arena
  // migration Seal() would otherwise perform.
  std::vector<Posting> folded(entries_.begin(), entries_.end());
  std::stable_sort(folded.begin(), folded.end(),
                   [](const Posting& a, const Posting& b) {
                     return a.stream < b.stream;
                   });
  std::size_t n = 0;
  for (std::size_t i = 0; i < folded.size(); ++i) {
    if (n > 0 && folded[n - 1].stream == folded[i].stream) {
      Posting& merged = folded[n - 1];
      merged.tf += folded[i].tf;
      merged.frsh = std::max(merged.frsh, folded[i].frsh);
      merged.pop = std::max(merged.pop, folded[i].pop);
    } else {
      folded[n++] = folded[i];
    }
  }
  folded.resize(n);
  std::sort(folded.begin(), folded.end(),
            [](const Posting& a, const Posting& b) {
              return a.frsh != b.frsh ? a.frsh < b.frsh
                                      : a.stream < b.stream;
            });
  PostingVec heap(folded.begin(), folded.end(), ArenaAllocator<Posting>());
  entries_ = std::move(heap);
  // The aggregated tf maximum can exceed the per-posting one; pop and
  // frsh maxima are unchanged (max of per-stream maxima).
  max_tf_ = 0;
  for (const Posting& p : entries_) max_tf_ = std::max(max_tf_, p.tf);
  Seal();
}

const Posting& TermPostings::At(SortKey key, std::size_t i) const {
  switch (key) {
    case SortKey::kFreshness:
      // Arrival order is ascending frsh; descending = reverse.
      return entries_[entries_.size() - 1 - i];
    case SortKey::kPopularity:
      assert(sealed_);
      return entries_[by_pop_[i]];
    case SortKey::kTermFrequency:
      assert(sealed_);
      return entries_[by_tf_[i]];
  }
  return entries_[i];  // Unreachable.
}

bool TermPostings::AggregateForStream(StreamId stream, Posting& out) const {
  assert(sealed_);
  // Binary search in the contiguous aggregated copy; duplicates were
  // folded at Seal(), so a hit is a single load.
  std::size_t lo = 0;
  std::size_t hi = by_stream_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (by_stream_[mid].stream < stream) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= by_stream_.size() || by_stream_[lo].stream != stream) {
    return false;
  }
  out = by_stream_[lo];
  return true;
}

std::size_t TermPostings::MemoryBytes() const {
  return entries_.capacity() * sizeof(Posting) +
         by_pop_.capacity() * sizeof(std::uint32_t) +
         by_tf_.capacity() * sizeof(std::uint32_t) +
         by_stream_.capacity() * sizeof(Posting) + sizeof(*this);
}

bool TermPostings::IsSorted(SortKey key) const {
  if (entries_.size() <= 1) return true;
  if (key != SortKey::kFreshness && !sealed_) return false;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Posting& prev = At(key, i - 1);
    const Posting& cur = At(key, i);
    switch (key) {
      case SortKey::kPopularity:
        if (prev.pop < cur.pop) return false;
        break;
      case SortKey::kFreshness:
        if (prev.frsh < cur.frsh) return false;
        break;
      case SortKey::kTermFrequency:
        if (prev.tf < cur.tf) return false;
        break;
    }
  }
  return true;
}

}  // namespace rtsi::index
