// RTSI's small per-stream hash table (Section IV-B).
//
// Keyed by StreamId only — |P| entries, independent of the number of terms
// — holding the mutable score ingredients: the popularity counter and the
// freshness timestamp, plus liveness and lazy-deletion flags. Sharded
// mutexes allow concurrent updates with queries. Contrast with LSII's big
// table (baseline/big_table.h) which additionally stores every (stream,
// term) frequency.

#ifndef RTSI_INDEX_STREAM_INFO_TABLE_H_
#define RTSI_INDEX_STREAM_INFO_TABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "index/freshness_ceiling.h"

namespace rtsi::index {

struct StreamInfo {
  std::uint64_t pop_count = 0;  // Play counter / likes (raw popularity).
  Timestamp frsh = 0;           // Timestamp of the latest content window.
  std::uint32_t component_count = 0;  // LSM components holding postings.
  bool content_seen = false;    // At least one window was indexed
                                // (distinguishes real documents from
                                // metadata-only entries created by early
                                // popularity updates).
  bool live = false;            // Still broadcasting?
  bool finished = false;        // MarkFinished seen: liveness is monotone,
                                // a late out-of-order window must not
                                // resurrect the stream into the live set.
  bool deleted = false;         // Lazy deletion tombstone.
};

class StreamInfoTable {
 public:
  StreamInfoTable() = default;

  StreamInfoTable(const StreamInfoTable&) = delete;
  StreamInfoTable& operator=(const StreamInfoTable&) = delete;

  /// Called on every window insertion: creates or refreshes the entry.
  /// Returns true on the stream's first *content* window (popularity
  /// updates may have created the entry earlier without content). If
  /// `pop_count` is non-null, receives the current popularity counter
  /// (the insertion snapshot) without a second lookup.
  bool OnInsert(StreamId stream, Timestamp frsh, bool live,
                std::uint64_t* pop_count = nullptr);

  /// Increments the number of LSM components holding the stream's
  /// postings (first posting in a fresh L0 epoch).
  void IncrementComponentCount(StreamId stream);

  /// Records that sealed component `component` holds postings of `stream`
  /// and hands the stream a reference to the component's live-freshness
  /// ceiling cell, which every subsequent OnInsert bumps. The cell is
  /// immediately raised to the stream's current live freshness, so an
  /// insert that raced ahead of the registration is still covered.
  /// Idempotent per (stream, component); no-op for deleted streams
  /// (their residency was erased by MarkDeleted and re-adding it would
  /// leak). Does not touch component_count (the L0-epoch increment
  /// already accounted for this residency).
  void AddSealedResidency(StreamId stream, ComponentId component,
                          const FreshnessCeilingPtr& cell);

  /// Pre-publication merge bookkeeping, all under one shard lock:
  /// registers the merge output `to` (bumping its cell to the stream's
  /// live freshness) and debits the component count by `copies - 1` —
  /// the N-way merge consolidated `copies` of the stream's residencies
  /// into one. The input residencies are deliberately NOT dropped here:
  /// the inputs stay query-visible (in the published IndexView, and in
  /// any older views still pinned) until the output is swapped in, and
  /// they must keep receiving ceiling bumps for that whole window or a
  /// query pinning such a view could prune with a ceiling below the
  /// stream's live freshness. DropResidency removes them after the swap.
  /// Deleted streams get the count update but no registration (their
  /// residency was erased by MarkDeleted; re-adding it would leak, since
  /// later merges purge their postings without another hook call).
  /// Returns the new count and whether the stream is still live
  /// (live-table eviction decision).
  std::pair<std::uint32_t, bool> MergeResidency(
      StreamId stream, std::uint32_t copies, ComponentId to,
      const FreshnessCeilingPtr& to_cell);

  /// Post-publication merge bookkeeping: drops the stream's residency
  /// entries for the retired merge inputs `from`, now no longer
  /// query-visible. Inputs the stream never resided in are skipped.
  /// No-op for unknown streams or absent entries.
  void DropResidency(StreamId stream, const std::vector<ComponentId>& from);

  /// Component ids the stream currently resides in (test introspection).
  std::vector<ComponentId> GetResidency(StreamId stream) const;

  /// Current component count (0 for unknown streams).
  std::uint32_t GetComponentCount(StreamId stream) const;

  bool IsLive(StreamId stream) const;

  /// Popularity update (e.g. play counter increment). Creates the entry if
  /// needed. Returns the new counter.
  std::uint64_t AddPopularity(StreamId stream, std::uint64_t delta);

  /// Marks the broadcast finished (stream stays queryable).
  void MarkFinished(StreamId stream);

  /// Lazy deletion: tombstones the stream; postings are purged at merges.
  void MarkDeleted(StreamId stream);

  /// Copies the entry into `info`. Returns false when the stream is
  /// unknown or deleted.
  bool Get(StreamId stream, StreamInfo& info) const;

  bool IsDeleted(StreamId stream) const;

  /// Largest popularity counter ever observed (safe upper bound even after
  /// in-place popularity updates that stale the sorted lists).
  std::uint64_t max_pop_count() const {
    return max_pop_count_.load(std::memory_order_relaxed);
  }

  /// Largest freshness timestamp ever entered. Candidates are scored with
  /// their *live* frsh, which can exceed every frsh stored in a sealed
  /// component (the stream stayed active after sealing). Per-component
  /// pruning uses the residency-bumped FreshnessCeiling cells instead
  /// (tight AND sound); this global maximum remains the sound fallback
  /// for components without a ceiling cell.
  Timestamp max_frsh() const {
    return max_frsh_.load(std::memory_order_relaxed);
  }

  /// Largest stream id ever entered (0 when empty). Queries size their
  /// dense dedup filters from it; monotone, so a stale read only costs a
  /// hash-set fallback for the newest ids.
  StreamId max_stream_id() const {
    return max_stream_id_.load(std::memory_order_relaxed);
  }

  std::size_t size() const;
  std::size_t MemoryBytes() const;

  /// Calls fn(StreamId, const StreamInfo&) for every entry (including
  /// tombstones), one shard lock at a time. Snapshot save path.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [stream, info] : shard.map) {
        fn(stream, info);
      }
    }
  }

  /// Installs a raw entry (snapshot restore path); refreshes the global
  /// popularity maximum.
  void RestoreEntry(StreamId stream, const StreamInfo& info);

 private:
  static constexpr std::size_t kNumShards = 64;

  /// One sealed component the stream has postings in, with a handle on
  /// that component's live-freshness ceiling cell.
  struct Residency {
    ComponentId component = kInvalidComponentId;
    FreshnessCeilingPtr ceiling;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<StreamId, StreamInfo> map;
    // Parallel to `map`, keyed by stream: the sealed components the stream
    // resides in. Kept out of StreamInfo so Get() stays a cheap POD copy
    // on the per-candidate scoring path.
    std::unordered_map<StreamId, std::vector<Residency>> residency;
  };

  Shard& ShardFor(StreamId stream) {
    return shards_[stream % kNumShards];
  }
  const Shard& ShardFor(StreamId stream) const {
    return shards_[stream % kNumShards];
  }

  void BumpMaxPop(std::uint64_t count) {
    std::uint64_t prev = max_pop_count_.load(std::memory_order_relaxed);
    while (count > prev && !max_pop_count_.compare_exchange_weak(
                               prev, count, std::memory_order_relaxed)) {
    }
  }

  void BumpMaxFrsh(Timestamp frsh) {
    Timestamp prev = max_frsh_.load(std::memory_order_relaxed);
    while (frsh > prev && !max_frsh_.compare_exchange_weak(
                              prev, frsh, std::memory_order_relaxed)) {
    }
  }

  void BumpMaxStream(StreamId stream) {
    StreamId prev = max_stream_id_.load(std::memory_order_relaxed);
    while (stream > prev && !max_stream_id_.compare_exchange_weak(
                                prev, stream, std::memory_order_relaxed)) {
    }
  }

  Shard shards_[kNumShards];
  std::atomic<std::uint64_t> max_pop_count_{0};
  std::atomic<Timestamp> max_frsh_{0};
  std::atomic<StreamId> max_stream_id_{0};
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_STREAM_INFO_TABLE_H_
