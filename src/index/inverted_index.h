// One inverted-index component of the LSM-tree (an "I_i" in the paper).
//
// A component maps TermId -> postings. Level-0 components are mutable
// (append-only per term); components produced by merges are sealed, and
// optionally Huffman-compressed. Queries access terms through
// TermPostingsView, which hides whether a decode was necessary.

#ifndef RTSI_INDEX_INVERTED_INDEX_H_
#define RTSI_INDEX_INVERTED_INDEX_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/memory_tracker.h"
#include "common/window_arena.h"
#include "index/compressed_postings.h"
#include "index/freshness_ceiling.h"
#include "index/posting.h"
#include "index/skip_header.h"
#include "index/term_postings.h"

namespace rtsi::index {

/// Read access to a term's postings: either a pointer into the component
/// (plain storage) or an owned decoded copy (compressed storage).
class TermPostingsView {
 public:
  TermPostingsView() = default;
  explicit TermPostingsView(const TermPostings* borrowed)
      : borrowed_(borrowed) {}
  explicit TermPostingsView(TermPostings owned)
      : owned_(std::move(owned)), has_owned_(true) {}

  const TermPostings* get() const {
    return has_owned_ ? &owned_ : borrowed_;
  }
  const TermPostings& operator*() const { return *get(); }
  const TermPostings* operator->() const { return get(); }
  explicit operator bool() const { return has_owned_ || borrowed_ != nullptr; }

 private:
  const TermPostings* borrowed_ = nullptr;
  TermPostings owned_;
  bool has_owned_ = false;
};

/// Upper bounds of one term inside one component, for query pruning.
struct TermBounds {
  float max_pop = 0.0f;
  Timestamp max_frsh = 0;
  TermFreq max_tf = 0;
  bool present = false;
};

class InvertedIndex {
 public:
  explicit InvertedIndex(int level = 0) : level_(level) {}

  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;
  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;

  /// Appends `posting` to `term`'s list. Only valid on uncompressed,
  /// unsealed components (level 0). New term lists allocate their unsealed
  /// entries from the arena set via set_arena() (nullptr = global heap).
  void Add(TermId term, const Posting& posting);

  /// Arena for subsequently created term lists (level-0 ingest). Existing
  /// lists keep the allocator they were created with — FreezeL0 swaps the
  /// arena only after TakeTerms() emptied the component.
  void set_arena(WindowArena* arena) { arena_ = arena; }
  WindowArena* arena() const { return arena_; }

  /// Quarantines a retired arena on this component: frozen L0 postings
  /// reference its slabs until Seal() migrates them, and pinned IndexViews
  /// may hold the pre-seal state alive, so the arena must die with the
  /// component (after the last pin drops), never earlier.
  void RetainArena(std::unique_ptr<WindowArena> arena) {
    if (arena != nullptr) retained_arenas_.push_back(std::move(arena));
  }

  /// Moves a whole posting list in (used by merges). The component takes
  /// ownership; posting count is updated.
  void Put(TermId term, TermPostings postings);

  /// Plain postings of `term`, or nullptr if absent or compressed away.
  const TermPostings* GetPlain(TermId term) const;

  /// Unified read access; empty view when the term is absent.
  TermPostingsView View(TermId term) const;

  /// Per-term maxima without decoding (pruning bounds).
  TermBounds Bounds(TermId term) const;

  /// Seals every term list (sorts the three views). Idempotent.
  void SealAll();

  /// Consolidates duplicate per-stream postings of every term (the merge
  /// fold: summed tf, newest frsh, largest pop), then seals. The freeze
  /// path uses this so sealed components always hold one aggregated
  /// posting per (term, stream) — the invariant the pruning bounds
  /// assume. Idempotent; a no-op on already-consolidated data.
  void ConsolidateAndSealAll();

  /// Converts every plain list to the Huffman-compressed representation.
  /// Requires SealAll() first (merge output is always sealed).
  void CompressAll();

  bool compressed() const { return compressed_; }
  int level() const { return level_; }
  void set_level(int level) { level_ = level; }

  /// Gives the component its permanent identity and live-freshness ceiling
  /// cell (done when it becomes a sealed, query-visible component: at an
  /// L0 freeze, as a merge output, or on snapshot restore). The cell is
  /// raised to the largest stored freshness so it is a valid ceiling from
  /// the first read.
  void AdoptCeiling(ComponentId id, FreshnessCeilingPtr cell) {
    id_ = id;
    if (cell != nullptr) cell->Bump(max_stored_frsh_);
    ceiling_ = std::move(cell);
  }

  /// Raises the ceiling cell (merge output inheriting its inputs' ceilings;
  /// snapshot restore folding in the persisted value). Const because the
  /// cell is shared mutable state by design — bumps arrive through
  /// query-visible snapshots too.
  void BumpCeiling(Timestamp frsh) const {
    if (ceiling_ != nullptr) ceiling_->Bump(frsh);
  }

  ComponentId component_id() const { return id_; }
  bool has_ceiling() const { return ceiling_ != nullptr; }
  const FreshnessCeilingPtr& ceiling_cell() const { return ceiling_; }

  /// Upper bound on the *live* freshness of every stream with postings in
  /// this component: the residency-bumped cell, floored by the largest
  /// freshness stored in the component itself.
  Timestamp LiveFrshCeiling() const {
    const Timestamp cell = ceiling_ != nullptr ? ceiling_->Get() : 0;
    return cell > max_stored_frsh_ ? cell : max_stored_frsh_;
  }

  /// Largest freshness across all postings of all terms (tracked on
  /// Add/Put, survives compression).
  Timestamp max_stored_frsh() const { return max_stored_frsh_; }

  /// Builds the immutable skip header (term Bloom filter + per-term bound
  /// summaries) from the current term set. Called once when the component
  /// seals (FreezeL0 / merge output / snapshot restore of a pre-v4 file);
  /// seals any still-unsealed plain lists first so the per-stream
  /// aggregates exist. Replaces any previous header.
  void BuildSkipHeader();

  /// Installs a header restored bit-exactly from a v4 snapshot.
  void AdoptSkipHeader(SkipHeader header);

  /// The component's skip header, or nullptr before BuildSkipHeader().
  const SkipHeader* skip_header() const { return skip_header_.get(); }

  /// Charges the header's bytes to `tracker`'s kSkipHeader category and
  /// releases them when the component is destroyed. The tracker is kept
  /// alive by the shared_ptr, so retirement after the owning tree is gone
  /// still balances the category to zero (same pattern as the LSM view
  /// gauge). Re-attaching replaces the previous charge.
  void AttachSkipHeaderGauge(std::shared_ptr<MemoryTracker> tracker);

  std::size_t num_terms() const {
    return compressed_ ? compressed_terms_.size() : terms_.size();
  }
  std::size_t num_postings() const { return num_postings_; }
  bool empty() const { return num_postings_ == 0; }

  /// Heap bytes of all posting storage (exact for the structures we own).
  std::size_t MemoryBytes() const;

  /// Moves all plain term lists out, leaving the component empty.
  /// Used when freezing level 0 into an immutable component.
  std::unordered_map<TermId, TermPostings> TakeTerms();

  /// Calls fn(TermId, const TermPostings&) for every term. On compressed
  /// components each term is decoded for the duration of the call.
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    if (compressed_) {
      for (const auto& [term, compressed] : compressed_terms_) {
        const TermPostings decoded = compressed.Decode();
        fn(term, decoded);
      }
    } else {
      for (const auto& [term, postings] : terms_) {
        fn(term, postings);
      }
    }
  }

 private:
  // RAII release of the kSkipHeader byte charge; owns a tracker reference
  // so the release outlives the LSM tree (retired components drain late).
  struct SkipHeaderCharge {
    std::shared_ptr<MemoryTracker> tracker;
    std::size_t bytes = 0;
    ~SkipHeaderCharge() {
      if (tracker != nullptr) tracker->Sub(MemCategory::kSkipHeader, bytes);
    }
  };

  int level_;
  bool compressed_ = false;
  WindowArena* arena_ = nullptr;  // Not owned; for new L0 term lists.
  // Retired ingest arenas that postings of this component were carved
  // from; freed with the component (after the last pinned view drops).
  std::vector<std::unique_ptr<WindowArena>> retained_arenas_;
  std::size_t num_postings_ = 0;
  ComponentId id_ = kInvalidComponentId;
  Timestamp max_stored_frsh_ = 0;
  FreshnessCeilingPtr ceiling_;
  std::unordered_map<TermId, TermPostings> terms_;
  std::unordered_map<TermId, CompressedTermPostings> compressed_terms_;
  std::unique_ptr<SkipHeader> skip_header_;
  std::unique_ptr<SkipHeaderCharge> skip_charge_;
};

}  // namespace rtsi::index

#endif  // RTSI_INDEX_INVERTED_INDEX_H_
