// Canonical Huffman coding over byte streams.
//
// The paper applies Huffman coding to the inverted lists of sealed LSM
// components (Section IV, Figure 15): audio streams produce long lists, so
// entropy-coding the varint-serialized postings yields large memory
// savings. The encoded blob is self-contained: a 256-entry code-length
// header followed by the bit stream.

#ifndef RTSI_INDEX_HUFFMAN_H_
#define RTSI_INDEX_HUFFMAN_H_

#include <cstdint>
#include <vector>

namespace rtsi::index {

/// Encodes `input` into a self-describing Huffman blob.
/// Empty input yields an empty blob.
std::vector<std::uint8_t> HuffmanEncode(const std::vector<std::uint8_t>& input);

/// Decodes a blob produced by HuffmanEncode. Returns false on malformed
/// input (truncated header/stream, invalid code lengths).
bool HuffmanDecode(const std::vector<std::uint8_t>& blob,
                   std::vector<std::uint8_t>& output);

}  // namespace rtsi::index

#endif  // RTSI_INDEX_HUFFMAN_H_
